(* Benchmark harness: regenerates every table and figure of the CUP
   paper's evaluation (Section 3), plus ablations and micro-benchmarks
   of the hot data structures.

   Usage:
     dune exec bench/main.exe                     # everything, scaled
     dune exec bench/main.exe -- table1 fig5      # selected targets
     dune exec bench/main.exe -- --full           # paper-scale runs
     dune exec bench/main.exe -- --csv results    # also write CSV files
     dune exec bench/main.exe -- table1 --jobs 4  # fan runs over 4 domains
     dune exec bench/main.exe -- harness          # sequential-vs-parallel timing
     dune exec bench/main.exe -- sched            # scheduler/route-cache before-after
     dune exec bench/main.exe -- scale            # 10k/100k/1M-node sharded runs
     dune exec bench/main.exe -- scale-smoke      # 10k only (CI)
     dune exec bench/main.exe -- attribution      # K=100 overhead + O(K) memory
     dune exec bench/main.exe -- trace-io         # sink throughput + analyzer RSS
     dune exec bench/main.exe -- --scheduler heap # force the event-queue impl

   The scale targets are explicit-only (never part of the default
   target set): they record events/sec and peak RSS through the
   struct-of-arrays scale runner and cross-check that sharded runs are
   byte-identical to shards=1.

   Independent simulator runs fan out across a Cup_parallel domain
   pool ([--jobs N]; default: one job per core, [--jobs 1] is fully
   sequential).  Results are byte-identical whatever the job count.
   Every invocation writes BENCH_harness.json — wall time per target,
   the job count, and (for the [harness] and [micro] targets) measured
   speedup and data-structure timings — so perf changes leave a
   machine-readable trail. *)

module E = Cup_sim.Experiments
module Table = Cup_report.Table
module Plot = Cup_report.Plot
module Pool = Cup_parallel.Pool
module Json = Cup_obs.Json
module Resource = Cup_obs.Resource

let csv_dir : string option ref = ref None

(* Accumulated for BENCH_harness.json, in execution order: name, wall
   seconds, and the process-resource snapshots bracketing the target
   (peak RSS so far plus GC deltas — host-dependent, so they live next
   to the equally host-dependent wall time, never in a byte-compared
   artifact). *)
let target_timings :
    (string * float * Resource.snapshot * Resource.snapshot) list ref =
  ref []
let harness_json : (string * Json.t) list ref = ref []
let sched_json : (string * Json.t) list ref = ref []
let faults_json : (string * Json.t) list ref = ref []
let scale_json : (string * Json.t) list ref = ref []
let attribution_json : (string * Json.t) list ref = ref []
let trace_io_json : (string * Json.t) list ref = ref []
let micro_json : (string * float) list ref = ref []
let metrics_json : (string * float) list ref = ref []
let fuzz_json : (string * Json.t) list ref = ref []

let write_csv name ~header rows =
  match !csv_dir with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let path = Filename.concat dir (name ^ ".csv") in
      Cup_report.Csv.write ~path ~header rows;
      Printf.printf "(wrote %s)\n" path

let section title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n\n"

let scale_label = function E.Scaled -> "scaled" | E.Full -> "full (paper-scale)"

(* {1 Figures 3 and 4: cost vs push level} *)

(* Figure 3 uses the two low rates, Figure 4 the high ones. *)
let fig_rates scale which =
  let rs = E.rates scale in
  match which with
  | `Fig3 -> List.filteri (fun i _ -> i < 2) rs
  | `Fig4 -> List.filteri (fun i _ -> i >= 2) rs

let run_push_sweeps ?pool scale which =
  List.map
    (fun rate -> E.push_level_sweep ?pool scale ~rate)
    (fig_rates scale which)

let print_push_sweeps ~log_y title sweeps =
  let table =
    Table.create ~title
      ~columns:
        ("push level"
        :: List.concat_map
             (fun (s : E.push_level_series) ->
               [
                 Printf.sprintf "total (%g q/s)" s.rate;
                 Printf.sprintf "miss (%g q/s)" s.rate;
               ])
             sweeps)
  in
  (match sweeps with
  | [] -> ()
  | first :: _ ->
      List.iter
        (fun (p : E.push_level_point) ->
          let row =
            Table.cell_int p.level
            :: List.concat_map
                 (fun (s : E.push_level_series) ->
                   match
                     List.find_opt
                       (fun (q : E.push_level_point) -> q.level = p.level)
                       s.points
                   with
                   | Some q ->
                       [ Table.cell_int q.total_cost; Table.cell_int q.miss_cost ]
                   | None -> [ "-"; "-" ])
                 sweeps
          in
          Table.add_row table row)
        first.points);
  Table.print table;
  List.iter
    (fun (s : E.push_level_series) ->
      write_csv
        (Printf.sprintf "push_level_%g_qps" s.rate)
        ~header:[ "level"; "total_cost"; "miss_cost" ]
        (List.map
           (fun (p : E.push_level_point) ->
             [
               string_of_int p.level;
               string_of_int p.total_cost;
               string_of_int p.miss_cost;
             ])
           s.points);
      Printf.printf "optimal push level for %g q/s: %d (total cost %d)\n"
        s.rate s.optimal_level s.optimal_total)
    sweeps;
  print_newline ();
  Plot.print ~log_y ~title ~x_label:"push level" ~y_label:"cost (hops)"
    (List.concat_map
       (fun (s : E.push_level_series) ->
         [
           {
             Plot.label = Printf.sprintf "total, %g q/s" s.rate;
             points =
               List.map
                 (fun (p : E.push_level_point) ->
                   (float_of_int p.level, float_of_int p.total_cost))
                 s.points;
           };
           {
             Plot.label = Printf.sprintf "miss, %g q/s" s.rate;
             points =
               List.map
                 (fun (p : E.push_level_point) ->
                   (float_of_int p.level, float_of_int p.miss_cost))
                 s.points;
           };
         ])
       sweeps)

(* {1 Table 1: cut-off policies} *)

let print_table1 scale rows =
  let rates = E.rates scale in
  let table =
    Table.create
      ~title:"Table 1: total cost for varying cut-off policies"
      ~columns:
        ("policy"
        :: List.map (fun r -> Printf.sprintf "%g q/s total" r) rates)
  in
  List.iter
    (fun (row : E.policy_row) ->
      Table.add_row table
        (row.policy_label
        :: List.map
             (fun rate ->
               match List.assoc_opt rate row.cells with
               | Some cell ->
                   Printf.sprintf "%d %s" cell.E.total
                     (Table.cell_ratio cell.E.normalized)
               | None -> "-")
             rates))
    rows;
  Table.print table;
  write_csv "table1"
    ~header:("policy" :: List.map (Printf.sprintf "%g_qps") rates)
    (List.map
       (fun (row : E.policy_row) ->
         row.policy_label
         :: List.map
              (fun rate ->
                match List.assoc_opt rate row.cells with
                | Some cell -> string_of_int cell.E.total
                | None -> "")
              rates)
       rows)

(* {1 Table 2: varying the network size} *)

let print_table2 rows =
  let table =
    Table.create
      ~title:"Table 2: CUP vs standard caching for varying network size"
      ~columns:
        [
          "metric \\ nodes";
        ]
  in
  ignore table;
  (* Transposed layout like the paper: one column per network size. *)
  let columns =
    "metric"
    :: List.map (fun (r : E.size_row) -> string_of_int r.nodes) rows
  in
  let table =
    Table.create
      ~title:"Table 2: CUP vs standard caching for varying network size"
      ~columns
  in
  Table.add_row table
    ("CUP / STD miss cost"
    :: List.map (fun (r : E.size_row) -> Table.cell_float r.miss_cost_ratio) rows);
  Table.add_row table
    ("CUP miss latency (one-way hops)"
    :: List.map (fun (r : E.size_row) -> Table.cell_float ~decimals:1 r.cup_miss_latency) rows);
  Table.add_row table
    ("STD miss latency (one-way hops)"
    :: List.map (fun (r : E.size_row) -> Table.cell_float ~decimals:1 r.std_miss_latency) rows);
  Table.add_row table
    ("saved miss hops per overhead hop"
    :: List.map (fun (r : E.size_row) -> Table.cell_float r.saved_per_overhead) rows);
  Table.print table;
  write_csv "table2"
    ~header:
      [ "nodes"; "miss_cost_ratio"; "cup_latency"; "std_latency";
        "saved_per_overhead" ]
    (List.map
       (fun (r : E.size_row) ->
         [
           string_of_int r.nodes;
           Printf.sprintf "%.4f" r.miss_cost_ratio;
           Printf.sprintf "%.2f" r.cup_miss_latency;
           Printf.sprintf "%.2f" r.std_miss_latency;
           Printf.sprintf "%.4f" r.saved_per_overhead;
         ])
       rows)

(* {1 Table 3: multiple replicas per key} *)

let print_table3 rows =
  let table =
    Table.create
      ~title:
        "Table 3: miss cost, misses, total cost for varying replica counts"
      ~columns:
        [
          "replicas";
          "naive miss cost (misses)";
          "indep miss cost (misses)";
          "indep total cost";
        ]
  in
  List.iter
    (fun (r : E.replica_row) ->
      Table.add_row table
        [
          Table.cell_int r.replicas;
          Printf.sprintf "%d (%d)" r.naive_miss_cost r.naive_misses;
          Printf.sprintf "%d (%d)" r.indep_miss_cost r.indep_misses;
          Table.cell_int r.indep_total_cost;
        ])
    rows;
  Table.print table;
  write_csv "table3"
    ~header:
      [ "replicas"; "naive_miss_cost"; "naive_misses"; "indep_miss_cost";
        "indep_misses"; "indep_total" ]
    (List.map
       (fun (r : E.replica_row) ->
         [
           string_of_int r.replicas;
           string_of_int r.naive_miss_cost;
           string_of_int r.naive_misses;
           string_of_int r.indep_miss_cost;
           string_of_int r.indep_misses;
           string_of_int r.indep_total_cost;
         ])
       rows)

(* {1 Figures 5 and 6: reduced capacity} *)

let print_capacity ~log_y title (s : E.capacity_series) =
  let table =
    Table.create
      ~title:(Printf.sprintf "%s (lambda = %g q/s)" title s.cap_rate)
      ~columns:
        [ "capacity"; "Up-And-Down total"; "Once-Down-Always-Down total" ]
  in
  List.iter
    (fun (p : E.capacity_point) ->
      Table.add_row table
        [
          Table.cell_float p.capacity;
          Table.cell_int p.up_and_down_total;
          Table.cell_int p.once_down_total;
        ])
    s.cap_points;
  Table.add_separator table;
  Table.add_row table
    [ "std caching"; Table.cell_int s.std_total; Table.cell_int s.std_total ];
  Table.print table;
  write_csv
    (Printf.sprintf "capacity_%g_qps" s.cap_rate)
    ~header:[ "capacity"; "up_and_down_total"; "once_down_total"; "std_total" ]
    (List.map
       (fun (p : E.capacity_point) ->
         [
           Printf.sprintf "%.2f" p.capacity;
           string_of_int p.up_and_down_total;
           string_of_int p.once_down_total;
           string_of_int s.std_total;
         ])
       s.cap_points);
  Plot.print ~log_y ~title ~x_label:"capacity" ~y_label:"total cost (hops)"
    [
      {
        Plot.label = "Up-And-Down";
        points =
          List.map
            (fun (p : E.capacity_point) ->
              (p.capacity, float_of_int p.up_and_down_total))
            s.cap_points;
      };
      {
        Plot.label = "Once-Down-Always-Down";
        points =
          List.map
            (fun (p : E.capacity_point) ->
              (p.capacity, float_of_int p.once_down_total))
            s.cap_points;
      };
      {
        Plot.label = "standard caching";
        points =
          List.map
            (fun (p : E.capacity_point) ->
              (p.capacity, float_of_int s.std_total))
            s.cap_points;
      };
    ]

(* {1 Ablations} *)

let print_ablation_ordering rows =
  let table =
    Table.create
      ~title:
        "Ablation: update-queue ordering under token-bucket starvation"
      ~columns:[ "ordering"; "total cost"; "miss cost"; "misses" ]
  in
  List.iter
    (fun (r : E.ordering_row) ->
      Table.add_row table
        [
          r.ordering_label;
          Table.cell_int r.ord_total;
          Table.cell_int r.ord_miss;
          Table.cell_int r.ord_misses;
        ])
    rows;
  Table.print table

let print_ablation_window rows =
  let table =
    Table.create
      ~title:"Ablation: log-based cut-off window (second-chance = 2)"
      ~columns:[ "dry-update window"; "total cost"; "miss cost" ]
  in
  List.iter
    (fun (r : E.dry_row) ->
      Table.add_row table
        [
          Table.cell_int r.dry_window;
          Table.cell_int r.dry_total;
          Table.cell_int r.dry_miss;
        ])
    rows;
  Table.print table

let print_techniques rows =
  let table =
    Table.create
      ~title:
        "Section 3.6 techniques: reducing propagation overhead (10 replicas)"
      ~columns:
        [ "technique"; "total"; "overhead"; "miss cost"; "misses"; "justified %" ]
  in
  List.iter
    (fun (r : E.technique_row) ->
      Table.add_row table
        [
          r.technique_label;
          Table.cell_int r.tech_total;
          Table.cell_int r.tech_overhead;
          Table.cell_int r.tech_miss;
          Table.cell_int r.tech_misses;
          Table.cell_float ~decimals:1 r.tech_justified_pct;
        ])
    rows;
  Table.print table

let print_justification rows =
  let table =
    Table.create
      ~title:
        "Section 3.1 check: justified updates vs realized saved/overhead"
      ~columns:[ "policy"; "rate (q/s)"; "justified %"; "tracked"; "saved/overhead" ]
  in
  List.iter
    (fun (r : E.justification_row) ->
      Table.add_row table
        [
          r.j_policy;
          Printf.sprintf "%g" r.j_rate;
          Table.cell_float ~decimals:1 r.j_justified_pct;
          Table.cell_int r.j_tracked;
          Table.cell_float r.j_saved_per_overhead;
        ])
    rows;
  Table.print table

let print_overlays rows =
  let table =
    Table.create
      ~title:"CUP over different structured overlays (Section 2.2)"
      ~columns:
        [ "overlay"; "policy"; "total"; "miss cost"; "misses"; "miss latency" ]
  in
  List.iter
    (fun (r : E.overlay_row) ->
      Table.add_row table
        [
          r.overlay_label;
          r.o_policy;
          Table.cell_int r.o_total;
          Table.cell_int r.o_miss;
          Table.cell_int r.o_misses;
          Table.cell_float ~decimals:1 r.o_latency;
        ])
    rows;
  Table.print table

let print_model rows =
  let table =
    Table.create
      ~title:
        "Model vs simulation: justified-update probability at level 1"
      ~columns:[ "rate (q/s)"; "authority fanout"; "measured %"; "model %" ]
  in
  List.iter
    (fun (r : E.model_row) ->
      Table.add_row table
        [
          Printf.sprintf "%g" r.m_rate;
          Table.cell_int r.m_fanout;
          Table.cell_float ~decimals:1 r.measured_justified_pct;
          Table.cell_float ~decimals:1 r.predicted_justified_pct;
        ])
    rows;
  Table.print table

(* {1 Engine throughput and profiling probes} *)

(* Events/sec and heap high-water per named scenario: the baseline
   every perf PR measures itself against (BENCH_*.json trajectories). *)
let profile_targets scale =
  let module Scenario = Cup_sim.Scenario in
  let module Policy = Cup_proto.Policy in
  let nodes, rate =
    match scale with E.Scaled -> (256, 4.) | E.Full -> (1024, 10.)
  in
  let base =
    {
      Scenario.default with
      nodes;
      total_keys_override = Some 1;
      query_rate = rate;
      query_duration = 1000.;
    }
  in
  [
    ("cup-second-chance", Scenario.with_policy base Policy.second_chance);
    ("standard-caching", Scenario.with_policy base Policy.Standard_caching);
    ( "token-bucket",
      Scenario.with_policy
        {
          base with
          replicas_per_key = 5;
          replica_lifetime = 60.;
          capacity_mode = Scenario.Token_bucket 0.5;
        }
        Policy.second_chance );
    ( "zipf-16-keys",
      Scenario.with_policy
        { base with total_keys_override = Some 16; key_dist = `Zipf 0.9 }
        Policy.second_chance );
  ]

let print_profiles scale =
  let table =
    Table.create ~title:"Engine throughput (profiling probes enabled)"
      ~columns:
        [ "scenario"; "engine events"; "wallclock (s)"; "events/sec";
          "heap high-water" ]
  in
  let rows =
    List.map
      (fun (name, cfg) ->
        let live = Cup_sim.Runner.Live.create cfg in
        Cup_dess.Engine.enable_profiling (Cup_sim.Runner.Live.engine live);
        let r = Cup_sim.Runner.Live.finish live in
        let high_water =
          match r.profile with
          | Some p -> p.Cup_dess.Engine.heap_high_water
          | None -> 0
        in
        Table.add_row table
          [
            name;
            Table.cell_int r.engine_events;
            Printf.sprintf "%.3f" r.wallclock;
            Printf.sprintf "%.0f" r.events_per_sec;
            Table.cell_int high_water;
          ];
        (name, r))
      (profile_targets scale)
  in
  Table.print table;
  write_csv "engine_profile"
    ~header:[ "scenario"; "engine_events"; "wallclock"; "events_per_sec";
              "heap_high_water" ]
    (List.map
       (fun (name, (r : Cup_sim.Runner.result)) ->
         [
           name;
           string_of_int r.engine_events;
           Printf.sprintf "%.4f" r.wallclock;
           Printf.sprintf "%.0f" r.events_per_sec;
           string_of_int
             (match r.profile with
             | Some p -> p.Cup_dess.Engine.heap_high_water
             | None -> 0);
         ])
       rows);
  List.iter
    (fun (name, (r : Cup_sim.Runner.result)) ->
      match r.profile with
      | Some p ->
          Printf.printf "\n%s, per-label host time:\n" name;
          Format.printf "%a@." Cup_dess.Engine.pp_profile p
      | None -> ())
    rows

(* {1 Scheduler and route-cache before/after measurement} *)

(* The Table 1 policy grid, always jobs=1, run under three engine
   configurations:

     sched-heap-nocache   binary heap, route cache off  (the pre-PR shape)
     sched-heap           binary heap, route cache on
     sched-calendar       calendar queue, route cache on

   Aggregate events/sec (summed engine events over summed wall time)
   is the end-to-end number the perf work is judged by; the winner of
   heap-vs-calendar should match [Engine.default_scheduler].  Per-run
   total costs are compared across all three configurations — any
   difference means a scheduler or the route cache changed simulation
   behaviour, which the determinism contract forbids.

   [Experiments.table1] does not export its policy list, so the grid
   is restated here (keep in sync). *)
let sched_policies =
  let module Policy = Cup_proto.Policy in
  [
    Policy.Standard_caching;
    Policy.Linear 0.25;
    Policy.Linear 0.10;
    Policy.Linear 0.01;
    Policy.Linear 0.001;
    Policy.Logarithmic 0.5;
    Policy.Logarithmic 0.25;
    Policy.Logarithmic 0.10;
    Policy.Logarithmic 0.01;
    Policy.second_chance;
  ]

let sched scale =
  let module Scenario = Cup_sim.Scenario in
  let base = E.base_scenario scale in
  let grid =
    List.concat_map
      (fun policy -> List.map (fun rate -> (policy, rate)) (E.rates scale))
      sched_policies
  in
  let run_grid ~scheduler ~route_cache =
    List.fold_left
      (fun (events, wall, costs) (policy, rate) ->
        let cfg =
          Scenario.with_policy
            { base with
              Scenario.query_rate = rate;
              scheduler = Some scheduler;
              route_cache }
            policy
        in
        let r = Cup_sim.Runner.run cfg in
        ( events + r.Cup_sim.Runner.engine_events,
          wall +. r.wallclock,
          Cup_metrics.Counters.total_cost r.counters :: costs ))
      (0, 0., []) grid
  in
  let configs =
    [
      ("sched-heap-nocache", `Heap, false);
      ("sched-heap", `Heap, true);
      ("sched-calendar", `Calendar, true);
    ]
  in
  let results =
    List.map
      (fun (name, scheduler, route_cache) ->
        let events, wall, costs = run_grid ~scheduler ~route_cache in
        let eps = if wall > 0. then float_of_int events /. wall else 0. in
        (name, events, wall, eps, costs))
      configs
  in
  let baseline_eps =
    match results with (_, _, _, eps, _) :: _ -> eps | [] -> 0.
  in
  let baseline_costs =
    match results with (_, _, _, _, costs) :: _ -> costs | [] -> []
  in
  let identical =
    List.for_all (fun (_, _, _, _, costs) -> costs = baseline_costs) results
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Scheduler / route cache: Table 1 grid end-to-end, jobs=1 (%d runs each)"
           (List.length grid))
      ~columns:
        [ "config"; "engine events"; "wall (s)"; "events/sec"; "vs baseline" ]
  in
  List.iter
    (fun (name, events, wall, eps, _) ->
      Table.add_row table
        [
          name;
          Table.cell_int events;
          Printf.sprintf "%.2f" wall;
          Printf.sprintf "%.0f" eps;
          Table.cell_float (if baseline_eps > 0. then eps /. baseline_eps else 1.);
        ])
    results;
  Table.print table;
  Printf.printf "per-run results identical across configs: %s\n"
    (if identical then "yes" else "NO (determinism violated)");
  let eps_of name =
    match List.find_opt (fun (n, _, _, _, _) -> n = name) results with
    | Some (_, _, _, eps, _) -> eps
    | None -> 0.
  in
  let heap_eps = eps_of "sched-heap" and cal_eps = eps_of "sched-calendar" in
  (* Heap and calendar are typically within a few percent on CUP's
     shallow queues — under the run-to-run noise of a busy host — so
     only call a winner outside a 5% margin. *)
  let winner =
    let hi = Float.max heap_eps cal_eps in
    if hi <= 0. || Float.abs (heap_eps -. cal_eps) /. hi < 0.05 then
      "tie (within 5%)"
    else if cal_eps > heap_eps then "calendar"
    else "heap"
  in
  let default =
    match !Cup_dess.Engine.default_scheduler with
    | `Heap -> "heap"
    | `Calendar -> "calendar"
  in
  Printf.printf "end-to-end winner: %s (library default: %s)\n" winner default;
  write_csv "sched"
    ~header:[ "config"; "engine_events"; "wall_seconds"; "events_per_sec" ]
    (List.map
       (fun (name, events, wall, eps, _) ->
         [
           name; string_of_int events; Printf.sprintf "%.4f" wall;
           Printf.sprintf "%.0f" eps;
         ])
       results);
  sched_json :=
    [
      ("workload", Json.String "table1 policy grid, jobs=1");
      ("runs_per_config", Json.Int (List.length grid));
      ( "configs",
        Json.List
          (List.map
             (fun (name, events, wall, eps, _) ->
               Json.Obj
                 [
                   ("name", Json.String name);
                   ("engine_events", Json.Int events);
                   ("wall_seconds", Json.Float wall);
                   ("events_per_sec", Json.Float eps);
                 ])
             results) );
      ( "improvement_vs_baseline",
        Json.Float
          (if baseline_eps > 0. then Float.max heap_eps cal_eps /. baseline_eps
           else 1.) );
      ("winner", Json.String winner);
      ("default_scheduler", Json.String default);
      ("identical_results", Json.Bool identical);
    ];
  if not identical then begin
    prerr_endline
      "sched: per-run results differ between scheduler/route-cache \
       configurations — determinism contract broken";
    exit 1
  end

(* {1 Fault-injection determinism and overhead} *)

(* One crash+loss scenario run under every scheduler / route-cache
   combination: the printed counters (including the fault line) must
   be byte-identical, and the run must complete with the repair
   machinery visibly firing.  This is the bench-side witness of the
   fault-tolerance determinism contract. *)
let faults scale =
  let module Scenario = Cup_sim.Scenario in
  let module Policy = Cup_proto.Policy in
  let base = E.base_scenario scale in
  let cfg =
    Scenario.with_policy
      {
        base with
        Scenario.crashes =
          Some { Scenario.crash_rate = 0.02; recover_after = 20.; warmup = 30. };
        loss = Some { Scenario.drop = 0.15; jitter = 0.5 };
      }
      Policy.second_chance
  in
  let configs =
    [
      ("faults-heap", `Heap, true);
      ("faults-heap-nocache", `Heap, false);
      ("faults-calendar", `Calendar, true);
    ]
  in
  let results =
    List.map
      (fun (name, scheduler, route_cache) ->
        let r =
          Cup_sim.Runner.run
            { cfg with Scenario.scheduler = Some scheduler; route_cache }
        in
        (* Show the conservation identity in the compared bytes: the
           transport line is deterministic, so flipping it on for every
           config keeps the byte-identity check meaningful. *)
        Cup_metrics.Counters.expose_transport r.Cup_sim.Runner.counters;
        let printed =
          Format.asprintf "%a" Cup_metrics.Counters.pp r.Cup_sim.Runner.counters
        in
        (name, printed, r))
      configs
  in
  let baseline =
    match results with (_, printed, _) :: _ -> printed | [] -> ""
  in
  let identical =
    List.for_all (fun (_, printed, _) -> printed = baseline) results
  in
  let table =
    Table.create
      ~title:"Fault injection: crash+loss run across scheduler/cache configs"
      ~columns:
        [ "config"; "lost"; "retries"; "repairs"; "unreachable";
          "cache hit/miss"; "events/sec" ]
  in
  List.iter
    (fun (name, _, (r : Cup_sim.Runner.result)) ->
      let c = r.counters in
      Table.add_row table
        [
          name;
          Table.cell_int (Cup_metrics.Counters.lost_messages c);
          Table.cell_int (Cup_metrics.Counters.retries c);
          Table.cell_int (Cup_metrics.Counters.repairs c);
          Table.cell_int (Cup_metrics.Counters.unreachable c);
          (* Host-independent but config-dependent: lives outside the
             byte-compared counter block (Counters.pp), printed here. *)
          Printf.sprintf "%d/%d"
            (Cup_metrics.Counters.route_cache_hits c)
            (Cup_metrics.Counters.route_cache_misses c);
          Printf.sprintf "%.0f" r.events_per_sec;
        ])
    results;
  Table.print table;
  Printf.printf "fault counters identical across configs: %s\n"
    (if identical then "yes" else "NO (determinism violated)");
  let repaired =
    List.for_all
      (fun (_, _, (r : Cup_sim.Runner.result)) ->
        Cup_metrics.Counters.lost_messages r.counters > 0
        && Cup_metrics.Counters.repairs r.counters > 0)
      results
  in
  (* Message conservation over the transport counters: everything sent
     was delivered or lost, and nothing is still in flight once the
     engine has drained — the same V1 identity [cup run --audit]
     enforces online. *)
  let conserved =
    List.for_all
      (fun (_, _, (r : Cup_sim.Runner.result)) ->
        let c = r.counters in
        Cup_metrics.Counters.in_flight c = 0
        && Cup_metrics.Counters.sent c
           = Cup_metrics.Counters.delivered c
             + Cup_metrics.Counters.transport_lost c)
      results
  in
  Printf.printf "message conservation (sent = delivered + lost): %s\n"
    (if conserved then "yes" else "NO (accounting leak)");
  faults_json :=
    [
      ("workload", Json.String "crash 0.02/s + loss 0.15 over base scenario");
      ("identical_results", Json.Bool identical);
      ("repair_machinery_fired", Json.Bool repaired);
      ("conservation_holds", Json.Bool conserved);
      ( "configs",
        Json.List
          (List.map
             (fun (name, _, (r : Cup_sim.Runner.result)) ->
               let c = r.counters in
               Json.Obj
                 [
                   ("name", Json.String name);
                   ("lost", Json.Int (Cup_metrics.Counters.lost_messages c));
                   ("retries", Json.Int (Cup_metrics.Counters.retries c));
                   ("repairs", Json.Int (Cup_metrics.Counters.repairs c));
                   ( "unreachable",
                     Json.Int (Cup_metrics.Counters.unreachable c) );
                   ( "route_cache_hits",
                     Json.Int (Cup_metrics.Counters.route_cache_hits c) );
                   ( "route_cache_misses",
                     Json.Int (Cup_metrics.Counters.route_cache_misses c) );
                   ("events_per_sec", Json.Float r.events_per_sec);
                 ])
             results) );
    ];
  if not identical then begin
    prerr_endline
      "faults: counters differ between scheduler/route-cache configurations \
       under fault injection — determinism contract broken";
    exit 1
  end;
  if not conserved then begin
    prerr_endline
      "faults: transport counters violate sent = delivered + lost with \
       in_flight = 0 — message accounting leaks";
    exit 1
  end

(* {1 Scale: batch-synchronous sharded runs up to a million nodes} *)

(* The ISSUE-7 tentpole record: events/sec and peak RSS at 10k / 100k /
   1M nodes through the struct-of-arrays + ring-overlay scale runner,
   plus the shard byte-identity witness — shards=4 must reproduce the
   shards=1 summary (and, at 10k, the full JSONL trace) byte for byte.
   Runs in increasing size order so the per-size VmHWM snapshots are
   meaningful despite peak RSS being monotone across the process.

   Not part of the [all] target set: the 1M run costs real time and
   memory, so it only runs when named explicitly ([scale]; [scale-smoke]
   is the 10k-only variant CI uses). *)
let scale_configs which =
  let module Scale = Cup_sim.Scale in
  let mk name nodes keys rate identity =
    (name, { Scale.default with Scale.nodes; keys; rate }, identity)
  in
  match which with
  | `Smoke -> [ mk "scale-10k" 10_000 512 2_000. `Trace ]
  | `Full ->
      [
        mk "scale-10k" 10_000 512 2_000. `Trace;
        mk "scale-100k" 100_000 2_048 5_000. `Summary;
        mk "scale-1m" 1_000_000 8_192 10_000. `None;
      ]

let scale_runs which =
  let module Scale = Cup_sim.Scale in
  (* O(1)-memory trace comparison: chain a digest over the line stream
     instead of buffering megabytes of JSONL. *)
  let observe ~traced cfg =
    let digest = ref "" and lines = ref 0 in
    let tracer =
      if traced then
        Some
          (fun ev ->
            incr lines;
            digest := Digest.string (!digest ^ Scale.trace_line ev))
      else None
    in
    let r = Scale.run ?tracer cfg in
    (r, Scale.summary r, !digest, !lines)
  in
  (* Binary-traced repeat of each config: the [.ctrace] writer encodes
     on the simulation thread and writes on its own background thread,
     so the numbers that matter are the traced wall time relative to
     untraced (the tracing-overhead contract), the trace bytes written
     and how often the producer stalled waiting for the disk. *)
  let observe_binary cfg =
    let module Bw = Cup_obs.Binary_writer in
    let path = Filename.temp_file "cup-scale" ".ctrace" in
    let w = Bw.to_file path in
    let r = Scale.run ~tracer:(Bw.emit_scale w) cfg in
    Bw.close w;
    Sys.remove path;
    (r, Bw.bytes_written w, Bw.stalls w)
  in
  let table =
    Table.create ~title:"Scale runs (ring overlay, flat node state, shards=1)"
      ~columns:
        [ "config"; "nodes"; "events"; "wall (s)"; "events/sec";
          "peak RSS (MB)"; "live slots"; "traced wall (s)"; "trace MB";
          "stalls"; "overhead" ]
  in
  let rows =
    List.map
      (fun (name, (cfg : Scale.config), identity) ->
        let traced = identity = `Trace in
        let r1, summary1, digest1, lines1 = observe ~traced cfg in
        let rss = (Resource.snapshot ()).Resource.peak_rss_bytes in
        (* The digest-traced run pays for the MD5 chain, so the
           overhead baseline is a clean untraced run when [r1] was
           traced.  Below 1M nodes the overhead ratio comes from
           interleaved untraced/traced pairs with a min over each arm:
           these walls are a few seconds on a shared host, where
           scheduler drift between two distant samples can exceed the
           tracing cost itself. *)
        let repeats = if cfg.Scale.nodes >= 1_000_000 then 1 else 3 in
        let untraced_samples = ref [] and binary_samples = ref [] in
        for i = 1 to repeats do
          let u =
            if (not traced) && i = 1 then r1.Scale.wallclock
            else
              let r0, _, _, _ = observe ~traced:false cfg in
              r0.Scale.wallclock
          in
          untraced_samples := u :: !untraced_samples;
          binary_samples := observe_binary cfg :: !binary_samples
        done;
        let untraced_wall =
          List.fold_left min infinity !untraced_samples
        in
        let rb, trace_bytes, stalls =
          List.fold_left
            (fun (((ra : Scale.result), _, _) as a)
                 (((rb : Scale.result), _, _) as b) ->
              if rb.Scale.wallclock < ra.Scale.wallclock then b else a)
            (List.hd !binary_samples)
            (List.tl !binary_samples)
        in
        let overhead =
          if untraced_wall > 0. then rb.Scale.wallclock /. untraced_wall
          else 1.
        in
        Table.add_row table
          [
            name;
            Table.cell_int cfg.Scale.nodes;
            Table.cell_int r1.Scale.events;
            Printf.sprintf "%.2f" r1.Scale.wallclock;
            Printf.sprintf "%.0f" r1.Scale.events_per_sec;
            Table.cell_int (rss / (1024 * 1024));
            Table.cell_int r1.Scale.live_slots;
            Printf.sprintf "%.2f" rb.Scale.wallclock;
            Table.cell_int (trace_bytes / (1024 * 1024));
            Table.cell_int stalls;
            Printf.sprintf "%.2fx" overhead;
          ];
        let identical =
          match identity with
          | `None -> None
          | `Summary | `Trace ->
              let _, summary4, digest4, lines4 =
                observe ~traced { cfg with Scale.shards = 4 }
              in
              Some
                (String.equal summary1 summary4
                && String.equal digest1 digest4
                && lines1 = lines4)
        in
        (name, cfg, r1, rss, identical,
         (untraced_wall, rb.Scale.wallclock, trace_bytes, stalls, overhead)))
      (scale_configs which)
  in
  Table.print table;
  let all_identical =
    List.for_all
      (fun (name, _, _, _, identical, _) ->
        match identical with
        | None -> true
        | Some ok ->
            Printf.printf "%s: shards=4 byte-identical to shards=1: %s\n" name
              (if ok then "yes" else "NO (determinism violated)");
            ok)
      rows
  in
  write_csv "scale"
    ~header:
      [ "config"; "nodes"; "keys"; "events"; "wall_seconds"; "events_per_sec";
        "peak_rss_bytes"; "live_slots"; "traced_wall_seconds"; "trace_bytes";
        "writer_stalls"; "traced_overhead" ]
    (List.map
       (fun (name, (cfg : Scale.config), (r : Scale.result), rss, _,
                 (_, traced_wall, trace_bytes, stalls, overhead)) ->
         [
           name;
           string_of_int cfg.Scale.nodes;
           string_of_int cfg.Scale.keys;
           string_of_int r.Scale.events;
           Printf.sprintf "%.4f" r.Scale.wallclock;
           Printf.sprintf "%.0f" r.Scale.events_per_sec;
           string_of_int rss;
           string_of_int r.Scale.live_slots;
           Printf.sprintf "%.4f" traced_wall;
           string_of_int trace_bytes;
           string_of_int stalls;
           Printf.sprintf "%.4f" overhead;
         ])
       rows);
  scale_json :=
    [
      ( "workload",
        Json.String
          "batch-synchronous sharded runs: ring overlay, flat node state" );
      ( "configs",
        Json.List
          (List.map
             (fun (name, (cfg : Scale.config), (r : Scale.result), rss,
                       identical,
                       (untraced_wall, traced_wall, trace_bytes, stalls,
                        overhead)) ->
               Json.Obj
                 ([
                    ("name", Json.String name);
                    ("nodes", Json.Int cfg.Scale.nodes);
                    ("keys", Json.Int cfg.Scale.keys);
                    ("query_rate", Json.Float cfg.Scale.rate);
                    ("windows", Json.Int r.Scale.windows);
                    ("events", Json.Int r.Scale.events);
                    ("wall_seconds", Json.Float r.Scale.wallclock);
                    ("events_per_sec", Json.Float r.Scale.events_per_sec);
                    ("peak_rss_bytes", Json.Int rss);
                    ("live_slots", Json.Int r.Scale.live_slots);
                    ( "total_cost",
                      Json.Int
                        (let t = r.Scale.totals in
                         t.Scale.query_hops + t.Scale.ft_answer_hops
                         + t.Scale.ft_proactive_hops + t.Scale.refresh_hops
                         + t.Scale.delete_hops + t.Scale.append_hops
                         + t.Scale.clear_hops) );
                    ("untraced_wall_seconds", Json.Float untraced_wall);
                    ("traced_wall_seconds", Json.Float traced_wall);
                    ("trace_bytes", Json.Int trace_bytes);
                    ("writer_stalls", Json.Int stalls);
                    ("traced_overhead", Json.Float overhead);
                  ]
                 @
                 match identical with
                 | None -> []
                 | Some ok -> [ ("sharded_identical", Json.Bool ok) ]))
             rows) );
      ("sharded_identical", Json.Bool all_identical);
    ];
  if not all_identical then begin
    prerr_endline
      "scale: sharded run diverged from shards=1 — window-synchronizer \
       determinism contract broken";
    exit 1
  end

(* {1 Attribution: hot-path overhead and O(K) memory} *)

(* The cost-attribution contract has two measurable halves: attaching
   K=100 per-axis sketches to the scale runner costs at most a few
   percent of events/sec, and sketch memory depends on K alone, not on
   catalog size.  The overhead measurement runs the two arms
   back-to-back in pairs and reports the {e median} of the per-pair
   slowdowns: on a shared host, throughput drifts by 10-20% on a
   multi-second scale, so the minima of the two arms routinely come
   from different host phases and their gap measures the phases, not
   the attribution.  Within a pair the phase largely cancels, and the
   median discards the pairs where an interference spike landed on one
   arm.  Per-arm minima are still reported for the throughput rows. *)
let attribution_bench () =
  let module Scale = Cup_sim.Scale in
  let module Attribution = Cup_metrics.Attribution in
  let k = 100 in
  let cfg =
    { Scale.default with Scale.nodes = 100_000; keys = 2_048; rate = 5_000. }
  in
  let repeats = 25 in
  let best = Array.make 2 infinity in
  let eps = Array.make 2 0. and events = Array.make 2 0 in
  let deltas = Array.make repeats 0. in
  for i = 0 to repeats - 1 do
    let wall = Array.make 2 0. in
    List.iter
      (fun (arm, attribution) ->
        Gc.compact ();
        let r = Scale.run { cfg with Scale.attribution } in
        wall.(arm) <- r.Scale.wallclock;
        if r.Scale.wallclock < best.(arm) then begin
          best.(arm) <- r.Scale.wallclock;
          eps.(arm) <- r.Scale.events_per_sec;
          events.(arm) <- r.Scale.events
        end)
      [ (0, 0); (1, k) ];
    deltas.(i) <- 100. *. ((wall.(1) /. wall.(0)) -. 1.)
  done;
  Array.sort compare deltas;
  let overhead_pct =
    let m = repeats / 2 in
    if repeats land 1 = 1 then deltas.(m)
    else (deltas.(m - 1) +. deltas.(m)) /. 2.
  in
  (* Same K over catalogs two orders of magnitude apart: the evicting
     sketches and key-coupled rate rings must report an identical
     footprint. *)
  let footprint keys =
    let r =
      Scale.run
        {
          cfg with
          Scale.nodes = 20_000;
          keys;
          rate = 2_000.;
          attribution = k;
        }
    in
    match r.Scale.attribution with
    | Some a -> Attribution.footprint_words a
    | None -> 0
  in
  let w_small = footprint 10_000 and w_large = footprint 1_000_000 in
  let table =
    Table.create ~title:"Attribution overhead (scale runner, 100k nodes)"
      ~columns:
        [ "arm"; "events"; "wall (s)"; "events/sec"; "overhead" ]
  in
  Table.add_row table
    [ "detached"; Table.cell_int events.(0); Printf.sprintf "%.2f" best.(0);
      Printf.sprintf "%.0f" eps.(0); "-" ];
  Table.add_row table
    [ Printf.sprintf "K=%d" k; Table.cell_int events.(1);
      Printf.sprintf "%.2f" best.(1); Printf.sprintf "%.0f" eps.(1);
      Printf.sprintf "%.1f%%" overhead_pct ];
  Table.print table;
  Printf.printf
    "sketch footprint at K=%d: %d words (10k-key catalog) vs %d words \
     (1M-key catalog): %s\n"
    k w_small w_large
    (if w_small = w_large then "O(K), catalog-independent"
     else "DEPENDS ON CATALOG (bound violated)");
  write_csv "attribution"
    ~header:
      [ "arm"; "events"; "wall_seconds"; "events_per_sec"; "overhead_pct" ]
    [
      [ "detached"; string_of_int events.(0);
        Printf.sprintf "%.4f" best.(0); Printf.sprintf "%.0f" eps.(0); "" ];
      [ Printf.sprintf "k%d" k; string_of_int events.(1);
        Printf.sprintf "%.4f" best.(1); Printf.sprintf "%.0f" eps.(1);
        Printf.sprintf "%.2f" overhead_pct ];
    ];
  attribution_json :=
    [
      ( "workload",
        Json.String
          "scale runner, 100k nodes, K=100 per-axis attribution sketches" );
      ("k", Json.Int k);
      ("detached_wall_seconds", Json.Float best.(0));
      ("attached_wall_seconds", Json.Float best.(1));
      ("detached_events_per_sec", Json.Float eps.(0));
      ("attached_events_per_sec", Json.Float eps.(1));
      ("overhead_pct", Json.Float overhead_pct);
      ("overhead_estimator", Json.String "median of paired slowdowns");
      ("overhead_within_5pct", Json.Bool (overhead_pct <= 5.));
      ("footprint_words_10k_keys", Json.Int w_small);
      ("footprint_words_1m_keys", Json.Int w_large);
      ("footprint_catalog_independent", Json.Bool (w_small = w_large));
    ];
  if w_small <> w_large then begin
    prerr_endline
      "attribution: sketch footprint grew with catalog size — O(K) bound \
       broken";
    exit 1
  end

(* {1 Trace I/O: sink throughput and streaming-analyzer footprint} *)

(* One crash+loss run is captured once into memory; its protocol
   events are then replayed many times over into (a) the JSONL sink
   and (b) the binary double-buffered writer, giving events/sec and
   bytes/event per format with the simulation cost factored out.  The
   same scenario is also run end to end untraced / JSONL / binary for
   whole-run overhead, and the multi-million-event binary file is
   streamed back through {!Cup_obs.Trace_reader} +
   {!Cup_obs.Analyzer.Streaming} with heap-growth bracketing — the
   constant-memory-analyzer witness. *)
let trace_io scale =
  let module Scenario = Cup_sim.Scenario in
  let module Runner = Cup_sim.Runner in
  let module Sink = Cup_obs.Sink in
  let module Bw = Cup_obs.Binary_writer in
  let cfg =
    Scenario.with_policy
      {
        (E.base_scenario scale) with
        Scenario.crashes =
          Some { Scenario.crash_rate = 0.02; recover_after = 20.; warmup = 30. };
        loss = Some { Scenario.drop = 0.15; jitter = 0.5 };
      }
      Cup_proto.Policy.second_chance
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  (* Whole-run wall time with a given sink attached; the sink's close
     (flush / writer join) is part of the measured region — that is
     the cost a traced run actually pays. *)
  let run_with make_sink =
    let live = Runner.Live.create cfg in
    let sink = make_sink () in
    Option.iter (Sink.attach live) sink;
    time (fun () ->
        let r = Runner.Live.finish live in
        Option.iter Sink.close sink;
        r)
  in
  let capture = ref [] in
  let _ =
    run_with (fun () ->
        Some (Sink.of_callback (fun ev -> capture := ev :: !capture)))
  in
  let events = Array.of_list (List.rev !capture) in
  capture := [];
  let captured = Array.length events in
  let target =
    match scale with E.Scaled -> 1_000_000 | E.Full -> 4_000_000
  in
  let replays = max 1 ((target + captured - 1) / max 1 captured) in
  let total = replays * captured in
  let per_sec n s = if s > 0. then float_of_int n /. s else 0. in
  (* Sink-only throughput: same event array through each encoder. *)
  let (), baseline_s =
    time (fun () ->
        for _ = 1 to replays do
          Array.iter (fun ev -> ignore (Sys.opaque_identity ev)) events
        done)
  in
  let tmp_jsonl = Filename.temp_file "cup-trace-io" ".jsonl" in
  let (), jsonl_s =
    time (fun () ->
        let sink = Sink.jsonl_file tmp_jsonl in
        for _ = 1 to replays do
          Array.iter (Sink.emit sink) events
        done;
        Sink.close sink)
  in
  let jsonl_bytes = (Unix.stat tmp_jsonl).Unix.st_size in
  Sys.remove tmp_jsonl;
  let tmp_bin = Filename.temp_file "cup-trace-io" ".ctrace" in
  let w = Bw.to_file tmp_bin in
  let (), binary_s =
    time (fun () ->
        for _ = 1 to replays do
          Array.iter (Bw.emit_event w) events
        done;
        Bw.close w)
  in
  let binary_bytes = Bw.bytes_written w and stalls = Bw.stalls w in
  let speedup = if binary_s > 0. then jsonl_s /. binary_s else 1. in
  (* Stream the binary file back through the constant-memory analyzer;
     major-heap growth across the pass is the bounded-RSS witness. *)
  let module Reader = Cup_obs.Trace_reader in
  let module Analyzer = Cup_obs.Analyzer in
  Gc.full_major ();
  let heap0 = (Resource.snapshot ()).Resource.heap_words in
  let (analyzed, summary_events), analyze_s =
    time (fun () ->
        let st = Analyzer.Streaming.create () in
        let n = ref 0 in
        Reader.iter tmp_bin ~f:(fun _ord item ->
            match item with
            | Reader.Event ev ->
                incr n;
                Analyzer.Streaming.feed st ev
            | Reader.Scale_record _ | Reader.Raw _ | Reader.Malformed _ -> ());
        let s = Analyzer.Streaming.finish st in
        (!n, s.Analyzer.events))
  in
  let heap1 = (Resource.snapshot ()).Resource.heap_words in
  let heap_growth = (heap1 - heap0) * (Sys.word_size / 8) in
  Sys.remove tmp_bin;
  (* End-to-end traced runs. *)
  let _, run_untraced_s = run_with (fun () -> None) in
  let tmp = Filename.temp_file "cup-trace-io-run" ".jsonl" in
  let _, run_jsonl_s = run_with (fun () -> Some (Sink.jsonl_file tmp)) in
  Sys.remove tmp;
  let tmp = Filename.temp_file "cup-trace-io-run" ".ctrace" in
  let _, run_binary_s = run_with (fun () -> Some (Sink.binary_file tmp)) in
  Sys.remove tmp;
  let overhead s =
    if run_untraced_s > 0. then s /. run_untraced_s else 1.
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Trace sinks: %d captured events replayed to %d emits" captured
           total)
      ~columns:[ "sink"; "wall (s)"; "events/sec"; "bytes/event"; "stalls" ]
  in
  Table.add_row table
    [ "none"; Printf.sprintf "%.3f" baseline_s;
      Printf.sprintf "%.0f" (per_sec total baseline_s); "-"; "-" ];
  Table.add_row table
    [ "jsonl"; Printf.sprintf "%.3f" jsonl_s;
      Printf.sprintf "%.0f" (per_sec total jsonl_s);
      Printf.sprintf "%.1f" (float_of_int jsonl_bytes /. float_of_int total);
      "-" ];
  Table.add_row table
    [ "binary"; Printf.sprintf "%.3f" binary_s;
      Printf.sprintf "%.0f" (per_sec total binary_s);
      Printf.sprintf "%.1f" (float_of_int binary_bytes /. float_of_int total);
      string_of_int stalls ];
  Table.print table;
  Printf.printf "binary vs jsonl: %.2fx events/sec\n" speedup;
  Printf.printf
    "streaming analyzer: %d events in %.3fs (%.0f events/sec), major-heap \
     growth %d KiB\n"
    analyzed analyze_s (per_sec analyzed analyze_s) (heap_growth / 1024);
  Printf.printf
    "end-to-end run: untraced %.3fs, jsonl %.3fs (%.2fx), binary %.3fs \
     (%.2fx)\n"
    run_untraced_s run_jsonl_s (overhead run_jsonl_s) run_binary_s
    (overhead run_binary_s);
  assert (summary_events = analyzed);
  let sink_obj seconds bytes st =
    Json.Obj
      ([
         ("seconds", Json.Float seconds);
         ("events_per_sec", Json.Float (per_sec total seconds));
       ]
      @ (match bytes with
        | None -> []
        | Some b ->
            [
              ("bytes", Json.Int b);
              ( "bytes_per_event",
                Json.Float (float_of_int b /. float_of_int total) );
            ])
      @ match st with None -> [] | Some s -> [ ("writer_stalls", Json.Int s) ])
  in
  trace_io_json :=
    [
      ( "workload",
        Json.String "crash+loss protocol event stream, captured then replayed"
      );
      ("captured_events", Json.Int captured);
      ("replayed_events", Json.Int total);
      ("untraced", sink_obj baseline_s None None);
      ("jsonl", sink_obj jsonl_s (Some jsonl_bytes) None);
      ("binary", sink_obj binary_s (Some binary_bytes) (Some stalls));
      ("binary_vs_jsonl_speedup", Json.Float speedup);
      ("run_untraced_seconds", Json.Float run_untraced_s);
      ("run_jsonl_seconds", Json.Float run_jsonl_s);
      ("run_jsonl_overhead", Json.Float (overhead run_jsonl_s));
      ("run_binary_seconds", Json.Float run_binary_s);
      ("run_binary_overhead", Json.Float (overhead run_binary_s));
      ( "analyzer",
        Json.Obj
          [
            ("events", Json.Int analyzed);
            ("seconds", Json.Float analyze_s);
            ("events_per_sec", Json.Float (per_sec analyzed analyze_s));
            ("major_heap_growth_bytes", Json.Int heap_growth);
            ( "peak_rss_bytes",
              Json.Int (Resource.snapshot ()).Resource.peak_rss_bytes );
          ] );
    ];
  if speedup < 3.0 then
    Printf.eprintf
      "trace-io: WARNING: binary sink only %.2fx the JSONL sink — below the \
       3x contract\n%!"
      speedup

(* {1 Parallel-harness speedup measurement} *)

(* Time one representative fan-out workload sequentially and across
   the pool; the same-bytes check and the measured speedup go to
   BENCH_harness.json.  This is the perf-trajectory anchor: re-run
   [harness] before and after a perf change. *)
let harness ?pool scale =
  let rate = List.nth (E.rates scale) 1 in
  let workload pool = E.push_level_sweep ?pool scale ~rate in
  let time f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let seq, seq_s = time (fun () -> workload None) in
  let jobs = match pool with None -> 1 | Some p -> Pool.jobs p in
  let par, par_s = time (fun () -> workload pool) in
  let deterministic = seq = par in
  let speedup = if par_s > 0. then seq_s /. par_s else 1. in
  let table =
    Table.create
      ~title:
        (Printf.sprintf "Harness: push-level sweep at %g q/s, 1 vs %d job(s)"
           rate jobs)
      ~columns:[ "jobs"; "wall (s)"; "speedup"; "same results" ]
  in
  Table.add_row table
    [ "1"; Printf.sprintf "%.2f" seq_s; Table.cell_float 1.0; "-" ];
  Table.add_row table
    [
      string_of_int jobs;
      Printf.sprintf "%.2f" par_s;
      Table.cell_float speedup;
      (if deterministic then "yes" else "NO (determinism violated)");
    ];
  Table.print table;
  (* A speedup below 1.0 with more than one job means the pool is
     actively hurting: record it loudly instead of silently shipping a
     regression in the JSON trail. *)
  let degraded = jobs > 1 && par_s > seq_s in
  harness_json :=
    [
      ("workload", Json.String (Printf.sprintf "push-level sweep @ %g q/s" rate));
      ("sequential_seconds", Json.Float seq_s);
      ("parallel_seconds", Json.Float par_s);
      ("jobs", Json.Int jobs);
      ("speedup", Json.Float speedup);
      ("degraded", Json.Bool degraded);
      ("deterministic", Json.Bool deterministic);
    ];
  if degraded then
    Printf.eprintf
      "harness: WARNING: parallel wall time (%.2fs at %d jobs) exceeds \
       sequential (%.2fs) — domain-pool overhead dominates this workload\n%!"
      par_s jobs seq_s;
  if not deterministic then begin
    prerr_endline
      "harness: parallel sweep diverged from sequential sweep — \
       determinism contract broken";
    exit 1
  end

(* {1 Micro-benchmarks (Bechamel)} *)

(* An update queue pre-filled with [pending] live refreshes; each
   measured run pushes one more and pops the best, so the queue stays
   at [pending] items and the timing isolates enqueue/dequeue cost at
   that depth. *)
let queue_at_depth_test ~key ~pending =
  let open Bechamel in
  let q = Cup_proto.Update_queue.create Cup_proto.Update_queue.Latency_first in
  let mk_update i =
    let entry =
      Cup_proto.Entry.make
        ~replica:(Cup_proto.Replica_id.of_int (i mod 64))
        ~expiry:
          (Cup_dess.Time.of_seconds (float_of_int (1_000_000 + (i * 13 mod 997))))
    in
    Cup_proto.Update.refresh ~key ~entry ~level:(i mod 4)
  in
  for i = 0 to pending - 1 do
    Cup_proto.Update_queue.push q (mk_update i)
  done;
  let counter = ref pending in
  Test.make
    ~name:(Printf.sprintf "update-queue push+pop @%d pending" pending)
    (Staged.stage (fun () ->
         incr counter;
         Cup_proto.Update_queue.push q (mk_update !counter);
         ignore (Cup_proto.Update_queue.pop q ~now:Cup_dess.Time.zero)))

let micro () =
  let open Bechamel in
  let rng = Cup_prng.Rng.create ~seed:99 in
  let topo =
    Cup_overlay.Topology.create ~rng ~n:256 ~placement:`Random ()
  in
  let ids = Array.of_list (Cup_overlay.Topology.node_ids topo) in
  let key = Cup_overlay.Key.of_int 7 in
  let point = Cup_overlay.Key.to_point key in
  let heap_test =
    Test.make ~name:"event-heap push+pop x100"
      (Staged.stage (fun () ->
           let h = Cup_dess.Event_heap.create () in
           for i = 0 to 99 do
             ignore
               (Cup_dess.Event_heap.push h
                  ~time:(Cup_dess.Time.of_seconds (float_of_int (i * 7 mod 101)))
                  i)
           done;
           while Cup_dess.Event_heap.pop h <> None do
             ()
           done))
  in
  let calendar_test =
    Test.make ~name:"calendar-queue push+pop x100"
      (Staged.stage (fun () ->
           let q = Cup_dess.Calendar_queue.create () in
           for i = 0 to 99 do
             ignore
               (Cup_dess.Calendar_queue.push q
                  ~time:(Cup_dess.Time.of_seconds (float_of_int (i * 7 mod 101)))
                  i)
           done;
           while Cup_dess.Calendar_queue.pop q <> None do
             ()
           done))
  in
  let route_test =
    Test.make ~name:"CAN route (256 nodes)"
      (Staged.stage (fun () ->
           ignore (Cup_overlay.Topology.route topo ~from:ids.(0) point)))
  in
  (* Same membership (same seed), cache off vs on: the cached variant
     converges to pure hashtable hits after the first measured run. *)
  let mk_net route_cache =
    let rng = Cup_prng.Rng.create ~seed:77 in
    Cup_overlay.Net.create ~rng ~route_cache ~kind:(Cup_overlay.Net.Can `Random)
      ~n:256 ()
  in
  let net_cold = mk_net false in
  let net_cached = mk_net true in
  let net_ids = Array.of_list (Cup_overlay.Net.node_ids net_cold) in
  let route_cold_test =
    Test.make ~name:"route-cold (CAN 256, Net)"
      (Staged.stage (fun () ->
           ignore (Cup_overlay.Net.route net_cold ~from:net_ids.(0) key)))
  in
  let route_cached_test =
    Test.make ~name:"route-cached (CAN 256, Net)"
      (Staged.stage (fun () ->
           ignore (Cup_overlay.Net.route net_cached ~from:net_ids.(0) key)))
  in
  let topo_1024 =
    Cup_overlay.Topology.create ~rng ~n:1024 ~placement:`Random ()
  in
  let ids_1024 = Array.of_list (Cup_overlay.Topology.node_ids topo_1024) in
  let route_1024_test =
    Test.make ~name:"CAN route (1024 nodes)"
      (Staged.stage (fun () ->
           ignore
             (Cup_overlay.Topology.route topo_1024 ~from:ids_1024.(0) point)))
  in
  let prng_test =
    Test.make ~name:"prng float x100"
      (Staged.stage (fun () ->
           for _ = 1 to 100 do
             ignore (Cup_prng.Rng.float rng)
           done))
  in
  let node_test =
    let node =
      Cup_proto.Node.create
        ~id:(Cup_overlay.Node_id.of_int 0)
        Cup_proto.Node.default_config
    in
    let neighbor = Cup_overlay.Node_id.of_int 1 in
    Test.make ~name:"node handle_query (cold)"
      (Staged.stage (fun () ->
           ignore
             (Cup_proto.Node.handle_query node ~now:Cup_dess.Time.zero
                ~next_hop:(Some neighbor)
                (Cup_proto.Node.From_neighbor neighbor)
                key)))
  in
  let chord = Cup_overlay.Chord.create ~rng ~n:256 () in
  let chord_ids = Array.of_list (Cup_overlay.Chord.node_ids chord) in
  let chord_test =
    Test.make ~name:"Chord route (256 nodes)"
      (Staged.stage (fun () ->
           ignore (Cup_overlay.Chord.route chord ~from:chord_ids.(0) key)))
  in
  let pastry = Cup_overlay.Pastry.create ~rng ~n:256 () in
  let pastry_ids = Array.of_list (Cup_overlay.Pastry.node_ids pastry) in
  let pastry_test =
    Test.make ~name:"Pastry route (256 nodes)"
      (Staged.stage (fun () ->
           ignore (Cup_overlay.Pastry.route pastry ~from:pastry_ids.(0) key)))
  in
  let queue_test =
    Test.make ~name:"update-queue push+pop x32"
      (Staged.stage (fun () ->
           let q =
             Cup_proto.Update_queue.create Cup_proto.Update_queue.Latency_first
           in
           for i = 0 to 31 do
             let entry =
               Cup_proto.Entry.make
                 ~replica:(Cup_proto.Replica_id.of_int i)
                 ~expiry:(Cup_dess.Time.of_seconds (float_of_int (100 + (i * 13 mod 50))))
             in
             Cup_proto.Update_queue.push q
               (Cup_proto.Update.refresh ~key ~entry ~level:1)
           done;
           while
             Cup_proto.Update_queue.pop q ~now:Cup_dess.Time.zero <> None
           do
             ()
           done))
  in
  let tests =
    Test.make_grouped ~name:"cup" ~fmt:"%s %s"
      [
        heap_test; calendar_test; route_test; route_1024_test;
        route_cold_test; route_cached_test; chord_test; pastry_test;
        queue_test;
        queue_at_depth_test ~key ~pending:10;
        queue_at_depth_test ~key ~pending:100;
        queue_at_depth_test ~key ~pending:1000;
        prng_test; node_test;
      ]
  in
  let benchmark () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
    in
    let raw_results = Benchmark.all cfg instances tests in
    let results =
      List.map (fun instance -> Analyze.all ols instance raw_results) instances
    in
    let results = Analyze.merge ols instances results in
    results
  in
  let results = benchmark () in
  let rows = ref [] in
  Hashtbl.iter
    (fun _metric tbl ->
      Hashtbl.iter
        (fun name ols ->
          match Bechamel.Analyze.OLS.estimates ols with
          | Some (est :: _) -> rows := (name, est) :: !rows
          | Some [] | None -> ())
        tbl)
    results;
  let rows = List.sort compare !rows in
  micro_json := rows;
  let table =
    Table.create ~title:"Micro-benchmarks (Bechamel, monotonic clock)"
      ~columns:[ "benchmark"; "ns/run" ]
  in
  List.iter
    (fun (name, est) -> Table.add_row table [ name; Printf.sprintf "%.1f" est ])
    rows;
  Table.print table

(* Metrics micro-benchmarks: the per-sample cost of the observability
   layer's histogram record and the per-merge cost of the exact
   seed-order registry fold. *)
let metrics_bench () =
  let open Bechamel in
  let module Histogram = Cup_metrics.Histogram in
  let module Registry = Cup_metrics.Registry in
  let live = Histogram.create () in
  let sample = ref 0 in
  let record_test =
    Test.make ~name:"histogram record"
      (Staged.stage (fun () ->
           incr sample;
           Histogram.add live (0.001 +. float_of_int (!sample land 1023))))
  in
  let a = Histogram.create () and b = Histogram.create () in
  for i = 0 to 999 do
    Histogram.add a (0.001 +. float_of_int (i mod 500));
    Histogram.add b (0.5 +. float_of_int ((i * 7) mod 800))
  done;
  let merge_test =
    Test.make ~name:"histogram merge (1k+1k samples)"
      (Staged.stage (fun () -> ignore (Histogram.merge a b)))
  in
  let ra = Registry.create () and rb = Registry.create () in
  List.iter
    (fun r ->
      for l = 0 to 3 do
        let h =
          Registry.histogram r
            ~labels:[ ("level", string_of_int l) ]
            "cup_update_propagation_seconds"
        in
        for i = 0 to 249 do
          Registry.observe h (0.01 +. float_of_int i)
        done
      done;
      Registry.inc ~by:1000 (Registry.counter r "cup_hops_total"))
    [ ra; rb ];
  let registry_merge_test =
    Test.make ~name:"registry merge (4-level run pair)"
      (Staged.stage (fun () -> ignore (Registry.merge ra rb)))
  in
  let counter = Registry.counter (Registry.create ()) "bench_total" in
  let counter_test =
    Test.make ~name:"registry counter inc"
      (Staged.stage (fun () -> Registry.inc counter))
  in
  let tests =
    Test.make_grouped ~name:"metrics" ~fmt:"%s %s"
      [ record_test; merge_test; registry_merge_test; counter_test ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw_results = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  let results = Analyze.merge ols instances results in
  let rows = ref [] in
  Hashtbl.iter
    (fun _metric tbl ->
      Hashtbl.iter
        (fun name ols ->
          match Bechamel.Analyze.OLS.estimates ols with
          | Some (est :: _) -> rows := (name, est) :: !rows
          | Some [] | None -> ())
        tbl)
    results;
  let rows = List.sort compare !rows in
  metrics_json := rows;
  let table =
    Table.create ~title:"Metrics layer (Bechamel, monotonic clock)"
      ~columns:[ "benchmark"; "ns/run" ]
  in
  List.iter
    (fun (name, est) -> Table.add_row table [ name; Printf.sprintf "%.1f" est ])
    rows;
  Table.print table

(* {1 Fuzz sweep: throughput and jobs-determinism}

   Runs the swarm-testing fuzzer over a block of seeds twice —
   sequentially and fanned over the domain pool — and demands
   byte-identical summaries (same verdicts, same per-seed event
   counts, same failure list) plus a clean sweep.  A mismatch or a
   failing seed is a regression, so this target exits non-zero rather
   than just reporting. *)

let fuzz_sweep ?pool scale =
  let seeds = match scale with E.Scaled -> 60 | E.Full -> 400 in
  let exec = Cup_obs.Fuzz_oracle.execute in
  let t0 = Unix.gettimeofday () in
  let sequential =
    Cup_sim.Fuzz.run_seeds ~exec ~shrink_failures:false ~seed_start:0 ~seeds ()
  in
  let seq_s = Unix.gettimeofday () -. t0 in
  let pooled_s, deterministic =
    match pool with
    | None -> (None, true)
    | Some pool ->
        let t0 = Unix.gettimeofday () in
        let pooled =
          Cup_sim.Fuzz.run_seeds ~exec ~pool ~shrink_failures:false
            ~seed_start:0 ~seeds ()
        in
        (Some (Unix.gettimeofday () -. t0), pooled = sequential)
  in
  let table =
    Table.create ~title:"Fuzz sweep (seeds 0..)"
      ~columns:[ "mode"; "seeds"; "passed"; "seconds"; "seeds/s" ]
  in
  let row mode s =
    Table.add_row table
      [
        mode;
        string_of_int sequential.Cup_sim.Fuzz.seeds_run;
        string_of_int sequential.Cup_sim.Fuzz.passed;
        Printf.sprintf "%.2f" s;
        Printf.sprintf "%.1f" (float_of_int seeds /. s);
      ]
  in
  row "sequential" seq_s;
  Option.iter (fun s -> row "pooled" s) pooled_s;
  Table.print table;
  Printf.printf "pooled verdicts byte-identical: %s\n"
    (match pool with
    | None -> "n/a (jobs=1)"
    | Some _ -> if deterministic then "yes" else "NO");
  fuzz_json :=
    [
      ("seeds", Json.Int seeds);
      ("passed", Json.Int sequential.Cup_sim.Fuzz.passed);
      ("failed", Json.Int (List.length sequential.Cup_sim.Fuzz.failures));
      ("sequential_seconds", Json.Float seq_s);
      ("sequential_seeds_per_sec", Json.Float (float_of_int seeds /. seq_s));
      ("pooled_deterministic", Json.Bool deterministic);
    ]
    @
    (match pooled_s with
    | None -> []
    | Some s ->
        [
          ("pooled_seconds", Json.Float s);
          ("pooled_seeds_per_sec", Json.Float (float_of_int seeds /. s));
        ]);
  if not deterministic then begin
    prerr_endline "fuzz: pooled sweep diverged from sequential";
    exit 1
  end;
  if sequential.Cup_sim.Fuzz.failures <> [] then begin
    List.iter
      (fun (f : Cup_sim.Fuzz.failure) ->
        Printf.eprintf "fuzz: FAIL seed %d: [%s %s] %s\n" f.seed f.fail.code
          f.fail.invariant f.fail.detail)
      sequential.Cup_sim.Fuzz.failures;
    exit 1
  end

(* {1 Driver} *)

let write_harness_json ~jobs ~scale =
  let path = "BENCH_harness.json" in
  let json =
    Json.Obj
      ([
         ("schema", Json.String "cup-bench-harness/1");
         ("jobs", Json.Int jobs);
         ( "recommended_domain_count",
           Json.Int (Pool.default_jobs ()) );
         (* Named [scale_level] so the key cannot collide with the
            scale-runs section below. *)
         ( "scale_level",
           Json.String (match scale with E.Scaled -> "scaled" | E.Full -> "full")
         );
         ( "targets",
           Json.List
             (List.rev_map
                (fun (name, seconds, (b : Resource.snapshot)
                          , (a : Resource.snapshot)) ->
                  Json.Obj
                    [
                      ("name", Json.String name);
                      ("seconds", Json.Float seconds);
                      ("peak_rss_bytes", Json.Int a.peak_rss_bytes);
                      ( "gc",
                        Json.Obj
                          [
                            ( "minor_words",
                              Json.Float (a.minor_words -. b.minor_words) );
                            ( "promoted_words",
                              Json.Float (a.promoted_words -. b.promoted_words)
                            );
                            ( "major_words",
                              Json.Float (a.major_words -. b.major_words) );
                            ( "minor_collections",
                              Json.Int (a.minor_collections - b.minor_collections)
                            );
                            ( "major_collections",
                              Json.Int (a.major_collections - b.major_collections)
                            );
                          ] );
                    ])
                !target_timings) );
       ]
      @ (match !harness_json with
        | [] -> []
        | fields -> [ ("harness", Json.Obj fields) ])
      @ (match !sched_json with
        | [] -> []
        | fields -> [ ("sched", Json.Obj fields) ])
      @ (match !faults_json with
        | [] -> []
        | fields -> [ ("faults", Json.Obj fields) ])
      @ (match !scale_json with
        | [] -> []
        | fields -> [ ("scale", Json.Obj fields) ])
      @ (match !attribution_json with
        | [] -> []
        | fields -> [ ("attribution", Json.Obj fields) ])
      @ (match !trace_io_json with
        | [] -> []
        | fields -> [ ("trace_io", Json.Obj fields) ])
      @ (match !fuzz_json with
        | [] -> []
        | fields -> [ ("fuzz", Json.Obj fields) ])
      @ (match !micro_json with
        | [] -> []
        | rows ->
            [
              ( "micro_ns_per_run",
                Json.List
                  (List.map
                     (fun (name, ns) ->
                       Json.Obj
                         [ ("name", Json.String name); ("ns", Json.Float ns) ])
                     rows) );
            ])
      @
      match !metrics_json with
      | [] -> []
      | rows ->
          [
            ( "metrics_ns_per_run",
              Json.List
                (List.map
                   (fun (name, ns) ->
                     Json.Obj
                       [ ("name", Json.String name); ("ns", Json.Float ns) ])
                   rows) );
          ])
  in
  let oc = open_out path in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "(wrote %s)\n" path

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let scale = if List.mem "--full" args then E.Full else E.Scaled in
  let jobs = ref 0 in
  let rec strip_opts = function
    | "--csv" :: dir :: rest ->
        csv_dir := Some dir;
        strip_opts rest
    | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 0 ->
            jobs := n;
            strip_opts rest
        | Some _ | None ->
            prerr_endline "bench: --jobs expects a non-negative integer";
            exit 2)
    | "--scheduler" :: s :: rest -> (
        match s with
        | "heap" ->
            Cup_dess.Engine.default_scheduler := `Heap;
            strip_opts rest
        | "calendar" ->
            Cup_dess.Engine.default_scheduler := `Calendar;
            strip_opts rest
        | _ ->
            prerr_endline "bench: --scheduler expects 'heap' or 'calendar'";
            exit 2)
    | a :: rest -> a :: strip_opts rest
    | [] -> []
  in
  let args = strip_opts args in
  (* [--jobs 0] (the default) clamps to the runtime's recommended
     domain count, so the pool never oversubscribes a small machine. *)
  let jobs = if !jobs = 0 then Pool.default_jobs () else !jobs in
  let targets = List.filter (fun a -> a <> "--full") args in
  let targets = if targets = [] then [ "all" ] else targets in
  let want name = List.mem "all" targets || List.mem name targets in
  Printf.printf "CUP benchmark harness (%s, %d job%s, %s scheduler)\n"
    (scale_label scale) jobs
    (if jobs = 1 then "" else "s")
    (match !Cup_dess.Engine.default_scheduler with
    | `Heap -> "heap"
    | `Calendar -> "calendar");
  let pool = if jobs > 1 then Some (Pool.create ~jobs) else None in
  let timed_run name f =
    let before = Resource.snapshot () in
    let t0 = Unix.gettimeofday () in
    f ();
    let seconds = Unix.gettimeofday () -. t0 in
    target_timings :=
      (name, seconds, before, Resource.snapshot ()) :: !target_timings
  in
  let timed name f = if want name then timed_run name f in
  (* Explicit-only: the scale targets never ride along with [all] —
     the 1M run is too big to spring on a routine bench invocation. *)
  let timed_explicit name f = if List.mem name targets then timed_run name f in
  let fig3_sweeps = ref [] and fig4_sweeps = ref [] in
  timed "fig3" (fun () ->
      section "Figure 3: total and miss cost vs push level (low query rates)";
      let sweeps = run_push_sweeps ?pool scale `Fig3 in
      fig3_sweeps := sweeps;
      print_push_sweeps ~log_y:false
        (Printf.sprintf "Figure 3: cost vs push level (%s q/s)"
           (String.concat " and "
              (List.map (Printf.sprintf "%g") (fig_rates scale `Fig3))))
        sweeps);
  timed "fig4" (fun () ->
      section "Figure 4: total and miss cost vs push level (high query rates)";
      let sweeps = run_push_sweeps ?pool scale `Fig4 in
      fig4_sweeps := sweeps;
      print_push_sweeps ~log_y:true
        "Figure 4: cost vs push level (high rates, log y)" sweeps);
  timed "table1" (fun () ->
      section "Table 1: total cost for varying cut-off policies";
      let optimal =
        match !fig3_sweeps @ !fig4_sweeps with [] -> None | s -> Some s
      in
      print_table1 scale (E.table1 ?pool ?optimal scale));
  timed "table2" (fun () ->
      section "Table 2: CUP vs standard caching, varying network size";
      print_table2 (E.table2 ?pool scale));
  timed "table3" (fun () ->
      section "Table 3: naive vs replica-independent cut-off";
      print_table3 (E.table3 ?pool scale));
  timed "fig5" (fun () ->
      section "Figure 5: total cost vs reduced capacity (low rate)";
      let rate = List.nth (E.rates scale) 1 in
      print_capacity ~log_y:false "Figure 5: total cost vs capacity"
        (E.capacity_sweep ?pool scale ~rate));
  timed "fig6" (fun () ->
      section "Figure 6: total cost vs reduced capacity (high rate, log y)";
      let rate = List.nth (E.rates scale) (List.length (E.rates scale) - 1) in
      print_capacity ~log_y:true "Figure 6: total cost vs capacity"
        (E.capacity_sweep ?pool scale ~rate));
  timed "ablations" (fun () ->
      section "Ablations";
      print_ablation_ordering (E.ablation_queue_ordering ?pool scale);
      print_ablation_window (E.ablation_log_based_window ?pool scale));
  timed "overlays" (fun () ->
      section "Overlay generality: CUP over CAN, Chord and Pastry";
      print_overlays (E.overlay_comparison ?pool scale));
  timed "techniques" (fun () ->
      section "Section 3.6 propagation-overhead techniques";
      print_techniques (E.propagation_techniques ?pool scale));
  timed "model" (fun () ->
      section "Section 3.1 model vs simulation";
      print_model (E.model_check ?pool scale));
  timed "justification" (fun () ->
      section "Section 3.1 justified-update accounting";
      print_justification (E.justification ?pool scale));
  timed "sched" (fun () ->
      section "Scheduler / route-cache before-after (always jobs=1)";
      sched scale);
  timed "faults" (fun () ->
      section "Fault injection: determinism and repair overhead";
      faults scale);
  timed "trace-io" (fun () ->
      section "Trace I/O: sink throughput and streaming-analyzer footprint";
      trace_io scale);
  timed "fuzz" (fun () ->
      section "Fuzz sweep: seeds/sec and jobs-determinism";
      fuzz_sweep ?pool scale);
  timed_explicit "scale" (fun () ->
      section "Scale: 10k / 100k / 1M-node batch-synchronous runs";
      scale_runs `Full);
  timed_explicit "scale-smoke" (fun () ->
      section "Scale smoke: 10k-node run, shards=1 vs shards=4";
      scale_runs `Smoke);
  timed_explicit "attribution" (fun () ->
      section "Attribution: K=100 overhead on the 100k scale run, O(K) memory";
      attribution_bench ());
  timed "profile" (fun () ->
      section "Engine throughput and profiling probes";
      print_profiles scale);
  timed "harness" (fun () ->
      section "Parallel harness: sequential vs pooled wall time";
      harness ?pool scale);
  timed "micro" (fun () ->
      section "Micro-benchmarks";
      micro ());
  timed "metrics" (fun () ->
      section "Metrics-layer micro-benchmarks";
      metrics_bench ());
  Option.iter Pool.shutdown pool;
  write_harness_json ~jobs ~scale;
  Printf.printf "\ndone.\n"
