(* The `cup` command-line interface.

   Subcommands:
     cup run    — run one simulation with explicit parameters
     cup scale  — run a batch-synchronous sharded run (millions of nodes)
     cup top    — per-key/per-node/per-level cost attribution tables
     cup sweep  — sweep the push level for one query rate
     cup exp    — run a named paper experiment (fig3 fig4 table1 ...)
     cup trace  — analyze a protocol trace (JSONL or binary .ctrace):
                  propagation trees, latency percentiles, per-key summary
     cup trace convert — convert a trace between JSONL and .ctrace
     cup replay — alias of `cup trace` that also prints every event
*)

open Cmdliner

module Scenario = Cup_sim.Scenario
module Runner = Cup_sim.Runner
module E = Cup_sim.Experiments
module Counters = Cup_metrics.Counters
module Policy = Cup_proto.Policy
module Sink = Cup_obs.Sink
module Timeseries = Cup_obs.Timeseries
module Attribution = Cup_metrics.Attribution
module Topk = Cup_obs.Topk

(* {1 Shared argument definitions} *)

let seed =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let nodes =
  Arg.(
    value & opt int 256
    & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of overlay nodes.")

let keys =
  Arg.(
    value & opt int 1
    & info [ "k"; "keys" ] ~docv:"N" ~doc:"Number of keys in the global index.")

let rate =
  Arg.(
    value & opt float 1.
    & info [ "rate" ] ~docv:"Q/S" ~doc:"Network-wide query rate (Poisson).")

let duration =
  Arg.(
    value & opt float 3000.
    & info [ "duration" ] ~docv:"SECONDS" ~doc:"Query-posting window length.")

let lifetime =
  Arg.(
    value & opt float 300.
    & info [ "lifetime" ] ~docv:"SECONDS" ~doc:"Replica/entry lifetime.")

let replicas =
  Arg.(
    value & opt int 1
    & info [ "replicas" ] ~docv:"N" ~doc:"Replicas per key.")

let policy_conv =
  let parse s =
    let fail () =
      Error
        (`Msg
          (Printf.sprintf
             "unknown policy %S (try: standard, all-out, second-chance, \
              push-level:P, linear:A, log:A, log-based:N)"
             s))
    in
    match String.split_on_char ':' s with
    | [ "standard" ] | [ "standard-caching" ] -> Ok Policy.Standard_caching
    | [ "all-out" ] -> Ok Policy.All_out
    | [ "second-chance" ] -> Ok Policy.second_chance
    | [ "push-level"; p ] -> (
        match int_of_string_opt p with
        | Some p when p >= 0 -> Ok (Policy.Push_level p)
        | Some _ | None -> fail ())
    | [ "linear"; a ] -> (
        match float_of_string_opt a with
        | Some a -> Ok (Policy.Linear a)
        | None -> fail ())
    | [ "log"; a ] | [ "logarithmic"; a ] -> (
        match float_of_string_opt a with
        | Some a -> Ok (Policy.Logarithmic a)
        | None -> fail ())
    | [ "log-based"; n ] -> (
        match int_of_string_opt n with
        | Some n when n >= 1 -> Ok (Policy.Log_based n)
        | Some _ | None -> fail ())
    | _ -> fail ()
  in
  Arg.conv (parse, fun fmt p -> Policy.pp fmt p)

let policy =
  Arg.(
    value
    & opt policy_conv Policy.second_chance
    & info [ "policy" ] ~docv:"POLICY"
        ~doc:
          "Cut-off policy: standard, all-out, second-chance, push-level:P, \
           linear:A, log:A, log-based:N.")

let overlay_conv =
  let parse = function
    | "can" -> Ok (Cup_overlay.Net.Can `Random)
    | "can-grid" -> Ok (Cup_overlay.Net.Can `Grid)
    | "chord" -> Ok Cup_overlay.Net.Chord
    | "pastry" -> Ok Cup_overlay.Net.Pastry
    | s ->
        Error
          (`Msg
            (Printf.sprintf "unknown overlay %S (can, can-grid, chord, pastry)"
               s))
  in
  let print fmt = function
    | Cup_overlay.Net.Can `Random -> Format.pp_print_string fmt "can"
    | Cup_overlay.Net.Can `Grid -> Format.pp_print_string fmt "can-grid"
    | Cup_overlay.Net.Chord -> Format.pp_print_string fmt "chord"
    | Cup_overlay.Net.Pastry -> Format.pp_print_string fmt "pastry"
  in
  Arg.conv (parse, print)

let overlay =
  Arg.(
    value
    & opt overlay_conv (Cup_overlay.Net.Can `Random)
    & info [ "overlay" ] ~docv:"OVERLAY"
        ~doc:
          "Structured overlay to run CUP over: can, can-grid, chord, or \
           pastry.")

let scheduler_conv =
  let parse = function
    | "heap" -> Ok `Heap
    | "calendar" -> Ok `Calendar
    | s ->
        Error
          (`Msg (Printf.sprintf "unknown scheduler %S (heap, calendar)" s))
  in
  let print fmt = function
    | `Heap -> Format.pp_print_string fmt "heap"
    | `Calendar -> Format.pp_print_string fmt "calendar"
  in
  Arg.conv (parse, print)

let scheduler =
  Arg.(
    value
    & opt (some scheduler_conv) None
    & info [ "scheduler" ] ~docv:"SCHED"
        ~doc:
          "Event-queue implementation: heap (binary heap, the default) \
           or calendar (bucketed calendar queue).  Results are \
           byte-identical either way; only wall-clock speed differs.")

let flat_state =
  Arg.(
    value & flag
    & info [ "flat-state" ]
        ~doc:
          "Run the protocol state machine on the flat struct-of-arrays \
           backend (Node_store) instead of the map-backed nodes.  Results \
           are byte-identical either way (enforced by the state-equivalence \
           suite); the flat backend allocates per-(node, key) slots from \
           pre-sized arrays and exists for very large runs.")

let runs =
  Arg.(
    value & opt int 1
    & info [ "runs" ]
        ~docv:"N"
        ~doc:"Repeat the run over N consecutive seeds and report mean +/- stddev.")

let full =
  Arg.(
    value & flag
    & info [ "full" ] ~doc:"Run experiments at the paper's full scale.")

let jobs =
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Fan the experiment's independent simulations across $(docv) \
           domains (0, the default, means one per core; 1 runs \
           sequentially).  Results are byte-identical for every value — \
           only wall-clock time changes.")

(* Run [f] with a domain pool of the requested size ([None] when the
   fan-out would be trivial), shutting the pool down afterwards. *)
let with_jobs jobs f =
  let jobs = if jobs = 0 then Cup_parallel.Pool.default_jobs () else jobs in
  if jobs <= 1 then f None
  else Cup_parallel.Pool.with_pool ~jobs (fun pool -> f (Some pool))

let scenario_of ~seed ~nodes ~keys ~rate ~duration ~lifetime ~replicas ~policy
    ~overlay =
  Scenario.with_policy
    {
      Scenario.default with
      seed;
      nodes;
      total_keys_override = Some keys;
      query_rate = rate;
      query_duration = duration;
      replica_lifetime = lifetime;
      replicas_per_key = replicas;
      overlay;
    }
    policy

let print_result (r : Runner.result) =
  let c = r.counters in
  Format.printf "%a@." Counters.pp c;
  if Counters.misses c > 0 then
    Printf.printf
      "miss latency percentiles (hops): p50=%.1f p90=%.1f p99=%.1f\n"
      (Counters.miss_latency_percentile c 0.5)
      (Counters.miss_latency_percentile c 0.9)
      (Counters.miss_latency_percentile c 0.99);
  if r.tracked_updates > 0 then
    Printf.printf "justified updates: %d / %d (%.1f%%)\n" r.justified_updates
      r.tracked_updates
      (100. *. float_of_int r.justified_updates
      /. float_of_int r.tracked_updates);
  Printf.printf
    "queries posted: %d, replica events: %d, engine events: %d, wallclock: \
     %.2fs (%.0f events/s)\n"
    r.queries_posted r.replica_events r.engine_events r.wallclock
    r.events_per_sec;
  (match r.profile with
  | Some profile ->
      Format.printf "engine profile:@.%a@."
        Cup_dess.Engine.pp_profile profile
  | None -> ());
  let s = r.node_stats in
  Printf.printf
    "node totals: queries=%d coalesced=%d cache-answers=%d updates=%d \
     forwarded=%d clear-bits=%d expired-dropped=%d\n"
    s.queries_in s.queries_coalesced s.cache_answers s.updates_in
    s.updates_forwarded s.clear_bits_sent s.expired_updates_dropped

(* {1 cup run} *)

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Stream every protocol event to $(docv): JSONL (one \
           self-describing JSON object per line) by default, or the \
           compact binary format via a background writer thread when \
           $(docv) ends in .ctrace.  Both replay with $(b,cup replay) \
           and convert with $(b,cup trace convert).")

let sample_interval =
  Arg.(
    value
    & opt (some float) None
    & info [ "sample-interval" ] ~docv:"SECS"
        ~doc:
          "Sample cost/hit/queue counters every $(docv) virtual seconds and \
           print a cost-vs-time plot after the run.")

let sample_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "sample-out" ] ~docv:"FILE"
        ~doc:
          "Also write the time series to $(docv) as CSV (implies \
           --sample-interval 10 unless given).")

let profile_flag =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Enable the engine profiling probes and print per-label callback \
           counts, host time, and the event-heap high-water mark.")

let metrics_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Record latency histograms (query latency in hops, update \
           propagation latency per tree level, repair latency) and the \
           run's counters into a metrics registry, dumped to $(docv) at \
           run end — Prometheus text exposition, or CSV when $(docv) ends \
           in .csv.")

let serve_port =
  Arg.(
    value
    & opt (some int) None
    & info [ "serve" ] ~docv:"PORT"
        ~doc:
          "Serve live run health over HTTP on 127.0.0.1:$(docv) while the \
           simulation runs (0 picks an ephemeral port, printed at start).  \
           $(b,GET /metrics) is the Prometheus exposition — byte-identical \
           to the --metrics-out file for the deterministic families, with \
           the non-deterministic cup_process_* resource gauges appended; \
           $(b,GET /health) is a JSON heartbeat (virtual time, events/s, \
           queue depths, fault and transport counters); $(b,GET \
           /trace?n=K) returns the last K protocol events as JSONL.  The \
           process keeps serving after the run finishes, until \
           interrupted.")

let audit_flag =
  Arg.(
    value & flag
    & info [ "audit" ]
        ~doc:
          "Stream every protocol event through the online invariant \
           auditor: V1 message conservation (sent = delivered + lost + \
           in-flight), V2 per-replica freshness monotonicity, V3 bounded \
           justification backlog, V4 causal span soundness.  The first \
           breach aborts the run with a numbered violation report and \
           exit status 3.")

let crash_rate =
  Arg.(
    value & opt float 0.
    & info [ "crash-rate" ] ~docv:"RATE"
        ~doc:
          "Inject node crashes at $(docv) crashes/second (Poisson, from \
           the deterministic PRNG).  A crashed node loses its directories \
           and queued updates; dependents detect the silence and repair \
           their subscriptions.  0 (the default) disables crash injection.")

let crash_recover =
  Arg.(
    value & opt float 30.
    & info [ "crash-recover" ] ~docv:"SECS"
        ~doc:
          "Seconds after each crash before a replacement node joins; 0 \
           means crashed capacity is never replaced.  Only meaningful with \
           --crash-rate > 0.")

let loss_rate =
  Arg.(
    value & opt float 0.
    & info [ "loss-rate" ] ~docv:"P"
        ~doc:
          "Drop each message in transit with probability $(docv) (0..1).  \
           Lost queries retransmit with capped backoff; lost updates are \
           healed by subscription repair.  0 (the default) disables loss.")

let loss_jitter =
  Arg.(
    value & opt float 0.
    & info [ "loss-jitter" ] ~docv:"J"
        ~doc:
          "Per-channel spread of the loss rate: each (sender, receiver) \
           channel drops at rate*(1 + J*u) for a deterministic per-channel \
           u in [-1, 1).  Only meaningful with --loss-rate > 0.")

let zipf =
  Arg.(
    value & opt float 0.
    & info [ "zipf" ] ~docv:"ALPHA"
        ~doc:
          "Draw query keys from a Zipf distribution with exponent $(docv) \
           instead of uniformly.  0 (the default) keeps the uniform \
           distribution.")

let partition_frac =
  Arg.(
    value & opt float 0.
    & info [ "partition" ] ~docv:"F"
        ~doc:
          "Cut the network for a time window: each node lands on the island \
           side with probability $(docv) (pure hash of seed and node id, so \
           membership is stable and costs no randomness).  Messages into \
           the island are dropped while the cut is open — and out of it \
           too with --partition-symmetric.  0 (the default) disables \
           partitioning.")

let partition_start =
  Arg.(
    value & opt float 0.
    & info [ "partition-start" ] ~docv:"SECS"
        ~doc:
          "Seconds after the query window opens before the cut opens.  \
           Only meaningful with --partition > 0.")

let partition_duration =
  Arg.(
    value & opt float 0.
    & info [ "partition-duration" ] ~docv:"SECS"
        ~doc:
          "Seconds the cut stays open; 0 (the default) keeps it open for \
           the whole query window.  Only meaningful with --partition > 0.")

let partition_symmetric =
  Arg.(
    value & flag
    & info [ "partition-symmetric" ]
        ~doc:
          "Drop messages in both directions across the cut.  The default \
           is the asymmetric shape: island nodes keep sending but never \
           hear back.")

let reorder_rate =
  Arg.(
    value & opt float 0.
    & info [ "reorder-rate" ] ~docv:"P"
        ~doc:
          "Delay each message with probability $(docv) (0..1) so later \
           sends can overtake it.  Receivers discard entries staler than \
           their cache, so reordering never regresses freshness.  0 (the \
           default) disables reordering.")

let reorder_spread =
  Arg.(
    value & opt float 4.
    & info [ "reorder-spread" ] ~docv:"HOPS"
        ~doc:
          "Maximum extra delay of a reordered message, in hop delays \
           (0 < spread <= 32, default 4).  Only meaningful with \
           --reorder-rate > 0.")

let duplicate_rate =
  Arg.(
    value & opt float 0.
    & info [ "duplicate-rate" ] ~docv:"P"
        ~doc:
          "Deliver a second copy of each message with probability $(docv) \
           (0..1), one extra hop delay later.  Protocol handlers tolerate \
           redelivery; the audit counts each copy as its own transport \
           message.  0 (the default) disables duplication.")

(* {1 Cost-attribution options (cup run / cup scale / cup top)} *)

let attribution_arg =
  Arg.(
    value & opt int 0
    & info [ "attribution" ] ~docv:"K"
        ~doc:
          "Attribute per-key/per-node/per-level costs in a top-$(docv) \
           space-saving sketch (see cup top).  0 (the default) keeps \
           attribution detached — the delivery path then pays a single \
           branch and allocates nothing.")

let by_conv =
  let parse = function
    | "all" -> Ok None
    | s -> (
        match Attribution.axis_of_string s with
        | Some a -> Ok (Some a)
        | None ->
            Error
              (`Msg
                (Printf.sprintf "unknown axis %S (key, node, level, all)" s)))
  in
  let print fmt = function
    | None -> Format.pp_print_string fmt "all"
    | Some a -> Format.pp_print_string fmt (Attribution.axis_name a)
  in
  Arg.conv (parse, print)

let by_arg =
  Arg.(
    value & opt by_conv None
    & info [ "by" ] ~docv:"AXIS"
        ~doc:"Attribution axis to report: key, node, level, or all.")

let top_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "top-out" ] ~docv:"FILE"
        ~doc:
          "Write the attribution top-K tables (all axes) as CSV to $(docv).")

let attribution_config capacity =
  { Attribution.default_config with capacity }

let print_attribution a ~by ~k =
  let axes =
    match by with
    | None -> [ Attribution.Key; Attribution.Node; Attribution.Level ]
    | Some axis -> [ axis ]
  in
  List.iter
    (fun by ->
      print_string (Topk.table ~k a ~by);
      print_newline ())
    axes

let write_top_out ~path ~k a =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Topk.csv ~k a));
  (* stderr: the path is invocation-specific, and stdout must stay
     byte-identical across schedulers / job counts / shard counts. *)
  Printf.eprintf "top: %s\n" path

let write_metrics ?(extra = "") ~path registry =
  let module Registry = Cup_metrics.Registry in
  if Filename.check_suffix path ".csv" then
    Cup_report.Csv.write ~path ~header:Registry.csv_header
      (Registry.csv_rows registry)
  else begin
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc (Registry.to_prometheus registry);
        output_string oc extra)
  end;
  Printf.printf "metrics: %d series -> %s\n"
    (Registry.series_count registry)
    path

(* A violation report must carry everything needed to replay the run:
   the rendered repro command pins the seed, scheduler and every fault
   flag, so the report alone reproduces the failure. *)
let violation_exit cfg v =
  Format.eprintf "cup run: audit failed@.  %a@.  repro: %s@."
    Cup_obs.Audit.pp_violation v
    (Cup_sim.Fuzz.repro_command cfg);
  exit 3

(* A run that needs live observability: attach sinks/samplers/probes
   before driving the engine to completion. *)
let run_observed cfg ~trace_out ~metrics_out ~sample_interval ~sample_out
    ~profile ~serve ~audit ~attribution =
  let module Audit = Cup_obs.Audit in
  let module Serve = Cup_obs.Serve in
  let module Resource = Cup_obs.Resource in
  let live = Runner.Live.create cfg in
  if profile then
    Cup_dess.Engine.enable_profiling (Runner.Live.engine live);
  let attribution =
    if attribution <= 0 then None
    else begin
      let a = Attribution.create ~config:(attribution_config attribution) () in
      Runner.Live.set_attribution live (Some a);
      Some a
    end
  in
  let file_sink =
    Option.map
      (fun path ->
        let sink =
          if Filename.check_suffix path ".ctrace" then Sink.binary_file path
          else Sink.jsonl_file path
        in
        (path, sink))
      trace_out
  in
  let registry =
    if metrics_out <> None || serve <> None then begin
      let registry = Cup_metrics.Registry.create () in
      Runner.Live.set_metrics live (Some registry);
      Some registry
    end
    else None
  in
  let auditor =
    if audit then begin
      let bound =
        max 1024 (16 * cfg.Scenario.nodes * Scenario.total_keys cfg)
      in
      Some
        (Audit.create ~max_backlog:bound
           ~backlog:(fun () -> Runner.Live.justification_backlog live)
           ~tolerate_stale:
             (cfg.Scenario.reorder <> None || cfg.Scenario.duplication <> None)
           ~context:(Cup_sim.Fuzz.repro_command cfg)
           ~counters:(Runner.Live.counters live) ())
    end
    else None
  in
  let resource, server =
    match serve with
    | None -> (None, None)
    | Some port ->
        let process = Cup_metrics.Registry.create () in
        let sampler = Resource.attach ~registry:process live in
        let srv =
          Serve.start ~port ~resource:process
            ~registry:(Option.get registry) live
        in
        Printf.printf
          "serving on http://127.0.0.1:%d (GET /metrics, /health, \
           /trace?n=K, /topk)\n\
           %!"
          (Serve.port srv);
        (Some sampler, Some srv)
  in
  (match
     List.filter_map Fun.id
       [
         Option.map snd file_sink;
         Option.map Serve.sink server;
         Option.map Audit.sink auditor;
       ]
   with
  | [] -> ()
  | [ sink ] -> Sink.attach live sink
  | sinks -> Sink.attach live (Sink.fanout sinks));
  let sampler =
    let interval =
      match (sample_interval, sample_out) with
      | Some i, _ -> Some i
      | None, Some _ -> Some 10.
      | None, None -> None
    in
    Option.map (fun interval -> Timeseries.attach ~interval live) interval
  in
  let result =
    try Runner.Live.finish live with Audit.Violation v -> violation_exit cfg v
  in
  (match auditor with
  | None -> ()
  | Some a -> (
      try Audit.finish a with Audit.Violation v -> violation_exit cfg v));
  print_result result;
  (match attribution with
  | None -> ()
  | Some a -> print_attribution a ~by:None ~k:Topk.default_k);
  (match auditor with
  | None -> ()
  | Some a ->
      Printf.printf "audit: OK (%d events, 4 invariants)\n"
        (Audit.events_checked a));
  (match file_sink with
  | None -> ()
  | Some (path, sink) ->
      Sink.close sink;
      Printf.printf "trace: %d events -> %s\n" (Sink.events_seen sink) path);
  (match (metrics_out, registry) with
  | Some path, Some registry ->
      (* Same bytes a /metrics scrape serves after mark_finished: the
         registry exposition plus the capped-cardinality attribution
         families. *)
      let extra =
        match attribution with None -> "" | Some a -> Topk.prometheus a
      in
      write_metrics ~extra ~path registry
  | _ -> ());
  (match sampler with
  | None -> ()
  | Some ts ->
      (match sample_out with
      | None -> ()
      | Some path ->
          Timeseries.write_csv ts ~path;
          Printf.printf "time series: %d samples -> %s\n"
            (List.length (Timeseries.samples ts))
            path);
      print_newline ();
      print_string (Timeseries.cost_plot ts));
  match (server, resource) with
  | Some srv, sampler ->
      Option.iter Resource.sample_now sampler;
      Serve.mark_finished srv;
      Printf.printf
        "run finished; still serving http://127.0.0.1:%d — interrupt to \
         exit\n\
         %!"
        (Serve.port srv);
      while true do
        Thread.delay 3600.
      done
  | None, _ -> ()

let run_cmd =
  let action seed nodes keys rate duration lifetime replicas policy overlay
      scheduler flat_state runs jobs trace_out metrics_out sample_interval
      sample_out profile serve audit attribution crash_rate crash_recover
      loss_rate loss_jitter zipf partition_frac partition_start
      partition_duration partition_symmetric reorder_rate reorder_spread
      duplicate_rate =
    let cfg =
      {
        (scenario_of ~seed ~nodes ~keys ~rate ~duration ~lifetime ~replicas
           ~policy ~overlay)
        with
        scheduler;
        flat_node_state = flat_state;
        key_dist = (if zipf > 0. then `Zipf zipf else `Uniform);
        crashes =
          (if crash_rate > 0. then
             Some
               {
                 Scenario.crash_rate;
                 recover_after = crash_recover;
                 warmup = 0.;
               }
           else None);
        loss =
          (if loss_rate > 0. then
             Some { Scenario.drop = loss_rate; jitter = loss_jitter }
           else None);
        partition =
          (if partition_frac > 0. then
             Some
               {
                 Scenario.fraction = partition_frac;
                 p_start = partition_start;
                 p_duration =
                   (if partition_duration > 0. then partition_duration
                    else duration);
                 symmetric = partition_symmetric;
               }
           else None);
        reorder =
          (if reorder_rate > 0. then
             Some
               {
                 Scenario.r_probability = reorder_rate;
                 r_spread = reorder_spread;
               }
           else None);
        duplication =
          (if duplicate_rate > 0. then
             Some { Scenario.d_probability = duplicate_rate }
           else None);
      }
    in
    (match Scenario.validate cfg with
    | Ok () -> ()
    | Error msg ->
        prerr_endline ("cup run: " ^ msg);
        exit 1);
    let observed_single =
      trace_out <> None || sample_interval <> None || sample_out <> None
      || profile || serve <> None || audit || attribution > 0
    in
    let observed = observed_single || metrics_out <> None in
    (match sample_interval with
    | Some i when i <= 0. ->
        prerr_endline "cup run: --sample-interval must be > 0";
        exit 1
    | _ -> ());
    if crash_rate < 0. then begin
      prerr_endline "cup run: --crash-rate must be >= 0";
      exit 1
    end;
    if crash_rate > 0. && crash_recover <= 0. then begin
      prerr_endline "cup run: --crash-recover must be > 0";
      exit 1
    end;
    if loss_rate < 0. || loss_rate > 1. then begin
      prerr_endline "cup run: --loss-rate must be in [0, 1]";
      exit 1
    end;
    if loss_jitter < 0. || loss_jitter > 1. then begin
      prerr_endline "cup run: --loss-jitter must be in [0, 1]";
      exit 1
    end;
    if runs > 1 && observed_single then
      prerr_endline
        "cup run: note: --trace-out/--sample-*/--profile/--serve/--audit/\
         --attribution apply only to single runs; ignored with --runs > 1";
    if runs <= 1 && observed then
      try
        run_observed cfg ~trace_out ~metrics_out ~sample_interval ~sample_out
          ~profile ~serve ~audit ~attribution
      with Sys_error msg ->
        prerr_endline ("cup run: " ^ msg);
        exit 1
    else if runs <= 1 then print_result (Runner.run cfg)
    else begin
      let r, merged =
        with_jobs jobs (fun pool ->
            match metrics_out with
            | None -> (E.replicate ?pool cfg ~runs, None)
            | Some _ ->
                let r, registry = E.replicate_metrics ?pool cfg ~runs in
                (r, Some registry))
      in
      Printf.printf "over %d seeds (mean +/- stddev):\n" r.runs;
      Printf.printf "  total cost:   %.1f +/- %.1f hops\n" r.total_mean
        r.total_stddev;
      Printf.printf "  miss cost:    %.1f +/- %.1f hops\n" r.miss_mean
        r.miss_stddev;
      Printf.printf "  misses:       %.1f +/- %.1f\n" r.misses_mean
        r.misses_stddev;
      Printf.printf "  miss latency: %.2f +/- %.2f hops\n" r.latency_mean
        r.latency_stddev;
      match (metrics_out, merged) with
      | Some path, Some registry -> (
          try write_metrics ~path registry
          with Sys_error msg ->
            prerr_endline ("cup run: " ^ msg);
            exit 1)
      | _ -> ()
    end
  in
  let term =
    Term.(
      const action $ seed $ nodes $ keys $ rate $ duration $ lifetime
      $ replicas $ policy $ overlay $ scheduler $ flat_state $ runs $ jobs
      $ trace_out
      $ metrics_out $ sample_interval $ sample_out $ profile_flag
      $ serve_port $ audit_flag $ attribution_arg $ crash_rate
      $ crash_recover $ loss_rate
      $ loss_jitter $ zipf $ partition_frac $ partition_start
      $ partition_duration $ partition_symmetric $ reorder_rate
      $ reorder_spread $ duplicate_rate)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one CUP simulation and print its cost summary.")
    term

(* {1 cup trace / cup replay / cup trace convert}

   One implementation behind both names: stream the trace (JSONL or
   binary .ctrace, sniffed from the file header) through the
   single-pass analyzer, optionally pretty-printing (filtered) events
   on the way — the event list is never materialized, so arbitrarily
   large traces analyze in bounded memory.  `replay` is the historical
   name and prints the events by default; `trace` leads with the
   analysis.  Exit status is non-zero when any record fails to parse
   or any span references a missing parent. *)

let trace_action ~print_events_default file key_filter print_events
    no_summary max_traces =
  let module Reader = Cup_obs.Trace_reader in
  let total = ref 0 and bad = ref 0 and shown = ref 0 in
  let printing = print_events_default || print_events || key_filter <> None in
  let wanted (e : Cup_sim.Trace.event) =
    match key_filter with
    | None -> true
    | Some k -> (
        match e with
        | Query_posted { key; _ }
        | Query_forwarded { key; _ }
        | Update_delivered { key; _ }
        | Clear_bit_delivered { key; _ }
        | Local_answer { key; _ }
        | Message_lost { key; _ }
        | Repair_query { key; _ } ->
            Cup_overlay.Key.to_int key = k
        | Node_crashed _ | Node_recovered _ -> false)
  in
  let streaming = Cup_obs.Analyzer.Streaming.create () in
  Reader.iter file ~f:(fun n item ->
      incr total;
      match item with
      | Reader.Event e ->
          Cup_obs.Analyzer.Streaming.feed streaming e;
          if printing && wanted e then begin
            incr shown;
            Format.printf "%a@." Cup_sim.Trace.pp_event e
          end
      | Reader.Scale_record _ ->
          incr bad;
          Printf.eprintf
            "line %d: scale-runner record, not a protocol event\n" n
      | Reader.Raw { error; _ } ->
          incr bad;
          Printf.eprintf "line %d: %s\n" n error
      | Reader.Malformed msg ->
          incr bad;
          Printf.eprintf "record %d: %s\n" n msg);
  if !shown > 0 then
    Printf.printf "-- %d events (%d shown%s)\n" !total !shown
      (if !bad > 0 then Printf.sprintf ", %d unparseable" !bad else "");
  let summary = Cup_obs.Analyzer.Streaming.finish streaming in
  if not no_summary then
    Format.printf "%a" (Cup_obs.Analyzer.pp_summary ~max_traces) summary;
  if !bad > 0 then begin
    Printf.eprintf "cup trace: %d unparseable line%s\n" !bad
      (if !bad = 1 then "" else "s");
    exit 1
  end;
  if summary.Cup_obs.Analyzer.orphans > 0 then begin
    Printf.eprintf "cup trace: %d orphan span%s (broken causal links)\n"
      summary.Cup_obs.Analyzer.orphans
      (if summary.Cup_obs.Analyzer.orphans = 1 then "" else "s");
    exit 1
  end

(* Lossless either way: protocol events re-encode through the codecs,
   scale-runner records through their canonical line rendering, and
   anything unrecognized is carried verbatim (an opaque record in
   binary, the raw line in JSONL) — so converting a cup-written trace
   binary→JSONL byte-matches a directly-written JSONL run, and
   JSONL→binary byte-matches a directly-written .ctrace. *)
let convert_action input output =
  let module Reader = Cup_obs.Trace_reader in
  let module Writer = Cup_obs.Binary_writer in
  match Reader.detect input with
  | Reader.Binary ->
      let oc = open_out output in
      let count = ref 0 and bad = ref 0 in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          Reader.iter input ~f:(fun n item ->
              incr count;
              let line =
                match item with
                | Reader.Event e -> Some (Cup_obs.Event_json.to_string e)
                | Reader.Scale_record s -> Some (Cup_sim.Scale.trace_line s)
                | Reader.Raw { line; _ } -> Some line
                | Reader.Malformed msg ->
                    incr bad;
                    decr count;
                    Printf.eprintf "record %d: %s\n" n msg;
                    None
              in
              match line with
              | Some line ->
                  output_string oc line;
                  output_char oc '\n'
              | None -> ()));
      Printf.printf "converted %d records -> %s (JSONL)\n" !count output;
      if !bad > 0 then begin
        Printf.eprintf "cup trace convert: trace truncated or corrupt\n";
        exit 1
      end
  | Reader.Jsonl ->
      let w = Writer.to_file output in
      Fun.protect
        ~finally:(fun () -> Writer.close w)
        (fun () ->
          Reader.iter input ~f:(fun _ item ->
              match item with
              | Reader.Event e -> Writer.emit_event w e
              | Reader.Scale_record s -> Writer.emit_scale w s
              | Reader.Raw { line; _ } -> Writer.emit_line w line
              | Reader.Malformed _ -> assert false));
      Printf.printf "converted %d records -> %s (binary)\n" (Writer.records w)
        output

let mk_trace_term ~print_events_default ~allow_convert =
  (* One [pos_all] so [cup trace FILE] and [cup trace convert IN OUT]
     share the command: Cmdliner's [Cmd.group ~default] would swallow
     the filename as an unknown sub-command, so the dispatch on the
     first positional is done by hand. *)
  let args =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"TRACE"
          ~doc:
            "Protocol trace written by $(b,cup run --trace-out) — JSONL \
             or binary .ctrace, detected from the file header.  Or \
             $(b,convert) $(i,IN) $(i,OUT) to convert a trace between \
             the two formats.")
  in
  let key_filter =
    Arg.(
      value
      & opt (some int) None
      & info [ "key" ] ~docv:"K"
          ~doc:
            "Only print events touching key $(docv) (implies printing \
             events; the analysis still covers the whole trace).")
  in
  let print_events =
    Arg.(
      value & flag
      & info [ "events" ]
          ~doc:"Pretty-print every event before the analysis.")
  in
  let no_summary =
    Arg.(
      value & flag
      & info [ "no-summary" ]
          ~doc:
            "Skip the propagation-tree analysis output (orphan spans and \
             unparseable lines still fail the exit status).")
  in
  let max_traces =
    Arg.(
      value & opt int 5
      & info [ "max-traces" ] ~docv:"N"
          ~doc:
            "Show the $(docv) largest propagation trees with their \
             critical paths.")
  in
  let dispatch args key_filter print_events no_summary max_traces =
    let require_file path k =
      if Sys.file_exists path && not (Sys.is_directory path) then k ()
      else `Error (false, Printf.sprintf "%s: no such file" path)
    in
    match args with
    | [ "convert"; input; output ] when allow_convert ->
        require_file input (fun () -> `Ok (convert_action input output))
    | "convert" :: rest when allow_convert ->
        `Error
          ( true,
            Printf.sprintf "convert expects IN and OUT, got %d argument%s"
              (List.length rest)
              (if List.length rest = 1 then "" else "s") )
    | [ file ] ->
        require_file file (fun () ->
            `Ok
              (trace_action ~print_events_default file key_filter print_events
                 no_summary max_traces))
    | [] -> `Error (true, "a TRACE file is required")
    | _ :: _ -> `Error (true, "too many arguments")
  in
  Term.(
    ret
      (const dispatch $ args $ key_filter $ print_events $ no_summary
     $ max_traces))

let trace_cmd =
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Analyze a protocol trace (JSONL or binary): reconstruct every \
          propagation tree from its causal span links and report depth, \
          fan-out, critical paths, latency percentiles and a per-key \
          summary.  $(b,cup trace convert) $(i,IN) $(i,OUT) instead \
          converts a trace between JSONL and the compact binary .ctrace \
          format, losslessly in both directions: the output byte-matches \
          what a run writing that format directly would have produced.")
    (mk_trace_term ~print_events_default:false ~allow_convert:true)

let replay_cmd =
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Pretty-print a protocol trace (JSONL or binary), then analyze \
          it (alias of $(b,cup trace --events)).")
    (mk_trace_term ~print_events_default:true ~allow_convert:false)

(* {1 cup scale} *)

(* The batch-synchronous sharded runner: everything printed before the
   final "wallclock:" line is deterministic and byte-identical across
   --shards values (CI compares shards=1 against shards=4). *)
let scale_cmd =
  let module Scale = Cup_sim.Scale in
  let nodes =
    Arg.(
      value & opt int Scale.default.nodes
      & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of ring nodes.")
  in
  let keys =
    Arg.(
      value & opt int Scale.default.keys
      & info [ "k"; "keys" ] ~docv:"N" ~doc:"Number of keys in the index.")
  in
  let rate =
    Arg.(
      value & opt float Scale.default.rate
      & info [ "rate" ] ~docv:"Q/S" ~doc:"Network-wide query rate (Poisson).")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Partition the run across $(docv) domains with a conservative \
             time-window synchronizer.  Results are byte-identical for \
             every value; only wall-clock time changes.")
  in
  let duration =
    Arg.(
      value & opt float Scale.default.query_duration
      & info [ "duration" ] ~docv:"SECONDS"
          ~doc:"Query-posting window length.")
  in
  let lifetime =
    Arg.(
      value & opt float Scale.default.lifetime
      & info [ "lifetime" ] ~docv:"SECONDS"
          ~doc:"Entry lifetime; authorities refresh every lifetime/2.")
  in
  let replicas =
    Arg.(
      value & opt int Scale.default.replicas
      & info [ "replicas" ] ~docv:"N" ~doc:"Replicas per key.")
  in
  let zipf =
    Arg.(
      value & opt float Scale.default.zipf
      & info [ "zipf" ] ~docv:"S"
          ~doc:"Key-popularity Zipf exponent (0 = uniform).")
  in
  let topk =
    Arg.(
      value
      & opt int Topk.default_k
      & info [ "top-k" ] ~docv:"K"
          ~doc:"Entries per attribution table (with --attribution).")
  in
  let action seed nodes keys rate shards duration lifetime replicas zipf
      trace_out attribution by topk top_out =
    let cfg =
      {
        Scale.default with
        seed;
        nodes;
        keys;
        rate;
        shards;
        query_duration = duration;
        lifetime;
        replicas;
        zipf;
        attribution = max 0 attribution;
      }
    in
    let count = ref 0 in
    (* Suffix picks the sink: .ctrace streams compact binary records
       through the background writer (the engine never formats or
       blocks on disk); anything else writes the canonical JSONL. *)
    let out =
      Option.map
        (fun path ->
          if Filename.check_suffix path ".ctrace" then begin
            let w = Cup_obs.Binary_writer.to_file path in
            ( path,
              (fun ev ->
                incr count;
                Cup_obs.Binary_writer.emit_scale w ev),
              fun () -> Cup_obs.Binary_writer.close w )
          end
          else begin
            let oc = open_out path in
            ( path,
              (fun ev ->
                incr count;
                output_string oc (Scale.trace_line ev);
                output_char oc '\n'),
              fun () -> close_out oc )
          end)
        trace_out
    in
    let result =
      try Scale.run ?tracer:(Option.map (fun (_, emit, _) -> emit) out) cfg
      with Invalid_argument msg ->
        prerr_endline ("cup scale: " ^ msg);
        exit 1
    in
    print_string (Scale.summary result);
    (match result.Scale.attribution with
    | None -> ()
    | Some a ->
        print_newline ();
        print_attribution a ~by ~k:topk;
        (match top_out with
        | None -> ()
        | Some path -> (
            try write_top_out ~path ~k:topk a
            with Sys_error msg ->
              prerr_endline ("cup scale: " ^ msg);
              exit 1)));
    (match out with
    | None -> ()
    | Some (path, _, close) ->
        close ();
        Printf.printf "trace: %d events -> %s\n" !count path);
    Printf.printf "wallclock: %.2fs (%.0f events/s, %d shards, peak rss %d MB)\n"
      result.Scale.wallclock result.Scale.events_per_sec shards
      ((Cup_obs.Resource.snapshot ()).Cup_obs.Resource.peak_rss_bytes
      / (1024 * 1024))
  in
  let term =
    Term.(
      const action $ seed $ nodes $ keys $ rate $ shards $ duration $ lifetime
      $ replicas $ zipf $ trace_out $ attribution_arg $ by_arg $ topk
      $ top_out_arg)
  in
  Cmd.v
    (Cmd.info "scale"
       ~doc:
         "Run CUP at very large network sizes: struct-of-arrays node state \
          over an arithmetic ring overlay, optionally sharded across \
          domains.  Output (and --trace-out) is byte-identical for every \
          --shards value.")
    term

(* {1 cup top}

   Run one scenario (or a fan of consecutive seeds) with cost
   attribution attached and report the heavy hitters.  The fan-out
   exercises the sketch's exact merge the same way [Registry.merge]
   backs the experiment fan-out: per-seed sketches are folded in seed
   order, so output is byte-identical at every --jobs count, and —
   because the runner itself is scheduler-independent — across
   --scheduler heap|calendar too. *)

let top_cmd =
  let keys =
    Arg.(
      value & opt int 64
      & info [ "keys" ] ~docv:"N"
          ~doc:"Number of keys in the global index.")
  in
  let topk =
    Arg.(
      value
      & opt int Topk.default_k
      & info [ "k"; "top-k" ] ~docv:"K"
          ~doc:"Entries to display per table.")
  in
  let capacity =
    Arg.(
      value
      & opt int Attribution.default_config.capacity
      & info [ "capacity" ] ~docv:"C"
          ~doc:
            "Sketch capacity per axis.  Below $(docv) distinct ids the \
             counts are exact; beyond it the space-saving bound applies \
             (err column) and memory stays O($(docv)).")
  in
  let seeds =
    Arg.(
      value & opt int 1
      & info [ "seeds" ] ~docv:"N"
          ~doc:
            "Aggregate attribution over $(docv) consecutive seeds, fanned \
             across --jobs domains and merged exactly in seed order.")
  in
  let action seed nodes keys rate duration lifetime replicas policy overlay
      scheduler flat_state zipf seeds jobs by topk capacity top_out =
    if seeds < 1 then begin
      prerr_endline "cup top: --seeds must be >= 1";
      exit 1
    end;
    if capacity < 1 then begin
      prerr_endline "cup top: --capacity must be >= 1";
      exit 1
    end;
    let cfg =
      {
        (scenario_of ~seed ~nodes ~keys ~rate ~duration ~lifetime ~replicas
           ~policy ~overlay)
        with
        scheduler;
        flat_node_state = flat_state;
        key_dist = (if zipf > 0. then `Zipf zipf else `Uniform);
      }
    in
    (match Scenario.validate cfg with
    | Ok () -> ()
    | Error msg ->
        prerr_endline ("cup top: " ^ msg);
        exit 1);
    let eval s =
      let cfg = { cfg with Scenario.seed = s } in
      let live = Runner.Live.create cfg in
      let a = Attribution.create ~config:(attribution_config capacity) () in
      Runner.Live.set_attribution live (Some a);
      ignore (Runner.Live.finish live : Runner.result);
      a
    in
    let t0 = Unix.gettimeofday () in
    let seed_list = List.init seeds (fun i -> seed + i) in
    let attrs =
      with_jobs jobs (fun pool ->
          match pool with
          | Some pool -> Cup_parallel.Pool.map pool eval seed_list
          | None -> List.map eval seed_list)
    in
    let merged =
      match attrs with
      | [] -> assert false
      | first :: rest -> List.fold_left Attribution.merge first rest
    in
    print_attribution merged ~by ~k:topk;
    (match top_out with
    | None -> ()
    | Some path -> (
        try write_top_out ~path ~k:topk merged
        with Sys_error msg ->
          prerr_endline ("cup top: " ^ msg);
          exit 1));
    Printf.printf "wallclock: %.2fs (%d seeds)\n"
      (Unix.gettimeofday () -. t0)
      seeds
  in
  let term =
    Term.(
      const action $ seed $ nodes $ keys $ rate $ duration $ lifetime
      $ replicas $ policy $ overlay $ scheduler $ flat_state $ zipf $ seeds
      $ jobs $ by_arg $ topk $ capacity $ top_out_arg)
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Run a simulation with per-key/per-node/per-level cost attribution \
          and print the heavy hitters: miss cost, update overhead, \
          justified/unjustified deliveries and per-key rates.  Output \
          (except the wallclock line) is byte-identical across --scheduler, \
          --jobs, and the equivalent cup scale --shards run.")
    term

(* {1 cup sweep} *)

let sweep_cmd =
  let action full rate jobs =
    let scale = if full then E.Full else E.Scaled in
    let s =
      with_jobs jobs (fun pool -> E.push_level_sweep ?pool scale ~rate)
    in
    let table =
      Cup_report.Table.create
        ~title:(Printf.sprintf "push-level sweep, %g q/s" rate)
        ~columns:[ "level"; "total cost"; "miss cost" ]
    in
    List.iter
      (fun (p : E.push_level_point) ->
        Cup_report.Table.add_row table
          [
            string_of_int p.level;
            string_of_int p.total_cost;
            string_of_int p.miss_cost;
          ])
      s.points;
    Cup_report.Table.print table;
    Printf.printf "optimal level: %d (total %d)\n" s.optimal_level
      s.optimal_total
  in
  let term = Term.(const action $ full $ rate $ jobs) in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Sweep the push level at one query rate (Figures 3/4 style).")
    term

(* {1 cup exp} *)

let exp_cmd =
  let target =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"EXPERIMENT"
          ~doc:
            "One of: fig3, fig4, table1, table2, table3, fig5, fig6, \
             ablations, techniques, justification, overlays, model.")
  in
  let action full jobs name =
    let scale = if full then E.Full else E.Scaled in
    let known =
      [ "fig3"; "fig4"; "table1"; "table2"; "table3"; "fig5"; "fig6";
        "ablations"; "techniques"; "justification"; "overlays"; "model" ]
    in
    if not (List.mem name known) then begin
      Printf.eprintf "unknown experiment %S; known: %s\n" name
        (String.concat ", " known);
      exit 2
    end;
    (* Reuse the benchmark harness driver by exec-ing its logic is not
       possible from here; run the experiment directly. *)
    with_jobs jobs @@ fun pool ->
    match name with
    | "table2" ->
        List.iter
          (fun (r : E.size_row) ->
            Printf.printf
              "n=%4d  miss-ratio=%.2f  cup-lat=%.1f  std-lat=%.1f  \
               saved/overhead=%.2f\n"
              r.nodes r.miss_cost_ratio r.cup_miss_latency r.std_miss_latency
              r.saved_per_overhead)
          (E.table2 ?pool scale)
    | "table3" ->
        List.iter
          (fun (r : E.replica_row) ->
            Printf.printf
              "replicas=%3d  naive=%d (%d misses)  indep=%d (%d misses)  \
               indep-total=%d\n"
              r.replicas r.naive_miss_cost r.naive_misses r.indep_miss_cost
              r.indep_misses r.indep_total_cost)
          (E.table3 ?pool scale)
    | "table1" ->
        List.iter
          (fun (row : E.policy_row) ->
            Printf.printf "%-20s" row.policy_label;
            List.iter
              (fun (rate, (cell : E.policy_cell)) ->
                Printf.printf "  %g q/s: %d (%.2f)" rate cell.total
                  cell.normalized)
              row.cells;
            print_newline ())
          (E.table1 ?pool scale)
    | "fig3" | "fig4" ->
        let rates =
          let rs = E.rates scale in
          if name = "fig3" then List.filteri (fun i _ -> i < 2) rs
          else List.filteri (fun i _ -> i >= 2) rs
        in
        List.iter
          (fun rate ->
            let s = E.push_level_sweep ?pool scale ~rate in
            Printf.printf "rate %g q/s: optimal level %d (total %d)\n" rate
              s.optimal_level s.optimal_total;
            List.iter
              (fun (p : E.push_level_point) ->
                Printf.printf "  level %2d: total %d, miss %d\n" p.level
                  p.total_cost p.miss_cost)
              s.points)
          rates
    | "fig5" | "fig6" ->
        let rates = E.rates scale in
        let rate =
          if name = "fig5" then List.hd rates
          else List.nth rates (List.length rates - 1)
        in
        let s = E.capacity_sweep ?pool scale ~rate in
        Printf.printf "rate %g q/s, standard caching total %d\n" s.cap_rate
          s.std_total;
        List.iter
          (fun (p : E.capacity_point) ->
            Printf.printf "  capacity %.2f: up-and-down %d, once-down %d\n"
              p.capacity p.up_and_down_total p.once_down_total)
          s.cap_points
    | "model" ->
        List.iter
          (fun (r : E.model_row) ->
            Printf.printf
              "rate=%g fanout=%d measured=%.1f%% model=%.1f%%\n" r.m_rate
              r.m_fanout r.measured_justified_pct r.predicted_justified_pct)
          (E.model_check ?pool scale)
    | "overlays" ->
        List.iter
          (fun (r : E.overlay_row) ->
            Printf.printf
              "%-20s %-16s total=%d miss=%d misses=%d latency=%.1f\n"
              r.overlay_label r.o_policy r.o_total r.o_miss r.o_misses
              r.o_latency)
          (E.overlay_comparison ?pool scale)
    | "techniques" ->
        List.iter
          (fun (r : E.technique_row) ->
            Printf.printf
              "%-42s total=%d overhead=%d miss=%d misses=%d justified=%.1f%%\n"
              r.technique_label r.tech_total r.tech_overhead r.tech_miss
              r.tech_misses r.tech_justified_pct)
          (E.propagation_techniques ?pool scale)
    | "justification" ->
        List.iter
          (fun (r : E.justification_row) ->
            Printf.printf
              "%-16s rate=%g justified=%.1f%% tracked=%d saved/overhead=%.2f\n"
              r.j_policy r.j_rate r.j_justified_pct r.j_tracked
              r.j_saved_per_overhead)
          (E.justification ?pool scale)
    | "ablations" ->
        List.iter
          (fun (r : E.ordering_row) ->
            Printf.printf "ordering %-14s total=%d miss=%d misses=%d\n"
              r.ordering_label r.ord_total r.ord_miss r.ord_misses)
          (E.ablation_queue_ordering ?pool scale);
        List.iter
          (fun (r : E.dry_row) ->
            Printf.printf "log-based window %d: total=%d miss=%d\n"
              r.dry_window r.dry_total r.dry_miss)
          (E.ablation_log_based_window ?pool scale)
    | _ -> assert false
  in
  let term = Term.(const action $ full $ jobs $ target) in
  Cmd.v
    (Cmd.info "exp" ~doc:"Run one of the paper's experiments by name.")
    term

(* {1 cup fuzz}

   Deterministic swarm-testing sweep: every verdict line is a pure
   function of the seed range, whatever --jobs says — only the final
   "wallclock:" line (trivially filterable) varies across hosts. *)

let fuzz_cmd =
  let seeds =
    Arg.(
      value & opt int 200
      & info [ "seeds" ] ~docv:"N"
          ~doc:"Number of consecutive fuzz seeds to run.")
  in
  let seed_start =
    Arg.(
      value & opt int 0
      & info [ "seed-start" ] ~docv:"N" ~doc:"First fuzz seed of the range.")
  in
  let one_seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Replay a single fuzz seed (shorthand for --seed-start N \
             --seeds 1): the scenario, run and verdict are byte-identical \
             to what seed N produced inside any larger sweep.")
  in
  let no_shrink =
    Arg.(
      value & flag
      & info [ "no-shrink" ]
          ~doc:
            "Report failures as generated, without minimizing them first.")
  in
  let action seeds seed_start one_seed no_shrink jobs =
    if seeds < 1 then begin
      prerr_endline "cup fuzz: --seeds must be >= 1";
      exit 1
    end;
    let seed_start, seeds =
      match one_seed with Some s -> (s, 1) | None -> (seed_start, seeds)
    in
    let t0 = Unix.gettimeofday () in
    let summary =
      with_jobs jobs (fun pool ->
          Cup_sim.Fuzz.run_seeds ~exec:Cup_obs.Fuzz_oracle.execute ?pool
            ~shrink_failures:(not no_shrink) ~seed_start ~seeds ())
    in
    let wall = Unix.gettimeofday () -. t0 in
    Printf.printf "fuzz: seeds [%d, %d): %d passed, %d failed, %d events \
                   audited\n"
      seed_start (seed_start + seeds) summary.passed
      (List.length summary.failures)
      summary.total_events;
    List.iter
      (fun (f : Cup_sim.Fuzz.failure) ->
        Printf.printf "FAIL seed %d: [%s %s] t=%.6g: %s\n" f.seed f.fail.code
          f.fail.invariant f.fail.at f.fail.detail;
        Printf.printf "  repro: %s\n" (Cup_sim.Fuzz.repro_command f.scenario);
        match f.shrunk with
        | None -> ()
        | Some (cfg, sf) ->
            Printf.printf "  shrunk (%d nodes, [%s %s]): %s\n"
              cfg.Scenario.nodes sf.code sf.invariant
              (Cup_sim.Fuzz.repro_command cfg))
      summary.failures;
    (* Host timing, outside the byte-compared determinism block: every
       line carries the [wallclock] prefix CI strips, and the slowest
       seeds surface outliers in big harvests. *)
    List.iter
      (fun (seed, ms) -> Printf.printf "wallclock seed %d: %.1f ms\n" seed ms)
      summary.timings;
    Printf.printf "wallclock: %.2fs (%.1f seeds/s)\n" wall
      (float_of_int seeds /. Float.max wall 1e-9);
    if summary.failures <> [] then exit 3
  in
  let term =
    Term.(const action $ seeds $ seed_start $ one_seed $ no_shrink $ jobs)
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Sweep randomized fault-injection scenarios under the invariant \
          auditor; shrink and report any failure as a pasteable repro.")
    term

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "cup" ~version:"1.0.0"
      ~doc:
        "CUP: Controlled Update Propagation in peer-to-peer networks — \
         simulator and experiment runner."
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            run_cmd;
            scale_cmd;
            top_cmd;
            sweep_cmd;
            exp_cmd;
            fuzz_cmd;
            trace_cmd;
            replay_cmd;
          ]))
