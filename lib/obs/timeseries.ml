module Live = Cup_sim.Runner.Live
module Scenario = Cup_sim.Scenario
module Engine = Cup_dess.Engine
module Time = Cup_dess.Time
module Counters = Cup_metrics.Counters

type sample = {
  at : float;
  total_cost : int;
  miss_cost : int;
  overhead_cost : int;
  hits : int;
  misses : int;
  dropped_updates : int;
  pending_events : int;
  queued_updates : int;
  max_queue_depth : int;
}

(* Cumulative counter values at the previous sample, so each sample
   reports per-interval deltas. *)
type cursor = {
  mutable c_total : int;
  mutable c_miss : int;
  mutable c_overhead : int;
  mutable c_hits : int;
  mutable c_misses : int;
  mutable c_dropped : int;
}

type t = {
  live : Live.t;
  interval : float;
  cursor : cursor;
  mutable rev_samples : sample list;
}

let interval t = t.interval
let samples t = List.rev t.rev_samples

let take t at =
  let counters = Live.counters t.live in
  let qs = Live.queue_stats t.live in
  let c = t.cursor in
  let total = Counters.total_cost counters in
  let miss = Counters.miss_cost counters in
  let overhead = Counters.overhead_cost counters in
  let hits = Counters.hits counters in
  let misses = Counters.misses counters in
  let dropped = Counters.dropped_updates counters in
  t.rev_samples <-
    {
      at;
      total_cost = total - c.c_total;
      miss_cost = miss - c.c_miss;
      overhead_cost = overhead - c.c_overhead;
      hits = hits - c.c_hits;
      misses = misses - c.c_misses;
      dropped_updates = dropped - c.c_dropped;
      pending_events = qs.Cup_sim.Runner.pending_events;
      queued_updates = qs.Cup_sim.Runner.queued_updates;
      max_queue_depth = qs.Cup_sim.Runner.max_queue_depth;
    }
    :: t.rev_samples;
  c.c_total <- total;
  c.c_miss <- miss;
  c.c_overhead <- overhead;
  c.c_hits <- hits;
  c.c_misses <- misses;
  c.c_dropped <- dropped

let attach ?(interval = 10.) live =
  if interval <= 0. then invalid_arg "Timeseries.attach: interval must be > 0";
  let t =
    {
      live;
      interval;
      cursor =
        {
          c_total = 0;
          c_miss = 0;
          c_overhead = 0;
          c_hits = 0;
          c_misses = 0;
          c_dropped = 0;
        };
      rev_samples = [];
    }
  in
  let engine = Live.engine live in
  let sim_end = Scenario.sim_end (Live.scenario live) in
  let now = Time.to_seconds (Engine.now engine) in
  (* first tick: the next multiple of the interval after [now] *)
  let first = interval *. Float.of_int (int_of_float (now /. interval) + 1) in
  let rec arm at =
    if at <= sim_end then
      ignore
        (Engine.schedule ~label:"obs.sample" engine ~at:(Time.of_seconds at)
           (fun _ ->
             take t at;
             arm (at +. interval)))
  in
  arm first;
  t

let csv_header =
  [
    "t";
    "total_cost";
    "miss_cost";
    "overhead_cost";
    "hits";
    "misses";
    "dropped_updates";
    "pending_events";
    "queued_updates";
    "max_queue_depth";
  ]

let csv_rows t =
  List.map
    (fun s ->
      [
        Printf.sprintf "%g" s.at;
        string_of_int s.total_cost;
        string_of_int s.miss_cost;
        string_of_int s.overhead_cost;
        string_of_int s.hits;
        string_of_int s.misses;
        string_of_int s.dropped_updates;
        string_of_int s.pending_events;
        string_of_int s.queued_updates;
        string_of_int s.max_queue_depth;
      ])
    (samples t)

let write_csv t ~path = Cup_report.Csv.write ~path ~header:csv_header (csv_rows t)

let cost_plot ?width ?height t =
  let points get =
    List.map (fun s -> (s.at, float_of_int (get s))) (samples t)
  in
  Cup_report.Plot.render ?width ?height
    ~title:
      (Printf.sprintf "cost per %g s interval vs time" t.interval)
    ~x_label:"virtual time (s)" ~y_label:"hops/interval"
    [
      { Cup_report.Plot.label = "total"; points = points (fun s -> s.total_cost) };
      { Cup_report.Plot.label = "miss"; points = points (fun s -> s.miss_cost) };
      {
        Cup_report.Plot.label = "overhead";
        points = points (fun s -> s.overhead_cost);
      };
    ]
