(** Background double-buffered writer for binary ([.ctrace]) traces.

    The producer thread — the simulation — encodes each record into an
    in-memory buffer ({!Binary_codec}, amortized zero allocation per
    event).  When the buffer crosses the chunk threshold it is handed
    whole to a single background thread that does the [write(2)];
    meanwhile the producer keeps encoding into the second, recycled
    buffer.  The engine therefore never blocks on disk unless the disk
    falls a full chunk behind, and each such wait is counted in
    {!stalls} so a regressing sink shows up in the bench record, not
    just wall time.  Record boundaries are never split across chunks.

    Not thread-safe on the producer side: emit from one thread only.
    {!close} hands off the final partial chunk, joins the writer
    thread, then closes (or flushes) the channel; any I/O error from
    the background thread is re-raised there. *)

type t

val create : ?buffer_size:int -> ?owns_channel:bool -> out_channel -> t
(** Start a writer on a caller-owned channel and write the format
    header.  [buffer_size] (default 1 MiB) is the chunk threshold;
    [owns_channel] (default [false]) makes {!close} close the channel
    instead of just flushing it. *)

val to_file : ?buffer_size:int -> string -> t
(** Truncate/create [path] and start a writer that owns it. *)

val emit : t -> Binary_codec.record -> unit
val emit_event : t -> Cup_sim.Trace.event -> unit
val emit_scale : t -> Cup_sim.Scale.trace_event -> unit

val emit_line : t -> string -> unit
(** Carry an opaque line verbatim (for lossless format conversion). *)

val close : t -> unit
(** Drain, join the writer thread, release the channel.  Idempotent;
    emitting after [close] raises [Invalid_argument].  Re-raises any
    I/O error the background thread hit. *)

(** {1 Counters} (exact after {!close}) *)

val records : t -> int
val bytes_written : t -> int

val stalls : t -> int
(** Times the producer had to wait for the background thread — i.e.
    chunks by which the disk fell behind the simulation. *)
