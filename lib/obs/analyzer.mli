(** Propagation-tree reconstruction over recorded traces.

    Rebuilds the causal structure of a trace from the span links every
    protocol event carries (see {!Cup_sim.Trace}): one {!tree} per
    trace id, with depth, fan-out and the critical path from the root
    to the trace's latest event; plus exact query-latency percentiles
    recovered by replaying the post→answer matching the runner's
    counters perform, and a per-key activity table.

    Works on legacy id-less traces too — events whose span ids parse
    as [0] are excluded from tree reconstruction (counted in
    [legacy]) but still feed the latency and per-key accounting. *)

type tree = {
  trace_id : int;
  kind : string;  (** ["query"], ["update"], ["repair"] or ["mixed"] *)
  spans : int;
  depth : int;  (** longest root-to-leaf chain, roots at depth 1 *)
  max_fanout : int;  (** most children under one span *)
  start_at : float;  (** seconds *)
  end_at : float;
  critical_path : Cup_sim.Trace.event list;
      (** root → latest event of the trace, following parent links *)
}

type key_stats = {
  mutable k_events : int;
  mutable k_queries : int;
  mutable k_hits : int;
  mutable k_misses : int;
  mutable k_updates : int;
  mutable k_lost : int;
  mutable k_repairs : int;
  mutable k_miss_latencies : float list;  (** seconds, sorted ascending *)
}

type summary = {
  events : int;
  membership : int;  (** crash/recover events (carry no span) *)
  legacy : int;  (** protocol events without span ids (legacy traces) *)
  by_type : (string * int) list;  (** sorted by type name *)
  traces : tree list;  (** sorted by trace id *)
  orphans : int;
      (** spans whose [parent_id] never appears as a span id anywhere
          in the trace — a broken causal link *)
  orphan_examples : (int * int) list;  (** (span_id, missing parent), ≤ 5 *)
  hits : int;
  misses : int;
  unanswered : int;  (** posted queries with no matching local answer *)
  miss_latencies : float array;  (** seconds, sorted ascending *)
  per_key : (int * key_stats) list;  (** sorted by key *)
}

val analyze : Cup_sim.Trace.event list -> summary
(** Events must be in trace order (the order a sink recorded them).
    Materializes per-event state; for traces too large for that, use
    {!Streaming}. *)

(** Single-pass constant-per-event analysis: feed events in trace
    order, never holding the event list.  Span state lives in a
    compact open-addressing int-array table plus one binary-encoded
    event arena ({!Binary_codec}), latency samples in unboxed float
    vectors — a few dozen bytes per span instead of boxed events, and
    no O(events) list.  [finish] returns a summary structurally equal
    to [analyze] on the same event sequence, including orphan
    detection with whole-file scope (forward parent references are
    resolved retroactively) and exact percentiles. *)
module Streaming : sig
  type t

  val create : unit -> t

  val feed : t -> Cup_sim.Trace.event -> unit
  (** Raises [Invalid_argument] after {!finish}. *)

  val finish : t -> summary
  (** Single-shot: raises [Invalid_argument] on a second call. *)
end

val percentile : float array -> float -> float
(** Exact nearest-rank percentile over a sorted sample array; [0.]
    when empty. *)

val mean_of : float array -> float

val pp_tree : Format.formatter -> tree -> unit

val pp_summary : ?max_traces:int -> Format.formatter -> summary -> unit
(** Full report: event counts, tree statistics, latency percentiles,
    per-key table, and the [max_traces] (default 5) largest traces
    with their critical paths. *)
