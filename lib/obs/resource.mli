(** Process resource telemetry: GC pressure, RSS and event-heap load.

    {b Explicitly non-deterministic.}  Everything this module records
    depends on the host — allocator behaviour, GC scheduling, kernel
    page accounting — so it lives in its own registry namespace,
    [cup_process_*], and must never be mixed into the deterministic
    metric families that the scheduler/jobs byte-identity suites
    compare.  ({!Serve} appends the [cup_process_*] exposition after
    the deterministic families for exactly this reason, and the CI
    scrape diff strips them back out.)

    {!snapshot} is the one-shot probe ([Gc.quick_stat] plus
    [/proc/self/status] where available); {!attach} schedules a
    recurring probe inside the DESS engine alongside
    {!Timeseries}-style samples, publishing gauges into a
    caller-provided registry. *)

type snapshot = {
  rss_bytes : int;  (** VmRSS; [0] when /proc is unavailable *)
  peak_rss_bytes : int;  (** VmHWM; [0] when /proc is unavailable *)
  minor_words : float;  (** cumulative, from [Gc.quick_stat] *)
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  heap_words : int;  (** current major heap size *)
}

val snapshot : unit -> snapshot

type t

val attach :
  ?interval:float ->
  registry:Cup_metrics.Registry.t ->
  Cup_sim.Runner.Live.t ->
  t
(** Sample every [interval] virtual seconds (default [10.]) until the
    scenario's [sim_end], into [registry] as [cup_process_*] gauges:
    RSS and peak RSS in bytes, cumulative GC words/collections/
    compactions, current heap words, and the high-water of the
    engine's pending-event count seen at sample times.  The registry
    should be dedicated to this sampler — see the determinism caveat
    above. *)

val sample_now : t -> unit
(** Take one extra sample immediately (used at [finish] so the
    exposition reflects end-of-run totals). *)

val peak_rss_bytes : t -> int
(** Highest VmHWM observed by this sampler so far. *)

val pending_high_water : t -> int
(** Highest engine pending-event count observed at sample times. *)
