module Live = Cup_sim.Runner.Live
module Scenario = Cup_sim.Scenario
module Engine = Cup_dess.Engine
module Time = Cup_dess.Time
module Registry = Cup_metrics.Registry

type snapshot = {
  rss_bytes : int;
  peak_rss_bytes : int;
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  heap_words : int;
}

(* "VmRSS:      12345 kB" → bytes.  Returns 0 for absent keys so the
   probe degrades gracefully off Linux. *)
let proc_status_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> (0, 0)
  | ic ->
      let rss = ref 0 and hwm = ref 0 in
      (try
         while true do
           let line = input_line ic in
           let grab prefix cell =
             if String.length line > String.length prefix
                && String.sub line 0 (String.length prefix) = prefix
             then
               Scanf.sscanf
                 (String.sub line (String.length prefix)
                    (String.length line - String.length prefix))
                 " %d" (fun kb -> cell := kb * 1024)
           in
           (try grab "VmRSS:" rss with Scanf.Scan_failure _ | Failure _ -> ());
           try grab "VmHWM:" hwm with Scanf.Scan_failure _ | Failure _ -> ()
         done
       with End_of_file -> ());
      close_in ic;
      (!rss, !hwm)

let snapshot () =
  let gc = Gc.quick_stat () in
  let rss_bytes, peak_rss_bytes = proc_status_kb () in
  {
    rss_bytes;
    peak_rss_bytes;
    minor_words = gc.Gc.minor_words;
    promoted_words = gc.Gc.promoted_words;
    major_words = gc.Gc.major_words;
    minor_collections = gc.Gc.minor_collections;
    major_collections = gc.Gc.major_collections;
    compactions = gc.Gc.compactions;
    heap_words = gc.Gc.heap_words;
  }

type t = {
  live : Live.t;
  rss : Registry.gauge;
  peak_rss : Registry.gauge;
  minor_words : Registry.gauge;
  promoted_words : Registry.gauge;
  major_words : Registry.gauge;
  minor_collections : Registry.gauge;
  major_collections : Registry.gauge;
  compactions : Registry.gauge;
  heap_words : Registry.gauge;
  pending_hw : Registry.gauge;
  mutable peak_rss_seen : int;
  mutable pending_seen : int;
}

let sample_now t =
  let s = snapshot () in
  let qs = Live.queue_stats t.live in
  if s.peak_rss_bytes > t.peak_rss_seen then
    t.peak_rss_seen <- s.peak_rss_bytes;
  if qs.Cup_sim.Runner.pending_events > t.pending_seen then
    t.pending_seen <- qs.Cup_sim.Runner.pending_events;
  Registry.set t.rss (float_of_int s.rss_bytes);
  Registry.set t.peak_rss (float_of_int t.peak_rss_seen);
  Registry.set t.minor_words s.minor_words;
  Registry.set t.promoted_words s.promoted_words;
  Registry.set t.major_words s.major_words;
  Registry.set t.minor_collections (float_of_int s.minor_collections);
  Registry.set t.major_collections (float_of_int s.major_collections);
  Registry.set t.compactions (float_of_int s.compactions);
  Registry.set t.heap_words (float_of_int s.heap_words);
  Registry.set t.pending_hw (float_of_int t.pending_seen)

let peak_rss_bytes t = t.peak_rss_seen
let pending_high_water t = t.pending_seen

let attach ?(interval = 10.) ~registry live =
  if interval <= 0. then invalid_arg "Resource.attach: interval must be > 0";
  let gauge name help = Registry.gauge registry ~help name in
  let t =
    {
      live;
      rss = gauge "cup_process_rss_bytes" "Resident set size (VmRSS)";
      peak_rss =
        gauge "cup_process_peak_rss_bytes"
          "Peak resident set size (VmHWM high-water)";
      minor_words =
        gauge "cup_process_gc_minor_words" "Cumulative minor-heap words";
      promoted_words =
        gauge "cup_process_gc_promoted_words"
          "Cumulative words promoted to the major heap";
      major_words =
        gauge "cup_process_gc_major_words" "Cumulative major-heap words";
      minor_collections =
        gauge "cup_process_gc_minor_collections" "Minor collections";
      major_collections =
        gauge "cup_process_gc_major_collections" "Major collection cycles";
      compactions = gauge "cup_process_gc_compactions" "Heap compactions";
      heap_words = gauge "cup_process_gc_heap_words" "Current major-heap words";
      pending_hw =
        gauge "cup_process_pending_events_high_water"
          "Highest engine pending-event count seen at sample times";
      peak_rss_seen = 0;
      pending_seen = 0;
    }
  in
  let engine = Live.engine live in
  let sim_end = Scenario.sim_end (Live.scenario live) in
  let now = Time.to_seconds (Engine.now engine) in
  let first = interval *. Float.of_int (int_of_float (now /. interval) + 1) in
  let rec arm at =
    if at <= sim_end then
      ignore
        (Engine.schedule ~label:"obs.resource" engine ~at:(Time.of_seconds at)
           (fun _ ->
             sample_now t;
             arm (at +. interval)))
  in
  sample_now t;
  arm first;
  t
