module Scenario = Cup_sim.Scenario
module Fuzz = Cup_sim.Fuzz
module Runner = Cup_sim.Runner

(* The audited executor behind [cup fuzz]: run the scenario with the
   invariant auditor and the streaming trace analyzer attached, and
   fold whatever goes wrong into a {!Fuzz.verdict}.  Pure function of
   the scenario — no wallclock, no host state — which is what lets
   {!Fuzz.run_seeds} fan it across domains with a deterministic merge
   and lets {!Fuzz.shrink} re-run candidates without re-checking. *)

let execute (cfg : Scenario.t) : Fuzz.verdict =
  match Scenario.validate cfg with
  | Error msg ->
      (* A generator or shrinker bug, not a protocol bug — but the
         fuzzer must report it, not crash the sweep. *)
      Fail
        { code = "GEN"; invariant = "scenario"; at = 0.; detail = msg }
  | Ok () -> (
      let repro = Fuzz.repro_command cfg in
      let tolerate_stale = cfg.reorder <> None || cfg.duplication <> None in
      let live = Runner.Live.create cfg in
      let auditor =
        Audit.create
          ~max_backlog:
            (max 1024 (16 * cfg.Scenario.nodes * Scenario.total_keys cfg))
          ~backlog:(fun () -> Runner.Live.justification_backlog live)
          ~tolerate_stale ~context:repro
          ~counters:(Runner.Live.counters live)
          ()
      in
      let streaming = Analyzer.Streaming.create () in
      Runner.Live.set_tracer live
        (Some
           (fun event ->
             Analyzer.Streaming.feed streaming event;
             Audit.observe auditor event));
      match
        let (_ : Runner.result) = Runner.Live.finish live in
        Audit.finish auditor;
        Analyzer.Streaming.finish streaming
      with
      | exception Audit.Violation v ->
          Fail
            {
              code = v.code;
              invariant = v.invariant;
              at = v.at;
              detail = v.detail;
            }
      | summary ->
          if summary.Analyzer.orphans > 0 then
            Fail
              {
                code = "V4";
                invariant = "spans";
                at = 0.;
                detail =
                  Printf.sprintf
                    "%d orphan spans in the trace forest (first: %s) | %s"
                    summary.Analyzer.orphans
                    (match summary.Analyzer.orphan_examples with
                    | (trace, span) :: _ ->
                        Printf.sprintf "trace %d span %d" trace span
                    | [] -> "none recorded")
                    repro;
              }
          else Pass { events = Audit.events_checked auditor })
