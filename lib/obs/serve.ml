module Runner = Cup_sim.Runner
module Live = Runner.Live
module Scenario = Cup_sim.Scenario
module Engine = Cup_dess.Engine
module Time = Cup_dess.Time
module Registry = Cup_metrics.Registry
module Counters = Cup_metrics.Counters

type t = {
  live : Live.t;
  registry : Registry.t;
  resource : Registry.t option;
  lock : Mutex.t;
  mutable metrics_snapshot : string;
  mutable health_snapshot : string;
  mutable topk_snapshot : string;
  mutable finished : bool;
  trace_lines : string array; (* pre-serialized JSONL, ring *)
  mutable trace_next : int;
  mutable trace_stored : int;
  mutable server : Http_server.t option; (* None only during start *)
}

(* Runs on the engine thread.  Mid-run the registry holds only the
   live histograms — the counter families are exported at [finish] —
   so a scrape-time copy gets the same snapshot injected, keeping the
   bytes on the exact path the [--metrics-out] file will take. *)
let render_metrics t =
  let deterministic =
    if t.finished then Registry.to_prometheus t.registry
    else begin
      let copy = Registry.merge (Registry.create ()) t.registry in
      Runner.export_counters (Live.counters t.live) copy;
      Registry.to_prometheus copy
    end
  in
  let deterministic =
    match Live.attribution t.live with
    | None -> deterministic
    | Some a -> deterministic ^ Topk.prometheus a
  in
  match t.resource with
  | None -> deterministic
  | Some r -> deterministic ^ Registry.to_prometheus r

let render_health t =
  let engine = Live.engine t.live in
  let c = Live.counters t.live in
  let qs = Live.queue_stats t.live in
  let virtual_time = Time.to_seconds (Engine.now engine) in
  let events = Engine.events_executed engine in
  let elapsed = Live.wallclock_elapsed t.live in
  let events_per_sec =
    if elapsed > 0. then float_of_int events /. elapsed else 0.
  in
  Json.to_string
    (Json.Obj
       [
         ("status", Json.String "ok");
         ("finished", Json.Bool t.finished);
         ("virtual_time", Json.Float virtual_time);
         ( "sim_end",
           Json.Float (Scenario.sim_end (Live.scenario t.live)) );
         ("events_executed", Json.Int events);
         ("events_per_sec", Json.Float events_per_sec);
         ("pending_events", Json.Int qs.Runner.pending_events);
         ("queued_updates", Json.Int qs.Runner.queued_updates);
         ("max_queue_depth", Json.Int qs.Runner.max_queue_depth);
         ( "justification_backlog",
           Json.Int (Live.justification_backlog t.live) );
         ("queries_posted", Json.Int (Live.queries_posted t.live));
         ( "faults",
           Json.Obj
             [
               ("lost_messages", Json.Int (Counters.lost_messages c));
               ("retries", Json.Int (Counters.retries c));
               ("repairs", Json.Int (Counters.repairs c));
               ("unreachable", Json.Int (Counters.unreachable c));
             ] );
         ( "transport",
           Json.Obj
             [
               ("sent", Json.Int (Counters.sent c));
               ("delivered", Json.Int (Counters.delivered c));
               ("lost", Json.Int (Counters.transport_lost c));
               ("in_flight", Json.Int (Counters.in_flight c));
             ] );
       ])

let render_topk t =
  match Live.attribution t.live with
  | None -> Json.to_string (Json.Obj [ ("attribution", Json.Bool false) ])
  | Some a -> Json.to_string (Topk.json a)

let refresh_snapshots t =
  let metrics = render_metrics t in
  let health = render_health t in
  let topk = render_topk t in
  Mutex.lock t.lock;
  t.metrics_snapshot <- metrics;
  t.health_snapshot <- health;
  t.topk_snapshot <- topk;
  Mutex.unlock t.lock

(* Handlers: server thread, snapshot reads only. *)

let handle_metrics t _query =
  Mutex.lock t.lock;
  let body = t.metrics_snapshot in
  Mutex.unlock t.lock;
  Http_server.text body

let handle_health t _query =
  Mutex.lock t.lock;
  let body = t.health_snapshot in
  Mutex.unlock t.lock;
  Http_server.json body

let handle_topk t _query =
  Mutex.lock t.lock;
  let body = t.topk_snapshot in
  Mutex.unlock t.lock;
  Http_server.json body

let handle_trace t query =
  let requested =
    match List.assoc_opt "n" query with
    | Some s -> ( match int_of_string_opt s with Some n when n >= 0 -> n | _ -> 100)
    | None -> 100
  in
  Mutex.lock t.lock;
  let capacity = Array.length t.trace_lines in
  let n = min requested t.trace_stored in
  let start = (t.trace_next - n + capacity) mod capacity in
  let buf = Buffer.create (n * 160) in
  for i = 0 to n - 1 do
    Buffer.add_string buf t.trace_lines.((start + i) mod capacity);
    Buffer.add_char buf '\n'
  done;
  Mutex.unlock t.lock;
  { Http_server.status = 200; content_type = "application/jsonl"; body = Buffer.contents buf }

let record_line t line =
  Mutex.lock t.lock;
  let capacity = Array.length t.trace_lines in
  t.trace_lines.(t.trace_next) <- line;
  t.trace_next <- (t.trace_next + 1) mod capacity;
  if t.trace_stored < capacity then t.trace_stored <- t.trace_stored + 1;
  Mutex.unlock t.lock

let sink t = Sink.of_callback (fun e -> record_line t (Event_json.to_string e))

let start ?(port = 0) ?(refresh = 5.) ?(trace_capacity = 1024) ?resource
    ~registry live =
  if refresh <= 0. then invalid_arg "Serve.start: refresh must be > 0";
  if trace_capacity <= 0 then
    invalid_arg "Serve.start: trace_capacity must be > 0";
  let t =
    {
      live;
      registry;
      resource;
      lock = Mutex.create ();
      metrics_snapshot = "";
      health_snapshot = "";
      topk_snapshot = "";
      finished = false;
      trace_lines = Array.make trace_capacity "";
      trace_next = 0;
      trace_stored = 0;
      server = None;
    }
  in
  let engine = Live.engine live in
  let sim_end = Scenario.sim_end (Live.scenario live) in
  let now = Time.to_seconds (Engine.now engine) in
  let first =
    refresh *. Float.of_int (int_of_float (now /. refresh) + 1)
  in
  let server =
    Http_server.start ~port
      ~routes:
        [
          ("/metrics", handle_metrics t);
          ("/health", handle_health t);
          ("/trace", handle_trace t);
          ("/topk", handle_topk t);
        ]
      ()
  in
  t.server <- Some server;
  refresh_snapshots t;
  let rec arm at =
    if at <= sim_end then
      ignore
        (Engine.schedule ~label:"obs.serve" engine ~at:(Time.of_seconds at)
           (fun _ ->
             refresh_snapshots t;
             arm (at +. refresh)))
  in
  arm first;
  t

let port t =
  match t.server with Some s -> Http_server.port s | None -> 0

let mark_finished t =
  t.finished <- true;
  refresh_snapshots t

let stop t = match t.server with Some s -> Http_server.stop s | None -> ()
