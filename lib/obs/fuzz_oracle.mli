(** The audited executor behind [cup fuzz].

    Runs a scenario under the full oracle stack — the four {!Audit}
    invariants streamed over every event, plus the {!Analyzer}'s
    orphan-span check over the completed trace forest — and reduces
    the outcome to a {!Cup_sim.Fuzz.verdict}.  The library dependency
    points this way (observation depends on simulation), which is why
    {!Cup_sim.Fuzz} takes the executor as a parameter instead of
    calling this directly. *)

val execute : Cup_sim.Scenario.t -> Cup_sim.Fuzz.verdict
(** Pure: same scenario, same verdict, regardless of host, job count
    or wallclock.  Invalid scenarios (a shrinker or generator bug)
    fail with code ["GEN"] rather than raising.  Every failure's
    [detail] carries the scenario's {!Cup_sim.Fuzz.repro_command}. *)
