(* Double-buffered background trace writer.  The producer (simulation)
   thread encodes records into [front]; when [front] crosses the chunk
   threshold it is handed to the single writer thread through a
   one-slot mailbox and the producer continues into the other buffer.
   Buffers are recycled (Buffer.clear keeps the storage), so steady
   state allocates nothing per event.  A swap only happens between
   records, so a record's bytes are never split across two chunks. *)

type t = {
  oc : out_channel;
  owns_channel : bool;
  chunk : int;
  scratch : Buffer.t;
  mutable front : Buffer.t;
  lock : Mutex.t;
  more : Condition.t; (* wakes the writer: chunk pending, or closing *)
  freed : Condition.t; (* wakes the producer: a recycled buffer is back *)
  mutable pending : Buffer.t option;
  mutable spare : Buffer.t option;
  mutable closing : bool;
  mutable closed : bool;
  mutable stalls : int;
  mutable bytes_written : int;
  mutable records : int;
  mutable error : exn option;
  mutable thread : Thread.t option;
}

let writer_loop t =
  let rec loop () =
    Mutex.lock t.lock;
    while t.pending = None && not t.closing do
      Condition.wait t.more t.lock
    done;
    match t.pending with
    | None ->
        (* Closing and fully drained. *)
        Mutex.unlock t.lock
    | Some buf ->
        t.pending <- None;
        Mutex.unlock t.lock;
        (* Disk I/O happens outside the lock; on failure remember the
           exception (re-raised by [close]) but keep recycling buffers
           so the producer never deadlocks. *)
        (try Buffer.output_buffer t.oc buf
         with e -> if t.error = None then t.error <- Some e);
        Mutex.lock t.lock;
        t.bytes_written <- t.bytes_written + Buffer.length buf;
        Buffer.clear buf;
        t.spare <- Some buf;
        Condition.signal t.freed;
        Mutex.unlock t.lock;
        loop ()
  in
  loop ()

let default_chunk = 1 lsl 20

let create ?(buffer_size = default_chunk) ?(owns_channel = false) oc =
  if buffer_size < 1 then
    invalid_arg "Binary_writer.create: buffer_size must be >= 1";
  (* A little slack past the threshold so the record that crosses it
     fits without growing the buffer. *)
  let capacity = buffer_size + 4096 in
  let t =
    {
      oc;
      owns_channel;
      chunk = buffer_size;
      scratch = Buffer.create 256;
      front = Buffer.create capacity;
      lock = Mutex.create ();
      more = Condition.create ();
      freed = Condition.create ();
      pending = None;
      spare = Some (Buffer.create capacity);
      closing = false;
      closed = false;
      stalls = 0;
      bytes_written = 0;
      records = 0;
      error = None;
      thread = None;
    }
  in
  Buffer.add_string t.front Binary_codec.header;
  t.thread <- Some (Thread.create writer_loop t);
  t

let to_file ?buffer_size path =
  create ?buffer_size ~owns_channel:true (open_out_bin path)

let flush_front t =
  if Buffer.length t.front > 0 then begin
    Mutex.lock t.lock;
    if t.spare = None then
      (* Both buffers are on the writer's side: the disk is slower
         than the simulation right now.  Count the stall, then wait
         for a recycled buffer. *)
      t.stalls <- t.stalls + 1;
    while t.spare = None do
      Condition.wait t.freed t.lock
    done;
    let next = match t.spare with Some b -> b | None -> assert false in
    t.spare <- None;
    t.pending <- Some t.front;
    t.front <- next;
    Condition.signal t.more;
    Mutex.unlock t.lock
  end

let emit t r =
  if t.closed then invalid_arg "Binary_writer.emit: writer is closed";
  Binary_codec.encode ~scratch:t.scratch t.front r;
  t.records <- t.records + 1;
  if Buffer.length t.front >= t.chunk then flush_front t

let emit_event t e = emit t (Binary_codec.Event e)
let emit_scale t s = emit t (Binary_codec.Scale s)
let emit_line t l = emit t (Binary_codec.Line l)

let close t =
  if not t.closed then begin
    t.closed <- true;
    flush_front t;
    Mutex.lock t.lock;
    t.closing <- true;
    Condition.signal t.more;
    Mutex.unlock t.lock;
    Option.iter Thread.join t.thread;
    if t.owns_channel then close_out t.oc else flush t.oc;
    match t.error with Some e -> raise e | None -> ()
  end

let stalls t = t.stalls
let records t = t.records

let bytes_written t =
  (* After [close] this is the whole file; while running, the bytes
     already handed to the channel. *)
  t.bytes_written
