(** Pluggable consumers of {!Cup_sim.Trace} events.

    A sink is where a live simulation's protocol trace goes.  Attach
    one with {!attach} (or pass [Sink.emit sink] to
    {!Cup_sim.Runner.Live.set_tracer} directly) and pick the backend:

    - {!ring} keeps the most recent events in a bounded
      {!Cup_sim.Trace.t} ring — constant memory, good for interactive
      inspection (the pre-existing behaviour);
    - {!jsonl} / {!jsonl_file} stream every event as one
      self-describing JSON object per line ({!Event_json}) — constant
      memory no matter the run length, replayable with [cup replay];
    - {!binary} / {!binary_file} stream the compact binary [.ctrace]
      format ({!Binary_codec}) through a background double-buffered
      writer ({!Binary_writer}) — the fast path for large runs;
    - {!fanout} feeds several sinks at once;
    - {!of_callback} wraps any [Trace.event -> unit] function.

    Call {!close} when the run finishes so buffered output is flushed
    and owned files are closed.  [close] is idempotent; emitting into
    a closed sink raises [Invalid_argument]. *)

type t

val emit : t -> Cup_sim.Trace.event -> unit
val close : t -> unit

val events_seen : t -> int
(** Events emitted into this sink so far (counted before any
    filtering or ring eviction downstream). *)

(** {1 Backends} *)

val of_callback :
  ?close:(unit -> unit) -> (Cup_sim.Trace.event -> unit) -> t

val ring : Cup_sim.Trace.t -> t
(** Record into a caller-owned bounded ring; {!close} leaves the ring
    readable. *)

val jsonl : ?close_channel:bool -> out_channel -> t
(** Stream JSONL onto a caller-owned channel.  {!close} flushes, and
    also closes the channel when [close_channel] is [true] (default
    [false]). *)

val jsonl_file : string -> t
(** [jsonl_file path] truncates/creates [path] and streams JSONL into
    it; {!close} closes the file. *)

val binary : Binary_writer.t -> t
(** Stream compact binary records through a caller-created
    {!Binary_writer} — encoding on the simulation thread is
    allocation-free and the disk writes happen on the writer's
    background thread, so the engine never blocks on I/O.  {!close}
    closes the writer (drains, joins, releases the file). *)

val binary_file : string -> t
(** [binary_file path] truncates/creates [path] and streams the binary
    [.ctrace] format into it via a background {!Binary_writer}. *)

val fanout : t list -> t
(** Emit to every sink, in order; {!close} closes them all. *)

val null : unit -> t
(** Discards everything (still counts {!events_seen}). *)

(** {1 Wiring} *)

val attach : Cup_sim.Runner.Live.t -> t -> unit
(** [attach live sink] routes every protocol event of [live] into
    [sink], replacing any previous tracer. *)

val detach : Cup_sim.Runner.Live.t -> unit
