module Trace = Cup_sim.Trace
module Time = Cup_dess.Time
module Node_id = Cup_overlay.Node_id
module Key = Cup_overlay.Key
module Counters = Cup_metrics.Counters
module Update = Cup_proto.Update

type violation = {
  code : string;
  invariant : string;
  at : float;
  detail : string;
}

exception Violation of violation

let pp_violation fmt v =
  Format.fprintf fmt "[%s %s] t=%.6g: %s" v.code v.invariant v.at v.detail

type t = {
  counters : Counters.t;
  backlog : (unit -> int) option;
  max_backlog : int option;
  check_every : int;
  tolerate_stale : bool;
  context : string option;
  (* per node: (key, replica) -> expiry high-water of entries already
     delivered there, mirroring the receiving cache's overwrite
     semantics (Delete/First_time/crash reset it) *)
  fresh : (int, (int * int, float) Hashtbl.t) Hashtbl.t;
  seen_spans : (int, unit) Hashtbl.t;
  mutable events_checked : int;
  mutable last_at : float;
}

let create ?max_backlog ?backlog ?(check_every = 1024)
    ?(tolerate_stale = false) ?context ~counters () =
  if check_every <= 0 then
    invalid_arg "Audit.create: check_every must be > 0";
  Counters.expose_transport counters;
  {
    counters;
    backlog;
    max_backlog;
    check_every;
    tolerate_stale;
    context;
    fresh = Hashtbl.create 256;
    seen_spans = Hashtbl.create 4096;
    events_checked = 0;
    last_at = 0.;
  }

let events_checked t = t.events_checked

let violate ~code ~invariant ~at detail =
  raise (Violation { code; invariant; at; detail })

(* Violations escape as exceptions, far from whoever configured the
   run — [context] (a repro command, a seed) rides along in the detail
   so the report alone is enough to replay the failure. *)
let fail t ~code ~invariant ~at detail =
  let detail =
    match t.context with None -> detail | Some c -> detail ^ " | " ^ c
  in
  violate ~code ~invariant ~at detail

(* V1: the identity must hold at every instant — each transport
   recorder moves a message between exactly two terms — so any drift
   means a delivery path bypassed the accounting. *)
let check_conservation t ~at ~final =
  let c = t.counters in
  let sent = Counters.sent c
  and delivered = Counters.delivered c
  and lost = Counters.transport_lost c
  and in_flight = Counters.in_flight c in
  if in_flight < 0 then
    fail t ~code:"V1" ~invariant:"conservation" ~at
      (Printf.sprintf "in_flight is negative (%d)" in_flight);
  if sent <> delivered + lost + in_flight then
    fail t ~code:"V1" ~invariant:"conservation" ~at
      (Printf.sprintf "%d sent <> %d delivered + %d lost + %d in flight" sent
         delivered lost in_flight);
  if final && in_flight <> 0 then
    fail t ~code:"V1" ~invariant:"conservation" ~at
      (Printf.sprintf
         "%d messages still in flight after the engine drained" in_flight)

let check_backlog t ~at =
  match (t.backlog, t.max_backlog) with
  | Some probe, Some bound ->
      let backlog = probe () in
      if backlog > bound then
        fail t ~code:"V3" ~invariant:"backlog" ~at
          (Printf.sprintf "justification backlog %d exceeds bound %d" backlog
             bound)
  | _ -> ()

let check_span t ~at event =
  match Trace.event_span event with
  | None -> ()
  | Some (_, span_id, parent_id) ->
      if parent_id <> 0 && not (Hashtbl.mem t.seen_spans parent_id) then
        fail t ~code:"V4" ~invariant:"spans" ~at
          (Printf.sprintf "parent span %d not seen before its child %d"
             parent_id span_id);
      if span_id <> 0 then
        if Hashtbl.mem t.seen_spans span_id then
          fail t ~code:"V4" ~invariant:"spans" ~at
            (Printf.sprintf "span id %d emitted twice" span_id)
        else Hashtbl.replace t.seen_spans span_id ()

let node_table t node =
  let id = Node_id.to_int node in
  match Hashtbl.find_opt t.fresh id with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 16 in
      Hashtbl.replace t.fresh id tbl;
      tbl

(* V2: mirror of [Node.apply_update] — [Refresh]/[Append] overwrite
   cache entries unconditionally, so an entry staler than one already
   delivered would regress the receiver's cache.  Entries expired on
   arrival are exempt: the receiver prunes them. *)
let check_freshness t ~at ~to_ ~key ~kind entries =
  let tbl = node_table t to_ in
  let k = Key.to_int key in
  match kind with
  | Update.Delete -> List.iter (fun (r, _) -> Hashtbl.remove tbl (k, r)) entries
  | Update.First_time ->
      (* the receiver replaces its entry list for the key wholesale *)
      let stale =
        Hashtbl.fold
          (fun (k', r) _ acc -> if k' = k then (k', r) :: acc else acc)
          tbl []
      in
      List.iter (Hashtbl.remove tbl) stale;
      List.iter
        (fun (r, expiry) ->
          if expiry >= at then Hashtbl.replace tbl (k, r) expiry)
        entries
  | Update.Refresh | Update.Append ->
      List.iter
        (fun (r, expiry) ->
          if expiry >= at then begin
            (match Hashtbl.find_opt tbl (k, r) with
            | Some prev when expiry < prev -. 1e-9 ->
                (* Under reordering/duplication a stale arrival is a
                   channel artifact the receiver's last-writer-wins
                   guard discards, not a protocol bug; [tolerate_stale]
                   mirrors that guard (the high-water below never moves
                   down either way). *)
                if not t.tolerate_stale then
                fail t ~code:"V2" ~invariant:"freshness" ~at
                  (Printf.sprintf
                     "node %d key %d replica %d: delivered expiry %.6g \
                      regresses the %.6g already delivered"
                     (Node_id.to_int to_) k r expiry prev)
            | _ -> ());
            match Hashtbl.find_opt tbl (k, r) with
            | Some prev when prev >= expiry -> ()
            | _ -> Hashtbl.replace tbl (k, r) expiry
          end)
        entries

let observe t event =
  t.events_checked <- t.events_checked + 1;
  let at = Time.to_seconds (Trace.event_time event) in
  t.last_at <- at;
  check_span t ~at event;
  (match event with
  | Trace.Update_delivered { to_; key; kind; entries; _ } ->
      check_freshness t ~at ~to_ ~key ~kind entries
  | Trace.Node_crashed { node; _ } ->
      Hashtbl.remove t.fresh (Node_id.to_int node)
  | _ -> ());
  check_conservation t ~at ~final:false;
  if t.events_checked mod t.check_every = 0 then check_backlog t ~at

let sink t = Sink.of_callback (observe t)

let finish t =
  let at = t.last_at in
  check_conservation t ~at ~final:true;
  check_backlog t ~at
