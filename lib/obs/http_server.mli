(** A dependency-free HTTP/1.1 server for run-health endpoints.

    Plain [Unix] sockets and one background systhread running a
    select/accept loop — just enough HTTP to serve Prometheus scrapes
    and JSON heartbeats ({!Serve}), with no third-party web stack.
    Requests are handled serially on the server thread; handlers
    should therefore be quick and must be safe to call from a thread
    other than the simulation's (in practice: only read data the main
    thread publishes under a mutex, as {!Serve} does).

    Only [GET] is supported; other methods get [405], unknown paths
    [404], and a handler exception [500].  Connections are
    close-delimited ([Connection: close] with an exact
    [Content-Length]), so any HTTP client — including [curl] — works.

    The server binds the loopback interface only. *)

type response = { status : int; content_type : string; body : string }

val text : string -> response
(** [200] with [text/plain; version=0.0.4] — the Prometheus text
    exposition content type. *)

val json : string -> response
(** [200] with [application/json]. *)

val not_found : response

type handler = (string * string) list -> response
(** A route handler receives the decoded query parameters, in request
    order ([/trace?n=50] gives [[("n", "50")]]). *)

type t

val start : ?port:int -> routes:(string * handler) list -> unit -> t
(** Bind [127.0.0.1:port] ([port] defaults to [0]: pick an ephemeral
    port, see {!port}) and serve [routes] (exact path match) on a
    background thread until {!stop}.  Raises [Unix.Unix_error] when
    the port is taken. *)

val port : t -> int
(** The actually bound port (useful with [~port:0]). *)

val stop : t -> unit
(** Shut the listener down and join the server thread.  Idempotent. *)

val get :
  ?timeout:float -> port:int -> string -> (int * string, string) result
(** Minimal blocking client for tests and smoke checks:
    [get ~port "/health"] connects to [127.0.0.1:port], issues one GET
    and returns [(status, body)].  [timeout] (default [5.] seconds)
    bounds the socket reads. *)
