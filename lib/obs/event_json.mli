(** Self-describing JSON encoding of {!Cup_sim.Trace} events.

    Every event becomes one flat JSON object whose ["type"] field
    names the event, e.g.

    {v
    {"type":"update_delivered","at":350.2,"from":3,"to":7,
     "key":0,"kind":"refresh","level":2,"answering":false}
    v}

    The encoding round-trips: [of_string (to_string e) = Ok e].  One
    event per line is the JSONL format {!Sink.jsonl} streams and
    [cup replay] reads back. *)

val to_json : Cup_sim.Trace.event -> Json.t
val to_string : Cup_sim.Trace.event -> string

val of_json : Json.t -> (Cup_sim.Trace.event, string) result
val of_string : string -> (Cup_sim.Trace.event, string) result

val kind_of_string : string -> Cup_proto.Update.kind option
(** Inverse of {!Cup_proto.Update.kind_to_string}; shared by the
    scale-trace line parser. *)
