(** Compact binary encoding of protocol and scale-runner trace records
    — the [.ctrace] format.

    {b File layout.}  A trace file is a 9-byte header — the 8-byte
    magic ["CUPTRACE"] followed by one format-version byte (currently
    [1]) — then a flat sequence of records.  Each record is an
    unsigned LEB128 varint body length followed by the body; the body
    is one tag byte followed by the fields of that record shape.

    {b Field encodings.}  Integer fields are zigzag-mapped
    ([ (n lsl 1) lxor (n asr 62) ]) and LEB128-encoded, so small
    magnitudes of either sign stay short and every OCaml [int]
    round-trips exactly.  Lengths and counts are plain (non-negative)
    LEB128.  Times and expiries are the raw IEEE-754 double bit
    pattern, little-endian — bit-exact, so JSONL conversion reproduces
    identical decimal renderings.  Booleans are one byte, update kinds
    one byte ([0] first-time, [1] refresh, [2] delete, [3] append).

    {b Record tags.}  [0]–[8] are the nine {!Cup_sim.Trace.event}
    constructors in declaration order; [9] is a raw opaque line
    (carried verbatim, no trailing newline) so format conversion is
    lossless on foreign input; [10]–[12] are the scale-runner records
    ({!Cup_sim.Scale.trace_event}: message / refresh / post).

    Encoding is a pure function of the record — byte-deterministic —
    so the cross-scheduler, cross-shard, cross-job-count byte-identity
    contracts of the JSONL traces carry over unchanged. *)

val magic : string
val version : int

val header : string
(** [magic] + version byte; every [.ctrace] file starts with this. *)

val header_length : int

type record =
  | Event of Cup_sim.Trace.event
  | Scale of Cup_sim.Scale.trace_event
  | Line of string
      (** An opaque line carried verbatim (without its newline). *)

exception Corrupt of string
(** Raised by the decoding functions on malformed input. *)

(** {1 Encoding} *)

val encode_body : Buffer.t -> record -> unit
(** Append the record body (tag byte + fields, {e no} length prefix)
    to [b].  Building block for arenas that frame records
    themselves. *)

val encode : scratch:Buffer.t -> Buffer.t -> record -> unit
(** [encode ~scratch out r] appends the framed record (length prefix +
    body) to [out].  [scratch] is clobbered; reusing one scratch
    buffer across calls makes encoding allocation-free once both
    buffers have grown to steady state. *)

val encode_to_string : record -> string
(** One framed record as a fresh string (convenience for tests). *)

(** {1 Decoding} *)

val decode_body : string -> pos:int -> len:int -> record
(** Decode one record body occupying [s.[pos .. pos+len-1]] — the
    inverse of {!encode_body}.  Raises {!Corrupt} on malformed bytes,
    including trailing garbage inside the body. *)

val read_header : in_channel -> unit
(** Consume and validate the file header.  Raises {!Corrupt} on bad
    magic or an unsupported version. *)

val input_record : in_channel -> record option
(** Read the next framed record; [None] at a clean end-of-file.
    Raises {!Corrupt} on a truncated or malformed record. *)
