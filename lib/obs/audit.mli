(** Online protocol-invariant auditor.

    Streams every {!Cup_sim.Trace} event through incremental checks as
    the run executes — the always-on oracle style of
    deterministic-simulation fuzzers (TigerBeetle's VOPR,
    detsys-testkit): a violation aborts the run at the first breach
    with a numbered report, instead of being reconstructed after the
    fact from a trace file.

    The four invariants:

    - {b V1 conservation} — [sent = delivered + lost + in_flight] over
      the transport counters ({!Cup_metrics.Counters.record_sent}
      family), with [in_flight >= 0] throughout and [in_flight = 0]
      once the engine has drained ({!finish}).
    - {b V2 freshness} — per (node, key, replica), no delivered
      [Refresh]/[Append] entry may carry an expiry older than one
      already delivered there: the receiver's cache would silently
      regress to staler data.  Entries already expired on arrival are
      exempt (the receiver drops them), and [Delete]/[First_time]/
      node crashes reset the high-water exactly like the receiving
      cache.
    - {b V3 backlog} — the justification backlog stays under a bound,
      so the Section 3.1 accounting cannot leak deadlines.
    - {b V4 spans} — every event's parent span was emitted before it,
      and no span id is emitted twice: the causal forest is sound
      online, not just in [cup trace] afterwards.

    Attach with [Sink.attach live (Audit.sink auditor)] — or through
    [cup run --audit], which also calls {!finish} after the run and
    turns the exception into a non-zero exit. *)

type violation = {
  code : string;  (** ["V1"] .. ["V4"] *)
  invariant : string;  (** e.g. ["conservation"] *)
  at : float;  (** virtual seconds of the offending event *)
  detail : string;
}

exception Violation of violation

val pp_violation : Format.formatter -> violation -> unit

type t

val create :
  ?max_backlog:int ->
  ?backlog:(unit -> int) ->
  ?check_every:int ->
  ?tolerate_stale:bool ->
  ?context:string ->
  counters:Cup_metrics.Counters.t ->
  unit ->
  t
(** [counters] is the run's counter block (conservation reads it on
    every event).  [backlog] is a probe for the justification backlog
    — typically [fun () -> Live.justification_backlog live] — polled
    every [check_every] events (default [1024], the probe walks a
    table) and compared against [max_backlog] when both are given.
    Calling [create] also flips {!Cup_metrics.Counters.expose_transport}
    on [counters], so a printed counter block shows the identity being
    enforced.

    [tolerate_stale] (default [false]) relaxes V2 for channels with
    reordering or duplication enabled: a delivered entry staler than
    the high-water is then expected channel behavior — the receiver's
    last-writer-wins guard discards it — so it neither violates nor
    moves the high-water.  Leave it off everywhere else so V2 keeps
    catching genuine regressions.

    [context] is a short free-form tag (a seed, a repro command)
    appended to every violation's [detail], so a report that escaped
    through several layers still identifies the run that produced
    it. *)

val sink : t -> Sink.t
(** The auditor as a trace sink; raises {!Violation} from inside the
    offending event. *)

val observe : t -> Cup_sim.Trace.event -> unit
(** Feed one event directly (what {!sink} does); useful for auditing
    replayed JSONL streams. *)

val finish : t -> unit
(** End-of-run checks: conservation with [in_flight = 0], final
    backlog.  Raises {!Violation}. *)

val events_checked : t -> int
