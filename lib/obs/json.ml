type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* {1 Printing} *)

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e16 then
    Printf.sprintf "%.1f" f
  else
    let short = Printf.sprintf "%.15g" f in
    if float_of_string short = f then short else Printf.sprintf "%.17g" f

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (float_repr f)
      else invalid_arg "Json.to_string: non-finite float"
  | String s -> add_escaped buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          add buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf k;
          Buffer.add_char buf ':';
          add buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  add buf v;
  Buffer.contents buf

(* {1 Parsing — plain recursive descent} *)

exception Bad of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape";
           match s.[!pos] with
           | '"' -> Buffer.add_char buf '"'; advance ()
           | '\\' -> Buffer.add_char buf '\\'; advance ()
           | '/' -> Buffer.add_char buf '/'; advance ()
           | 'b' -> Buffer.add_char buf '\b'; advance ()
           | 'f' -> Buffer.add_char buf '\012'; advance ()
           | 'n' -> Buffer.add_char buf '\n'; advance ()
           | 'r' -> Buffer.add_char buf '\r'; advance ()
           | 't' -> Buffer.add_char buf '\t'; advance ()
           | 'u' ->
               advance ();
               if !pos + 4 > n then fail "truncated \\u escape";
               let code =
                 try int_of_string ("0x" ^ String.sub s !pos 4)
                 with _ -> fail "bad \\u escape"
               in
               pos := !pos + 4;
               (* encode the BMP codepoint as UTF-8 *)
               if code < 0x80 then Buffer.add_char buf (Char.chr code)
               else if code < 0x800 then begin
                 Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
               else begin
                 Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                 Buffer.add_char buf
                   (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
           | c -> fail (Printf.sprintf "bad escape \\%C" c));
          go ()
      | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let number_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && number_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

(* {1 Accessors} *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_str = function String s -> Some s | _ -> None
