(** A minimal JSON tree, printer and parser.

    Just enough JSON for the observability layer's self-describing
    trace lines — no external dependency, deterministic output (the
    same value always prints to the same bytes, so trace files diff
    cleanly across runs).  Floats print with the shortest decimal
    representation that round-trips. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. *)

val of_string : string -> (t, string) result
(** Parse one JSON value; trailing non-whitespace is an error. *)

(** {1 Accessors}

    Tolerant readers used by decoders: [Int] is accepted where a float
    is asked for. *)

val member : string -> t -> t option
(** Field lookup; [None] when the value is not an object or lacks the
    field. *)

val to_float : t -> float option
val to_int : t -> int option
val to_bool : t -> bool option
val to_str : t -> string option
