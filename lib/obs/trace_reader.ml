module Trace = Cup_sim.Trace
module Scale = Cup_sim.Scale

type item =
  | Event of Trace.event
  | Scale_record of Scale.trace_event
  | Raw of { line : string; error : string }
  | Malformed of string

type format = Binary | Jsonl

let detect path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let magic_len = String.length Binary_codec.magic in
      let buf = Bytes.create magic_len in
      match really_input ic buf 0 magic_len with
      | () ->
          if Bytes.to_string buf = Binary_codec.magic then Binary else Jsonl
      | exception End_of_file ->
          if Filename.check_suffix path ".ctrace" then Binary else Jsonl)

(* Scale-runner JSONL lines ({!Cup_sim.Scale.trace_line}) parsed back
   into their records, so scale traces convert losslessly: re-rendering
   through [trace_line] reproduces the exact input bytes. *)
let scale_of_line line =
  match Json.of_string line with
  | Error _ -> None
  | Ok j -> (
      let int name = Option.bind (Json.member name j) Json.to_int in
      let ( let* ) = Option.bind in
      match Option.bind (Json.member "type" j) Json.to_str with
      | Some "refresh" ->
          let* w = int "w" in
          let* key = int "key" in
          let* idx = int "idx" in
          let* out = int "out" in
          Some (Scale.T_refresh { w; key; idx; out })
      | Some "post" ->
          let* w = int "w" in
          let* node = int "node" in
          let* key = int "key" in
          let* idx = int "idx" in
          let* out = int "out" in
          Some (Scale.T_post { w; node; key; idx; out })
      | Some (("query" | "update" | "clear") as typ) ->
          let* w = int "w" in
          let* dst = int "dst" in
          let* src = int "src" in
          let* seq = int "seq" in
          let* key = int "key" in
          let* out = int "out" in
          let* body =
            match typ with
            | "query" -> Some (Scale.B_query key)
            | "clear" -> Some (Scale.B_clear key)
            | _ ->
                let* kind_s =
                  Option.bind (Json.member "kind" j) Json.to_str
                in
                let* kind = Event_json.kind_of_string kind_s in
                let* level = int "level" in
                let* answering =
                  Option.bind (Json.member "answering" j) Json.to_bool
                in
                Some (Scale.B_update { key; kind; level; answering })
          in
          Some (Scale.T_msg { w; dst; src; seq; body; out })
      | _ -> None)

let item_of_line line =
  match Event_json.of_string line with
  | Ok e -> Event e
  | Error error -> (
      match scale_of_line line with
      | Some s -> Scale_record s
      | None -> Raw { line; error })

let iter_jsonl path ~f =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = ref 0 in
      try
        while true do
          let line = input_line ic in
          if String.trim line <> "" then begin
            incr n;
            f !n (item_of_line line)
          end
        done
      with End_of_file -> ())

let iter_binary path ~f =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      match Binary_codec.read_header ic with
      | exception Binary_codec.Corrupt msg -> f 1 (Malformed msg)
      | () ->
          let n = ref 0 in
          let rec loop () =
            match Binary_codec.input_record ic with
            | exception Binary_codec.Corrupt msg ->
                (* Framing is lost: report and stop. *)
                incr n;
                f !n (Malformed msg)
            | None -> ()
            | Some r ->
                incr n;
                (match r with
                | Binary_codec.Event e -> f !n (Event e)
                | Binary_codec.Scale s -> f !n (Scale_record s)
                | Binary_codec.Line l -> f !n (item_of_line l));
                loop ()
          in
          loop ())

let iter path ~f =
  match detect path with
  | Binary -> iter_binary path ~f
  | Jsonl -> iter_jsonl path ~f
