(** Live run-health endpoints over {!Http_server}.

    Wires one running simulation to four GET routes:

    - [/metrics] — Prometheus text exposition of the run's registry.
      For the deterministic metric families this is {e byte-identical}
      to the [--metrics-out] file written at finish: after
      {!mark_finished} the snapshot is the final registry itself, and
      mid-run scrapes serve a registry copy with the same counter
      snapshot ({!Cup_sim.Runner.export_counters}) injected.  The
      non-deterministic [cup_process_*] families (when a {!Resource}
      registry is passed) are appended {e after} the deterministic
      ones so consumers can strip them with a prefix filter.
    - [/health] — JSON heartbeat: virtual time, events processed,
      events/sec, pending events, queue depths, justification
      backlog, fault and transport counters.
    - [/trace?n=K] — the most recent [K] (default [100], capped at
      the ring capacity) trace events as JSONL, if {!sink} is
      attached.
    - [/topk] — the {!Topk.json} cost-attribution document (top keys,
      nodes and tree levels with per-metric counts and per-key rates)
      when an {!Cup_metrics.Attribution} layer is attached to the run;
      [{"attribution":false}] otherwise.  When attribution is on, the
      [/metrics] exposition also gains the capped-cardinality
      {!Topk.prometheus} families.

    {b Threading.}  Handlers run on the server thread while the
    engine runs on the main thread, so they never touch live
    simulation state: the engine thread publishes pre-rendered
    snapshot strings under a mutex on a virtual-time schedule
    ([refresh], like {!Timeseries} sampling), and handlers only read
    those.  Scrapes therefore observe the run at the last refresh
    tick, advancing as virtual time does. *)

type t

val start :
  ?port:int ->
  ?refresh:float ->
  ?trace_capacity:int ->
  ?resource:Cup_metrics.Registry.t ->
  registry:Cup_metrics.Registry.t ->
  Cup_sim.Runner.Live.t ->
  t
(** Bind [127.0.0.1:port] ([0] = ephemeral, see {!port}) and schedule
    snapshot refreshes every [refresh] virtual seconds (default
    [5.]) until the scenario's [sim_end].  [registry] must be the
    registry attached to the run with [set_metrics]; [resource] is
    the separate [cup_process_*] registry, appended after the
    deterministic families. *)

val port : t -> int

val sink : t -> Sink.t
(** Feed protocol events to the [/trace] ring (serialized once, at
    emission, on the engine thread). *)

val mark_finished : t -> unit
(** Call after [Live.finish]: republish the snapshots from the final
    registry (which now contains the exported counters) and flip
    ["finished": true] in [/health].  The server keeps serving until
    {!stop}. *)

val stop : t -> unit
(** Shut the HTTP server down.  Idempotent. *)
