module Trace = Cup_sim.Trace
module Time = Cup_dess.Time
module Node_id = Cup_overlay.Node_id
module Key = Cup_overlay.Key
module Update = Cup_proto.Update

let kind_of_string = function
  | "first-time" -> Some Update.First_time
  | "delete" -> Some Update.Delete
  | "refresh" -> Some Update.Refresh
  | "append" -> Some Update.Append
  | _ -> None

let to_json (e : Trace.event) : Json.t =
  let at t = ("at", Json.Float (Time.to_seconds t)) in
  let node name id = (name, Json.Int (Node_id.to_int id)) in
  let key k = ("key", Json.Int (Key.to_int k)) in
  let span ~trace_id ~span_id ~parent_id rest =
    ("trace", Json.Int trace_id)
    :: ("span", Json.Int span_id)
    :: ("parent", Json.Int parent_id)
    :: rest
  in
  match e with
  | Trace.Query_posted { at = t; node = n; key = k; trace_id; span_id; parent_id }
    ->
      Json.Obj
        (("type", Json.String "query_posted")
        :: at t :: node "node" n :: key k
        :: span ~trace_id ~span_id ~parent_id [])
  | Trace.Query_forwarded { at = t; from_; to_; key = k; trace_id; span_id; parent_id }
    ->
      Json.Obj
        (("type", Json.String "query_forwarded")
        :: at t :: node "from" from_ :: node "to" to_ :: key k
        :: span ~trace_id ~span_id ~parent_id [])
  | Trace.Update_delivered
      { at = t; from_; to_; key = k; kind; level; answering; entries;
        trace_id; span_id; parent_id } ->
      Json.Obj
        (("type", Json.String "update_delivered")
        :: at t :: node "from" from_ :: node "to" to_ :: key k
        :: ("kind", Json.String (Update.kind_to_string kind))
        :: ("level", Json.Int level)
        :: ("answering", Json.Bool answering)
        :: ( "entries",
             Json.List
               (List.map
                  (fun (replica, expiry) ->
                    Json.Obj
                      [
                        ("replica", Json.Int replica);
                        ("expiry", Json.Float expiry);
                      ])
                  entries) )
        :: span ~trace_id ~span_id ~parent_id [])
  | Trace.Clear_bit_delivered
      { at = t; from_; to_; key = k; trace_id; span_id; parent_id } ->
      Json.Obj
        (("type", Json.String "clear_bit_delivered")
        :: at t :: node "from" from_ :: node "to" to_ :: key k
        :: span ~trace_id ~span_id ~parent_id [])
  | Trace.Local_answer
      { at = t; node = n; key = k; hit; waiters; trace_id; span_id; parent_id }
    ->
      Json.Obj
        (("type", Json.String "local_answer")
        :: at t :: node "node" n :: key k
        :: ("hit", Json.Bool hit)
        :: ("waiters", Json.Int waiters)
        :: span ~trace_id ~span_id ~parent_id [])
  | Trace.Node_crashed { at = t; node = n } ->
      Json.Obj [ ("type", Json.String "node_crashed"); at t; node "node" n ]
  | Trace.Node_recovered { at = t; node = n } ->
      Json.Obj [ ("type", Json.String "node_recovered"); at t; node "node" n ]
  | Trace.Message_lost
      { at = t; from_; to_; key = k; trace_id; span_id; parent_id } ->
      Json.Obj
        (("type", Json.String "message_lost")
        :: at t :: node "from" from_ :: node "to" to_ :: key k
        :: span ~trace_id ~span_id ~parent_id [])
  | Trace.Repair_query
      { at = t; node = n; key = k; attempt; trace_id; span_id; parent_id } ->
      Json.Obj
        (("type", Json.String "repair_query")
        :: at t :: node "node" n :: key k
        :: ("attempt", Json.Int attempt)
        :: span ~trace_id ~span_id ~parent_id [])

let to_string e = Json.to_string (to_json e)

let of_json (j : Json.t) : (Trace.event, string) result =
  let ( let* ) = Result.bind in
  let field name decode =
    match Option.bind (Json.member name j) decode with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)
  in
  let time name =
    let* f = field name Json.to_float in
    Ok (Time.of_seconds f)
  in
  let node name =
    let* i = field name Json.to_int in
    if i < 0 then Error (Printf.sprintf "negative node id in %S" name)
    else Ok (Node_id.of_int i)
  in
  let key () =
    let* i = field "key" Json.to_int in
    if i < 0 then Error "negative key" else Ok (Key.of_int i)
  in
  (* Span ids were absent from traces written before the causal-span
     codec; default them to 0 so legacy JSONL keeps parsing. *)
  let span_field name =
    match Json.member name j with
    | None -> Ok 0
    | Some v -> (
        match Json.to_int v with
        | Some i -> Ok i
        | None -> Error (Printf.sprintf "ill-typed field %S" name))
  in
  let span () =
    let* trace_id = span_field "trace" in
    let* span_id = span_field "span" in
    let* parent_id = span_field "parent" in
    Ok (trace_id, span_id, parent_id)
  in
  let* typ = field "type" Json.to_str in
  match typ with
  | "query_posted" ->
      let* at = time "at" in
      let* n = node "node" in
      let* k = key () in
      let* trace_id, span_id, parent_id = span () in
      Ok (Trace.Query_posted { at; node = n; key = k; trace_id; span_id; parent_id })
  | "query_forwarded" ->
      let* at = time "at" in
      let* from_ = node "from" in
      let* to_ = node "to" in
      let* k = key () in
      let* trace_id, span_id, parent_id = span () in
      Ok (Trace.Query_forwarded { at; from_; to_; key = k; trace_id; span_id; parent_id })
  | "update_delivered" ->
      let* at = time "at" in
      let* from_ = node "from" in
      let* to_ = node "to" in
      let* k = key () in
      let* kind_s = field "kind" Json.to_str in
      let* kind =
        match kind_of_string kind_s with
        | Some kind -> Ok kind
        | None -> Error (Printf.sprintf "unknown update kind %S" kind_s)
      in
      let* level = field "level" Json.to_int in
      let* answering = field "answering" Json.to_bool in
      (* Payload entries were absent from traces written before the
         audit codec; default to [] so legacy JSONL keeps parsing. *)
      let* entries =
        match Json.member "entries" j with
        | None -> Ok []
        | Some (Json.List items) ->
            List.fold_left
              (fun acc item ->
                let* acc = acc in
                match
                  ( Option.bind (Json.member "replica" item) Json.to_int,
                    Option.bind (Json.member "expiry" item) Json.to_float )
                with
                | Some r, Some e -> Ok ((r, e) :: acc)
                | _ -> Error "ill-typed update entry")
              (Ok []) items
            |> Result.map List.rev
        | Some _ -> Error "ill-typed field \"entries\""
      in
      let* trace_id, span_id, parent_id = span () in
      Ok
        (Trace.Update_delivered
           { at; from_; to_; key = k; kind; level; answering; entries;
             trace_id; span_id; parent_id })
  | "clear_bit_delivered" ->
      let* at = time "at" in
      let* from_ = node "from" in
      let* to_ = node "to" in
      let* k = key () in
      let* trace_id, span_id, parent_id = span () in
      Ok
        (Trace.Clear_bit_delivered
           { at; from_; to_; key = k; trace_id; span_id; parent_id })
  | "local_answer" ->
      let* at = time "at" in
      let* n = node "node" in
      let* k = key () in
      let* hit = field "hit" Json.to_bool in
      let* waiters = field "waiters" Json.to_int in
      let* trace_id, span_id, parent_id = span () in
      Ok
        (Trace.Local_answer
           { at; node = n; key = k; hit; waiters; trace_id; span_id; parent_id })
  | "node_crashed" ->
      let* at = time "at" in
      let* n = node "node" in
      Ok (Trace.Node_crashed { at; node = n })
  | "node_recovered" ->
      let* at = time "at" in
      let* n = node "node" in
      Ok (Trace.Node_recovered { at; node = n })
  | "message_lost" ->
      let* at = time "at" in
      let* from_ = node "from" in
      let* to_ = node "to" in
      let* k = key () in
      let* trace_id, span_id, parent_id = span () in
      Ok (Trace.Message_lost { at; from_; to_; key = k; trace_id; span_id; parent_id })
  | "repair_query" ->
      let* at = time "at" in
      let* n = node "node" in
      let* k = key () in
      let* attempt = field "attempt" Json.to_int in
      let* trace_id, span_id, parent_id = span () in
      Ok
        (Trace.Repair_query
           { at; node = n; key = k; attempt; trace_id; span_id; parent_id })
  | other -> Error (Printf.sprintf "unknown event type %S" other)

let of_string s =
  match Json.of_string s with
  | Error e -> Error ("invalid JSON: " ^ e)
  | Ok j -> of_json j
