module Attribution = Cup_metrics.Attribution
module Metric = Cup_metrics.Attribution.Metric
module Sketch = Cup_metrics.Attribution.Sketch
module Rate = Cup_metrics.Attribution.Rate
module Table = Cup_report.Table

let default_k = 20

let metric_of (e : Sketch.entry) m = e.counts.(m)

(* The [_other] sink: exact global totals minus what the displayed
   entries account for.  Entry count vectors are exact-since-entry
   (evictions clear them), so the remainder is always >= 0. *)
let other_counts a ~by entries =
  Array.init Metric.count (fun m ->
      let shown =
        List.fold_left (fun acc e -> acc + metric_of e m) 0 entries
      in
      Attribution.total a ~by ~metric:m - shown)

let sum_counts c = Array.fold_left ( + ) 0 c

(* {1 ASCII tables} *)

let rate_cells a key =
  match Attribution.rates a ~key with
  | None -> [ "-"; "-"; "-" ]
  | Some (q, m, o) ->
      List.map
        (fun r -> Table.cell_float ~decimals:3 (Rate.ewma r))
        [ q; m; o ]

let table ?(k = default_k) a ~by =
  let entries = Attribution.top a ~by ~k in
  let axis = Attribution.axis_name by in
  let with_rates = by = Attribution.Key in
  let columns =
    [ axis; "weight"; "err" ]
    @ List.init Metric.count Metric.name
    @ [ "unjust" ]
    @ (if with_rates then [ "q_rate"; "miss_rate"; "ovh_rate" ] else [])
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf "cup top — by %s (top %d of %d tracked%s)" axis
           (List.length entries)
           (Sketch.entries (Attribution.sketch a by))
           (if Sketch.evictions (Attribution.sketch a by) = 0 then ", exact"
            else
              Printf.sprintf ", %d evictions"
                (Sketch.evictions (Attribution.sketch a by))))
      ~columns
  in
  let row id weight err counts rates =
    Table.add_row t
      ([ id; weight; err ]
      @ Array.to_list (Array.map Table.cell_int counts)
      @ [
          Table.cell_int
            (counts.(Metric.deliveries) - counts.(Metric.justified));
        ]
      @ rates)
  in
  List.iter
    (fun (e : Sketch.entry) ->
      row (Table.cell_int e.id)
        (Table.cell_int e.estimate)
        (Table.cell_int e.err) e.counts
        (if with_rates then rate_cells a e.id else []))
    entries;
  let rest = other_counts a ~by entries in
  if sum_counts rest > 0 then begin
    Table.add_separator t;
    row "_other"
      (Table.cell_int (sum_counts rest))
      "-" rest
      (if with_rates then [ "-"; "-"; "-" ] else [])
  end;
  Table.render t

(* {1 CSV} *)

let csv_header =
  "axis,id,weight,err," ^ String.concat "," (List.init Metric.count Metric.name)

let csv ?(k = default_k) a =
  let b = Buffer.create 1024 in
  Buffer.add_string b csv_header;
  Buffer.add_char b '\n';
  List.iter
    (fun by ->
      let axis = Attribution.axis_name by in
      let entries = Attribution.top a ~by ~k in
      List.iter
        (fun (e : Sketch.entry) ->
          Printf.bprintf b "%s,%d,%d,%d,%s\n" axis e.id e.estimate e.err
            (String.concat ","
               (Array.to_list (Array.map string_of_int e.counts))))
        entries;
      let rest = other_counts a ~by entries in
      if sum_counts rest > 0 then
        Printf.bprintf b "%s,_other,%d,0,%s\n" axis (sum_counts rest)
          (String.concat ","
             (Array.to_list (Array.map string_of_int rest))))
    [ Attribution.Key; Attribution.Node; Attribution.Level ];
  Buffer.contents b

(* {1 Prometheus exposition}

   Cardinality is capped at the sketch's top-K: every key/node beyond
   it folds into one [_other] series per metric, so a 10^6-key catalog
   exposes O(K) series, not O(catalog). *)

let prometheus ?(k = default_k) a =
  let b = Buffer.create 2048 in
  let family ~name ~help ~label ~by =
    let entries = Attribution.top a ~by ~k in
    Printf.bprintf b "# HELP %s %s\n# TYPE %s counter\n" name help name;
    let series id counts =
      for m = 0 to Metric.count - 1 do
        Printf.bprintf b "%s{%s=%s,metric=\"%s\"} %d\n" name label id
          (Metric.name m) counts.(m)
      done
    in
    List.iter
      (fun (e : Sketch.entry) ->
        series (Printf.sprintf "\"%d\"" e.id) e.counts)
      entries;
    series "\"_other\"" (other_counts a ~by entries)
  in
  family ~name:"cup_key_attr_total"
    ~help:
      "Per-key attributed cost counts (top-K by weight; _other \
       aggregates the remainder to cap label cardinality)"
    ~label:"key" ~by:Attribution.Key;
  family ~name:"cup_node_attr_total"
    ~help:
      "Per-node attributed cost counts (top-K by weight; _other \
       aggregates the remainder)"
    ~label:"node" ~by:Attribution.Node;
  family ~name:"cup_level_hops_total"
    ~help:"Update-delivery hops per propagation-tree level"
    ~label:"level" ~by:Attribution.Level;
  Buffer.contents b

(* {1 JSON (the /topk route)} *)

let entry_json a ~with_rates (e : Sketch.entry) =
  let counts =
    List.init Metric.count (fun m -> (Metric.name m, Json.Int e.counts.(m)))
  in
  let rates =
    if not with_rates then []
    else
      match Attribution.rates a ~key:e.id with
      | None -> []
      | Some (q, m, o) ->
          [
            ( "rates",
              Json.Obj
                [
                  ("query", Json.Float (Rate.ewma q));
                  ("miss", Json.Float (Rate.ewma m));
                  ("overhead", Json.Float (Rate.ewma o));
                ] );
          ]
  in
  Json.Obj
    ([
       ("id", Json.Int e.id);
       ("weight", Json.Int e.estimate);
       ("err", Json.Int e.err);
     ]
    @ counts @ rates)

let json ?(k = default_k) a =
  let axis by =
    let entries = Attribution.top a ~by ~k in
    let s = Attribution.sketch a by in
    let rest = other_counts a ~by entries in
    ( Attribution.axis_name by,
      Json.Obj
        [
          ("entries", Json.Int (Sketch.entries s));
          ("evictions", Json.Int (Sketch.evictions s));
          ( "top",
            Json.List
              (List.map
                 (entry_json a ~with_rates:(by = Attribution.Key))
                 entries) );
          ( "other",
            Json.Obj
              (List.init Metric.count (fun m ->
                   (Metric.name m, Json.Int rest.(m)))) );
          ( "totals",
            Json.Obj
              (List.init Metric.count (fun m ->
                   ( Metric.name m,
                     Json.Int (Attribution.total a ~by ~metric:m) ))) );
        ] )
  in
  Json.Obj
    [
      ("k", Json.Int k);
      axis Attribution.Key;
      axis Attribution.Node;
      axis Attribution.Level;
    ]
