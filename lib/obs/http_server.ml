type response = { status : int; content_type : string; body : string }

let text body =
  { status = 200; content_type = "text/plain; version=0.0.4"; body }

let json body = { status = 200; content_type = "application/json"; body }

let not_found =
  { status = 404; content_type = "text/plain"; body = "not found\n" }

type handler = (string * string) list -> response

type t = {
  listen_fd : Unix.file_descr;
  bound_port : int;
  stop_r : Unix.file_descr; (* self-pipe: written by [stop] *)
  stop_w : Unix.file_descr;
  thread : Thread.t;
  mutable stopped : bool;
  lock : Mutex.t;
}

let reason = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 500 -> "Internal Server Error"
  | _ -> "Unknown"

let parse_query s =
  if s = "" then []
  else
    String.split_on_char '&' s
    |> List.filter_map (fun kv ->
           if kv = "" then None
           else
             match String.index_opt kv '=' with
             | None -> Some (kv, "")
             | Some i ->
                 Some
                   ( String.sub kv 0 i,
                     String.sub kv (i + 1) (String.length kv - i - 1) ))

(* First request line, e.g. "GET /trace?n=50 HTTP/1.1". *)
let parse_request_line line =
  match String.split_on_char ' ' line with
  | [ meth; target; _version ] ->
      let path, query =
        match String.index_opt target '?' with
        | None -> (target, "")
        | Some i ->
            ( String.sub target 0 i,
              String.sub target (i + 1) (String.length target - i - 1) )
      in
      Some (meth, path, parse_query query)
  | _ -> None

let write_response fd { status; content_type; body } =
  let head =
    Printf.sprintf
      "HTTP/1.1 %d %s\r\n\
       Content-Type: %s\r\n\
       Content-Length: %d\r\n\
       Connection: close\r\n\
       \r\n"
      status (reason status) content_type (String.length body)
  in
  let payload = head ^ body in
  let n = String.length payload in
  let rec send off =
    if off < n then
      let written = Unix.write_substring fd payload off (n - off) in
      if written > 0 then send (off + written)
  in
  send 0

let contains_substring s marker =
  let ml = String.length marker in
  let last = String.length s - ml in
  let rec find i = i <= last && (String.sub s i ml = marker || find (i + 1)) in
  find 0

(* Read until the blank line ending the request head (we never accept
   bodies), bounded so a misbehaving client cannot grow the buffer.
   A bare \n\n is tolerated alongside \r\n\r\n for hand-typed
   clients. *)
let read_head fd =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 512 in
  let rec go () =
    if Buffer.length buf > 8192 then None
    else
      let n = Unix.read fd chunk 0 (Bytes.length chunk) in
      if n = 0 then None
      else begin
        Buffer.add_subbytes buf chunk 0 n;
        let s = Buffer.contents buf in
        if contains_substring s "\r\n\r\n" || contains_substring s "\n\n" then
          Some s
        else go ()
      end
  in
  try go () with Unix.Unix_error _ -> None

let handle_connection routes fd =
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5. with _ -> ());
  let resp =
    match read_head fd with
    | None ->
        { status = 400; content_type = "text/plain"; body = "bad request\n" }
    | Some head -> (
        let first_line =
          match String.index_opt head '\r' with
          | Some i -> String.sub head 0 i
          | None -> (
              match String.index_opt head '\n' with
              | Some i -> String.sub head 0 i
              | None -> head)
        in
        match parse_request_line first_line with
        | None ->
            {
              status = 400;
              content_type = "text/plain";
              body = "bad request\n";
            }
        | Some (meth, _, _) when meth <> "GET" ->
            {
              status = 405;
              content_type = "text/plain";
              body = "only GET is supported\n";
            }
        | Some (_, path, query) -> (
            match List.assoc_opt path routes with
            | None -> not_found
            | Some handler -> (
                try handler query
                with exn ->
                  {
                    status = 500;
                    content_type = "text/plain";
                    body = Printexc.to_string exn ^ "\n";
                  })))
  in
  (try write_response fd resp with Unix.Unix_error _ | Sys_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let serve_loop ~listen_fd ~stop_r routes =
  let rec loop () =
    match Unix.select [ listen_fd; stop_r ] [] [] (-1.) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | exception Unix.Unix_error _ -> ()
    | ready, _, _ ->
        if List.mem stop_r ready then ()
        else begin
          (match Unix.accept listen_fd with
          | fd, _ -> handle_connection routes fd
          | exception Unix.Unix_error _ -> ());
          loop ()
        end
  in
  loop ()

let start ?(port = 0) ~routes () =
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
     Unix.listen listen_fd 16
   with exn ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise exn);
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let stop_r, stop_w = Unix.pipe () in
  {
    listen_fd;
    bound_port;
    stop_r;
    stop_w;
    thread = Thread.create (fun () -> serve_loop ~listen_fd ~stop_r routes) ();
    stopped = false;
    lock = Mutex.create ();
  }

let port t = t.bound_port

let stop t =
  Mutex.lock t.lock;
  let was_stopped = t.stopped in
  t.stopped <- true;
  Mutex.unlock t.lock;
  if not was_stopped then begin
    (try ignore (Unix.write_substring t.stop_w "x" 0 1)
     with Unix.Unix_error _ -> ());
    Thread.join t.thread;
    List.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      [ t.listen_fd; t.stop_r; t.stop_w ]
  end

let get ?(timeout = 5.) ~port path =
  match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | fd -> (
      let finally () = try Unix.close fd with Unix.Unix_error _ -> () in
      try
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
        Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout;
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        let req =
          Printf.sprintf
            "GET %s HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n"
            path
        in
        ignore (Unix.write_substring fd req 0 (String.length req));
        let buf = Buffer.create 4096 in
        let chunk = Bytes.create 4096 in
        let rec drain () =
          let n = Unix.read fd chunk 0 (Bytes.length chunk) in
          if n > 0 then begin
            Buffer.add_subbytes buf chunk 0 n;
            drain ()
          end
        in
        drain ();
        finally ();
        let raw = Buffer.contents buf in
        let split_at marker =
          let ml = String.length marker in
          let rec find i =
            if i + ml > String.length raw then None
            else if String.sub raw i ml = marker then Some i
            else find (i + 1)
          in
          find 0 |> Option.map (fun i -> (String.sub raw 0 i, i + ml))
        in
        let head, body_start =
          match split_at "\r\n\r\n" with
          | Some (h, b) -> (h, b)
          | None -> (
              match split_at "\n\n" with
              | Some (h, b) -> (h, b)
              | None -> (raw, String.length raw))
        in
        let body =
          String.sub raw body_start (String.length raw - body_start)
        in
        match String.split_on_char ' ' head with
        | _ :: code :: _ -> (
            match int_of_string_opt code with
            | Some status -> Ok (status, body)
            | None -> Error ("unparseable status line: " ^ head))
        | _ -> Error "empty response"
      with Unix.Unix_error (e, _, _) ->
        finally ();
        Error (Unix.error_message e))
