(** One streaming interface over both trace formats.

    [cup trace], [cup trace convert] and the bench harness read traces
    through this module: the format is sniffed from the file header
    (the {!Binary_codec.magic} bytes; anything else is JSONL, with the
    [.ctrace] suffix as tie-breaker for empty files) and records are
    handed to the callback one at a time — nothing is materialized, so
    memory stays bounded by the consumer, not the trace length. *)

type item =
  | Event of Cup_sim.Trace.event  (** a protocol event *)
  | Scale_record of Cup_sim.Scale.trace_event  (** a scale-runner record *)
  | Raw of { line : string; error : string }
      (** a line that parses as neither, carried verbatim; [error] is
          the protocol-event parse error *)
  | Malformed of string
      (** an undecodable binary record; framing is lost, so iteration
          stops after reporting it *)

type format = Binary | Jsonl

val detect : string -> format
(** Sniff the on-disk format.  Raises [Sys_error] if the file cannot
    be opened. *)

val iter : string -> f:(int -> item -> unit) -> unit
(** Stream every record to [f] along with its ordinal (1-based;
    counting non-blank lines for JSONL, records for binary).  JSONL
    lines are classified as protocol events first, then as
    scale-runner records, else passed through as {!Raw} — so
    converting a trace and reading it back classifies identically in
    both formats. *)
