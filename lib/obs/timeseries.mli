(** In-run time-series sampling.

    The paper's flash-crowd / capacity-loss / churn figures plot cost
    {e per interval over time}; a single end-of-run summary cannot
    show them.  [Timeseries.attach] schedules a sampler inside the
    live simulation's event engine that, every [interval] virtual
    seconds until the scenario's end, snapshots the
    {!Cup_metrics.Counters} deltas since the previous sample together
    with instantaneous engine gauges (pending events, token-bucket
    queue depths).

    Sampling is pure observation: it reads counters and queue lengths,
    never mutates protocol state, and uses no randomness — a sampled
    run's protocol trajectory is byte-identical to an unsampled one,
    and the samples themselves are deterministic per seed. *)

type sample = {
  at : float;  (** virtual time of the snapshot, in seconds *)
  total_cost : int;  (** hops charged during this interval *)
  miss_cost : int;
  overhead_cost : int;
  hits : int;
  misses : int;
  dropped_updates : int;
  pending_events : int;  (** engine events queued at the instant *)
  queued_updates : int;  (** updates in all Section 2.8 channels *)
  max_queue_depth : int;  (** deepest single node's channel *)
}

type t

val attach : ?interval:float -> Cup_sim.Runner.Live.t -> t
(** Schedule sampling every [interval] virtual seconds (default 10.),
    from the next multiple of [interval] after the current virtual
    time through {!Cup_sim.Scenario.sim_end}.  Attach before running.
    Raises [Invalid_argument] if [interval <= 0.]. *)

val interval : t -> float

val samples : t -> sample list
(** Chronological; one element per elapsed interval so far. *)

(** {1 Export} *)

val csv_header : string list

val csv_rows : t -> string list list

val write_csv : t -> path:string -> unit
(** {!Cup_report.Csv} file with {!csv_header} and one row per
    sample. *)

val cost_plot : ?width:int -> ?height:int -> t -> string
(** ASCII cost-vs-time figure ({!Cup_report.Plot}): total, miss, and
    overhead hops per interval. *)
