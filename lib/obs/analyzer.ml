module Trace = Cup_sim.Trace
module Time = Cup_dess.Time
module Node_id = Cup_overlay.Node_id
module Key = Cup_overlay.Key

let type_name = function
  | Trace.Query_posted _ -> "query_posted"
  | Trace.Query_forwarded _ -> "query_forwarded"
  | Trace.Update_delivered _ -> "update_delivered"
  | Trace.Clear_bit_delivered _ -> "clear_bit_delivered"
  | Trace.Local_answer _ -> "local_answer"
  | Trace.Node_crashed _ -> "node_crashed"
  | Trace.Node_recovered _ -> "node_recovered"
  | Trace.Message_lost _ -> "message_lost"
  | Trace.Repair_query _ -> "repair_query"

let event_key = function
  | Trace.Query_posted { key; _ }
  | Trace.Query_forwarded { key; _ }
  | Trace.Update_delivered { key; _ }
  | Trace.Clear_bit_delivered { key; _ }
  | Trace.Local_answer { key; _ }
  | Trace.Message_lost { key; _ }
  | Trace.Repair_query { key; _ } ->
      Some (Key.to_int key)
  | Trace.Node_crashed _ | Trace.Node_recovered _ -> None

type tree = {
  trace_id : int;
  kind : string;  (** ["query"], ["update"], ["repair"] or ["mixed"] *)
  spans : int;
  depth : int;  (** longest root-to-leaf chain, roots at depth 1 *)
  max_fanout : int;  (** most children under one span *)
  start_at : float;
  end_at : float;
  critical_path : Trace.event list;
      (** root → latest event of the trace, following parent links *)
}

type key_stats = {
  mutable k_events : int;
  mutable k_queries : int;
  mutable k_hits : int;
  mutable k_misses : int;
  mutable k_updates : int;
  mutable k_lost : int;
  mutable k_repairs : int;
  mutable k_miss_latencies : float list;  (** seconds, unsorted *)
}

type summary = {
  events : int;
  membership : int;  (** crash/recover events (carry no span) *)
  legacy : int;  (** protocol events without span ids (legacy traces) *)
  by_type : (string * int) list;  (** sorted by type name *)
  traces : tree list;  (** sorted by trace id *)
  orphans : int;
  orphan_examples : (int * int) list;  (** (span_id, missing parent), ≤ 5 *)
  hits : int;
  misses : int;
  unanswered : int;  (** posted queries with no matching local answer *)
  miss_latencies : float array;  (** seconds, sorted ascending *)
  per_key : (int * key_stats) list;  (** sorted by key *)
}

(* Exact nearest-rank percentile over a sorted sample array. *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else if q <= 0. then sorted.(0)
  else
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
    sorted.(Stdlib.min (n - 1) (Stdlib.max 0 (rank - 1)))

let mean_of sorted =
  let n = Array.length sorted in
  if n = 0 then 0. else Array.fold_left ( +. ) 0. sorted /. float_of_int n

(* One pass over a full trace reconstructs every propagation tree from
   the span links.  Parents are indexed across the whole trace first,
   so an "orphan" really is a span whose parent was never emitted —
   not merely one delivered in the same engine event. *)
let analyze (events : Trace.event list) : summary =
  let n_events = List.length events in
  let by_type = Hashtbl.create 16 in
  let count_type e =
    let name = type_name e in
    Hashtbl.replace by_type name
      (1 + Option.value ~default:0 (Hashtbl.find_opt by_type name))
  in
  (* pass 1: index all span ids *)
  let known_spans = Hashtbl.create 1024 in
  List.iter
    (fun e ->
      match Trace.event_span e with
      | Some (_, span_id, _) when span_id <> 0 ->
          Hashtbl.replace known_spans span_id ()
      | _ -> ())
    events;
  (* pass 2: everything else, in trace (= time) order *)
  let membership = ref 0 and legacy = ref 0 in
  let orphans = ref 0 and orphan_examples = ref [] in
  let depth_of = Hashtbl.create 1024 (* span id -> depth in its trace *) in
  let children = Hashtbl.create 1024 (* span id -> child count *) in
  (* trace id -> (spans, max depth, max fanout, start, end, latest event,
     kinds seen) *)
  let traces = Hashtbl.create 256 in
  let span_event = Hashtbl.create 1024 (* span id -> event *) in
  let per_key = Hashtbl.create 16 in
  let key_stats k =
    match Hashtbl.find_opt per_key k with
    | Some s -> s
    | None ->
        let s =
          {
            k_events = 0;
            k_queries = 0;
            k_hits = 0;
            k_misses = 0;
            k_updates = 0;
            k_lost = 0;
            k_repairs = 0;
            k_miss_latencies = [];
          }
        in
        Hashtbl.replace per_key k s;
        s
  in
  (* FIFO matching of posted queries to local answers per (node, key):
     a Local_answer with [waiters = w] settles the w oldest
     outstanding posts at that node, exactly the coalescing the
     protocol performs.  Misses yield post→answer latencies. *)
  let outstanding = Hashtbl.create 256 in
  let hits = ref 0 and misses = ref 0 in
  let miss_latencies = ref [] in
  let root_kind e =
    match e with
    | Trace.Query_posted _ -> "query"
    | Trace.Repair_query _ -> "repair"
    | _ -> "update"
  in
  let note_trace ~trace_id ~depth ~fanout_parent e =
    if trace_id <> 0 then begin
      let at = Time.to_seconds (Trace.event_time e) in
      let entry =
        match Hashtbl.find_opt traces trace_id with
        | Some entry -> entry
        | None ->
            let entry = (ref 0, ref 0, ref 0, ref at, ref at, ref e, ref "") in
            Hashtbl.replace traces trace_id entry;
            entry
      in
      let spans, max_depth, max_fanout, start_at, end_at, latest, kind =
        entry
      in
      incr spans;
      if depth > !max_depth then max_depth := depth;
      (match fanout_parent with
      | Some parent ->
          let c =
            1 + Option.value ~default:0 (Hashtbl.find_opt children parent)
          in
          Hashtbl.replace children parent c;
          if c > !max_fanout then max_fanout := c
      | None -> ());
      if at < !start_at then start_at := at;
      if at >= !end_at then begin
        end_at := at;
        latest := e
      end;
      if depth = 1 then
        kind :=
          (match !kind with
          | "" -> root_kind e
          | k when k = root_kind e -> k
          | _ -> "mixed")
    end
  in
  List.iter
    (fun e ->
      count_type e;
      (match event_key e with
      | Some k -> (key_stats k).k_events <- (key_stats k).k_events + 1
      | None -> ());
      match Trace.event_span e with
      | None -> incr membership
      | Some (trace_id, span_id, parent_id) ->
          if span_id = 0 then incr legacy
          else begin
            let depth =
              if parent_id = 0 then 1
              else
                match Hashtbl.find_opt depth_of parent_id with
                | Some d -> d + 1
                | None ->
                    if not (Hashtbl.mem known_spans parent_id) then begin
                      (* Keep the first five examples; an int compare,
                         not a List.length re-count per orphan. *)
                      incr orphans;
                      if !orphans <= 5 then
                        orphan_examples :=
                          (span_id, parent_id) :: !orphan_examples
                    end;
                    1
            in
            Hashtbl.replace depth_of span_id depth;
            Hashtbl.replace span_event span_id e;
            note_trace ~trace_id ~depth
              ~fanout_parent:(if parent_id = 0 then None else Some parent_id)
              e
          end;
          (* per-key and latency accounting, span-less legacy events
             included *)
          (match e with
          | Trace.Query_posted { at; node; key; _ } ->
              let ks = key_stats (Key.to_int key) in
              ks.k_queries <- ks.k_queries + 1;
              let slot = (Node_id.to_int node, Key.to_int key) in
              let q =
                match Hashtbl.find_opt outstanding slot with
                | Some q -> q
                | None ->
                    let q = Queue.create () in
                    Hashtbl.replace outstanding slot q;
                    q
              in
              Queue.push (Time.to_seconds at) q
          | Trace.Local_answer { at; node; key; hit; waiters; _ } ->
              let ks = key_stats (Key.to_int key) in
              let slot = (Node_id.to_int node, Key.to_int key) in
              let q =
                match Hashtbl.find_opt outstanding slot with
                | Some q -> q
                | None -> Queue.create ()
              in
              let answer_at = Time.to_seconds at in
              for _ = 1 to waiters do
                match Queue.take_opt q with
                | None -> ()
                | Some posted ->
                    if hit then begin
                      incr hits;
                      ks.k_hits <- ks.k_hits + 1
                    end
                    else begin
                      incr misses;
                      ks.k_misses <- ks.k_misses + 1;
                      let lat = answer_at -. posted in
                      miss_latencies := lat :: !miss_latencies;
                      ks.k_miss_latencies <- lat :: ks.k_miss_latencies
                    end
              done
          | Trace.Update_delivered { key; _ } ->
              let ks = key_stats (Key.to_int key) in
              ks.k_updates <- ks.k_updates + 1
          | Trace.Message_lost { key; _ } ->
              let ks = key_stats (Key.to_int key) in
              ks.k_lost <- ks.k_lost + 1
          | Trace.Repair_query { key; _ } ->
              let ks = key_stats (Key.to_int key) in
              ks.k_repairs <- ks.k_repairs + 1
          | _ -> ()))
    events;
  let unanswered =
    Hashtbl.fold (fun _ q acc -> acc + Queue.length q) outstanding 0
  in
  (* critical path: from each trace's latest event, climb parent links
     back to the root *)
  let critical_path latest =
    let rec climb e acc =
      match Trace.event_span e with
      | Some (_, _, parent_id) when parent_id <> 0 -> (
          match Hashtbl.find_opt span_event parent_id with
          | Some parent -> climb parent (e :: acc)
          | None -> e :: acc)
      | _ -> e :: acc
    in
    climb latest []
  in
  let trees =
    Hashtbl.fold
      (fun trace_id
           (spans, max_depth, max_fanout, start_at, end_at, latest, kind) acc ->
        {
          trace_id;
          kind = (if !kind = "" then "update" else !kind);
          spans = !spans;
          depth = !max_depth;
          max_fanout = !max_fanout;
          start_at = !start_at;
          end_at = !end_at;
          critical_path = critical_path !latest;
        }
        :: acc)
      traces []
  in
  let trees = List.sort (fun a b -> Int.compare a.trace_id b.trace_id) trees in
  let lat = Array.of_list !miss_latencies in
  Array.sort Float.compare lat;
  Hashtbl.iter
    (fun _ ks ->
      ks.k_miss_latencies <- List.sort Float.compare ks.k_miss_latencies)
    per_key;
  {
    events = n_events;
    membership = !membership;
    legacy = !legacy;
    by_type =
      List.sort
        (fun (a, _) (b, _) -> String.compare a b)
        (Hashtbl.fold (fun name c acc -> (name, c) :: acc) by_type []);
    traces = trees;
    orphans = !orphans;
    orphan_examples = List.rev !orphan_examples;
    hits = !hits;
    misses = !misses;
    unanswered;
    miss_latencies = lat;
    per_key =
      List.sort
        (fun (a, _) (b, _) -> Int.compare a b)
        (Hashtbl.fold (fun k s acc -> (k, s) :: acc) per_key []);
  }

(* {2 Streaming analysis}

   Single-pass, constant-per-event re-implementation of [analyze] for
   traces too large to materialize.  The event list is never built:

   - span state lives in an open-addressing table of parallel int
     arrays (id, parent, depth, child count, arena offset/length) —
     a few dozen bytes per span, no per-binding boxes to scan;
   - each span-carrying event is kept only as its {!Binary_codec} body
     in one append-only byte arena (critical paths decode from it at
     [finish]);
   - the whole-file orphan rule ("parent never appears anywhere") is
     enforced without a first pass: a child whose parent is unseen is
     provisionally orphaned and resolved retroactively when the parent
     first appears;
   - latency samples go into growable unboxed float vectors, sorted
     once at [finish], so percentiles stay exact — same arrays, same
     nearest-rank answers as [analyze].

   [finish] returns a [summary] structurally equal to what [analyze]
   produces on the same event sequence (the test suite holds the two
   implementations to that). *)

module Streaming = struct
  (* Growable unboxed float vector. *)
  module Fvec = struct
    type t = { mutable data : float array; mutable len : int }

    let create () = { data = [||]; len = 0 }

    let push v x =
      if v.len = Array.length v.data then begin
        let data = Array.make (max 16 (2 * v.len)) 0. in
        Array.blit v.data 0 data 0 v.len;
        v.data <- data
      end;
      v.data.(v.len) <- x;
      v.len <- v.len + 1

    let sorted v =
      let a = Array.sub v.data 0 v.len in
      Array.sort Float.compare a;
      a
  end

  (* Open-addressing span table; slot 0 of the id space is the empty
     marker (real span ids are nonzero — id-0 events are counted as
     legacy and never reach the table).  [depth = 0] marks a span that
     has been referenced (as a parent) but not yet seen. *)
  module Span_table = struct
    type t = {
      mutable mask : int;
      mutable live : int;
      mutable ids : int array;
      mutable parent : int array;
      mutable depth : int array;
      mutable children : int array;
      mutable off : int array;
      mutable len : int array;
    }

    let create () =
      let cap = 1024 in
      {
        mask = cap - 1;
        live = 0;
        ids = Array.make cap 0;
        parent = Array.make cap 0;
        depth = Array.make cap 0;
        children = Array.make cap 0;
        off = Array.make cap 0;
        len = Array.make cap 0;
      }

    let hash id =
      let h = id * 0x2545F4914F6CDD1D in
      h lxor (h lsr 31)

    (* Slot holding [id], or the free slot where it would go. *)
    let find t id =
      let rec go i =
        let j = i land t.mask in
        let k = Array.unsafe_get t.ids j in
        if k = id || k = 0 then j else go (j + 1)
      in
      go (hash id)

    let grow t =
      let ids = t.ids
      and parent = t.parent
      and depth = t.depth
      and children = t.children
      and off = t.off
      and len = t.len in
      let cap = 2 * (t.mask + 1) in
      t.mask <- cap - 1;
      t.ids <- Array.make cap 0;
      t.parent <- Array.make cap 0;
      t.depth <- Array.make cap 0;
      t.children <- Array.make cap 0;
      t.off <- Array.make cap 0;
      t.len <- Array.make cap 0;
      Array.iteri
        (fun i id ->
          if id <> 0 then begin
            let j = find t id in
            t.ids.(j) <- id;
            t.parent.(j) <- parent.(i);
            t.depth.(j) <- depth.(i);
            t.children.(j) <- children.(i);
            t.off.(j) <- off.(i);
            t.len.(j) <- len.(i)
          end)
        ids

    (* Slot for [id], inserting an unseen entry if absent. *)
    let slot t id =
      let j = find t id in
      if t.ids.(j) <> 0 then j
      else begin
        t.ids.(j) <- id;
        t.live <- t.live + 1;
        if 4 * t.live > 3 * (t.mask + 1) then begin
          grow t;
          find t id
        end
        else j
      end
  end

  (* Per-trace accumulator — the incremental form of [note_trace]. *)
  type tacc = {
    mutable a_spans : int;
    mutable a_depth : int;
    mutable a_fanout : int;
    mutable a_start : float;
    mutable a_end : float;
    mutable a_latest_off : int;
    mutable a_latest_len : int;
    mutable a_kind : string;
  }

  type kacc = {
    mutable a_events : int;
    mutable a_queries : int;
    mutable a_hits : int;
    mutable a_misses : int;
    mutable a_updates : int;
    mutable a_lost : int;
    mutable a_repairs : int;
    a_lat : Fvec.t;
  }

  type t = {
    mutable events : int;
    mutable membership : int;
    mutable legacy : int;
    by_type : (string, int ref) Hashtbl.t;
    table : Span_table.t;
    arena : Buffer.t;
    (* missing parent id -> (event ordinal, child span id) list, newest
       first; an entry is dropped the moment the parent is seen *)
    pending : (int, (int * int) list ref) Hashtbl.t;
    traces : (int, tacc) Hashtbl.t;
    per_key : (int, kacc) Hashtbl.t;
    outstanding : (int * int, float Queue.t) Hashtbl.t;
    mutable hits : int;
    mutable misses : int;
    lat : Fvec.t;
    mutable finished : bool;
  }

  let create () =
    {
      events = 0;
      membership = 0;
      legacy = 0;
      by_type = Hashtbl.create 16;
      table = Span_table.create ();
      arena = Buffer.create 4096;
      pending = Hashtbl.create 64;
      traces = Hashtbl.create 256;
      per_key = Hashtbl.create 16;
      outstanding = Hashtbl.create 256;
      hits = 0;
      misses = 0;
      lat = Fvec.create ();
      finished = false;
    }

  let key_acc t k =
    match Hashtbl.find_opt t.per_key k with
    | Some a -> a
    | None ->
        let a =
          {
            a_events = 0;
            a_queries = 0;
            a_hits = 0;
            a_misses = 0;
            a_updates = 0;
            a_lost = 0;
            a_repairs = 0;
            a_lat = Fvec.create ();
          }
        in
        Hashtbl.replace t.per_key k a;
        a

  let root_kind = function
    | Trace.Query_posted _ -> "query"
    | Trace.Repair_query _ -> "repair"
    | _ -> "update"

  let trace_acc t trace_id =
    match Hashtbl.find_opt t.traces trace_id with
    | Some a -> a
    | None ->
        let a =
          {
            a_spans = 0;
            a_depth = 0;
            a_fanout = 0;
            a_start = Float.infinity;
            a_end = Float.neg_infinity;
            a_latest_off = 0;
            a_latest_len = 0;
            a_kind = "";
          }
        in
        Hashtbl.replace t.traces trace_id a;
        a

  let feed t e =
    if t.finished then invalid_arg "Analyzer.Streaming.feed: already finished";
    t.events <- t.events + 1;
    let ordinal = t.events in
    (let name = type_name e in
     match Hashtbl.find_opt t.by_type name with
     | Some r -> incr r
     | None -> Hashtbl.replace t.by_type name (ref 1));
    (match event_key e with
    | Some k ->
        let a = key_acc t k in
        a.a_events <- a.a_events + 1
    | None -> ());
    match Trace.event_span e with
    | None -> t.membership <- t.membership + 1
    | Some (trace_id, span_id, parent_id) ->
        if span_id = 0 then t.legacy <- t.legacy + 1
        else begin
          let tbl = t.table in
          (* Depth from the table as of this event — forward parent
             references resolve to depth 1, exactly like the legacy
             pass-2 [depth_of] lookup. *)
          let depth =
            if parent_id = 0 then 1
            else
              let pj = Span_table.slot tbl parent_id in
              let d = tbl.Span_table.depth.(pj) in
              if d > 0 then d + 1
              else begin
                (* Parent not seen yet: provisionally an orphan,
                   resolved retroactively if the parent ever appears. *)
                (match Hashtbl.find_opt t.pending parent_id with
                | Some l -> l := (ordinal, span_id) :: !l
                | None ->
                    Hashtbl.replace t.pending parent_id
                      (ref [ (ordinal, span_id) ]));
                1
              end
          in
          let off = Buffer.length t.arena in
          Binary_codec.encode_body t.arena (Binary_codec.Event e);
          let len = Buffer.length t.arena - off in
          let sj = Span_table.slot tbl span_id in
          let first_seen = tbl.Span_table.depth.(sj) = 0 in
          tbl.Span_table.parent.(sj) <- parent_id;
          tbl.Span_table.depth.(sj) <- depth;
          tbl.Span_table.off.(sj) <- off;
          tbl.Span_table.len.(sj) <- len;
          if first_seen then Hashtbl.remove t.pending span_id;
          if trace_id <> 0 then begin
            let at = Time.to_seconds (Trace.event_time e) in
            let a = trace_acc t trace_id in
            a.a_spans <- a.a_spans + 1;
            if depth > a.a_depth then a.a_depth <- depth;
            if parent_id <> 0 then begin
              let pj = Span_table.slot tbl parent_id in
              let c = tbl.Span_table.children.(pj) + 1 in
              tbl.Span_table.children.(pj) <- c;
              if c > a.a_fanout then a.a_fanout <- c
            end;
            if at < a.a_start then a.a_start <- at;
            if at >= a.a_end then begin
              a.a_end <- at;
              a.a_latest_off <- off;
              a.a_latest_len <- len
            end;
            if depth = 1 then
              a.a_kind <-
                (match a.a_kind with
                | "" -> root_kind e
                | k when k = root_kind e -> k
                | _ -> "mixed")
          end
        end;
        (* Per-key and latency accounting, span-less legacy events
           included — mirrors [analyze]. *)
        (match e with
        | Trace.Query_posted { at; node; key; _ } ->
            let ks = key_acc t (Key.to_int key) in
            ks.a_queries <- ks.a_queries + 1;
            let slot = (Node_id.to_int node, Key.to_int key) in
            let q =
              match Hashtbl.find_opt t.outstanding slot with
              | Some q -> q
              | None ->
                  let q = Queue.create () in
                  Hashtbl.replace t.outstanding slot q;
                  q
            in
            Queue.push (Time.to_seconds at) q
        | Trace.Local_answer { at; node; key; hit; waiters; _ } ->
            let ks = key_acc t (Key.to_int key) in
            let slot = (Node_id.to_int node, Key.to_int key) in
            let q =
              match Hashtbl.find_opt t.outstanding slot with
              | Some q -> q
              | None -> Queue.create ()
            in
            let answer_at = Time.to_seconds at in
            for _ = 1 to waiters do
              match Queue.take_opt q with
              | None -> ()
              | Some posted ->
                  if hit then begin
                    t.hits <- t.hits + 1;
                    ks.a_hits <- ks.a_hits + 1
                  end
                  else begin
                    t.misses <- t.misses + 1;
                    ks.a_misses <- ks.a_misses + 1;
                    let lat = answer_at -. posted in
                    Fvec.push t.lat lat;
                    Fvec.push ks.a_lat lat
                  end
            done
        | Trace.Update_delivered { key; _ } ->
            let ks = key_acc t (Key.to_int key) in
            ks.a_updates <- ks.a_updates + 1
        | Trace.Message_lost { key; _ } ->
            let ks = key_acc t (Key.to_int key) in
            ks.a_lost <- ks.a_lost + 1
        | Trace.Repair_query { key; _ } ->
            let ks = key_acc t (Key.to_int key) in
            ks.a_repairs <- ks.a_repairs + 1
        | _ -> ())

  let finish t =
    if t.finished then invalid_arg "Analyzer.Streaming.finish: already finished";
    t.finished <- true;
    let tbl = t.table in
    let bytes = Buffer.contents t.arena in
    let decode off len =
      match Binary_codec.decode_body bytes ~pos:off ~len with
      | Binary_codec.Event e -> e
      | _ -> assert false
    in
    let critical_path off len =
      let rec climb off len acc =
        let e = decode off len in
        match Trace.event_span e with
        | Some (_, _, parent_id) when parent_id <> 0 ->
            let pj = Span_table.find tbl parent_id in
            if
              tbl.Span_table.ids.(pj) = parent_id
              && tbl.Span_table.len.(pj) > 0
            then
              climb tbl.Span_table.off.(pj) tbl.Span_table.len.(pj) (e :: acc)
            else e :: acc
        | _ -> e :: acc
      in
      climb off len []
    in
    let trees =
      Hashtbl.fold
        (fun trace_id a acc ->
          {
            trace_id;
            kind = (if a.a_kind = "" then "update" else a.a_kind);
            spans = a.a_spans;
            depth = a.a_depth;
            max_fanout = a.a_fanout;
            start_at = a.a_start;
            end_at = a.a_end;
            critical_path = critical_path a.a_latest_off a.a_latest_len;
          }
          :: acc)
        t.traces []
    in
    let trees =
      List.sort (fun a b -> Int.compare a.trace_id b.trace_id) trees
    in
    let orphan_events =
      Hashtbl.fold
        (fun parent l acc ->
          List.fold_left
            (fun acc (ordinal, span_id) -> (ordinal, span_id, parent) :: acc)
            acc !l)
        t.pending []
      |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b)
    in
    let orphan_examples =
      List.filteri (fun i _ -> i < 5) orphan_events
      |> List.map (fun (_, span_id, parent) -> (span_id, parent))
    in
    let unanswered =
      Hashtbl.fold (fun _ q acc -> acc + Queue.length q) t.outstanding 0
    in
    {
      events = t.events;
      membership = t.membership;
      legacy = t.legacy;
      by_type =
        List.sort
          (fun (a, _) (b, _) -> String.compare a b)
          (Hashtbl.fold (fun name c acc -> (name, !c) :: acc) t.by_type []);
      traces = trees;
      orphans = List.length orphan_events;
      orphan_examples;
      hits = t.hits;
      misses = t.misses;
      unanswered;
      miss_latencies = Fvec.sorted t.lat;
      per_key =
        List.sort
          (fun (a, _) (b, _) -> Int.compare a b)
          (Hashtbl.fold
             (fun k a acc ->
               ( k,
                 {
                   k_events = a.a_events;
                   k_queries = a.a_queries;
                   k_hits = a.a_hits;
                   k_misses = a.a_misses;
                   k_updates = a.a_updates;
                   k_lost = a.a_lost;
                   k_repairs = a.a_repairs;
                   k_miss_latencies = Array.to_list (Fvec.sorted a.a_lat);
                 } )
               :: acc)
             t.per_key []);
    }
end

(* {2 Reporting} *)

let pp_latencies fmt sorted =
  Format.fprintf fmt "p50=%.3fs p90=%.3fs p99=%.3fs max=%.3fs mean=%.3fs"
    (percentile sorted 0.5) (percentile sorted 0.9) (percentile sorted 0.99)
    (percentile sorted 1.0) (mean_of sorted)

let pp_tree fmt t =
  Format.fprintf fmt
    "trace %d (%s): %d spans, depth %d, fan-out %d, %.3fs → %.3fs@."
    t.trace_id t.kind t.spans t.depth t.max_fanout t.start_at t.end_at;
  Format.fprintf fmt "    critical path (%d hops):@."
    (List.length t.critical_path);
  List.iter
    (fun e -> Format.fprintf fmt "      %a@." Trace.pp_event e)
    t.critical_path

let pp_summary ?(max_traces = 5) fmt (s : summary) =
  Format.fprintf fmt "%d events (%d membership, %d legacy without spans)@."
    s.events s.membership s.legacy;
  List.iter
    (fun (name, c) -> Format.fprintf fmt "  %-20s %d@." name c)
    s.by_type;
  Format.fprintf fmt "propagation trees: %d, orphan spans: %d@."
    (List.length s.traces) s.orphans;
  List.iter
    (fun (span_id, parent) ->
      Format.fprintf fmt "  orphan: span %d references missing parent %d@."
        span_id parent)
    s.orphan_examples;
  (match s.traces with
  | [] -> ()
  | traces ->
      let depth = List.fold_left (fun a t -> Stdlib.max a t.depth) 0 traces in
      let fanout =
        List.fold_left (fun a t -> Stdlib.max a t.max_fanout) 0 traces
      in
      Format.fprintf fmt "  max depth %d, max fan-out %d@." depth fanout);
  Format.fprintf fmt
    "queries: %d hits, %d misses, %d unanswered at trace end@." s.hits
    s.misses s.unanswered;
  if Array.length s.miss_latencies > 0 then
    Format.fprintf fmt "miss latency: %a@." pp_latencies s.miss_latencies;
  (match s.per_key with
  | [] -> ()
  | per_key ->
      Format.fprintf fmt
        "per-key:@.  %6s %8s %8s %6s %8s %8s %6s %8s %10s@." "key" "events"
        "queries" "hits" "misses" "updates" "lost" "repairs" "p99-miss";
      List.iter
        (fun (k, ks) ->
          let lat = Array.of_list ks.k_miss_latencies in
          Format.fprintf fmt "  %6d %8d %8d %6d %8d %8d %6d %8d %9.3fs@." k
            ks.k_events ks.k_queries ks.k_hits ks.k_misses ks.k_updates
            ks.k_lost ks.k_repairs (percentile lat 0.99))
        per_key);
  let biggest =
    List.filteri
      (fun i _ -> i < max_traces)
      (List.sort
         (fun a b ->
           match Int.compare b.spans a.spans with
           | 0 -> Int.compare a.trace_id b.trace_id
           | c -> c)
         s.traces)
  in
  match biggest with
  | [] -> ()
  | trees ->
      Format.fprintf fmt "largest traces:@.";
      List.iter (fun t -> Format.fprintf fmt "  %a" pp_tree t) trees
