(* Compact binary trace encoding.  See binary_codec.mli for the format
   specification; keep the two in sync. *)

module Trace = Cup_sim.Trace
module Scale = Cup_sim.Scale
module Time = Cup_dess.Time
module Node_id = Cup_overlay.Node_id
module Key = Cup_overlay.Key
module Update = Cup_proto.Update

let magic = "CUPTRACE"
let version = 1
let header = magic ^ String.make 1 (Char.chr version)
let header_length = String.length header

type record =
  | Event of Trace.event
  | Scale of Scale.trace_event
  | Line of string

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

(* {1 Primitive encoders}

   Ints are zigzag-mapped then LEB128-encoded; lengths and counts are
   plain LEB128 (always non-negative).  Because zigzag and LEB128 both
   operate on the 63-bit two's-complement pattern, every OCaml [int]
   round-trips exactly, including [min_int]/[max_int]. *)

let add_uvarint b n =
  let n = ref n in
  while !n land lnot 0x7f <> 0 do
    Buffer.add_char b (Char.unsafe_chr (0x80 lor (!n land 0x7f)));
    n := !n lsr 7
  done;
  Buffer.add_char b (Char.unsafe_chr !n)

let zigzag n = (n lsl 1) lxor (n asr (Sys.int_size - 1))
let unzigzag z = (z lsr 1) lxor (-(z land 1))
let add_int b n = add_uvarint b (zigzag n)

(* Floats are the exact IEEE-754 bit pattern, little-endian: bit-exact
   round-trip, including negative zero and NaN payloads. *)
let add_float b f = Buffer.add_int64_le b (Int64.bits_of_float f)
let add_bool b v = Buffer.add_char b (if v then '\001' else '\000')
let add_time b t = add_float b (Time.to_seconds t)

let kind_byte = function
  | Update.First_time -> 0
  | Update.Refresh -> 1
  | Update.Delete -> 2
  | Update.Append -> 3

let kind_of_byte = function
  | 0 -> Update.First_time
  | 1 -> Update.Refresh
  | 2 -> Update.Delete
  | 3 -> Update.Append
  | n -> corrupt "invalid update kind byte %d" n

(* {1 Record tags} *)

let tag_query_posted = 0
let tag_query_forwarded = 1
let tag_update_delivered = 2
let tag_clear_bit_delivered = 3
let tag_local_answer = 4
let tag_node_crashed = 5
let tag_node_recovered = 6
let tag_message_lost = 7
let tag_repair_query = 8
let tag_line = 9
let tag_scale_msg = 10
let tag_scale_refresh = 11
let tag_scale_post = 12

(* {1 Body encoding} *)

let add_span b ~trace_id ~span_id ~parent_id =
  add_int b trace_id;
  add_int b span_id;
  add_int b parent_id

let encode_body b = function
  | Event (Trace.Query_posted { at; node; key; trace_id; span_id; parent_id })
    ->
      Buffer.add_char b (Char.chr tag_query_posted);
      add_time b at;
      add_int b (Node_id.to_int node);
      add_int b (Key.to_int key);
      add_span b ~trace_id ~span_id ~parent_id
  | Event
      (Trace.Query_forwarded { at; from_; to_; key; trace_id; span_id; parent_id })
    ->
      Buffer.add_char b (Char.chr tag_query_forwarded);
      add_time b at;
      add_int b (Node_id.to_int from_);
      add_int b (Node_id.to_int to_);
      add_int b (Key.to_int key);
      add_span b ~trace_id ~span_id ~parent_id
  | Event
      (Trace.Update_delivered
         { at; from_; to_; key; kind; level; answering; entries; trace_id;
           span_id; parent_id }) ->
      Buffer.add_char b (Char.chr tag_update_delivered);
      add_time b at;
      add_int b (Node_id.to_int from_);
      add_int b (Node_id.to_int to_);
      add_int b (Key.to_int key);
      Buffer.add_char b (Char.chr (kind_byte kind));
      add_int b level;
      add_bool b answering;
      add_uvarint b (List.length entries);
      List.iter
        (fun (replica, expiry) ->
          add_int b replica;
          add_float b expiry)
        entries;
      add_span b ~trace_id ~span_id ~parent_id
  | Event
      (Trace.Clear_bit_delivered
         { at; from_; to_; key; trace_id; span_id; parent_id }) ->
      Buffer.add_char b (Char.chr tag_clear_bit_delivered);
      add_time b at;
      add_int b (Node_id.to_int from_);
      add_int b (Node_id.to_int to_);
      add_int b (Key.to_int key);
      add_span b ~trace_id ~span_id ~parent_id
  | Event
      (Trace.Local_answer
         { at; node; key; hit; waiters; trace_id; span_id; parent_id }) ->
      Buffer.add_char b (Char.chr tag_local_answer);
      add_time b at;
      add_int b (Node_id.to_int node);
      add_int b (Key.to_int key);
      add_bool b hit;
      add_int b waiters;
      add_span b ~trace_id ~span_id ~parent_id
  | Event (Trace.Node_crashed { at; node }) ->
      Buffer.add_char b (Char.chr tag_node_crashed);
      add_time b at;
      add_int b (Node_id.to_int node)
  | Event (Trace.Node_recovered { at; node }) ->
      Buffer.add_char b (Char.chr tag_node_recovered);
      add_time b at;
      add_int b (Node_id.to_int node)
  | Event
      (Trace.Message_lost { at; from_; to_; key; trace_id; span_id; parent_id })
    ->
      Buffer.add_char b (Char.chr tag_message_lost);
      add_time b at;
      add_int b (Node_id.to_int from_);
      add_int b (Node_id.to_int to_);
      add_int b (Key.to_int key);
      add_span b ~trace_id ~span_id ~parent_id
  | Event
      (Trace.Repair_query { at; node; key; attempt; trace_id; span_id; parent_id })
    ->
      Buffer.add_char b (Char.chr tag_repair_query);
      add_time b at;
      add_int b (Node_id.to_int node);
      add_int b (Key.to_int key);
      add_int b attempt;
      add_span b ~trace_id ~span_id ~parent_id
  | Line s ->
      Buffer.add_char b (Char.chr tag_line);
      Buffer.add_string b s
  | Scale (Scale.T_msg { w; dst; src; seq; body; out }) ->
      Buffer.add_char b (Char.chr tag_scale_msg);
      add_int b w;
      add_int b dst;
      add_int b src;
      add_int b seq;
      add_int b out;
      (match body with
      | Scale.B_query key ->
          Buffer.add_char b '\000';
          add_int b key
      | Scale.B_update { key; kind; level; answering } ->
          Buffer.add_char b '\001';
          add_int b key;
          Buffer.add_char b (Char.chr (kind_byte kind));
          add_int b level;
          add_bool b answering
      | Scale.B_clear key ->
          Buffer.add_char b '\002';
          add_int b key)
  | Scale (Scale.T_refresh { w; key; idx; out }) ->
      Buffer.add_char b (Char.chr tag_scale_refresh);
      add_int b w;
      add_int b key;
      add_int b idx;
      add_int b out
  | Scale (Scale.T_post { w; node; key; idx; out }) ->
      Buffer.add_char b (Char.chr tag_scale_post);
      add_int b w;
      add_int b node;
      add_int b key;
      add_int b idx;
      add_int b out

let encode ~scratch out r =
  Buffer.clear scratch;
  encode_body scratch r;
  add_uvarint out (Buffer.length scratch);
  Buffer.add_buffer out scratch

let encode_to_string r =
  let scratch = Buffer.create 128 and out = Buffer.create 128 in
  encode ~scratch out r;
  Buffer.contents out

(* {1 Decoding} *)

type cursor = { s : string; mutable pos : int; limit : int }

let need c n =
  if c.pos + n > c.limit then
    corrupt "truncated record: need %d bytes at offset %d, have %d" n c.pos
      (c.limit - c.pos)

let get_byte c =
  need c 1;
  let v = Char.code (String.unsafe_get c.s c.pos) in
  c.pos <- c.pos + 1;
  v

let get_uvarint c =
  let rec go shift acc =
    if shift > Sys.int_size then corrupt "varint too long"
    else
      let byte = get_byte c in
      let acc = acc lor ((byte land 0x7f) lsl shift) in
      if byte land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let get_int c = unzigzag (get_uvarint c)

let get_float c =
  need c 8;
  let v = Int64.float_of_bits (String.get_int64_le c.s c.pos) in
  c.pos <- c.pos + 8;
  v

let get_time c = Time.of_seconds (get_float c)
let get_bool c = get_byte c <> 0
let get_node c = Node_id.of_int (get_int c)
let get_key c = Key.of_int (get_int c)

let get_span c =
  let trace_id = get_int c in
  let span_id = get_int c in
  let parent_id = get_int c in
  (trace_id, span_id, parent_id)

let decode_body s ~pos ~len =
  let c = { s; pos; limit = pos + len } in
  if len < 1 then corrupt "empty record body";
  let tag = get_byte c in
  let r =
    if tag = tag_query_posted then begin
      let at = get_time c in
      let node = get_node c in
      let key = get_key c in
      let trace_id, span_id, parent_id = get_span c in
      Event (Trace.Query_posted { at; node; key; trace_id; span_id; parent_id })
    end
    else if tag = tag_query_forwarded then begin
      let at = get_time c in
      let from_ = get_node c in
      let to_ = get_node c in
      let key = get_key c in
      let trace_id, span_id, parent_id = get_span c in
      Event
        (Trace.Query_forwarded { at; from_; to_; key; trace_id; span_id; parent_id })
    end
    else if tag = tag_update_delivered then begin
      let at = get_time c in
      let from_ = get_node c in
      let to_ = get_node c in
      let key = get_key c in
      let kind = kind_of_byte (get_byte c) in
      let level = get_int c in
      let answering = get_bool c in
      let n = get_uvarint c in
      let entries =
        List.init n (fun _ ->
            let replica = get_int c in
            let expiry = get_float c in
            (replica, expiry))
      in
      let trace_id, span_id, parent_id = get_span c in
      Event
        (Trace.Update_delivered
           { at; from_; to_; key; kind; level; answering; entries; trace_id;
             span_id; parent_id })
    end
    else if tag = tag_clear_bit_delivered then begin
      let at = get_time c in
      let from_ = get_node c in
      let to_ = get_node c in
      let key = get_key c in
      let trace_id, span_id, parent_id = get_span c in
      Event
        (Trace.Clear_bit_delivered
           { at; from_; to_; key; trace_id; span_id; parent_id })
    end
    else if tag = tag_local_answer then begin
      let at = get_time c in
      let node = get_node c in
      let key = get_key c in
      let hit = get_bool c in
      let waiters = get_int c in
      let trace_id, span_id, parent_id = get_span c in
      Event
        (Trace.Local_answer
           { at; node; key; hit; waiters; trace_id; span_id; parent_id })
    end
    else if tag = tag_node_crashed then begin
      let at = get_time c in
      let node = get_node c in
      Event (Trace.Node_crashed { at; node })
    end
    else if tag = tag_node_recovered then begin
      let at = get_time c in
      let node = get_node c in
      Event (Trace.Node_recovered { at; node })
    end
    else if tag = tag_message_lost then begin
      let at = get_time c in
      let from_ = get_node c in
      let to_ = get_node c in
      let key = get_key c in
      let trace_id, span_id, parent_id = get_span c in
      Event (Trace.Message_lost { at; from_; to_; key; trace_id; span_id; parent_id })
    end
    else if tag = tag_repair_query then begin
      let at = get_time c in
      let node = get_node c in
      let key = get_key c in
      let attempt = get_int c in
      let trace_id, span_id, parent_id = get_span c in
      Event
        (Trace.Repair_query { at; node; key; attempt; trace_id; span_id; parent_id })
    end
    else if tag = tag_line then begin
      let s = String.sub c.s c.pos (c.limit - c.pos) in
      c.pos <- c.limit;
      Line s
    end
    else if tag = tag_scale_msg then begin
      let w = get_int c in
      let dst = get_int c in
      let src = get_int c in
      let seq = get_int c in
      let out = get_int c in
      let body =
        match get_byte c with
        | 0 -> Scale.B_query (get_int c)
        | 1 ->
            let key = get_int c in
            let kind = kind_of_byte (get_byte c) in
            let level = get_int c in
            let answering = get_bool c in
            Scale.B_update { key; kind; level; answering }
        | 2 -> Scale.B_clear (get_int c)
        | n -> corrupt "invalid scale payload tag %d" n
      in
      Scale (Scale.T_msg { w; dst; src; seq; body; out })
    end
    else if tag = tag_scale_refresh then begin
      let w = get_int c in
      let key = get_int c in
      let idx = get_int c in
      let out = get_int c in
      Scale (Scale.T_refresh { w; key; idx; out })
    end
    else if tag = tag_scale_post then begin
      let w = get_int c in
      let node = get_int c in
      let key = get_int c in
      let idx = get_int c in
      let out = get_int c in
      Scale (Scale.T_post { w; node; key; idx; out })
    end
    else corrupt "unknown record tag %d" tag
  in
  if c.pos <> c.limit then
    corrupt "trailing garbage in record: %d bytes left" (c.limit - c.pos);
  r

(* {1 Channel reading} *)

let read_header ic =
  let buf = Bytes.create header_length in
  (try really_input ic buf 0 header_length
   with End_of_file -> corrupt "file shorter than the %d-byte header" header_length);
  let got = Bytes.to_string buf in
  if String.sub got 0 (String.length magic) <> magic then
    corrupt "bad magic: not a CUP binary trace";
  let v = Char.code got.[String.length magic] in
  if v <> version then corrupt "unsupported trace format version %d" v

let input_record ic =
  match input_byte ic with
  | exception End_of_file -> None
  | first ->
      let len =
        if first land 0x80 = 0 then first
        else
          let rec go shift acc =
            if shift > Sys.int_size then corrupt "varint too long"
            else
              match input_byte ic with
              | exception End_of_file -> corrupt "truncated record length"
              | byte ->
                  let acc = acc lor ((byte land 0x7f) lsl shift) in
                  if byte land 0x80 = 0 then acc else go (shift + 7) acc
          in
          go 7 (first land 0x7f)
      in
      let body = Bytes.create len in
      (try really_input ic body 0 len
       with End_of_file -> corrupt "truncated record: expected %d body bytes" len);
      Some (decode_body (Bytes.unsafe_to_string body) ~pos:0 ~len)
