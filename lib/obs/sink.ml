module Trace = Cup_sim.Trace

type t = {
  emit_fn : Trace.event -> unit;
  close_fn : unit -> unit;
  mutable seen : int;
  mutable closed : bool;
}

let emit t event =
  if t.closed then invalid_arg "Sink.emit: sink is closed";
  t.seen <- t.seen + 1;
  t.emit_fn event

let close t =
  if not t.closed then begin
    t.closed <- true;
    t.close_fn ()
  end

let events_seen t = t.seen

let of_callback ?(close = Fun.id) f =
  { emit_fn = f; close_fn = close; seen = 0; closed = false }

let ring trace = of_callback (Trace.record trace)

let jsonl ?(close_channel = false) oc =
  of_callback
    ~close:(fun () -> if close_channel then close_out oc else flush oc)
    (fun event ->
      output_string oc (Event_json.to_string event);
      output_char oc '\n')

let jsonl_file path = jsonl ~close_channel:true (open_out path)

let binary writer =
  of_callback
    ~close:(fun () -> Binary_writer.close writer)
    (Binary_writer.emit_event writer)

let binary_file path = binary (Binary_writer.to_file path)

let fanout sinks =
  of_callback
    ~close:(fun () -> List.iter close sinks)
    (fun event -> List.iter (fun sink -> emit sink event) sinks)

let null () = of_callback ignore

let attach live sink =
  Cup_sim.Runner.Live.set_tracer live (Some (emit sink))

let detach live = Cup_sim.Runner.Live.set_tracer live None
