(** Rendering for {!Cup_metrics.Attribution}: the [cup top] ASCII
    tables, the [--top-out] CSV, the capped-cardinality Prometheus
    exposition, and the [/topk] JSON document.

    Every renderer is deterministic: entries come from
    {!Cup_metrics.Attribution.top} (sorted by weight desc, id asc),
    remainders are integer subtractions from the exact totals, and
    rate figures are folded from integer window counts — so output is
    byte-identical across schedulers, job counts and shard counts
    whenever the underlying attribution state is. *)

val default_k : int
(** 20. *)

val table :
  ?k:int -> Cup_metrics.Attribution.t -> by:Cup_metrics.Attribution.axis ->
  string
(** Rendered ASCII table for one axis: weight and error bound, the
    per-metric counts, unjustified deliveries, and (key axis only)
    EWMA query/miss/overhead rates.  A [_other] row absorbs whatever
    the displayed entries don't account for. *)

val csv_header : string

val csv : ?k:int -> Cup_metrics.Attribution.t -> string
(** All three axes, [csv_header] first, [_other] rows included. *)

val prometheus : ?k:int -> Cup_metrics.Attribution.t -> string
(** Text exposition: [cup_key_attr_total{key=...,metric=...}],
    [cup_node_attr_total], [cup_level_hops_total].  Label cardinality
    is capped at top-[k] ids per family plus one [_other] sink series,
    independent of catalog size. *)

val json : ?k:int -> Cup_metrics.Attribution.t -> Json.t
(** The [/topk] document: per axis, tracked-entry and eviction counts,
    the top-[k] entries (with rates on the key axis), the [_other]
    remainder and the exact totals. *)
