(** Node crash / recovery workload.

    Crashes arrive as a Poisson process; each crash optionally
    schedules one recovery (a replacement node joining) a fixed delay
    later.  Like {!Churn_gen}, the generator emits abstract events in
    nondecreasing time order and the simulation decides which concrete
    node crashes (uniformly among the alive ones), because it owns the
    current membership. *)

type event_kind = Crash | Recover

type event = { at : Cup_dess.Time.t; kind : event_kind }

type t

val create :
  rng:Cup_prng.Rng.t ->
  crash_rate:float ->
  recover_after:float ->
  start:Cup_dess.Time.t ->
  stop:Cup_dess.Time.t ->
  t
(** [crash_rate] in crashes/second (must be [> 0]); [recover_after] is
    the seconds between a crash and its replacement join, with [0.]
    meaning crashed capacity is never replaced.  No event is emitted
    after [stop]. *)

val next : t -> event option
(** Events in nondecreasing time order; [None] when exhausted. *)
