module Time = Cup_dess.Time
module Dist = Cup_prng.Dist

type event_kind = Crash | Recover

type event = { at : Time.t; kind : event_kind }

type t = {
  rng : Cup_prng.Rng.t;
  crash_rate : float;
  recover_after : float;
  stop : Time.t;
  mutable next_crash : Time.t;
  pending_recover : Time.t Queue.t;
      (* scheduled recoveries, oldest first; every crash enqueues one
         at a fixed offset, so FIFO order is time order *)
}

let create ~rng ~crash_rate ~recover_after ~start ~stop =
  if crash_rate <= 0. then invalid_arg "Crash_gen.create: crash_rate must be > 0";
  if recover_after < 0. then
    invalid_arg "Crash_gen.create: recover_after must be >= 0";
  {
    rng;
    crash_rate;
    recover_after;
    stop;
    next_crash = Time.add start (Dist.exponential rng ~rate:crash_rate);
    pending_recover = Queue.create ();
  }

let next t =
  let crash_due = Time.is_finite t.next_crash && Time.(t.next_crash <= t.stop) in
  match Queue.peek_opt t.pending_recover with
  | Some r when ((not crash_due) || Time.(r <= t.next_crash)) ->
      if Time.(r <= t.stop) then begin
        ignore (Queue.pop t.pending_recover);
        Some { at = r; kind = Recover }
      end
      else None
  | _ when crash_due ->
      let at = t.next_crash in
      t.next_crash <- Time.add at (Dist.exponential t.rng ~rate:t.crash_rate);
      if t.recover_after > 0. then
        Queue.add (Time.add at t.recover_after) t.pending_recover;
      Some { at; kind = Crash }
  | _ -> None
