type 'a cell = 'a Sched_cell.cell = {
  time : Time.t;
  seq : int;
  value : 'a;
  mutable cancelled : bool;
}

type handle = Sched_cell.handle = H : 'a cell -> handle

type 'a t = {
  mutable cells : 'a cell array; (* binary heap, slot 0 is the root *)
  mutable size : int;
  mutable live : int;
  mutable next_seq : int;
}

let create () = { cells = [||]; size = 0; live = 0; next_seq = 0 }

let length t = t.live

let is_empty t = t.live = 0

let earlier = Sched_cell.earlier

let swap t i j =
  let tmp = t.cells.(i) in
  t.cells.(i) <- t.cells.(j);
  t.cells.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if earlier t.cells.(i) t.cells.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.size && earlier t.cells.(left) t.cells.(!smallest) then
    smallest := left;
  if right < t.size && earlier t.cells.(right) t.cells.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t cell =
  let cap = Array.length t.cells in
  if t.size = cap then begin
    let new_cap = if cap = 0 then 16 else cap * 2 in
    let cells = Array.make new_cap cell in
    Array.blit t.cells 0 cells 0 t.size;
    t.cells <- cells
  end

let push t ~time value =
  let cell = { time; seq = t.next_seq; value; cancelled = false } in
  t.next_seq <- t.next_seq + 1;
  grow t cell;
  t.cells.(t.size) <- cell;
  t.size <- t.size + 1;
  t.live <- t.live + 1;
  sift_up t (t.size - 1);
  H cell

let cancel t (H cell) =
  if cell.cancelled then false
  else begin
    cell.cancelled <- true;
    t.live <- t.live - 1;
    true
  end

let remove_root t =
  let root = t.cells.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.cells.(0) <- t.cells.(t.size);
    sift_down t 0
  end;
  root

(* Discard tombstoned cells sitting at the root. *)
let rec drain_cancelled t =
  if t.size > 0 && t.cells.(0).cancelled then begin
    ignore (remove_root t);
    drain_cancelled t
  end

let pop t =
  drain_cancelled t;
  if t.size = 0 then None
  else begin
    let cell = remove_root t in
    t.live <- t.live - 1;
    (* Mark the fired cell so a late [cancel] on its handle reports
       failure instead of double-decrementing the live count. *)
    cell.cancelled <- true;
    Some (cell.time, cell.value)
  end

let peek_time t =
  drain_cancelled t;
  if t.size = 0 then None else Some t.cells.(0).time
