(** Binary min-heap of timestamped events.

    The heap orders events by [(time, sequence)] where the sequence
    number is assigned at insertion: two events scheduled for the same
    instant fire in insertion order.  That tie-break is what makes the
    whole simulator deterministic, so it is part of the contract, not an
    implementation detail.

    Cancellation is O(1) by tombstoning: a cancelled event stays in the
    array and is discarded lazily when it reaches the top.

    {!Calendar_queue} implements the same signature (and shares the
    same {!Sched_cell.handle} type), so the engine can swap scheduler
    implementations without changing pop order. *)

type 'a t

type handle = Sched_cell.handle
(** Identifies a scheduled event for cancellation.  Shared with every
    other scheduler implementation. *)

val create : unit -> 'a t

val length : 'a t -> int
(** Number of live (non-cancelled) events. *)

val is_empty : 'a t -> bool

val push : 'a t -> time:Time.t -> 'a -> handle
(** [push t ~time v] schedules [v] at [time] and returns a handle. *)

val cancel : 'a t -> handle -> bool
(** [cancel t h] tombstones the event; returns [false] if it already
    fired or was already cancelled. *)

val pop : 'a t -> (Time.t * 'a) option
(** [pop t] removes and returns the earliest live event. *)

val peek_time : 'a t -> Time.t option
(** Timestamp of the earliest live event, without removing it. *)
