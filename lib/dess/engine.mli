(** Sequential discrete-event simulation engine.

    This replaces the Stanford Narses simulator used by the paper: a
    single virtual clock and an event queue.  Callbacks scheduled with
    {!schedule} run at their timestamp in nondecreasing time order;
    equal timestamps run in scheduling order, so a run is a pure
    function of its inputs and random seed.

    A callback may schedule further events (including at the current
    instant) and may cancel pending ones. *)

type t

type handle
(** A pending event, usable with {!cancel}. *)

type scheduler = [ `Heap | `Calendar ]
(** The event-queue implementation behind an engine.  [`Heap] is the
    binary {!Event_heap}; [`Calendar] is the O(1)-amortized
    {!Calendar_queue}.  Both pop the same [(time, seq)] total order,
    so every run is byte-identical under either scheduler — the choice
    affects wall-clock time only. *)

val default_scheduler : scheduler ref
(** Scheduler used by {!create} when [?scheduler] is omitted.
    Initially [`Heap] (the end-to-end benchmark winner, by a narrow
    margin — see bench/main.ml's [sched] target); flip it to switch
    every subsequently created engine in the process. *)

val create : ?scheduler:scheduler -> unit -> t
(** [create ()] uses [!default_scheduler]. *)

val scheduler : t -> scheduler
(** Which queue implementation this engine was created with. *)

val now : t -> Time.t
(** Current virtual time.  [Time.zero] before the first event. *)

val schedule : ?label:string -> t -> at:Time.t -> (t -> unit) -> handle
(** [schedule t ~at f] runs [f t] at virtual time [at].  Raises
    [Invalid_argument] if [at] is in the past or not finite.

    [label] names the callback for the profiling probes (see
    {!enable_profiling}); it is ignored — and costs nothing — while
    profiling is disabled. *)

val schedule_after : ?label:string -> t -> delay:float -> (t -> unit) -> handle
(** [schedule_after t ~delay f] is [schedule t ~at:(now t + delay) f].
    Requires [delay >= 0.]. *)

val cancel : t -> handle -> bool
(** Cancel a pending event; [false] if it already ran or was cancelled. *)

val stop : t -> unit
(** Stop the current {!run} after the executing callback returns. *)

val run : ?until:Time.t -> ?max_events:int -> t -> unit
(** [run t] executes events until the queue empties, [until] is
    exceeded (events strictly after [until] stay queued and [now]
    becomes [until]), [max_events] callbacks have run, or {!stop} is
    called. *)

val pending : t -> int
(** Number of scheduled, not-yet-fired, not-cancelled events. *)

val events_executed : t -> int
(** Total callbacks run since [create]. *)

(** {1 Profiling probes}

    Optional observability hooks: when enabled, the engine counts
    executed callbacks and accumulates host time per {!schedule}
    label, and tracks the event heap's high-water mark.  When disabled
    (the default) the probes cost nothing — events are pushed and run
    exactly as before, with no wrapping, timing, or bookkeeping.

    Only events scheduled {e while} profiling is enabled are
    attributed to their labels, so enable profiling before scheduling
    the work to be measured. *)

type label_stats = {
  calls : int;  (** callbacks executed under this label *)
  host_seconds : float;  (** summed host wallclock inside them *)
}

type profile = {
  heap_high_water : int;
      (** largest number of simultaneously pending events observed *)
  by_label : (string * label_stats) list;
      (** per-label totals, heaviest (by host time) first *)
}

val enable_profiling : t -> unit
(** Idempotent; an existing profile keeps accumulating. *)

val disable_profiling : t -> unit
(** Stop collecting.  Already-gathered data stays readable via
    {!profile}. *)

val profiling_enabled : t -> bool

val profile : t -> profile option
(** Snapshot of the gathered data; [None] if profiling was never
    enabled on this engine. *)

val pp_profile : Format.formatter -> profile -> unit
