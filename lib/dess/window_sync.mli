(** Conservative time-window synchronizer for sharded simulation.

    A single discrete-event run can be partitioned across shards when
    every cross-node message takes at least one fixed delay [d] (the
    lookahead, in conservative parallel-DES terms): quantize virtual
    time into windows of width [d], and a message {e emitted} during
    window [w] can only be {e delivered} in window [w + 1] or later.
    Then the state reached at the end of window [w] is independent of
    how nodes are partitioned into shards — each shard can process its
    own window-[w] events in isolation, and the shards exchange their
    emitted messages at the window barrier.

    This module is the exchange buffer: a windows x shards matrix of
    message bins.  It is deliberately {e not} thread-safe — the scale
    runner accumulates each shard's outbox privately during the
    parallel phase and posts everything from the coordinator between
    barriers, in shard order, which keeps bin contents deterministic.

    Messages posted to a window beyond the horizon (at or past
    [windows]) are counted in {!dropped} rather than stored: the run is
    ending and nothing can deliver them.  The drop decision depends
    only on the emission window, never on the shard layout, so it
    preserves the byte-identity contract. *)

type 'a t

val create : shards:int -> windows:int -> 'a t
(** Raises [Invalid_argument] unless [shards >= 1] and [windows >= 1]. *)

val post : 'a t -> shard:int -> window:int -> 'a -> unit
(** Append a message to [shard]'s bin for [window].  Posting at a
    window [>= windows] drops the message (see above). *)

val drain : 'a t -> shard:int -> window:int -> 'a list
(** Take and clear [shard]'s bin for [window], in posting order. *)

val pending : 'a t -> int
(** Messages posted but not yet drained. *)

val dropped : 'a t -> int
(** Messages discarded because they were posted past the horizon. *)
