type 'a t = {
  shards : int;
  windows : int;
  bins : 'a list array array; (* [window].(shard), newest first *)
  mutable pending : int;
  mutable dropped : int;
}

let create ~shards ~windows =
  if shards < 1 then invalid_arg "Window_sync.create: shards must be >= 1";
  if windows < 1 then invalid_arg "Window_sync.create: windows must be >= 1";
  {
    shards;
    windows;
    bins = Array.init windows (fun _ -> Array.make shards []);
    pending = 0;
    dropped = 0;
  }

let check_shard t shard =
  if shard < 0 || shard >= t.shards then
    invalid_arg "Window_sync: shard out of range"

let post t ~shard ~window msg =
  check_shard t shard;
  if window < 0 then invalid_arg "Window_sync.post: negative window";
  if window >= t.windows then t.dropped <- t.dropped + 1
  else begin
    t.bins.(window).(shard) <- msg :: t.bins.(window).(shard);
    t.pending <- t.pending + 1
  end

let drain t ~shard ~window =
  check_shard t shard;
  if window < 0 || window >= t.windows then []
  else begin
    let msgs = t.bins.(window).(shard) in
    t.bins.(window).(shard) <- [];
    t.pending <- t.pending - List.length msgs;
    List.rev msgs
  end

let pending t = t.pending
let dropped t = t.dropped
