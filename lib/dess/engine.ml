type label_stats = { calls : int; host_seconds : float }
type profile = { heap_high_water : int; by_label : (string * label_stats) list }

(* Mutable accumulator behind the read-only [profile] snapshot. *)
type probe = {
  mutable collecting : bool;
  mutable high_water : int;
  labels : (string, int ref * float ref) Hashtbl.t;
}

type scheduler = [ `Heap | `Calendar ]

(* Process-wide default used by [create] when no [?scheduler] is
   given.  On the end-to-end Table 1 grid (bench/main.ml's [sched]
   target) the heap and the calendar queue are within ~2% of each
   other — CUP queues stay shallow, so the heap's log factor is tiny —
   with the heap ahead in most paired runs, so it is the shipped
   default.  The ref exists so harnesses can flip every engine in the
   process (e.g. bench --scheduler, CI's sched-equivalence job)
   without threading a parameter through every scenario
   constructor. *)
let default_scheduler : scheduler ref = ref `Heap

(* Both implementations share Sched_cell, so dispatch is one match per
   queue operation and handles need no wrapping. *)
type 'a queue =
  | Heap of 'a Event_heap.t
  | Calendar of 'a Calendar_queue.t

type t = {
  mutable clock : Time.t;
  mutable executed : int;
  mutable stopping : bool;
  mutable probe : probe option;
  queue : (t -> unit) queue;
}

type handle = Sched_cell.handle

let q_push q ~time v =
  match q with
  | Heap h -> Event_heap.push h ~time v
  | Calendar c -> Calendar_queue.push c ~time v

let q_pop = function
  | Heap h -> Event_heap.pop h
  | Calendar c -> Calendar_queue.pop c

let q_peek_time = function
  | Heap h -> Event_heap.peek_time h
  | Calendar c -> Calendar_queue.peek_time c

let q_length = function
  | Heap h -> Event_heap.length h
  | Calendar c -> Calendar_queue.length c

let q_cancel q handle =
  match q with
  | Heap h -> Event_heap.cancel h handle
  | Calendar c -> Calendar_queue.cancel c handle

let create ?scheduler () =
  let scheduler =
    match scheduler with Some s -> s | None -> !default_scheduler
  in
  {
    clock = Time.zero;
    executed = 0;
    stopping = false;
    probe = None;
    queue =
      (match scheduler with
      | `Heap -> Heap (Event_heap.create ())
      | `Calendar -> Calendar (Calendar_queue.create ()));
  }

let scheduler t =
  match t.queue with Heap _ -> `Heap | Calendar _ -> `Calendar

let now t = t.clock

let default_label = "(unlabeled)"

let label_cell probe label =
  match Hashtbl.find_opt probe.labels label with
  | Some cell -> cell
  | None ->
      let cell = (ref 0, ref 0.) in
      Hashtbl.replace probe.labels label cell;
      cell

(* Wrap a callback so its execution is attributed to [label].  Only
   used while profiling is enabled: the disabled path pushes [f]
   untouched, so probes are zero-cost when off. *)
let instrument probe label f t =
  if probe.collecting then begin
    let calls, seconds = label_cell probe label in
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        incr calls;
        seconds := !seconds +. (Unix.gettimeofday () -. t0))
      (fun () -> f t)
  end
  else f t

let schedule ?label t ~at f =
  if not (Time.is_finite at) then
    invalid_arg "Engine.schedule: time must be finite";
  if Time.(at < t.clock) then
    invalid_arg "Engine.schedule: cannot schedule in the past";
  (* One branch on the common (profiling-off) path: a probe that
     exists but is not collecting takes the same bare push as no probe
     at all, instead of wrapping the callback just to test
     [collecting] again at execution time. *)
  match t.probe with
  | Some probe when probe.collecting ->
      let label = Option.value label ~default:default_label in
      let handle = q_push t.queue ~time:at (instrument probe label f) in
      let len = q_length t.queue in
      if len > probe.high_water then probe.high_water <- len;
      handle
  | Some _ | None -> q_push t.queue ~time:at f

let schedule_after ?label t ~delay f =
  if delay < 0. then invalid_arg "Engine.schedule_after: negative delay";
  schedule ?label t ~at:(Time.add t.clock delay) f

let cancel t handle = q_cancel t.queue handle

let stop t = t.stopping <- true

let run ?(until = Time.infinity) ?(max_events = max_int) t =
  t.stopping <- false;
  let budget = ref max_events in
  let rec loop () =
    if t.stopping || !budget <= 0 then ()
    else
      match q_peek_time t.queue with
      | None -> ()
      | Some time when Time.(time > until) ->
          if Time.is_finite until then t.clock <- Time.max t.clock until
      | Some _ -> (
          match q_pop t.queue with
          | None -> ()
          | Some (time, f) ->
              t.clock <- time;
              t.executed <- t.executed + 1;
              decr budget;
              f t;
              loop ())
  in
  loop ()

let pending t = q_length t.queue

let events_executed t = t.executed

let enable_profiling t =
  match t.probe with
  | Some probe -> probe.collecting <- true
  | None ->
      t.probe <-
        Some { collecting = true; high_water = 0; labels = Hashtbl.create 16 }

let disable_profiling t =
  match t.probe with Some probe -> probe.collecting <- false | None -> ()

let profiling_enabled t =
  match t.probe with Some probe -> probe.collecting | None -> false

let profile t =
  match t.probe with
  | None -> None
  | Some probe ->
      let by_label =
        Hashtbl.fold
          (fun label (calls, seconds) acc ->
            (label, { calls = !calls; host_seconds = !seconds }) :: acc)
          probe.labels []
        |> List.sort (fun (la, a) (lb, b) ->
               match Float.compare b.host_seconds a.host_seconds with
               | 0 -> String.compare la lb
               | c -> c)
      in
      Some { heap_high_water = probe.high_water; by_label }

let pp_profile fmt p =
  Format.fprintf fmt "@[<v>event-heap high water: %d pending@," p.heap_high_water;
  List.iter
    (fun (label, s) ->
      Format.fprintf fmt "%-18s %8d calls  %8.3f ms host@," label s.calls
        (1000. *. s.host_seconds))
    p.by_label;
  Format.fprintf fmt "@]"
