(* Brown-style calendar queue (R. Brown, CACM 1988): an array of
   buckets, each covering a [width]-second slice of the virtual
   timeline, wrapping around like days on a desk calendar.  An event at
   time [s] lives in bucket [floor(s / width) mod nbuckets]; dequeue
   sweeps forward from the current position, so when the bucket width
   matches the event density both enqueue and dequeue are O(1)
   amortized.  CUP workloads are dominated by near-future timers (hop
   deliveries, expiries, channel drains), the calendar's best case.

   Determinism contract: pop order is the exact [(time, seq)] total
   order of {!Sched_cell}, identical to {!Event_heap}.  Two events with
   equal times always land in the same bucket (same [floor(s/width)]),
   and bucket lists are kept sorted by [(time, seq)], so the tie-break
   never depends on bucket geometry.  Width re-tuning only moves cells
   between buckets; it cannot reorder pops.

   Cancellation is O(1) tombstoning, exactly as in the heap: the cell
   is flagged and discarded when it surfaces at the head of its bucket
   during a sweep. *)

type 'a cell = 'a Sched_cell.cell = {
  time : Time.t;
  seq : int;
  value : 'a;
  mutable cancelled : bool;
}

type handle = Sched_cell.handle = H : 'a cell -> handle

type 'a t = {
  mutable buckets : 'a cell list array; (* each sorted by (time, seq) *)
  mutable width : float; (* seconds of timeline per bucket *)
  mutable size : int; (* stored cells, tombstones included *)
  mutable live : int; (* non-cancelled cells *)
  mutable next_seq : int;
  mutable pos : float; (* lower bound on every live event's time *)
}

let min_buckets = 8
let min_width = 1e-9

let create () =
  {
    buckets = Array.make min_buckets [];
    width = 1.;
    size = 0;
    live = 0;
    next_seq = 0;
    pos = 0.;
  }

let length t = t.live
let is_empty t = t.live = 0

let earlier = Sched_cell.earlier

(* Sorted insertion; buckets hold ~2 cells when the width is tuned, so
   the scan is short. *)
let rec insert_sorted cell = function
  | [] -> [ cell ]
  | c :: _ as l when earlier cell c -> cell :: l
  | c :: rest -> c :: insert_sorted cell rest

let bucket_index t s = int_of_float (s /. t.width) mod Array.length t.buckets

(* Re-tune the width to Brown's rule of thumb — a few events per
   bucket — then redistribute.  Called with the cells already pulled
   out of the old bucket array.

   The naive rule, [3 * (max - min) / count], collapses under
   repair-heavy schedules: fault workloads mix dense near-future timers
   (10 ms hop deliveries) with a handful of far-future cells (entry
   expiries, repair deadlines hundreds of seconds out), and those
   outliers inflate the spread until hundreds of dense events share one
   bucket, turning every sorted insert O(bucket).  So the width comes
   from the {e bulk} density instead: the inter-decile spread of a
   sorted strided sample, scaled by the fraction of events it covers.
   On an outlier-free timeline the deciles span the whole spread and
   the formula reduces exactly to Brown's rule.

   Determinism: the sample is strided, not random, and width only
   changes bucket geometry — pop order is the (time, seq) total order
   regardless (see the contract above). *)
let max_width_sample = 256

let retune t new_nbuckets cells =
  (match cells with
  | _ :: _ :: _ ->
      let ts =
        Array.of_list (List.map (fun c -> Time.to_seconds c.time) cells)
      in
      let n = Array.length ts in
      let stride = 1 + ((n - 1) / max_width_sample) in
      let k = 1 + ((n - 1) / stride) in
      let sample = Array.init k (fun i -> ts.(i * stride)) in
      Array.sort Float.compare sample;
      let lo_i = k / 10 in
      let hi_i = k - 1 - lo_i in
      let bulk = sample.(hi_i) -. sample.(lo_i) in
      let covered =
        float_of_int (hi_i - lo_i) /. float_of_int (Stdlib.max 1 (k - 1))
      in
      let spread = sample.(k - 1) -. sample.(0) in
      if bulk > 0. then
        t.width <-
          Float.max min_width (3. *. bulk /. (covered *. float_of_int n))
      else if spread > 0. then
        (* Bulk degenerate (most events at one instant) but outliers
           exist: fall back to the full-spread rule. *)
        t.width <- Float.max min_width (3. *. spread /. float_of_int n)
  | _ -> ());
  t.buckets <- Array.make new_nbuckets [];
  t.size <- 0;
  List.iter
    (fun c ->
      let idx = bucket_index t (Time.to_seconds c.time) in
      t.buckets.(idx) <- insert_sorted c t.buckets.(idx);
      t.size <- t.size + 1)
    cells

let live_cells t =
  Array.fold_right
    (fun bucket acc ->
      List.fold_right
        (fun c acc -> if c.cancelled then acc else c :: acc)
        bucket acc)
    t.buckets []

let resize t new_nbuckets = retune t new_nbuckets (live_cells t)

let push t ~time value =
  let cell = { time; seq = t.next_seq; value; cancelled = false } in
  t.next_seq <- t.next_seq + 1;
  let s = Time.to_seconds time in
  let idx = bucket_index t s in
  t.buckets.(idx) <- insert_sorted cell t.buckets.(idx);
  t.size <- t.size + 1;
  t.live <- t.live + 1;
  if s < t.pos then t.pos <- s;
  if t.size > 2 * Array.length t.buckets then
    resize t (2 * Array.length t.buckets);
  H cell

let cancel t (H cell) =
  if cell.cancelled then false
  else begin
    cell.cancelled <- true;
    t.live <- t.live - 1;
    true
  end

(* Drop tombstones sitting at the head of one bucket. *)
let rec prune t idx =
  match t.buckets.(idx) with
  | c :: rest when c.cancelled ->
      t.buckets.(idx) <- rest;
      t.size <- t.size - 1;
      prune t idx
  | _ -> ()

(* Fallback when a full sweep finds no event within one calendar year:
   the queue is sparse relative to the width, so scan every bucket head
   for the global minimum.  Equal times share a bucket, so the head
   comparison is already the full (time, seq) order. *)
let direct_search t =
  let best = ref None in
  for idx = 0 to Array.length t.buckets - 1 do
    prune t idx;
    match t.buckets.(idx) with
    | c :: _ -> (
        match !best with
        | Some (bc, _) when earlier bc c -> ()
        | Some _ | None -> best := Some (c, idx))
    | [] -> ()
  done;
  match !best with
  | Some (c, idx) ->
      t.pos <- Time.to_seconds c.time;
      Some idx
  | None -> None

(* Locate the bucket whose head is the earliest live event, advancing
   [pos].  The sweep starts at the bucket containing [pos] (a lower
   bound on every live time) and inspects each virtual bucket's window
   once; an event found inside its window is the global minimum because
   earlier windows were already ruled out and later occupants of the
   same physical bucket belong to later calendar years. *)
let find_min t =
  if t.live = 0 then begin
    (* An all-cancelled calendar must report empty without scanning on
       every call: flush the tombstones now. *)
    if t.size > 0 then begin
      Array.fill t.buckets 0 (Array.length t.buckets) [];
      t.size <- 0
    end;
    None
  end
  else begin
    let n = Array.length t.buckets in
    let rec sweep vb steps =
      if steps = n then direct_search t
      else begin
        let idx = vb mod n in
        prune t idx;
        match t.buckets.(idx) with
        | c :: _ when Time.to_seconds c.time < float_of_int (vb + 1) *. t.width
          ->
            t.pos <- Time.to_seconds c.time;
            Some idx
        | _ -> sweep (vb + 1) (steps + 1)
      end
    in
    sweep (int_of_float (t.pos /. t.width)) 0
  end

let pop t =
  match find_min t with
  | None -> None
  | Some idx -> (
      match t.buckets.(idx) with
      | c :: rest ->
          t.buckets.(idx) <- rest;
          t.size <- t.size - 1;
          t.live <- t.live - 1;
          (* Mark the fired cell so a late [cancel] on its handle
             reports failure instead of double-decrementing the live
             count. *)
          c.cancelled <- true;
          let n = Array.length t.buckets in
          if n > min_buckets && t.size < n / 2 then resize t (n / 2);
          Some (c.time, c.value)
      | [] -> assert false (* find_min returned a pruned, nonempty bucket *))

let peek_time t =
  match find_min t with
  | None -> None
  | Some idx -> (
      match t.buckets.(idx) with
      | c :: _ -> Some c.time
      | [] -> assert false)
