(** Bucketed calendar queue of timestamped events (Brown 1988).

    Same contract as {!Event_heap} — the two are interchangeable
    behind {!Engine}:

    - pop order is the exact [(time, seq)] total order: equal
      timestamps fire in insertion order, byte-identically to the
      heap;
    - cancellation is O(1) tombstoning via the shared
      {!Sched_cell.handle};
    - [length] counts live (non-cancelled) events only.

    Enqueue and dequeue are O(1) amortized when the bucket width
    matches the event density; the width is re-tuned from the live
    events' time spread every time the bucket array resizes.  Times
    must be non-negative (simulation time always is). *)

type 'a t

type handle = Sched_cell.handle
(** Identifies a scheduled event for cancellation.  The same type as
    {!Event_heap.handle}. *)

val create : unit -> 'a t

val length : 'a t -> int
(** Number of live (non-cancelled) events. *)

val is_empty : 'a t -> bool

val push : 'a t -> time:Time.t -> 'a -> handle
(** [push t ~time v] schedules [v] at [time] and returns a handle. *)

val cancel : 'a t -> handle -> bool
(** [cancel t h] tombstones the event; returns [false] if it already
    fired or was already cancelled. *)

val pop : 'a t -> (Time.t * 'a) option
(** [pop t] removes and returns the earliest live event. *)

val peek_time : 'a t -> Time.t option
(** Timestamp of the earliest live event, without removing it. *)
