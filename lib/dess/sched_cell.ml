(* The scheduled-event cell shared by every scheduler implementation.

   Both {!Event_heap} and {!Calendar_queue} store events in these
   cells and hand out the same [handle] type, so the engine can switch
   scheduler without wrapping handles (no per-event allocation on top
   of the cell itself) and cancellation is O(1) tombstoning in both.

   The [(time, seq)] pair is the total order every scheduler must pop
   in: [seq] is assigned at insertion, so equal timestamps fire in
   insertion order.  That tie-break is what makes a whole simulation
   run a pure function of its inputs — it is part of the scheduler
   contract, not an implementation detail. *)

type 'a cell = {
  time : Time.t;
  seq : int;
  value : 'a;
  mutable cancelled : bool;
}

type handle = H : 'a cell -> handle

(* [earlier a b] is the scheduler total order: time, then insertion
   sequence. *)
let earlier a b =
  match Time.compare a.time b.time with 0 -> a.seq < b.seq | c -> c < 0
