(** Labeled metrics with deterministic export.

    A registry holds named series — counters, gauges, and log-scale
    latency {!Histogram}s — optionally distinguished by label pairs
    (e.g. [("level", "2")]).  Registration is find-or-create: asking
    for the same (name, labels) twice returns the same instance, so
    hot paths can resolve a handle once and update it without further
    lookups.

    Every export walks series sorted by (name, labels) and prints
    floats in a fixed shortest-round-trip form, so registries holding
    equal values serialize to byte-identical text.  Combined with
    {!merge} being exact on counters and histogram bin counts, this
    lets {!Cup_parallel} fan-outs fold per-seed registries in seed
    order and byte-compare the result across schedulers and job
    counts. *)

type t

val create : unit -> t

(** {1 Series}

    Registering the same name with two different kinds (or the same
    (name, labels) with conflicting kinds) raises [Invalid_argument].
    [help] is kept from the first registration that supplies it. *)

type counter

val counter : t -> ?help:string -> ?labels:(string * string) list -> string -> counter
val inc : ?by:int -> counter -> unit
val counter_value : counter -> int

type gauge

val gauge : t -> ?help:string -> ?labels:(string * string) list -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram :
  t ->
  ?help:string ->
  ?labels:(string * string) list ->
  ?min_value:float ->
  ?max_value:float ->
  ?bins_per_decade:int ->
  string ->
  Histogram.t
(** Bin-configuration arguments apply on first registration only (see
    {!Histogram.create} for defaults). *)

val observe : Histogram.t -> float -> unit
(** Alias for {!Histogram.add}. *)

val series_count : t -> int

(** {1 Combination} *)

val merge : t -> t -> t
(** Pointwise union: counters sum, histograms merge exactly
    ({!Histogram.merge}; identical bin configs required), gauges keep
    the maximum — the one pointwise gauge combination that needs no
    ordering information.  Inputs are not mutated. *)

(** {1 Export} *)

val to_prometheus : t -> string
(** Prometheus text exposition (v0.0.4): [# HELP]/[# TYPE] headers,
    histogram series expanded into cumulative [_bucket{le="..."}]
    lines plus [_sum]/[_count]. *)

val csv_header : string list

val csv_rows : t -> string list list
(** One row per series, matching {!csv_header}; write with
    [Cup_report.Csv.write]. *)

val pp : Format.formatter -> t -> unit
