(** Hop-cost accounting — the cost model of Section 3.1.

    Every message crossing an overlay edge costs one hop.  Hops are
    charged to one of two buckets:

    - {b miss cost}: query hops plus the hops of first-time updates
      that answer a pending query (the "D hops up, D hops down" of the
      paper's cost-per-query analysis);
    - {b overhead}: refresh/delete/append propagation hops, clear-bit
      hops, and first-time-update hops pushed proactively to
      interested neighbors that were not waiting on a query.

    Total cost is their sum.  In standard caching no updates or
    clear-bits flow, so total cost = miss cost, exactly as the paper
    notes.

    A {e miss} is a locally-posted query that could not be answered
    synchronously from a fresh cache entry (a first-time miss or a
    freshness miss); its latency runs from posting to answer
    delivery. *)

type t

val create : unit -> t

(** {1 Recording} *)

val record_query_hop : t -> unit
val record_first_time_hop : t -> answering:bool -> unit
(** [answering] is [true] when the receiving node had its
    Pending-First-Update flag set for the key — the hop is part of
    delivering an answer, hence miss cost; otherwise it is proactive
    propagation, hence overhead. *)

val record_update_hop : t -> [ `Refresh | `Delete | `Append ] -> unit
val record_clear_bit_hop : t -> unit
val record_hit : t -> unit
val record_miss : t -> hops:float -> unit
(** [hops] is the miss latency already expressed in overlay hops (the
    unit the paper reports): latency in seconds divided by the hop
    delay, or [0.] under a zero hop delay.  Branch-free: callers
    precompute the conversion factor once per run. *)

val record_dropped_update : t -> unit
(** An update suppressed by reduced outgoing capacity. *)

val record_lost_message : t -> unit
(** A message dropped in transit: wire loss or a crashed receiver. *)

val record_duplicate : t -> unit
(** The channel delivered an extra copy of a message (duplication
    injection).  The copy itself also goes through the transport
    recorders — this counts duplication events, it is not a
    conservation term. *)

val record_retry : t -> unit
(** A retransmission or re-issued interest after a loss/crash. *)

val record_repair : t -> unit
(** A broken propagation edge successfully healed: a re-routed message
    delivered, or a re-subscription that restored the update flow. *)

val record_unreachable : t -> unit
(** A lookup or repair abandoned: routing returned
    {!Cup_overlay.Route.Unreachable}, retransmissions were exhausted,
    or a subscription degraded to expiration-based polling. *)

(** {1 Transport conservation}

    Message-level accounting for the conservation identity

    {[ sent = delivered + transport_lost + in_flight ]}

    maintained invariantly: every recorder moves one message between
    exactly two terms.  Unlike {!record_lost_message} (a fault-model
    statistic), these count {e every} message handed to the simulated
    transport — queries, updates and clear-bits alike — so an auditor
    can detect a delivery path that drops messages without accounting
    for them ([in_flight] stuck nonzero after the engine drains). *)

val record_sent : t -> unit
(** A message handed to the transport ([sent]++, [in_flight]++). *)

val record_delivered : t -> unit
(** A message reached a live receiver ([delivered]++, [in_flight]--). *)

val record_transport_lost : t -> unit
(** A message dropped on the wire or addressed to a dead receiver
    ([transport_lost]++, [in_flight]--). *)

val expose_transport : t -> unit
(** Make {!pp} print the transport line.  Off by default so existing
    output shapes (and their byte-compare suites) are unchanged;
    turned on when a conservation check is live ([cup run --audit],
    [bench faults]). *)

val set_route_cache_stats : t -> hits:int -> misses:int -> unit
(** Copy the overlay's next-hop cache tally
    ({!Cup_overlay.Net.route_cache_stats}) into this counter set at run
    end.  Never printed by {!pp} — cache effectiveness varies across
    cache configurations whose protocol results are byte-identical, so
    it stays out of every deterministic surface and is read back only
    through {!route_cache_hits}/{!route_cache_misses} (bench reports,
    diagnostics). *)

(** {1 Reading} *)

val query_hops : t -> int
val first_time_answer_hops : t -> int
val first_time_proactive_hops : t -> int
val refresh_hops : t -> int
val delete_hops : t -> int
val append_hops : t -> int
val clear_bit_hops : t -> int

val miss_cost : t -> int
val overhead_cost : t -> int
val total_cost : t -> int

val hits : t -> int
val misses : t -> int
val local_queries : t -> int
val dropped_updates : t -> int
val lost_messages : t -> int
val duplicated : t -> int
val retries : t -> int
val repairs : t -> int
val unreachable : t -> int
val sent : t -> int
val delivered : t -> int
val transport_lost : t -> int
val in_flight : t -> int
val route_cache_hits : t -> int
val route_cache_misses : t -> int

val miss_latency_hops : t -> Welford.t
(** Distribution of per-miss latencies, in hops. *)

val miss_latency_histogram : t -> Histogram.t
(** The same distribution with tail quantiles. *)

val miss_latency_percentile : t -> float -> float
(** [miss_latency_percentile t 0.99] is the p99 per-miss latency in
    hops (upper-bound estimate; see {!Histogram.quantile}). *)

val avg_miss_latency_hops : t -> float

val merge : t -> t -> t
(** Pointwise sum (latency distributions are combined). *)

val pp : Format.formatter -> t -> unit
