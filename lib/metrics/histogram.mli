(** Fixed-memory histograms with approximate quantiles.

    Geometric (log-scale) bins over a positive value range: constant
    memory regardless of sample count, with relative quantile error
    bounded by the bin growth factor.  Used for per-miss latency
    distributions, where averages (all the paper reports) hide the
    tail that synchronized expirations produce. *)

type t

val create : ?min_value:float -> ?max_value:float -> ?bins_per_decade:int -> unit -> t
(** Defaults: [min_value = 0.1], [max_value = 1e6],
    [bins_per_decade = 20] (≈ 12 % relative resolution).  Values below
    [min_value] land in the underflow bin, above [max_value] in the
    overflow bin. *)

val add : t -> float -> unit
val count : t -> int
val total : t -> float

val quantile : t -> float -> float
(** [quantile t q] for [q] in [\[0, 1\]]: an upper bound of the bin
    containing the [q]-th sample.  [0.] when empty.  Raises
    [Invalid_argument] outside [\[0, 1\]]. *)

val mean : t -> float
(** Exact (tracked separately from the bins). *)

val merge : t -> t -> t
(** Requires identical bin configurations. *)

val config : t -> float * float * int
(** [(min_value, max_value, bins_per_decade)]. *)

val buckets : t -> (float * int) list
(** Occupied bins as [(upper_bound, count)], ascending; the overflow
    bin's bound is [infinity].  Counts are per-bin (not cumulative). *)

val pp : Format.formatter -> t -> unit
(** One-line summary: count, mean, p50/p90/p99/max estimates. *)
