(* A labeled metrics registry with deterministic export.

   Series are keyed by (name, sorted labels); every read path —
   Prometheus text, CSV rows, pp — walks series in that sorted order,
   so two registries holding equal values print byte-identical text no
   matter the order metrics were registered or updated in.  That is
   what lets CI byte-compare [--metrics-out] dumps across schedulers
   and job counts. *)

type counter = { mutable c : int }
type gauge = { mutable g : float }

type metric =
  | Counter of counter
  | Gauge of gauge
  | Hist of Histogram.t

type series = { name : string; labels : (string * string) list }

type t = {
  tbl : (series, metric) Hashtbl.t;
  help : (string, string) Hashtbl.t; (* name -> help text *)
}

let create () = { tbl = Hashtbl.create 32; help = Hashtbl.create 32 }

let canonical_labels labels =
  List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) labels

let series name labels = { name; labels = canonical_labels labels }

let set_help t name = function
  | None -> ()
  | Some h -> if not (Hashtbl.mem t.help name) then Hashtbl.replace t.help name h

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Hist _ -> "histogram"

let clash s existing requested =
  invalid_arg
    (Printf.sprintf "Registry: %s already registered as a %s, requested as %s"
       s.name (kind_name existing) requested)

let counter t ?help ?(labels = []) name =
  let s = series name labels in
  set_help t name help;
  match Hashtbl.find_opt t.tbl s with
  | Some (Counter c) -> c
  | Some m -> clash s m "counter"
  | None ->
      let c = { c = 0 } in
      Hashtbl.replace t.tbl s (Counter c);
      c

let gauge t ?help ?(labels = []) name =
  let s = series name labels in
  set_help t name help;
  match Hashtbl.find_opt t.tbl s with
  | Some (Gauge g) -> g
  | Some m -> clash s m "gauge"
  | None ->
      let g = { g = 0. } in
      Hashtbl.replace t.tbl s (Gauge g);
      g

let histogram t ?help ?(labels = []) ?min_value ?max_value ?bins_per_decade
    name =
  let s = series name labels in
  set_help t name help;
  match Hashtbl.find_opt t.tbl s with
  | Some (Hist h) -> h
  | Some m -> clash s m "histogram"
  | None ->
      let h = Histogram.create ?min_value ?max_value ?bins_per_decade () in
      Hashtbl.replace t.tbl s (Hist h);
      h

let inc ?(by = 1) c = c.c <- c.c + by
let counter_value c = c.c
let set g v = g.g <- v
let gauge_value g = g.g
let observe h v = Histogram.add h v

let series_count t = Hashtbl.length t.tbl

(* {2 Merge} *)

(* Pointwise: counters sum, histograms merge exactly (bin counts are
   integers, so merging per-seed registries in seed order is
   reproducible), gauges keep the maximum — the only pointwise
   combination that is order-independent without extra state. *)
let merge a b =
  let out = create () in
  let copy_help src =
    Hashtbl.iter
      (fun name h ->
        if not (Hashtbl.mem out.help name) then Hashtbl.replace out.help name h)
      src.help
  in
  copy_help a;
  copy_help b;
  let add_all src =
    Hashtbl.iter
      (fun s m ->
        match (Hashtbl.find_opt out.tbl s, m) with
        | None, Counter c -> Hashtbl.replace out.tbl s (Counter { c = c.c })
        | None, Gauge g -> Hashtbl.replace out.tbl s (Gauge { g = g.g })
        | None, Hist h ->
            let min_value, max_value, bins_per_decade = Histogram.config h in
            let fresh =
              Histogram.create ~min_value ~max_value ~bins_per_decade ()
            in
            Hashtbl.replace out.tbl s (Hist (Histogram.merge fresh h))
        | Some (Counter acc), Counter c -> acc.c <- acc.c + c.c
        | Some (Gauge acc), Gauge g -> acc.g <- Float.max acc.g g.g
        | Some (Hist acc), Hist h ->
            Hashtbl.replace out.tbl s (Hist (Histogram.merge acc h))
        | Some existing, m -> clash s existing (kind_name m))
      src.tbl
  in
  add_all a;
  add_all b;
  out

(* {2 Export} *)

let sorted_series t =
  let cmp_labels la lb =
    compare
      (List.map (fun (k, v) -> (k, v)) la)
      (List.map (fun (k, v) -> (k, v)) lb)
  in
  List.sort
    (fun (sa, _) (sb, _) ->
      match String.compare sa.name sb.name with
      | 0 -> cmp_labels sa.labels sb.labels
      | c -> c)
    (Hashtbl.fold (fun s m acc -> (s, m) :: acc) t.tbl [])

(* Shortest decimal form that round-trips; deterministic for a given
   float, which is all byte-compared exports need. *)
let float_str f =
  if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.0f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let escape_label_value v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let label_block labels =
  match labels with
  | [] -> ""
  | _ ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
             labels)
      ^ "}"

(* Prometheus [le] label appended after the series' own labels. *)
let bucket_block labels le =
  let le_s = if le = Float.infinity then "+Inf" else float_str le in
  label_block (labels @ [ ("le", le_s) ])

let to_prometheus t =
  let buf = Buffer.create 1024 in
  let seen_header = Hashtbl.create 16 in
  List.iter
    (fun (s, m) ->
      if not (Hashtbl.mem seen_header s.name) then begin
        Hashtbl.replace seen_header s.name ();
        (match Hashtbl.find_opt t.help s.name with
        | Some h -> Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" s.name h)
        | None -> ());
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" s.name (kind_name m))
      end;
      match m with
      | Counter c ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" s.name (label_block s.labels) c.c)
      | Gauge g ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" s.name (label_block s.labels)
               (float_str g.g))
      | Hist h ->
          let cumulative = ref 0 in
          List.iter
            (fun (upper, count) ->
              if upper < Float.infinity then begin
                cumulative := !cumulative + count;
                Buffer.add_string buf
                  (Printf.sprintf "%s_bucket%s %d\n" s.name
                     (bucket_block s.labels upper)
                     !cumulative)
              end)
            (Histogram.buckets h);
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %d\n" s.name
               (bucket_block s.labels Float.infinity)
               (Histogram.count h));
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" s.name (label_block s.labels)
               (float_str (Histogram.total h)));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" s.name (label_block s.labels)
               (Histogram.count h)))
    (sorted_series t);
  Buffer.contents buf

let csv_header =
  [
    "metric"; "labels"; "type"; "value"; "count"; "sum"; "p50"; "p90"; "p99";
    "max";
  ]

let csv_rows t =
  List.map
    (fun (s, m) ->
      let labels =
        String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) s.labels)
      in
      match m with
      | Counter c ->
          [ s.name; labels; "counter"; string_of_int c.c; ""; ""; ""; ""; ""; "" ]
      | Gauge g ->
          [ s.name; labels; "gauge"; float_str g.g; ""; ""; ""; ""; ""; "" ]
      | Hist h ->
          let q p = float_str (Histogram.quantile h p) in
          [
            s.name;
            labels;
            "histogram";
            "";
            string_of_int (Histogram.count h);
            float_str (Histogram.total h);
            q 0.5;
            q 0.9;
            q 0.99;
            q 1.0;
          ])
    (sorted_series t)

let pp fmt t =
  List.iter
    (fun (s, m) ->
      match m with
      | Counter c ->
          Format.fprintf fmt "%s%s = %d@." s.name (label_block s.labels) c.c
      | Gauge g ->
          Format.fprintf fmt "%s%s = %s@." s.name (label_block s.labels)
            (float_str g.g)
      | Hist h ->
          Format.fprintf fmt "%s%s: %a@." s.name (label_block s.labels)
            Histogram.pp h)
    (sorted_series t)
