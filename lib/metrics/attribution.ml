module Metric = struct
  let queries = 0
  let hits = 1
  let misses = 2
  let miss_hops = 3
  let overhead_hops = 4
  let deliveries = 5
  let justified = 6
  let count = 7

  let names =
    [|
      "queries";
      "hits";
      "misses";
      "miss_hops";
      "overhead_hops";
      "deliveries";
      "justified";
    |]

  let name i = names.(i)
end

module Sketch = struct
  (* Space-saving: at capacity, an unseen id replaces a minimum-weight
     entry and inherits its weight as the error bound.

     The structure is the Metwally stream-summary: entries live in
     doubly-linked FIFO lists hanging off a doubly-linked chain of
     weight buckets kept in increasing order.  A unit-weight add —
     the only kind the simulator issues — detaches the entry from its
     bucket and appends it to the adjacent one (creating or freeing a
     bucket as needed), and the eviction victim is the FIFO head of
     the minimum bucket: every operation is O(1) and the victim is a
     deterministic function of the operation stream, which is what the
     byte-identity contract needs.  A min-heap gave the same contract
     but cost an O(log K) sift on {e every} add — on the scale
     runner's delivery path (millions of adds, nearly all evictions
     once the id space exceeds K) the sift alone pushed attribution
     overhead to ~20% of runner throughput.

     The layout is flat int arrays with interleaved records rather
     than one array per field: under a scale run the simulator's node
     sweep evicts the sketch from cache between adds, so the dominant
     cost is touched cache lines, not instructions.  An entry is 16
     consecutive ints (id, weight, err, links, count vector — two
     lines) and a bucket is 8 (one line); both are referred to by
     their base offset into [ent] / [bkt].  The id index is a chained
     hash table at <=50% load: an array of chain heads (entry
     offsets), with the chain link in a pad int of each entry record.
     Chaining beats open addressing here because the churn regime
     deletes the victim id on every add — unlinking walks a chain
     whose expected length is under one and whose nodes are entry
     lines the eviction is about to rewrite anyway, where a
     backward-shift deletion walks and rewrites a probe cluster of
     untouched lines. *)

  (* Entry record at offset [e] in [ent]:
       e+0 id   e+1 weight   e+2 err
       e+3 prev e+4 next     e+5 bucket offset
       e+6 .. e+5+Metric.count  per-metric counts
       e+13 next entry offset in the id-index chain (-1 = end)
     Bucket record at offset [b] in [bkt]:
       b+0 weight value   b+1 head   b+2 tail   b+3 prev   b+4 next
     (b+4 doubles as the free-list link.) *)
  let e_stride = 16
  let b_stride = 8

  type t = {
    cap : int;
    mutable size : int;
    ent : int array;
    bkt : int array;
    mutable b_free : int;  (* free-list head offset *)
    mutable b_min : int;  (* minimum bucket offset, -1 while empty *)
    idx : int array;  (* chain head entry offsets; -1 = empty *)
    idx_shift : int;
    totals : int array;
    mutable evictions : int;
    mutable last_evicted : int;
        (* id displaced by the most recent [add_slot], or -1 — lets
           [add_slot] report both the slot and the eviction without
           allocating a tuple on the hot path *)
  }

  (* Fibonacci-style multiplicative hash, taking the high bits of the
     product — the low bits of [id * c] depend only on the low bits of
     [id] and would cluster sequential ids. *)
  let hash_c = 0x2545F4914F6CDD1D

  let[@inline always] hash t id = (id * hash_c) lsr t.idx_shift

  let make ~cap ~slots =
    let bits =
      let rec go b = if 1 lsl b >= 2 * slots then b else go (b + 1) in
      go 4
    in
    let nb = slots + 2 in
    let bkt = Array.make (nb * b_stride) (-1) in
    for i = 0 to nb - 2 do
      bkt.((i * b_stride) + 4) <- (i + 1) * b_stride
    done;
    bkt.(((nb - 1) * b_stride) + 4) <- -1;
    let idx = Array.make (1 lsl bits) (-1) in
    {
      cap;
      size = 0;
      ent = Array.make (slots * e_stride) 0;
      bkt;
      b_free = 0;
      b_min = -1;
      idx;
      idx_shift = 63 - bits;
      totals = Array.make Metric.count 0;
      evictions = 0;
      last_evicted = -1;
    }

  let create ~capacity =
    if capacity < 1 then invalid_arg "Attribution.Sketch.create";
    make ~cap:capacity ~slots:capacity

  (* Hot-path accessors.  Every index below is produced by the
     structure itself — masked probe positions, offsets taken from the
     free list, links, or [size] — so the bounds checks the compiler
     would emit are pure overhead on the per-event path.  The QCheck
     replay/error-bound properties exercise every branch of these
     functions; the cold paths (merge, top, entry_at) keep checked
     access. *)
  external ag : int array -> int -> int = "%array_unsafe_get"
  external aset : int array -> int -> int -> unit = "%array_unsafe_set"

  (* The fixed 16-int entry stride leaves room for at most 7 metric
     counts plus the index chain link at e+13. *)
  let () = assert (6 + Metric.count <= 13)

  let[@inline always] clear_counts en e =
    aset en (e + 6) 0;
    aset en (e + 7) 0;
    aset en (e + 8) 0;
    aset en (e + 9) 0;
    aset en (e + 10) 0;
    aset en (e + 11) 0;
    aset en (e + 12) 0

  (* Id-index primitives.  [idx_find] returns the entry offset or -1;
     chains average under one node at <=50% load, so a find is one
     head read plus (usually) one entry-id compare. *)
  let[@inline always] idx_find t id =
    let en = t.ent in
    let e = ref (ag t.idx (hash t id)) in
    while !e >= 0 && ag en !e <> id do
      e := ag en (!e + 13)
    done;
    !e

  let[@inline always] idx_insert t id e =
    let i = hash t id in
    aset t.ent (e + 13) (ag t.idx i);
    aset t.idx i e

  (* Unlink entry [e], currently indexed under [id], from [id]'s
     chain.  Callers evicting [e] must unlink before overwriting the
     entry's id. *)
  let idx_unlink t id e =
    let en = t.ent in
    let i = hash t id in
    let cur = ag t.idx i in
    if cur = e then aset t.idx i (ag en (e + 13))
    else begin
      let p = ref cur in
      while ag en (!p + 13) <> e do
        p := ag en (!p + 13)
      done;
      aset en (!p + 13) (ag en (e + 13))
    end

  (* Bucket-chain primitives.  All O(1). *)

  let[@inline always] bkt_alloc t v =
    let bk = t.bkt in
    let b = t.b_free in
    t.b_free <- ag bk (b + 4);
    aset bk b v;
    aset bk (b + 1) (-1);
    aset bk (b + 2) (-1);
    b

  (* Insert a fresh bucket holding [v] after chain position [prev]
     (-1 = before the minimum). *)
  let bkt_insert_after t prev v =
    let bk = t.bkt in
    let b = bkt_alloc t v in
    if prev < 0 then begin
      aset bk (b + 4) t.b_min;
      aset bk (b + 3) (-1);
      if t.b_min >= 0 then aset bk (t.b_min + 3) b;
      t.b_min <- b
    end
    else begin
      let nxt = ag bk (prev + 4) in
      aset bk (b + 4) nxt;
      aset bk (b + 3) prev;
      if nxt >= 0 then aset bk (nxt + 3) b;
      aset bk (prev + 4) b
    end;
    b

  let[@inline always] bkt_unlink t b =
    let bk = t.bkt in
    let p = ag bk (b + 3) and n = ag bk (b + 4) in
    if p >= 0 then aset bk (p + 4) n else t.b_min <- n;
    if n >= 0 then aset bk (n + 3) p;
    aset bk (b + 4) t.b_free;
    t.b_free <- b

  let[@inline always] ent_detach t e =
    let en = t.ent and bk = t.bkt in
    let b = ag en (e + 5) in
    let p = ag en (e + 3) and n = ag en (e + 4) in
    if p >= 0 then aset en (p + 4) n else aset bk (b + 1) n;
    if n >= 0 then aset en (n + 3) p else aset bk (b + 2) p

  let[@inline always] ent_append t e b =
    let en = t.ent and bk = t.bkt in
    let tl = ag bk (b + 2) in
    aset en (e + 3) tl;
    aset en (e + 4) (-1);
    if tl >= 0 then aset en (tl + 4) e else aset bk (b + 1) e;
    aset bk (b + 2) e;
    aset en (e + 5) b

  (* Append entry [e] (weight already set) into the right bucket,
     scanning the chain forward from [(prev, cur)].  The hot caller is
     the unit increment, which scans at most one link. *)
  let rec ent_place t e w prev cur =
    if cur < 0 || ag t.bkt cur > w then
      ent_append t e (bkt_insert_after t prev w)
    else if ag t.bkt cur = w then ent_append t e cur
    else ent_place t e w cur (ag t.bkt (cur + 4))

  (* Raise entry [e]'s weight by [w] > 0, relinking its bucket.  When
     [e] is its bucket's sole occupant and the next bucket's value is
     out of reach, the relink degenerates to bumping the bucket's
     value in place — same observable state as unlink + replace, and
     the common case for heavy entries, whose weights are distinct. *)
  let ent_increase t e w =
    let en = t.ent and bk = t.bkt in
    let b = ag en (e + 5) in
    let nw = ag en (e + 1) + w in
    aset en (e + 1) nw;
    let nxt = ag bk (b + 4) in
    if
      ag bk (b + 1) = e
      && ag bk (b + 2) = e
      && (nxt < 0 || ag bk nxt > nw)
    then aset bk b nw
    else begin
      ent_detach t e;
      ent_place t e nw b nxt;
      if ag bk (b + 1) < 0 then bkt_unlink t b
    end

  (* Internal: add and return the entry offset now holding [id]; the
     displaced id (or -1) is left in [last_evicted]. *)
  let add_slot t ~id ~metric ~w =
    let en = t.ent in
    let tt = t.totals in
    aset tt metric (ag tt metric + w);
    let e = idx_find t id in
    if e >= 0 then begin
      aset en (e + 6 + metric) (ag en (e + 6 + metric) + w);
      if w > 0 then ent_increase t e w;
      t.last_evicted <- -1;
      e
    end
    else if t.size < t.cap then begin
      let e = t.size * e_stride in
      aset en e id;
      aset en (e + 1) w;
      aset en (e + 2) 0;
      aset en (e + 6 + metric) w;
      t.size <- t.size + 1;
      idx_insert t id e;
      ent_place t e w (-1) t.b_min;
      t.last_evicted <- -1;
      e
    end
    else begin
      let e = ag t.bkt (t.b_min + 1) in
      let old = ag en e in
      aset en (e + 2) (ag en (e + 1));
      clear_counts en e;
      aset en (e + 6 + metric) w;
      idx_unlink t old e;
      aset en e id;
      idx_insert t id e;
      t.evictions <- t.evictions + 1;
      if w > 0 then ent_increase t e w
      else begin
        (* zero-weight replacement: keep the bucket, but requeue the
           entry at the FIFO tail under its new identity *)
        let b = ag en (e + 5) in
        ent_detach t e;
        ent_append t e b
      end;
      t.last_evicted <- old;
      e
    end

  (* Internal: credit two metrics to [id] in a single probe/relink —
     the delivery path pairs (hop kind, delivery) and (query, miss),
     and fusing them halves the sketch work per event.  Equivalent to
     two [add_slot] calls except that at capacity the pair displaces
     one victim instead of (at most) two. *)
  let add2_slot t ~id ~m1 ~w1 ~m2 ~w2 =
    let en = t.ent in
    let tt = t.totals in
    aset tt m1 (ag tt m1 + w1);
    aset tt m2 (ag tt m2 + w2);
    let w = w1 + w2 in
    let e = idx_find t id in
    if e >= 0 then begin
      aset en (e + 6 + m1) (ag en (e + 6 + m1) + w1);
      aset en (e + 6 + m2) (ag en (e + 6 + m2) + w2);
      if w > 0 then ent_increase t e w;
      t.last_evicted <- -1;
      e
    end
    else if t.size < t.cap then begin
      let e = t.size * e_stride in
      aset en e id;
      aset en (e + 1) w;
      aset en (e + 2) 0;
      aset en (e + 6 + m1) w1;
      aset en (e + 6 + m2) (ag en (e + 6 + m2) + w2);
      t.size <- t.size + 1;
      idx_insert t id e;
      ent_place t e w (-1) t.b_min;
      t.last_evicted <- -1;
      e
    end
    else begin
      let e = ag t.bkt (t.b_min + 1) in
      let old = ag en e in
      aset en (e + 2) (ag en (e + 1));
      clear_counts en e;
      aset en (e + 6 + m1) w1;
      aset en (e + 6 + m2) (ag en (e + 6 + m2) + w2);
      idx_unlink t old e;
      aset en e id;
      idx_insert t id e;
      t.evictions <- t.evictions + 1;
      if w > 0 then ent_increase t e w
      else begin
        let b = ag en (e + 5) in
        ent_detach t e;
        ent_append t e b
      end;
      t.last_evicted <- old;
      e
    end

  let add t ~id ~metric ~w =
    let (_ : int) = add_slot t ~id ~metric ~w in
    t.last_evicted

  let slot_of t id = idx_find t id
  let slot_count t = Array.length t.ent / e_stride
  let id_at t i = t.ent.((i * e_stride) + 0)

  let entries t = t.size
  let capacity t = t.cap
  let evictions t = t.evictions
  let total t ~metric = t.totals.(metric)

  type entry = { id : int; estimate : int; err : int; counts : int array }

  let entry_at t i =
    let e = i * e_stride in
    {
      id = t.ent.(e);
      estimate = t.ent.(e + 1);
      err = t.ent.(e + 2);
      counts = Array.sub t.ent (e + 6) Metric.count;
    }

  let merge a b =
    (* Exact union-sum; never compacts, so it is associative and
       commutative and the merged table may exceed [cap] (bounded by
       parts x capacity, still catalog-independent).  Cold path: runs
       once per shard at run end, so a Hashtbl union is fine here. *)
    let u : (int, entry) Hashtbl.t =
      Hashtbl.create (2 * (a.size + b.size + 1))
    in
    let fold s =
      for i = 0 to s.size - 1 do
        let e = entry_at s i in
        match Hashtbl.find_opt u e.id with
        | Some m ->
            Hashtbl.replace u e.id
              {
                m with
                estimate = m.estimate + e.estimate;
                err = m.err + e.err;
                counts = Array.map2 ( + ) m.counts e.counts;
              }
        | None -> Hashtbl.add u e.id e
      done
    in
    fold a;
    fold b;
    let ids = Hashtbl.fold (fun id _ acc -> id :: acc) u [] in
    let ids = List.sort compare ids in
    let size = List.length ids in
    let cap = max a.cap b.cap in
    let t = make ~cap ~slots:(max cap size) in
    t.size <- size;
    Array.blit a.totals 0 t.totals 0 Metric.count;
    Array.iteri (fun i v -> t.totals.(i) <- t.totals.(i) + v) b.totals;
    t.evictions <- a.evictions + b.evictions;
    List.iteri
      (fun i id ->
        let x = Hashtbl.find u id in
        let e = i * e_stride in
        t.ent.(e) <- id;
        t.ent.(e + 1) <- x.estimate;
        t.ent.(e + 2) <- x.err;
        Array.blit x.counts 0 t.ent (e + 6) Metric.count;
        idx_insert t id e;
        ent_place t e x.estimate (-1) t.b_min)
      ids;
    t

  let footprint_words t =
    (* interleaved entry and bucket records + the interleaved index +
       totals + header *)
    Array.length t.ent + Array.length t.bkt + Array.length t.idx
    + Metric.count + 10

  let top t ~k =
    let order = Array.init t.size (fun s -> s) in
    Array.sort
      (fun a b ->
        let wa = t.ent.((a * e_stride) + 1)
        and wb = t.ent.((b * e_stride) + 1) in
        if wa <> wb then compare wb wa
        else compare t.ent.(a * e_stride) t.ent.(b * e_stride))
      order;
    let n = min k t.size in
    List.init n (fun i -> entry_at t order.(i))
end

module Rate = struct
  (* Ring of integer per-window counts in virtual time.  Only integer
     sums are stored, aligned by absolute window index, so merging
     shard-local estimators reproduces the single-stream state
     exactly; the EWMA is folded over the ring at query time. *)

  type t = {
    width : float;
    inv_width : float;  (* 1/width: the per-observe window computation
                           multiplies instead of dividing *)
    slots : int;
    counts : int array;
    stamp : int array;
        (* absolute window index each physical slot last counted for;
           -1 = never.  A slot's count is live only when its stamp
           matches the window being read AND the generation matches,
           which makes both window-skip and whole-ring reset O(1):
           stale contents are simply never read. *)
    gstamp : int array;  (* generation each slot was written under *)
    mutable gen : int;
    mutable head : int;  (* absolute index of newest window; -1 empty *)
  }

  let create ~width ~slots =
    if width <= 0. || slots < 1 then invalid_arg "Attribution.Rate.create";
    {
      width;
      inv_width = 1. /. width;
      slots;
      counts = Array.make slots 0;
      stamp = Array.make slots (-1);
      gstamp = Array.make slots 0;
      gen = 0;
      head = -1;
    }

  let[@inline always] window_of t now =
    (* truncation = floor for the non-negative virtual times this sees,
       and negatives clamp to window 0 either way *)
    let w = int_of_float (now *. t.inv_width) in
    if w < 0 then 0 else w

  let[@inline always] observe t ~now =
    let w = window_of t now in
    if w > t.head then t.head <- w;
    if w > t.head - t.slots then begin
      (* [s] is a non-negative remainder: unchecked access is safe *)
      let s = w mod t.slots in
      if
        Array.unsafe_get t.stamp s = w && Array.unsafe_get t.gstamp s = t.gen
      then Array.unsafe_set t.counts s (Array.unsafe_get t.counts s + 1)
      else begin
        Array.unsafe_set t.stamp s w;
        Array.unsafe_set t.gstamp s t.gen;
        Array.unsafe_set t.counts s 1
      end
    end
  (* else: older than the ring — dropped, deterministically. *)

  let value t i =
    (* count of absolute window [i], 0 if outside the retained span *)
    if i < 0 || i > t.head || i <= t.head - t.slots then 0
    else
      let s = i mod t.slots in
      if t.stamp.(s) = i && t.gstamp.(s) = t.gen then t.counts.(s) else 0

  let merge a b =
    if a.width <> b.width || a.slots <> b.slots then
      invalid_arg "Attribution.Rate.merge: geometry mismatch";
    let t = create ~width:a.width ~slots:a.slots in
    let head = max a.head b.head in
    if head >= 0 then begin
      t.head <- head;
      for i = max 0 (head - a.slots + 1) to head do
        let s = i mod t.slots in
        t.counts.(s) <- value a i + value b i;
        t.stamp.(s) <- i;
        t.gstamp.(s) <- 0
      done
    end;
    t

  let retained t = if t.head < 0 then 0 else min (t.head + 1) t.slots

  let observations t =
    let s = ref 0 in
    for i = t.head - retained t + 1 to t.head do
      s := !s + value t i
    done;
    !s

  let windowed t =
    let r = retained t in
    if r = 0 then 0.
    else float_of_int (observations t) /. (float_of_int r *. t.width)

  let ewma ?(alpha = 0.3) t =
    let r = retained t in
    if r = 0 then 0.
    else begin
      let first = t.head - r + 1 in
      let acc = ref (float_of_int (value t first) /. t.width) in
      for i = first + 1 to t.head do
        let rate = float_of_int (value t i) /. t.width in
        acc := (alpha *. rate) +. ((1. -. alpha) *. !acc)
      done;
      !acc
    end
end

type config = { capacity : int; rate_window : float; rate_slots : int }

let default_config = { capacity = 1024; rate_window = 1.0; rate_slots = 32 }

(* Per-key rate state lives in ONE flat int array, not in per-key
   Rate.t records: on the hot path an observation is [t.ring_data]
   plus offset arithmetic — no chain of record/array pointer loads,
   and a window's (count, stamp, gstamp) triple is adjacent, so a hit
   touches a single cache line.  [Rate.t] remains the read-side
   currency: {!rates} materializes snapshots from the flat state.

   Layout: dense key slot [d] (aligned with the [by_key] sketch entry
   slots) owns three rings (query, miss, overhead) of [rate_slots]
   windows each.  A ring is [2 + 3*W] ints: head window index (-1 =
   empty), generation, then per physical window the triple
   (count, stamp, gstamp) — the same stamp/generation validity rule
   {!Rate} uses, so reset stays O(1) and stale windows are simply
   never read. *)

type t = {
  cfg : config;
  by_key : Sketch.t;
  by_node : Sketch.t;
  by_level : Sketch.t;
  ring_data : int array;
  inv_width : float;  (* 1 / rate_window, for the window computation *)
  wslots : int;  (* windows per ring *)
  rstride : int;  (* ints per ring: 2 + 3 * wslots *)
  sstride : int;  (* ints per key slot: 3 rings *)
  buf : int array;  (* deferred records, 2 ints each — see below *)
  mutable buf_n : int;
}

(* Records are not applied to the sketches as they arrive: the
   delivery path appends a compact 3-int record (packed op word, key,
   node) to [buf], and the sketch/ring work happens in batches of
   [buf_records] when the buffer fills or a reader needs the state.
   One simulator event touches a couple of cache lines this way — the
   buffer tail plus whatever the runner already has resident — while
   the scattered sketch/index/ring lines are touched in a tight loop
   with everything cache-hot, which is 2-3x cheaper per record than
   interleaving them with the simulator's own node-state traffic.
   Replay order is append order, so results are byte-identical to the
   unbuffered implementation.

   Packed op word: bits 0-3 record kind, bit 4 overhead flag,
   bits 5-14 tree level, bits 15+ rate-window index.  The second word
   packs [key] (low 31 bits) and [node] (high bits); both are array
   indices well under 2^31.  2K records keep the buffer inside L2. *)
let buf_records = 2048

external ag : int array -> int -> int = "%array_unsafe_get"
external aset : int array -> int -> int -> unit = "%array_unsafe_set"

let ring_init a ~slots ~rstride =
  for r = 0 to (Array.length a / rstride) - 1 do
    a.(r * rstride) <- -1
  done;
  ignore slots

let create ?(config = default_config) () =
  if config.rate_window <= 0. || config.rate_slots < 1 then
    invalid_arg "Attribution.create: bad rate geometry";
  let rstride = 2 + (3 * config.rate_slots) in
  let sstride = 3 * rstride in
  let ring_data = Array.make (config.capacity * sstride) 0 in
  ring_init ring_data ~slots:config.rate_slots ~rstride;
  {
    cfg = config;
    by_key = Sketch.create ~capacity:config.capacity;
    by_node = Sketch.create ~capacity:config.capacity;
    by_level = Sketch.create ~capacity:config.capacity;
    ring_data;
    inv_width = 1. /. config.rate_window;
    wslots = config.rate_slots;
    rstride;
    sstride;
    buf = Array.make (2 * buf_records) 0;
    buf_n = 0;
  }

let config t = t.cfg

(* Flat-ring primitives.  [base] is the ring's offset in [ring_data];
   indices derive from masked/mod'd window numbers and slot numbers
   bounded by capacity, hence the unchecked access. *)

let[@inline always] ring_reset a base =
  aset a base (-1);
  aset a (base + 1) (ag a (base + 1) + 1)

let[@inline always] ring_observe a base ~slots ~w =
  let head = ag a base in
  let head =
    if w > head then begin
      aset a base w;
      w
    end
    else head
  in
  if w > head - slots then begin
    let p = base + 2 + (3 * (w mod slots)) in
    let gen = ag a (base + 1) in
    if ag a (p + 1) = w && ag a (p + 2) = gen then aset a p (ag a p + 1)
    else begin
      aset a p 1;
      aset a (p + 1) w;
      aset a (p + 2) gen
    end
  end
(* else: older than the ring — dropped, deterministically *)

let ring_value a base ~slots i =
  let head = ag a base in
  if i < 0 || i > head || i <= head - slots then 0
  else
    let p = base + 2 + (3 * (i mod slots)) in
    if ag a (p + 1) = i && ag a (p + 2) = ag a (base + 1) then ag a p else 0

let[@inline always] ring_is_empty a base = ag a base < 0

let[@inline always] window_at t now =
  let w = int_of_float (now *. t.inv_width) in
  if w < 0 then 0 else w

(* Read-side: materialize a flat ring as a [Rate.t] snapshot, stamping
   the whole retained span the way [Rate.merge] does. *)
let ring_to_rate t a base =
  let n = t.wslots in
  let r = Rate.create ~width:t.cfg.rate_window ~slots:n in
  let head = ag a base in
  if head >= 0 then begin
    r.Rate.head <- head;
    for i = max 0 (head - n + 1) to head do
      let s = i mod n in
      r.Rate.counts.(s) <- ring_value a base ~slots:n i;
      r.Rate.stamp.(s) <- i;
      r.Rate.gstamp.(s) <- 0
    done
  end;
  r

(* Write-side (merge): store a [Rate.t]'s retained span into a flat
   ring, mirroring the span stamping above. *)
let rate_into_flat a base (r : Rate.t) =
  let n = r.Rate.slots in
  let head = r.Rate.head in
  if head >= 0 then begin
    a.(base) <- head;
    for i = max 0 (head - n + 1) to head do
      let p = base + 2 + (3 * (i mod n)) in
      a.(p) <- Rate.value r i;
      a.(p + 1) <- i;
      a.(p + 2) <- 0
    done
  end

(* Rate rings live and die with the key-axis sketch entry: eviction
   hands the slot's rings to the new owner after an O(1) reset,
   keeping total memory O(capacity).  Entry offsets shift down to
   dense slot numbers, then scale to flat-ring offsets. *)
let[@inline always] key_add t ~key ~metric ~w =
  let s = Sketch.add_slot t.by_key ~id:key ~metric ~w lsr 4 in
  if t.by_key.Sketch.last_evicted >= 0 then begin
    let base = s * t.sstride in
    ring_reset t.ring_data base;
    ring_reset t.ring_data (base + t.rstride);
    ring_reset t.ring_data (base + (2 * t.rstride))
  end;
  s

(* Fused variant of [key_add] crediting two metrics in one probe. *)
let[@inline always] key_add2 t ~key ~m1 ~w1 ~m2 ~w2 =
  let s = Sketch.add2_slot t.by_key ~id:key ~m1 ~w1 ~m2 ~w2 lsr 4 in
  if t.by_key.Sketch.last_evicted >= 0 then begin
    let base = s * t.sstride in
    ring_reset t.ring_data base;
    ring_reset t.ring_data (base + t.rstride);
    ring_reset t.ring_data (base + (2 * t.rstride))
  end;
  s

(* Record kinds (bits 0-3 of the packed op word). *)
let k_query = 0
and k_hit = 1
and k_miss = 2
and k_query_hop = 3
and k_update_hop = 4
and k_query_miss = 5
and k_update_delivered = 6
and k_clear_bit_hop = 7
and k_delivery = 8
and k_justified = 9

(* Replay the buffer once per axis.  The axes share no state (the rate
   rings are indexed by key-axis slot, so they travel with the key
   pass), which means per-axis replay in append order reproduces the
   interleaved replay byte for byte — and each pass runs with a single
   sketch's entries, index and buckets resident in L1 instead of three
   sketches contending for it. *)
let flush t =
  let n = t.buf_n in
  t.buf_n <- 0;
  let buf = t.buf in
  let a = t.ring_data in
  let slots = t.wslots in
  (* key sketch + per-key rate rings *)
  for i = 0 to n - 1 do
    let op = ag buf (2 * i) in
    let key = ag buf ((2 * i) + 1) land 0x7FFFFFFF in
    let kind = op land 15 in
    let w = op lsr 15 in
    if kind = k_update_delivered then begin
      let overhead = op land 16 <> 0 in
      let metric =
        if overhead then Metric.overhead_hops else Metric.miss_hops
      in
      let s = key_add2 t ~key ~m1:metric ~w1:1 ~m2:Metric.deliveries ~w2:1 in
      if overhead then
        ring_observe a ((s * t.sstride) + (2 * t.rstride)) ~slots ~w
    end
    else if kind = k_query_miss then begin
      let s =
        key_add2 t ~key ~m1:Metric.queries ~w1:1 ~m2:Metric.misses ~w2:1
      in
      let base = s * t.sstride in
      ring_observe a base ~slots ~w;
      ring_observe a (base + t.rstride) ~slots ~w
    end
    else if kind = k_hit then
      ignore (key_add t ~key ~metric:Metric.hits ~w:1)
    else if kind = k_query_hop then
      ignore (key_add t ~key ~metric:Metric.miss_hops ~w:1)
    else if kind = k_update_hop then begin
      let overhead = op land 16 <> 0 in
      let metric =
        if overhead then Metric.overhead_hops else Metric.miss_hops
      in
      let s = key_add t ~key ~metric ~w:1 in
      if overhead then
        ring_observe a ((s * t.sstride) + (2 * t.rstride)) ~slots ~w
    end
    else if kind = k_query then begin
      let s = key_add t ~key ~metric:Metric.queries ~w:1 in
      ring_observe a (s * t.sstride) ~slots ~w
    end
    else if kind = k_miss then begin
      let s = key_add t ~key ~metric:Metric.misses ~w:1 in
      ring_observe a ((s * t.sstride) + t.rstride) ~slots ~w
    end
    else if kind = k_clear_bit_hop then begin
      let s = key_add t ~key ~metric:Metric.overhead_hops ~w:1 in
      ring_observe a ((s * t.sstride) + (2 * t.rstride)) ~slots ~w
    end
    else if kind = k_delivery then
      ignore (key_add t ~key ~metric:Metric.deliveries ~w:1)
    else ignore (key_add t ~key ~metric:Metric.justified ~w:1)
  done;
  (* node sketch *)
  let bn = t.by_node in
  for i = 0 to n - 1 do
    let op = ag buf (2 * i) in
    let node = ag buf ((2 * i) + 1) lsr 31 in
    let kind = op land 15 in
    if kind = k_update_delivered then begin
      let metric =
        if op land 16 <> 0 then Metric.overhead_hops else Metric.miss_hops
      in
      ignore
        (Sketch.add2_slot bn ~id:node ~m1:metric ~w1:1 ~m2:Metric.deliveries
           ~w2:1)
    end
    else if kind = k_query_miss then
      ignore
        (Sketch.add2_slot bn ~id:node ~m1:Metric.queries ~w1:1
           ~m2:Metric.misses ~w2:1)
    else if kind = k_hit then ignore (Sketch.add bn ~id:node ~metric:Metric.hits ~w:1)
    else if kind = k_query_hop then
      ignore (Sketch.add bn ~id:node ~metric:Metric.miss_hops ~w:1)
    else if kind = k_update_hop then begin
      let metric =
        if op land 16 <> 0 then Metric.overhead_hops else Metric.miss_hops
      in
      ignore (Sketch.add bn ~id:node ~metric ~w:1)
    end
    else if kind = k_query then
      ignore (Sketch.add bn ~id:node ~metric:Metric.queries ~w:1)
    else if kind = k_miss then
      ignore (Sketch.add bn ~id:node ~metric:Metric.misses ~w:1)
    else if kind = k_clear_bit_hop then
      ignore (Sketch.add bn ~id:node ~metric:Metric.overhead_hops ~w:1)
    else if kind = k_delivery then
      ignore (Sketch.add bn ~id:node ~metric:Metric.deliveries ~w:1)
    else ignore (Sketch.add bn ~id:node ~metric:Metric.justified ~w:1)
  done;
  (* level sketch — only update-delivery hops carry a level *)
  let bl = t.by_level in
  for i = 0 to n - 1 do
    let op = ag buf (2 * i) in
    let kind = op land 15 in
    if kind = k_update_delivered || kind = k_update_hop then begin
      let metric =
        if op land 16 <> 0 then Metric.overhead_hops else Metric.miss_hops
      in
      ignore (Sketch.add bl ~id:((op lsr 5) land 1023) ~metric ~w:1)
    end
  done

let[@inline always] push t op key node =
  let p = 2 * t.buf_n in
  let buf = t.buf in
  aset buf p op;
  aset buf (p + 1) (key lor (node lsl 31));
  let n = t.buf_n + 1 in
  t.buf_n <- n;
  if n = buf_records then flush t

(* Recording entry points: pack and append.  Tree levels are stored in
   10 bits — deep enough for any tree over an [int] id space. *)

let[@inline always] record_query t ~key ~node ~now =
  push t (k_query lor (window_at t now lsl 15)) key node

let[@inline always] record_hit t ~key ~node = push t k_hit key node

let[@inline always] record_miss t ~key ~node ~now =
  push t (k_miss lor (window_at t now lsl 15)) key node

let[@inline always] record_query_hop t ~key ~node = push t k_query_hop key node

let[@inline always] record_update_hop t ~key ~node ~level ~overhead ~now =
  push t
    (k_update_hop
    lor (if overhead then 16 else 0)
    lor (level lsl 5)
    lor (window_at t now lsl 15))
    key node

let[@inline always] record_query_miss t ~key ~node ~now =
  push t (k_query_miss lor (window_at t now lsl 15)) key node

let[@inline always] record_update_delivered t ~key ~node ~level ~overhead ~now
    =
  push t
    (k_update_delivered
    lor (if overhead then 16 else 0)
    lor (level lsl 5)
    lor (window_at t now lsl 15))
    key node

let[@inline always] record_clear_bit_hop t ~key ~node ~now =
  push t (k_clear_bit_hop lor (window_at t now lsl 15)) key node

let[@inline always] record_delivery t ~key ~node = push t k_delivery key node

let[@inline always] record_justified t ~key ~node = push t k_justified key node

type axis = Key | Node | Level

let axis_name = function Key -> "key" | Node -> "node" | Level -> "level"

let axis_of_string = function
  | "key" -> Some Key
  | "node" -> Some Node
  | "level" -> Some Level
  | _ -> None

let sketch t by =
  flush t;
  match by with
  | Key -> t.by_key
  | Node -> t.by_node
  | Level -> t.by_level

let top t ~by ~k = Sketch.top (sketch t by) ~k
let total t ~by ~metric = Sketch.total (sketch t by) ~metric

let rates t ~key =
  flush t;
  let s = Sketch.slot_of t.by_key key in
  if s < 0 then None
  else
    let base = s lsr 4 * t.sstride in
    let a = t.ring_data in
    (* A tracked key whose rings never saw an observation reads the
       same as an untracked one, matching the lazily-created-rings
       behaviour the reporting layers render as "-". *)
    if
      ring_is_empty a base
      && ring_is_empty a (base + t.rstride)
      && ring_is_empty a (base + (2 * t.rstride))
    then None
    else
      Some
        ( ring_to_rate t a base,
          ring_to_rate t a (base + t.rstride),
          ring_to_rate t a (base + (2 * t.rstride)) )

let merge a b =
  if
    a.cfg.rate_window <> b.cfg.rate_window
    || a.cfg.rate_slots <> b.cfg.rate_slots
  then invalid_arg "Attribution.merge: rate geometry mismatch";
  flush a;
  flush b;
  let cfg =
    { a.cfg with capacity = max a.cfg.capacity b.cfg.capacity }
  in
  let by_key = Sketch.merge a.by_key b.by_key in
  let rstride = a.rstride and sstride = a.sstride in
  (* Every key tracked on either side survives the exact union-sum, so
     aligning merged rings with the merged sketch slots loses none. *)
  let slots = Sketch.slot_count by_key in
  let ring_data = Array.make (slots * sstride) 0 in
  ring_init ring_data ~slots:cfg.rate_slots ~rstride;
  let ring side = function
    | Some rs -> side rs
    | None -> Rate.create ~width:cfg.rate_window ~slots:cfg.rate_slots
  in
  for s = 0 to Sketch.entries by_key - 1 do
    let key = Sketch.id_at by_key s in
    let ra = rates a ~key and rb = rates b ~key in
    if ra <> None || rb <> None then begin
      let q (x, _, _) = x and m (_, x, _) = x and o (_, _, x) = x in
      let base = s * sstride in
      rate_into_flat ring_data base (Rate.merge (ring q ra) (ring q rb));
      rate_into_flat ring_data (base + rstride)
        (Rate.merge (ring m ra) (ring m rb));
      rate_into_flat ring_data
        (base + (2 * rstride))
        (Rate.merge (ring o ra) (ring o rb))
    end
  done;
  {
    cfg;
    by_key;
    by_node = Sketch.merge a.by_node b.by_node;
    by_level = Sketch.merge a.by_level b.by_level;
    ring_data;
    inv_width = a.inv_width;
    wslots = a.wslots;
    rstride;
    sstride;
    buf = Array.make (2 * buf_records) 0;
    buf_n = 0;
  }

let footprint_words t =
  flush t;
  Sketch.footprint_words t.by_key
  + Sketch.footprint_words t.by_node
  + Sketch.footprint_words t.by_level
  + Array.length t.ring_data + Array.length t.buf + 10
