type t = {
  min_value : float;
  max_value : float;
  bins_per_decade : int;
  counts : int array; (* [0] underflow, [last] overflow *)
  mutable n : int;
  mutable sum : float;
  mutable max_seen : float;
}

let bin_count ~min_value ~max_value ~bins_per_decade =
  let decades = log10 (max_value /. min_value) in
  int_of_float (Float.ceil (decades *. float_of_int bins_per_decade)) + 2

let create ?(min_value = 0.1) ?(max_value = 1e6) ?(bins_per_decade = 20) () =
  if not (min_value > 0. && max_value > min_value) then
    invalid_arg "Histogram.create: need 0 < min_value < max_value";
  if bins_per_decade <= 0 then
    invalid_arg "Histogram.create: bins_per_decade must be > 0";
  {
    min_value;
    max_value;
    bins_per_decade;
    counts = Array.make (bin_count ~min_value ~max_value ~bins_per_decade) 0;
    n = 0;
    sum = 0.;
    max_seen = Float.neg_infinity;
  }

let bin_of t v =
  if v < t.min_value then 0
  else if v >= t.max_value then Array.length t.counts - 1
  else
    let idx =
      1
      + int_of_float
          (Float.floor
             (log10 (v /. t.min_value) *. float_of_int t.bins_per_decade))
    in
    (* guard rounding at the edges *)
    Stdlib.min (Array.length t.counts - 2) (Stdlib.max 1 idx)

(* Upper bound of a bin's value range. *)
let bin_upper t i =
  if i = 0 then t.min_value
  else if i = Array.length t.counts - 1 then t.max_seen
  else
    t.min_value
    *. Float.pow 10. (float_of_int i /. float_of_int t.bins_per_decade)

let add t v =
  let i = bin_of t v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum +. v;
  if v > t.max_seen then t.max_seen <- v

let count t = t.n
let total t = t.sum
let mean t = if t.n = 0 then 0. else t.sum /. float_of_int t.n

let quantile t q =
  if q < 0. || q > 1. then invalid_arg "Histogram.quantile: q must be in [0,1]";
  if t.n = 0 then 0.
  else begin
    let target =
      Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int t.n)))
    in
    let rec scan i acc =
      if i >= Array.length t.counts then t.max_seen
      else
        let acc = acc + t.counts.(i) in
        (* the true quantile can never exceed the largest sample *)
        if acc >= target then Float.min (bin_upper t i) t.max_seen
        else scan (i + 1) acc
    in
    scan 0 0
  end

let merge a b =
  if
    a.min_value <> b.min_value || a.max_value <> b.max_value
    || a.bins_per_decade <> b.bins_per_decade
  then invalid_arg "Histogram.merge: incompatible configurations";
  let m =
    create ~min_value:a.min_value ~max_value:a.max_value
      ~bins_per_decade:a.bins_per_decade ()
  in
  Array.iteri (fun i c -> m.counts.(i) <- c + b.counts.(i)) a.counts;
  m.n <- a.n + b.n;
  m.sum <- a.sum +. b.sum;
  m.max_seen <- Float.max a.max_seen b.max_seen;
  m

let config t = (t.min_value, t.max_value, t.bins_per_decade)

let buckets t =
  let last = Array.length t.counts - 1 in
  let rec collect i acc =
    if i < 0 then acc
    else if t.counts.(i) = 0 then collect (i - 1) acc
    else
      let upper = if i = last then Float.infinity else bin_upper t i in
      collect (i - 1) ((upper, t.counts.(i)) :: acc)
  in
  collect last []

let pp fmt t =
  if t.n = 0 then Format.pp_print_string fmt "(empty)"
  else
    Format.fprintf fmt
      "n=%d mean=%.2f p50=%.2f p90=%.2f p99=%.2f max=%.2f" t.n (mean t)
      (quantile t 0.5) (quantile t 0.9) (quantile t 0.99) t.max_seen
