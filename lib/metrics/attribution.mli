(** Per-key / per-node / per-level cost attribution.

    CUP's argument is economic: §3.1 prices every update in hops and
    asks whether propagating it to a given node for a given key is
    {e justified}.  The global {!Counters} answer that question only
    in aggregate; this module attributes every hop of miss cost,
    update overhead, and justified/unjustified delivery to the
    [(key, node, tree-level)] that incurred it — in bounded memory,
    deterministically.

    Three ingredients:

    {ol
    {- A space-saving (Misra–Gries family) top-K sketch per axis.
       Below capacity it degrades to exact counting (zero error, used
       by the byte-identity CI checks); at capacity it evicts the
       entry that reached the minimum weight earliest (the stream-
       summary FIFO rule), a deterministic function of the operation
       stream, so output is byte-identical across schedulers and job
       counts.  {!Sketch.merge} is an {e exact} union-sum that
       never compacts — the merged table may exceed capacity (bounded
       by [shards × capacity], still independent of catalog size) —
       which makes it genuinely associative and commutative, the same
       contract {!Registry.merge} gives the parallel fan-out.}
    {- Windowed rate estimators per tracked key: integer event counts
       in a ring of fixed-width virtual-time windows.  Integer sums
       aligned by absolute window index merge exactly across shards;
       an EWMA is folded over the ring only at query time, so the
       stored state stays order-independent.  These are the λ, miss
       and overhead rates the §3.1 break-even formula consumes.}
    {- Recording entry points shaped for the simulator hot path: a
       detached attribution ([None] upstream) costs a single branch
       and zero allocations, and an attached one only packs the record
       into a bounded int buffer — the sketch and ring work is
       replayed in cache-resident batches, one axis at a time, when
       the buffer fills or a reader needs the state.  Replay order is
       append order, so every observable is byte-for-byte what
       unbuffered recording would produce.}} *)

(** Metric indices within an entry's count vector. *)
module Metric : sig
  val queries : int
  val hits : int
  val misses : int
  val miss_hops : int
  val overhead_hops : int
  val deliveries : int
  val justified : int
  val count : int
  (** Number of metrics (length of every count vector). *)

  val name : int -> string
  (** Short stable name, e.g. ["miss_hops"]. *)
end

(** Bounded-memory heavy-hitter sketch over integer ids with a
    per-entry metric vector. *)
module Sketch : sig
  type t

  val create : capacity:int -> t

  val add : t -> id:int -> metric:int -> w:int -> int
  (** Add weight [w] (> 0) of metric [metric] to [id].  Returns the id
      evicted to make room, or [-1] if none was (present, or below
      capacity).  Steady-state eviction reuses the entry record: no
      allocation. *)

  val entries : t -> int
  (** Live tracked ids (≤ capacity, except after {!merge}). *)

  val capacity : t -> int

  val evictions : t -> int
  (** Total evictions so far; [0] means every count is exact. *)

  val total : t -> metric:int -> int
  (** Exact global sum of [metric] over {e all} ids ever added,
      tracked outside the sketch (never lossy). *)

  val merge : t -> t -> t
  (** Exact union-sum: weights, error bounds, count vectors and totals
      add; no entry is dropped.  Associative and commutative; the
      result may hold more than [capacity] entries. *)

  type entry = {
    id : int;
    estimate : int;  (** stored weight; [estimate >= true count] *)
    err : int;  (** over-estimation bound; [estimate - err <= true] *)
    counts : int array;  (** per-metric increments, exact-since-entry *)
  }

  val top : t -> k:int -> entry list
  (** The [k] heaviest entries, sorted by [(estimate desc, id asc)].
      Count vectors are copies. *)
end

(** Windowed integer rate estimator over virtual time. *)
module Rate : sig
  type t

  val create : width:float -> slots:int -> t
  (** Ring of [slots] windows, each [width] virtual seconds wide. *)

  val observe : t -> now:float -> unit
  (** Count one event at virtual time [now] (non-decreasing within a
      stream; late events land in their own window if still retained,
      and are dropped deterministically otherwise). *)

  val merge : t -> t -> t
  (** Exact integer merge aligned by absolute window index — the
      result equals a single estimator fed the interleaved streams,
      regardless of shard layout. *)

  val windowed : t -> float
  (** Mean events/second over the retained full windows; [0.] before
      any observation. *)

  val ewma : ?alpha:float -> t -> float
  (** Exponentially weighted events/second, folded oldest→newest over
      the retained windows at call time ([alpha] defaults to 0.3).
      Stored state is unaffected. *)

  val observations : t -> int
  (** Events counted in the currently retained windows. *)
end

type t

type config = {
  capacity : int;  (** per-axis sketch capacity K (default 1024) *)
  rate_window : float;  (** rate ring window width, seconds (1.0) *)
  rate_slots : int;  (** rate ring length (32) *)
}

val default_config : config

val create : ?config:config -> unit -> t

val config : t -> config

(* Recording — called from the simulator delivery path.  [key], [node]
   and [level] are raw ints; [now] is virtual time. *)

val record_query : t -> key:int -> node:int -> now:float -> unit
val record_hit : t -> key:int -> node:int -> unit
val record_miss : t -> key:int -> node:int -> now:float -> unit

val record_query_hop : t -> key:int -> node:int -> unit
(** One query-forwarding hop (miss-cost side of §3.1; queries carry no
    tree level, so the level axis is untouched). *)

val record_update_hop :
  t -> key:int -> node:int -> level:int -> overhead:bool -> now:float -> unit
(** One update-delivery hop to [node] at tree [level].  [overhead]
    selects between the §3.1 ledgers: a first-time answer hop is miss
    cost, everything else (proactive, refresh, delete, append) is
    overhead. *)

val record_query_miss : t -> key:int -> node:int -> now:float -> unit
(** Fused {!record_query} + {!record_miss} for a local query that
    missed: credits both metrics in a single sketch probe per axis and
    observes both rate rings.  Totals and per-entry counts equal the
    unfused pair; at capacity the pair displaces one victim instead of
    two, so use it consistently on a given engine's hot path. *)

val record_update_delivered :
  t -> key:int -> node:int -> level:int -> overhead:bool -> now:float -> unit
(** Fused {!record_update_hop} + {!record_delivery} for the common
    delivered (non-answering) update hop, with the same contract as
    {!record_query_miss}. *)

val record_clear_bit_hop : t -> key:int -> node:int -> now:float -> unit
(** A non-piggybacked clear-bit message (overhead, no level). *)

val record_delivery : t -> key:int -> node:int -> unit
(** An update delivered and registered for justification judgement. *)

val record_justified : t -> key:int -> node:int -> unit
(** A delivered update later proven justified (query beat expiry). *)

(* Axes and reading. *)

type axis = Key | Node | Level

val axis_name : axis -> string
(** ["key"], ["node"] or ["level"]. *)

val axis_of_string : string -> axis option

val sketch : t -> axis -> Sketch.t

val top : t -> by:axis -> k:int -> Sketch.entry list

val total : t -> by:axis -> metric:int -> int
(** Exact global totals per axis.  Key and node axes see every event;
    the level axis only accumulates update-delivery hops. *)

val rates : t -> key:int -> (Rate.t * Rate.t * Rate.t) option
(** [(query, miss, overhead)] estimator snapshots for a currently
    tracked key, materialized at call time from the flat ring state.
    Rate state follows the key-axis sketch: evicting a key resets its
    rings, so memory stays O(capacity). *)

val merge : t -> t -> t
(** Exact merge of all three sketches and the per-key rate rings;
    associative and commutative.  Configs must agree on rate geometry. *)

val footprint_words : t -> int
(** Approximate heap words held by sketches and rate rings — O(K),
    independent of catalog size; used by the memory-bound bench. *)
