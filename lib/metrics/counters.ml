type t = {
  mutable query_hops : int;
  mutable first_time_answer_hops : int;
  mutable first_time_proactive_hops : int;
  mutable refresh_hops : int;
  mutable delete_hops : int;
  mutable append_hops : int;
  mutable clear_bit_hops : int;
  mutable hits : int;
  mutable misses : int;
  mutable dropped_updates : int;
  mutable lost_messages : int;
  mutable duplicated : int;
  mutable retries : int;
  mutable repairs : int;
  mutable unreachable : int;
  mutable sent : int;
  mutable delivered : int;
  mutable transport_lost : int;
  mutable in_flight : int;
  mutable transport_visible : bool;
  (* Route-cache effectiveness.  Deliberately NOT part of [pp] or any
     deterministic output: the cache is a speed-only mechanism, and
     these differ across cache-on/off/bypass configurations whose
     protocol results are byte-identical. *)
  mutable route_cache_hits : int;
  mutable route_cache_misses : int;
  latency_hops : Welford.t;
  latency_histogram : Histogram.t;
}

let create () =
  {
    query_hops = 0;
    first_time_answer_hops = 0;
    first_time_proactive_hops = 0;
    refresh_hops = 0;
    delete_hops = 0;
    append_hops = 0;
    clear_bit_hops = 0;
    hits = 0;
    misses = 0;
    dropped_updates = 0;
    lost_messages = 0;
    duplicated = 0;
    retries = 0;
    repairs = 0;
    unreachable = 0;
    sent = 0;
    delivered = 0;
    transport_lost = 0;
    in_flight = 0;
    transport_visible = false;
    route_cache_hits = 0;
    route_cache_misses = 0;
    latency_hops = Welford.create ();
    latency_histogram = Histogram.create ();
  }

let record_query_hop t = t.query_hops <- t.query_hops + 1

let record_first_time_hop t ~answering =
  if answering then t.first_time_answer_hops <- t.first_time_answer_hops + 1
  else t.first_time_proactive_hops <- t.first_time_proactive_hops + 1

let record_update_hop t = function
  | `Refresh -> t.refresh_hops <- t.refresh_hops + 1
  | `Delete -> t.delete_hops <- t.delete_hops + 1
  | `Append -> t.append_hops <- t.append_hops + 1

let record_clear_bit_hop t = t.clear_bit_hops <- t.clear_bit_hops + 1
let record_hit t = t.hits <- t.hits + 1

(* Takes the latency already converted to hops so the hot path is
   three unconditional stores plus the accumulator updates — callers
   precompute the 1/hop_delay factor once per run instead of paying a
   branch and a division per miss. *)
let record_miss t ~hops =
  t.misses <- t.misses + 1;
  Welford.add t.latency_hops hops;
  Histogram.add t.latency_histogram hops

let record_dropped_update t = t.dropped_updates <- t.dropped_updates + 1
let record_lost_message t = t.lost_messages <- t.lost_messages + 1
let record_duplicate t = t.duplicated <- t.duplicated + 1
let record_retry t = t.retries <- t.retries + 1

(* Each transport recorder moves one message between exactly two terms
   of the conservation identity sent = delivered + lost + in_flight,
   so the identity holds at every instant, not just at run end. *)
let record_sent t =
  t.sent <- t.sent + 1;
  t.in_flight <- t.in_flight + 1

let record_delivered t =
  t.delivered <- t.delivered + 1;
  t.in_flight <- t.in_flight - 1

let record_transport_lost t =
  t.transport_lost <- t.transport_lost + 1;
  t.in_flight <- t.in_flight - 1

let expose_transport t = t.transport_visible <- true

let set_route_cache_stats t ~hits ~misses =
  t.route_cache_hits <- hits;
  t.route_cache_misses <- misses

let record_repair t = t.repairs <- t.repairs + 1
let record_unreachable t = t.unreachable <- t.unreachable + 1

let query_hops t = t.query_hops
let first_time_answer_hops t = t.first_time_answer_hops
let first_time_proactive_hops t = t.first_time_proactive_hops
let refresh_hops t = t.refresh_hops
let delete_hops t = t.delete_hops
let append_hops t = t.append_hops
let clear_bit_hops t = t.clear_bit_hops

let miss_cost t = t.query_hops + t.first_time_answer_hops

let overhead_cost t =
  t.first_time_proactive_hops + t.refresh_hops + t.delete_hops
  + t.append_hops + t.clear_bit_hops

let total_cost t = miss_cost t + overhead_cost t

let hits t = t.hits
let misses t = t.misses
let local_queries t = t.hits + t.misses
let dropped_updates t = t.dropped_updates
let lost_messages t = t.lost_messages
let duplicated t = t.duplicated
let retries t = t.retries
let repairs t = t.repairs
let unreachable t = t.unreachable
let sent t = t.sent
let delivered t = t.delivered
let transport_lost t = t.transport_lost
let in_flight t = t.in_flight
let route_cache_hits t = t.route_cache_hits
let route_cache_misses t = t.route_cache_misses
let miss_latency_hops t = t.latency_hops
let miss_latency_histogram t = t.latency_histogram

let miss_latency_percentile t q = Histogram.quantile t.latency_histogram q
let avg_miss_latency_hops t = Welford.mean t.latency_hops

let merge a b =
  {
    query_hops = a.query_hops + b.query_hops;
    first_time_answer_hops = a.first_time_answer_hops + b.first_time_answer_hops;
    first_time_proactive_hops =
      a.first_time_proactive_hops + b.first_time_proactive_hops;
    refresh_hops = a.refresh_hops + b.refresh_hops;
    delete_hops = a.delete_hops + b.delete_hops;
    append_hops = a.append_hops + b.append_hops;
    clear_bit_hops = a.clear_bit_hops + b.clear_bit_hops;
    hits = a.hits + b.hits;
    misses = a.misses + b.misses;
    dropped_updates = a.dropped_updates + b.dropped_updates;
    lost_messages = a.lost_messages + b.lost_messages;
    duplicated = a.duplicated + b.duplicated;
    retries = a.retries + b.retries;
    repairs = a.repairs + b.repairs;
    unreachable = a.unreachable + b.unreachable;
    sent = a.sent + b.sent;
    delivered = a.delivered + b.delivered;
    transport_lost = a.transport_lost + b.transport_lost;
    in_flight = a.in_flight + b.in_flight;
    transport_visible = a.transport_visible || b.transport_visible;
    route_cache_hits = a.route_cache_hits + b.route_cache_hits;
    route_cache_misses = a.route_cache_misses + b.route_cache_misses;
    latency_hops = Welford.merge a.latency_hops b.latency_hops;
    latency_histogram = Histogram.merge a.latency_histogram b.latency_histogram;
  }

let pp fmt t =
  Format.fprintf fmt
    "@[<v>miss cost: %d hops (%d query + %d first-time)@,\
     overhead:  %d hops (%d proactive-ft + %d refresh + %d delete + %d \
     append + %d clear-bit)@,\
     total:     %d hops@,\
     queries:   %d local (%d hits, %d misses), avg miss latency %.2f hops"
    (miss_cost t) t.query_hops t.first_time_answer_hops (overhead_cost t)
    t.first_time_proactive_hops t.refresh_hops t.delete_hops t.append_hops
    t.clear_bit_hops (total_cost t) (local_queries t) t.hits t.misses
    (avg_miss_latency_hops t);
  (* The fault line only appears when fault injection actually touched
     the run, so fault-free output keeps its historical shape. *)
  if t.lost_messages + t.duplicated + t.retries + t.repairs + t.unreachable > 0
  then begin
    Format.fprintf fmt
      "@,faults:    %d lost, %d retries, %d repairs, %d unreachable"
      t.lost_messages t.retries t.repairs t.unreachable;
    if t.duplicated > 0 then Format.fprintf fmt ", %d duplicated" t.duplicated
  end;
  (* The transport line appears only when conservation checking was
     turned on ({!expose_transport}) so default output keeps its
     historical shape. *)
  if t.transport_visible then
    Format.fprintf fmt
      "@,transport: %d sent = %d delivered + %d lost + %d in flight" t.sent
      t.delivered t.transport_lost t.in_flight;
  Format.fprintf fmt "@]"
