type t = {
  jobs : int;
  mutex : Mutex.t;
  wake : Condition.t;  (* a task was queued, or shutdown began *)
  tasks : (unit -> unit) Queue.t;
  mutable down : bool;
  mutable workers : unit Domain.t list;
}

(* Set while a domain is executing a pool task, so a nested [map] can
   be rejected instead of deadlocking the fixed-size pool. *)
let in_task : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let default_jobs () = Domain.recommended_domain_count ()

let jobs t = t.jobs

let exec_task task =
  Domain.DLS.set in_task true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set in_task false) task

(* Workers never see task exceptions: [map] wraps each task so every
   outcome, including a raise, is recorded into that map's results. *)
let rec worker_loop t =
  Mutex.lock t.mutex;
  let rec next () =
    match Queue.take_opt t.tasks with
    | Some task ->
        Mutex.unlock t.mutex;
        exec_task task;
        worker_loop t
    | None ->
        if t.down then Mutex.unlock t.mutex
        else begin
          Condition.wait t.wake t.mutex;
          next ()
        end
  in
  next ()

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      wake = Condition.create ();
      tasks = Queue.create ();
      down = false;
      workers = [];
    }
  in
  t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  let already = t.down in
  t.down <- true;
  Condition.broadcast t.wake;
  Mutex.unlock t.mutex;
  if not already then List.iter Domain.join t.workers

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let map t f items =
  if t.down then invalid_arg "Pool.map: pool is shut down";
  if Domain.DLS.get in_task then
    invalid_arg "Pool.map: nested map inside a pool task";
  match items with
  | [] -> []
  | _ ->
      let arr = Array.of_list items in
      let n = Array.length arr in
      let results = Array.make n None in
      let pending = ref n in
      let first_error = ref None in
      let finished = Condition.create () in
      let run_one i () =
        let outcome =
          match f arr.(i) with
          | v -> Ok v
          | exception e -> Error (e, Printexc.get_raw_backtrace ())
        in
        Mutex.lock t.mutex;
        (match outcome with
        | Ok v -> results.(i) <- Some v
        | Error (e, bt) -> (
            (* Keep the lowest-indexed failure: which exception [map]
               re-raises must not depend on domain scheduling. *)
            match !first_error with
            | Some (j, _, _) when j < i -> ()
            | Some _ | None -> first_error := Some (i, e, bt)));
        decr pending;
        if !pending = 0 then Condition.broadcast finished;
        Mutex.unlock t.mutex
      in
      Mutex.lock t.mutex;
      for i = 0 to n - 1 do
        Queue.add (run_one i) t.tasks
      done;
      Condition.broadcast t.wake;
      (* The calling domain is a worker too: drain tasks until the
         queue is empty, then wait out the in-flight ones.  With
         [jobs = 1] there are no other domains and this loop runs the
         whole map sequentially, in input order. *)
      let rec drain () =
        match Queue.take_opt t.tasks with
        | Some task ->
            Mutex.unlock t.mutex;
            exec_task task;
            Mutex.lock t.mutex;
            drain ()
        | None -> ()
      in
      drain ();
      while !pending > 0 do
        Condition.wait finished t.mutex
      done;
      Mutex.unlock t.mutex;
      (match !first_error with
      | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ());
      Array.to_list
        (Array.map (function Some v -> v | None -> assert false) results)
