(** A fixed-size domain work pool for embarrassingly parallel
    experiment fan-out.

    Built on the stdlib only ([Domain], [Mutex], [Condition]); no
    domainslib.  The pool exists to run {e independent} simulations —
    each with its own engine, topology and RNG — across cores, so the
    contract is deliberately narrow:

    {b Deterministic merge.}  [map pool f items] returns exactly
    [List.map f items]: results are delivered in input order, whatever
    order the domains finish in.  When [f] is a pure function of its
    argument (every [Runner.run] is: a run is a pure function of its
    scenario and seed), the output of a parallel map is byte-identical
    to the sequential one — [jobs] changes wall-clock time and nothing
    else.

    {b Exception propagation.}  If one or more applications of [f]
    raise, every task still runs to completion, then [map] re-raises
    the exception of the {e lowest-indexed} failing item with its
    backtrace — again independent of scheduling.

    {b No nesting.}  Calling [map] from inside a pool task raises
    [Invalid_argument]: nested fan-out deadlocks a fixed-size pool and
    never makes independent-run sweeps faster.  Parallelize the outer
    loop only.

    A pool with [jobs = 1] spawns no domains at all; [map] then runs
    every task in the calling domain, in order — exactly the
    sequential behaviour, with no synchronization beyond an uncontended
    mutex. *)

type t

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains; the caller's own
    domain is the remaining worker, participating in every {!map}.
    Raises [Invalid_argument] when [jobs < 1]. *)

val jobs : t -> int
(** The parallelism this pool was created with. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]: one job per core the runtime
    believes it can use. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f items] applies [f] to every item across the pool's
    domains and returns the results in input order.  See the
    determinism, exception and nesting contracts above. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent.  Calling {!map}
    after [shutdown] raises [Invalid_argument].  Must not be called
    while a [map] is in flight. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and shuts it down
    afterwards, whether [f] returns or raises. *)
