(** Deterministic swarm-testing fuzzer.

    One fuzz seed maps to one randomized scenario — topology family
    and size, key catalog, query load (including Zipf flash crowds),
    churn, crash/recover, per-channel loss, partitions, reordering,
    duplication, each fault axis tossed independently in the
    swarm-testing style — which an injected executor runs under the
    online invariant auditor.  Everything is a pure function of the
    seed: a failure inside a million-seed sweep replays standalone
    with [cup fuzz --seed N], or outside the fuzzer entirely with the
    rendered {!repro_command}.

    The executor is a parameter ([exec]) rather than a dependency:
    the audited implementation lives in [Cup_obs.Fuzz_oracle], which
    this library cannot see (the observation layer depends on the
    simulator, not vice versa), and tests substitute doctored
    executors to prove the harness catches planted bugs. *)

type fail = {
  code : string;  (** ["V1"] .. ["V4"], as in {!Cup_obs.Audit} *)
  invariant : string;
  at : float;
  detail : string;
}

type verdict =
  | Pass of { events : int }  (** audited events in the run *)
  | Fail of fail

type failure = {
  seed : int;
  scenario : Scenario.t;  (** as generated, before shrinking *)
  fail : fail;
  shrunk : (Scenario.t * fail) option;
      (** minimal still-failing scenario and its (possibly different)
          violation, when shrinking was enabled *)
}

type summary = {
  seeds_run : int;
  passed : int;
  total_events : int;  (** across passing runs *)
  failures : failure list;  (** in seed order *)
  timings : (int * float) list;
      (** per-seed wall-clock milliseconds, in seed order.  Host
          timing, {e not} part of the deterministic verdict: consumers
          printing it must keep it off byte-compared output (the CLI
          prints it on filterable [wallclock]-prefixed lines). *)
}

val scenario_of_seed : int -> Scenario.t
(** Pure: the same seed always yields the same scenario.  Generated
    scenarios stay within the subset of {!Scenario.t} expressible as
    [cup run] flags, so every failure has a pasteable repro. *)

val repro_command : Scenario.t -> string
(** A ready-to-paste [cup run ... --audit] command reproducing the
    scenario outside the fuzzer. *)

val shrink :
  exec:(Scenario.t -> verdict) -> Scenario.t -> (Scenario.t * fail) option
(** Greedy minimization: halve the node count, shorten the schedule,
    drop fault axes one at a time, reduce keys/replicas — keeping any
    simplification under which [exec] still fails (not necessarily
    with the original violation: any failure is a repro worth
    keeping).  [None] when [exec] passes on the input scenario. *)

val run_seeds :
  exec:(Scenario.t -> verdict) ->
  ?pool:Cup_parallel.Pool.t ->
  ?shrink_failures:bool ->
  seed_start:int ->
  seeds:int ->
  unit ->
  summary
(** Evaluate seeds [seed_start .. seed_start + seeds - 1].  With a
    pool the evaluations fan across domains; {!Cup_parallel.Pool.map}
    merges in input order and [exec] is pure, so the summary is
    byte-identical at every job count.  Failing seeds are shrunk
    sequentially afterwards (default on). *)
