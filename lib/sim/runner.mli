(** Execute a {!Scenario} and account its costs.

    The runner builds the CAN overlay, instantiates one CUP node per
    overlay node, registers each key at its authority, and drives the
    replica-lifecycle, query and fault workloads through the
    discrete-event engine.  Every protocol message crossing an overlay
    edge is charged one hop to the Section 3.1 cost model
    ({!Cup_metrics.Counters}).

    First-time updates are never dropped by reduced capacity (they
    carry query answers; a node that cannot propagate updates still
    answers queries, it merely degrades its dependents to standard
    caching).

    {b Fault injection.}  When the scenario carries a
    {!Scenario.crash_spec} or {!Scenario.loss_spec}, the runner
    additionally injects node crashes (non-graceful departures drawn
    from the dedicated ["crashes"] PRNG substream, optionally followed
    by replacement joins) and per-channel message loss (one Bernoulli
    draw per message from the ["loss"] substream, with the channel's
    drop rate a pure hash of the endpoints).  Queries lost on the wire
    or bounced off a crashed hop are re-routed by their sender with
    capped exponential backoff; lost updates are healed by the
    subscription repair machinery, which watches each subscriber's
    justification deadline and re-issues its interest up the repaired
    overlay path when updates stop flowing, degrading to
    expiration-based polling after repeated failures.  Routing
    non-convergence is typed ({!Cup_overlay.Route.t}) and counted
    ([unreachable] in {!Cup_metrics.Counters}) instead of raising.
    All fault draws happen in engine-event order, so a run is
    byte-identical across schedulers, job counts and route-cache
    settings for the same seed and fault spec. *)

type result = {
  counters : Cup_metrics.Counters.t;
  node_stats : Cup_proto.Node.stats;  (** summed over all nodes *)
  queries_posted : int;
  replica_events : int;
  engine_events : int;
  wallclock : float;  (** host seconds the run took *)
  events_per_sec : float;
      (** [engine_events / wallclock]; [0.] when the wallclock rounded
          to zero — the simulator's throughput baseline *)
  tracked_updates : int;
      (** propagated (non-answering) updates registered for the
          Section 3.1 justification test *)
  justified_updates : int;
      (** of those, how many saw a query at the receiving node within
          their critical window *)
  profile : Cup_dess.Engine.profile option;
      (** engine probe data; [None] unless profiling was enabled on
          the live engine (see {!Cup_dess.Engine.enable_profiling}) *)
}

val run : Scenario.t -> result
(** Raises [Invalid_argument] when the scenario fails
    {!Scenario.validate}. *)

val export_counters : Cup_metrics.Counters.t -> Cup_metrics.Registry.t -> unit
(** Snapshot hop/query/fault/transport counters into a registry as the
    [cup_hops_total], [cup_queries_total], [cup_dropped_updates_total],
    [cup_faults_total] and [cup_transport_messages_total] families.
    Called on the attached registry at {!Live.finish}; exposed so a
    live scrape can inject the same snapshot into a registry copy and
    stay byte-identical with the file written at finish. *)

type queue_stats = {
  pending_events : int;  (** events in the engine heap right now *)
  queued_updates : int;
      (** updates across all Section 2.8 token-bucket channels; always
          [0] outside token-bucket capacity mode *)
  max_queue_depth : int;
      (** largest single node's total outgoing queue *)
}

(** {1 Lower-level access}

    [Live] exposes a constructed simulation before it runs, so tests
    and interactive examples can inspect protocol state mid-run. *)

module Live : sig
  type t

  val create : Scenario.t -> t
  val engine : t -> Cup_dess.Engine.t
  val scenario : t -> Scenario.t
  val network : t -> Cup_overlay.Net.t

  val update_queue_depths : t -> (Cup_overlay.Node_id.t * int) list
  (** Nodes with a nonempty Section 2.8 outgoing update channel and
      the total number of updates queued there, in node order.  Always
      empty outside token-bucket capacity mode. *)

  val queue_stats : t -> queue_stats
  (** Engine pending-event count and update-channel depth gauges in
      one read — the accessor behind [/health], {!Cup_obs.Timeseries}
      samples and the queue-depth report. *)

  val wallclock_elapsed : t -> float
  (** Host seconds since the live simulation was created. *)

  val queries_posted : t -> int
  (** Locally posted queries so far. *)

  val node : t -> Cup_overlay.Node_id.t -> Cup_proto.Node.t
  val counters : t -> Cup_metrics.Counters.t
  val key_of_index : t -> int -> Cup_overlay.Key.t
  val authority_of : t -> Cup_overlay.Key.t -> Cup_overlay.Node_id.t

  val post_query :
    t -> node:Cup_overlay.Node_id.t -> key:Cup_overlay.Key.t -> unit
  (** Post a local client query at the engine's current time. *)

  val set_capacity : t -> Cup_overlay.Node_id.t -> float -> unit

  val run_until : t -> float -> unit
  (** Advance the simulation to the given virtual time. *)

  val finish : t -> result
  (** Run to completion and summarize. *)

  val node_join : t -> Cup_overlay.Node_id.t
  (** A fresh node joins at a random point; interest vectors and
      authority directories of affected nodes are patched per
      Section 2.9.  Returns the new node's id. *)

  val set_tracer : t -> (Trace.event -> unit) option -> unit
  (** Observe every protocol event (see {!Trace}); [None] detaches. *)

  val set_metrics : t -> Cup_metrics.Registry.t option -> unit
  (** Record latency histograms into the given registry as the run
      executes — per-miss query latency in hops
      ([cup_query_latency_hops]), update propagation latency per tree
      level ([cup_update_propagation_seconds{level="..."}]), and
      subscription-repair latency ([cup_repair_seconds]) — and
      snapshot the hop/fault counters into it at {!finish}.  Attaching
      a registry also turns on span-id allocation (see {!Trace}), so
      ids stay deterministic whether or not a tracer is attached too.
      [None] detaches. *)

  val metrics : t -> Cup_metrics.Registry.t option
  (** The registry attached with {!set_metrics}, if any. *)

  val set_attribution : t -> Cup_metrics.Attribution.t option -> unit
  (** Attribute every query, hit/miss, hop, and delivery to
      [(key, node, tree-level)] as the run executes (see
      {!Cup_metrics.Attribution}).  Detached ([None], the default) the
      delivery path pays a single branch and allocates nothing. *)

  val attribution : t -> Cup_metrics.Attribution.t option
  (** The attribution layer attached with {!set_attribution}, if any. *)

  val node_leave : ?graceful:bool -> t -> Cup_overlay.Node_id.t -> unit
  (** Departure with the taker absorbing the node's zone/range.
      [graceful] (default [true]) hands the authority directories
      over; [false] models a crash (Section 2.9's unplanned
      departure): the directories are lost and rebuilt at the new
      authority by the replicas' next keep-alives, while dependent
      caches simply expire as in standard caching. *)

  val justification_backlog : t -> int
  (** Total number of justification deadlines currently held for the
      Section 3.1 accounting, summed over all (node, key) slots.
      Expired deadlines are swept when the next update for the same
      (node, key) arrives, so the backlog stays bounded even for pairs
      that receive updates but no queries. *)
end
