type capacity_mode = Bernoulli | Token_bucket of float

type fault_spec =
  | Up_and_down of {
      fraction : float;
      reduced : float;
      warmup : float;
      down : float;
      gap : float;
    }
  | Once_down of { fraction : float; reduced : float; warmup : float }

type crash_spec = { crash_rate : float; recover_after : float; warmup : float }

type loss_spec = { drop : float; jitter : float }

type partition_spec = {
  fraction : float;  (* expected share of nodes on the island side *)
  p_start : float;  (* seconds after query_start the cut opens *)
  p_duration : float;  (* seconds the cut stays open *)
  symmetric : bool;
      (* [true]: no message crosses the cut either way.  [false]
         (asymmetric, the interesting shape): island nodes can still
         send out, but nothing reaches them — one-way reachability. *)
}

type reorder_spec = {
  r_probability : float;  (* per-message chance of a delayed delivery *)
  r_spread : float;  (* extra delay, as a multiple of hop_delay *)
}

type duplicate_spec = { d_probability : float }
(* per-message chance the channel delivers a second copy *)

type t = {
  seed : int;
  nodes : int;
  overlay : Cup_overlay.Net.kind;
  scheduler : Cup_dess.Engine.scheduler option;
  route_cache : bool;
  keys_per_node : float;
  total_keys_override : int option;
  replicas_per_key : int;
  replica_lifetime : float;
  death_prob : float;
  node_config : Cup_proto.Node.config;
  hop_delay : float;
  query_rate : float;
  query_start : float;
  query_duration : float;
  drain : float;
  key_dist : [ `Uniform | `Zipf of float ];
  capacity_mode : capacity_mode;
  queue_ordering : Cup_proto.Update_queue.ordering;
  faults : fault_spec option;
  crashes : crash_spec option;
  loss : loss_spec option;
  partition : partition_spec option;
  reorder : reorder_spec option;
  duplication : duplicate_spec option;
  refresh_batch_window : float;
  refresh_sample : float;
  piggyback_clear_bits : bool;
  flat_node_state : bool;
  route_cache_churn_lookups : int;
}

let default =
  {
    seed = 1;
    nodes = 256;
    overlay = Cup_overlay.Net.Can `Random;
    scheduler = None;
    route_cache = true;
    keys_per_node = 1.;
    total_keys_override = None;
    replicas_per_key = 1;
    replica_lifetime = 300.;
    death_prob = 0.;
    node_config = Cup_proto.Node.default_config;
    hop_delay = 0.01;
    query_rate = 1.;
    query_start = 300.;
    query_duration = 3000.;
    drain = 600.;
    key_dist = `Uniform;
    capacity_mode = Bernoulli;
    queue_ordering = Cup_proto.Update_queue.Latency_first;
    faults = None;
    crashes = None;
    loss = None;
    partition = None;
    reorder = None;
    duplication = None;
    refresh_batch_window = 0.;
    refresh_sample = 1.;
    piggyback_clear_bits = false;
    flat_node_state = false;
    route_cache_churn_lookups = 64;
  }

let sim_end t = t.query_start +. t.query_duration +. t.drain

let total_keys t =
  match t.total_keys_override with
  | Some k -> k
  | None ->
      Stdlib.max 1
        (int_of_float (Float.round (float_of_int t.nodes *. t.keys_per_node)))

let with_policy t policy =
  { t with node_config = { t.node_config with policy } }

let fault_injection t =
  t.crashes <> None || t.loss <> None || t.partition <> None
  || t.reorder <> None || t.duplication <> None

let validate t =
  let check cond msg = if cond then Ok () else Error msg in
  let ( let* ) = Result.bind in
  let* () = check (t.nodes >= 1) "nodes must be >= 1" in
  let* () = check (t.keys_per_node > 0.) "keys_per_node must be > 0" in
  let* () =
    check
      (match t.total_keys_override with Some k -> k >= 1 | None -> true)
      "total_keys_override must be >= 1"
  in
  let* () = check (t.replicas_per_key >= 1) "replicas_per_key must be >= 1" in
  let* () = check (t.replica_lifetime > 0.) "replica_lifetime must be > 0" in
  let* () =
    check
      (t.death_prob >= 0. && t.death_prob <= 1.)
      "death_prob must be in [0, 1]"
  in
  let* () = check (t.hop_delay >= 0.) "hop_delay must be >= 0" in
  let* () = check (t.query_rate > 0.) "query_rate must be > 0" in
  let* () = check (t.query_start >= 0.) "query_start must be >= 0" in
  let* () = check (t.query_duration > 0.) "query_duration must be > 0" in
  let* () = check (t.drain >= 0.) "drain must be >= 0" in
  let* () =
    check (t.refresh_batch_window >= 0.) "refresh_batch_window must be >= 0"
  in
  let* () =
    check
      (t.refresh_sample >= 0. && t.refresh_sample <= 1.)
      "refresh_sample must be in [0, 1]"
  in
  let* () =
    check
      (t.route_cache_churn_lookups >= 0)
      "route_cache_churn_lookups must be >= 0"
  in
  let* () =
    match t.capacity_mode with
    | Bernoulli -> Ok ()
    | Token_bucket rate ->
        check (rate > 0.) "token bucket rate must be > 0"
  in
  let* () =
    match t.faults with
    | None -> Ok ()
    | Some (Up_and_down { fraction; reduced; warmup; down; gap }) ->
        let* () =
          check (fraction >= 0. && fraction <= 1.) "fraction must be in [0, 1]"
        in
        let* () =
          check (reduced >= 0. && reduced <= 1.) "reduced must be in [0, 1]"
        in
        check
          (warmup >= 0. && down > 0. && gap >= 0.)
          "fault timing must be nonnegative (down > 0)"
    | Some (Once_down { fraction; reduced; warmup }) ->
        let* () =
          check (fraction >= 0. && fraction <= 1.) "fraction must be in [0, 1]"
        in
        let* () =
          check (reduced >= 0. && reduced <= 1.) "reduced must be in [0, 1]"
        in
        check (warmup >= 0.) "warmup must be >= 0"
  in
  let* () =
    match t.crashes with
    | None -> Ok ()
    | Some { crash_rate; recover_after; warmup } ->
        let* () = check (crash_rate > 0.) "crash_rate must be > 0" in
        let* () =
          check (recover_after >= 0.) "recover_after must be >= 0"
        in
        check (warmup >= 0.) "crash warmup must be >= 0"
  in
  let* () =
    match t.loss with
    | None -> Ok ()
    | Some { drop; jitter } ->
        let* () = check (drop >= 0. && drop <= 1.) "drop must be in [0, 1]" in
        check (jitter >= 0. && jitter <= 1.) "jitter must be in [0, 1]"
  in
  let* () =
    match t.partition with
    | None -> Ok ()
    | Some { fraction; p_start; p_duration; symmetric = _ } ->
        let* () =
          check
            (fraction >= 0. && fraction <= 1.)
            "partition fraction must be in [0, 1]"
        in
        let* () = check (p_start >= 0.) "partition start must be >= 0" in
        check (p_duration > 0.) "partition duration must be > 0"
  in
  let* () =
    match t.reorder with
    | None -> Ok ()
    | Some { r_probability; r_spread } ->
        let* () =
          check
            (r_probability >= 0. && r_probability <= 1.)
            "reorder probability must be in [0, 1]"
        in
        check
          (r_spread > 0. && r_spread <= 32.)
          "reorder spread must be in (0, 32] hop delays"
  in
  match t.duplication with
  | None -> Ok ()
  | Some { d_probability } ->
      check
        (d_probability >= 0. && d_probability <= 1.)
        "duplicate probability must be in [0, 1]"
