module Policy = Cup_proto.Policy
module Counters = Cup_metrics.Counters
module Pool = Cup_parallel.Pool

type scale = Scaled | Full

(* Every experiment below fans its independent [Runner.run] calls over
   [pmap].  A run is a pure function of its scenario (own engine,
   topology, RNG), so with a pool the only thing that changes is
   wall-clock time: [Pool.map] returns results in input order and the
   assembly below is sequential, keeping parallel output byte-identical
   to sequential output. *)
let pmap ?pool f xs =
  match pool with
  | None -> List.map f xs
  | Some pool -> Pool.map pool f xs

let base_scenario scale =
  let nodes = match scale with Scaled -> 256 | Full -> 1024 in
  {
    Scenario.default with
    nodes;
    total_keys_override = Some 1;
    query_rate = 1.;
    drain = 1200.;
    seed = 42;
  }

(* Scaled rates keep the per-node query density of the paper's
   1024-node runs: lambda * 256/1024. *)
let rates = function
  | Scaled -> [ 0.25; 2.5; 25.; 250. ]
  | Full -> [ 1.; 10.; 100.; 1000. ]

let run_counters cfg = (Runner.run cfg).counters

(* {1 Figures 3 and 4} *)

type push_level_point = { level : int; total_cost : int; miss_cost : int }

type push_level_series = {
  rate : float;
  points : push_level_point list;
  optimal_level : int;
  optimal_total : int;
}

let default_levels scale =
  match scale with
  | Scaled -> [ 0; 1; 2; 3; 4; 5; 6; 8; 10; 12; 14; 16; 20; 24 ]
  | Full -> [ 0; 1; 2; 3; 4; 5; 6; 8; 10; 12; 15; 18; 21; 24; 27; 30 ]

let push_level_sweep ?pool ?levels scale ~rate =
  let levels =
    match levels with Some l -> l | None -> default_levels scale
  in
  let base = { (base_scenario scale) with query_rate = rate } in
  let points =
    pmap ?pool
      (fun level ->
        let cfg = Scenario.with_policy base (Policy.Push_level level) in
        let c = run_counters cfg in
        {
          level;
          total_cost = Counters.total_cost c;
          miss_cost = Counters.miss_cost c;
        })
      levels
  in
  let optimal =
    List.fold_left
      (fun acc p ->
        match acc with
        | Some best when best.total_cost <= p.total_cost -> acc
        | Some _ | None -> Some p)
      None points
  in
  match optimal with
  | None -> invalid_arg "push_level_sweep: empty level list"
  | Some best ->
      {
        rate;
        points;
        optimal_level = best.level;
        optimal_total = best.total_cost;
      }

(* {1 Table 1} *)

type policy_cell = { total : int; normalized : float }

type policy_row = {
  policy_label : string;
  cells : (float * policy_cell) list;
}

let table1_policies =
  [
    Policy.Standard_caching;
    Policy.Linear 0.25;
    Policy.Linear 0.10;
    Policy.Linear 0.01;
    Policy.Linear 0.001;
    Policy.Logarithmic 0.5;
    Policy.Logarithmic 0.25;
    Policy.Logarithmic 0.10;
    Policy.Logarithmic 0.01;
    Policy.second_chance;
  ]

let table1 ?pool ?optimal scale =
  let rs = rates scale in
  let base = base_scenario scale in
  (* One flat (policy, rate) grid so the whole table fans out at once. *)
  let totals =
    pmap ?pool
      (fun (policy, rate) ->
        let cfg =
          Scenario.with_policy { base with query_rate = rate } policy
        in
        ((policy, rate), Counters.total_cost (run_counters cfg)))
      (List.concat_map
         (fun policy -> List.map (fun rate -> (policy, rate)) rs)
         table1_policies)
  in
  let totals_for policy =
    List.map (fun rate -> (rate, List.assoc (policy, rate) totals)) rs
  in
  let standard = totals_for Policy.Standard_caching in
  let normalize rate total =
    let std = List.assoc rate standard in
    { total; normalized = float_of_int total /. float_of_int (max 1 std) }
  in
  let rows =
    List.map
      (fun policy ->
        let totals =
          if policy = Policy.Standard_caching then standard
          else totals_for policy
        in
        {
          policy_label = Policy.to_string policy;
          cells = List.map (fun (r, t) -> (r, normalize r t)) totals;
        })
      table1_policies
  in
  let optimal_series =
    match optimal with
    | Some series -> series
    | None -> List.map (fun rate -> push_level_sweep ?pool scale ~rate) rs
  in
  let optimal_cells =
    List.filter_map
      (fun rate ->
        match
          List.find_opt (fun s -> s.rate = rate) optimal_series
        with
        | Some s -> Some (rate, normalize rate s.optimal_total)
        | None -> None)
      rs
  in
  rows @ [ { policy_label = "optimal push level"; cells = optimal_cells } ]

(* {1 Table 2} *)

type size_row = {
  nodes : int;
  miss_cost_ratio : float;
  cup_miss_latency : float;
  std_miss_latency : float;
  saved_per_overhead : float;
}

let table2_sizes scale =
  let max_k = match scale with Scaled -> 10 | Full -> 12 in
  List.init (max_k - 2) (fun i -> 1 lsl (i + 3))

(* The paper reports miss latency as one-way hops to the answer; our
   counters measure round-trip elapsed time in hop units. *)
let one_way hops = hops /. 2.

let table2 ?pool scale =
  (* Flatten to one run per task: (nodes, policy) pairs. *)
  let runs =
    pmap ?pool
      (fun (nodes, policy) ->
        let base = { (base_scenario scale) with nodes } in
        ((nodes, policy), run_counters (Scenario.with_policy base policy)))
      (List.concat_map
         (fun nodes ->
           [ (nodes, Policy.Standard_caching); (nodes, Policy.second_chance) ])
         (table2_sizes scale))
  in
  List.map
    (fun nodes ->
      let std = List.assoc (nodes, Policy.Standard_caching) runs in
      let cup = List.assoc (nodes, Policy.second_chance) runs in
      let std_miss = Counters.miss_cost std in
      let cup_miss = Counters.miss_cost cup in
      let overhead = Counters.overhead_cost cup in
      {
        nodes;
        miss_cost_ratio = float_of_int cup_miss /. float_of_int (max 1 std_miss);
        cup_miss_latency = one_way (Counters.avg_miss_latency_hops cup);
        std_miss_latency = one_way (Counters.avg_miss_latency_hops std);
        saved_per_overhead =
          float_of_int (std_miss - cup_miss) /. float_of_int (max 1 overhead);
      })
    (table2_sizes scale)

(* {1 Table 3} *)

type replica_row = {
  replicas : int;
  naive_miss_cost : int;
  naive_misses : int;
  indep_miss_cost : int;
  indep_misses : int;
  indep_total_cost : int;
}

let table3_replicas = [ 100; 50; 10; 5; 2; 1 ]

let table3 ?pool scale =
  let base = base_scenario scale in
  let runs =
    pmap ?pool
      (fun (replicas, replica_independent_cutoff) ->
        let cfg =
          {
            base with
            replicas_per_key = replicas;
            node_config =
              {
                policy = Policy.second_chance;
                replica_independent_cutoff;
              };
          }
        in
        ((replicas, replica_independent_cutoff), run_counters cfg))
      (List.concat_map
         (fun replicas -> [ (replicas, false); (replicas, true) ])
         table3_replicas)
  in
  List.map
    (fun replicas ->
      let naive = List.assoc (replicas, false) runs in
      let indep = List.assoc (replicas, true) runs in
      {
        replicas;
        naive_miss_cost = Counters.miss_cost naive;
        naive_misses = Counters.misses naive;
        indep_miss_cost = Counters.miss_cost indep;
        indep_misses = Counters.misses indep;
        indep_total_cost = Counters.total_cost indep;
      })
    table3_replicas

(* {1 Figures 5 and 6} *)

type capacity_point = {
  capacity : float;
  up_and_down_total : int;
  once_down_total : int;
}

type capacity_series = {
  cap_rate : float;
  std_total : int;
  cap_points : capacity_point list;
}

let capacity_sweep ?pool ?(capacities = [ 0.; 0.25; 0.5; 0.75; 1. ]) scale
    ~rate =
  let base = { (base_scenario scale) with query_rate = rate } in
  (* The standard-caching reference run rides in the same fan-out as
     the per-capacity fault runs. *)
  let tasks =
    `Std
    :: List.concat_map
         (fun capacity -> [ `Up_and_down capacity; `Once_down capacity ])
         capacities
  in
  let results =
    pmap ?pool
      (fun task ->
        let faulted mk capacity = { base with faults = Some (mk capacity) } in
        match task with
        | `Std ->
            Counters.total_cost
              (run_counters (Scenario.with_policy base Policy.Standard_caching))
        | `Up_and_down capacity ->
            Counters.total_cost
              (run_counters
                 (faulted
                    (fun reduced ->
                      Scenario.Up_and_down
                        {
                          fraction = 0.2;
                          reduced;
                          warmup = 300.;
                          down = 600.;
                          gap = 300.;
                        })
                    capacity))
        | `Once_down capacity ->
            Counters.total_cost
              (run_counters
                 (faulted
                    (fun reduced ->
                      Scenario.Once_down
                        { fraction = 0.2; reduced; warmup = 300. })
                    capacity)))
      tasks
  in
  match results with
  | std :: rest ->
      let rec pair capacities totals =
        match (capacities, totals) with
        | [], [] -> []
        | capacity :: cs, up :: down :: ts ->
            { capacity; up_and_down_total = up; once_down_total = down }
            :: pair cs ts
        | _ -> assert false
      in
      { cap_rate = rate; std_total = std; cap_points = pair capacities rest }
  | [] -> assert false

(* {1 Ablations} *)

type ordering_row = {
  ordering_label : string;
  ord_total : int;
  ord_miss : int;
  ord_misses : int;
}

let ablation_queue_ordering ?pool scale =
  let base = base_scenario scale in
  (* Starve the update channels so the queues actually build up: five
     replicas refreshing every 60 s feed far more update traffic than
     a 0.05 update/s token bucket can carry, so queued updates compete
     and expire. *)
  let starved =
    {
      base with
      query_rate = 2.5;
      total_keys_override = Some 4;
      replicas_per_key = 5;
      replica_lifetime = 60.;
      death_prob = 0.3;
      capacity_mode = Scenario.Token_bucket 0.05;
    }
  in
  pmap ?pool
    (fun (label, ordering) ->
      let c = run_counters { starved with queue_ordering = ordering } in
      {
        ordering_label = label;
        ord_total = Counters.total_cost c;
        ord_miss = Counters.miss_cost c;
        ord_misses = Counters.misses c;
      })
    [
      ("latency-first", Cup_proto.Update_queue.Latency_first);
      ("flash-crowd", Cup_proto.Update_queue.Flash_crowd);
      ("fifo", Cup_proto.Update_queue.Fifo);
    ]

type dry_row = { dry_window : int; dry_total : int; dry_miss : int }

let ablation_log_based_window ?pool scale =
  let base = base_scenario scale in
  pmap ?pool
    (fun n ->
      let c =
        run_counters (Scenario.with_policy base (Policy.Log_based n))
      in
      {
        dry_window = n;
        dry_total = Counters.total_cost c;
        dry_miss = Counters.miss_cost c;
      })
    [ 1; 2; 3; 4; 5 ]

(* {1 Section 3.6 techniques and Section 3.1 justification} *)

type technique_row = {
  technique_label : string;
  tech_total : int;
  tech_overhead : int;
  tech_miss : int;
  tech_misses : int;
  tech_justified_pct : float;
}

let justified_pct (r : Runner.result) =
  if r.tracked_updates = 0 then 0.
  else 100. *. float_of_int r.justified_updates /. float_of_int r.tracked_updates

let propagation_techniques ?pool scale =
  let base =
    {
      (base_scenario scale) with
      replicas_per_key = 10;
      query_rate = List.nth (rates scale) 1;
    }
  in
  pmap ?pool
    (fun (label, cfg) ->
      let r = Runner.run cfg in
      {
        technique_label = label;
        tech_total = Counters.total_cost r.counters;
        tech_overhead = Counters.overhead_cost r.counters;
        tech_miss = Counters.miss_cost r.counters;
        tech_misses = Counters.misses r.counters;
        tech_justified_pct = justified_pct r;
      })
    [
      ("per-replica refreshes (Table 3 baseline)", base);
      ( "batched refreshes, 5 s window",
        { base with refresh_batch_window = 5. } );
      ( "batched refreshes, 30 s window",
        { base with refresh_batch_window = 30. } );
      ("suppress half the refreshes", { base with refresh_sample = 0.5 });
      ("suppress 3/4 of the refreshes", { base with refresh_sample = 0.25 });
      ("piggybacked clear-bits", { base with piggyback_clear_bits = true });
    ]

type justification_row = {
  j_policy : string;
  j_rate : float;
  j_justified_pct : float;
  j_tracked : int;
  j_saved_per_overhead : float;
}

let justification ?pool scale =
  let base = base_scenario scale in
  let rs = [ List.hd (rates scale); List.nth (rates scale) 2 ] in
  let policies = [ Policy.All_out; Policy.second_chance; Policy.Linear 0.01 ] in
  (* One run per (rate, policy) cell plus the per-rate standard-caching
     reference, all in one fan-out. *)
  let runs =
    pmap ?pool
      (fun (rate, policy) ->
        ( (rate, policy),
          Runner.run
            (Scenario.with_policy { base with query_rate = rate } policy) ))
      (List.concat_map
         (fun rate ->
           (rate, Policy.Standard_caching)
           :: List.map (fun p -> (rate, p)) policies)
         rs)
  in
  List.concat_map
    (fun rate ->
      let std = List.assoc (rate, Policy.Standard_caching) runs in
      let std_miss = Counters.miss_cost std.Runner.counters in
      List.map
        (fun policy ->
          let r = List.assoc (rate, policy) runs in
          let overhead = Counters.overhead_cost r.Runner.counters in
          {
            j_policy = Policy.to_string policy;
            j_rate = rate;
            j_justified_pct = justified_pct r;
            j_tracked = r.tracked_updates;
            j_saved_per_overhead =
              float_of_int (std_miss - Counters.miss_cost r.Runner.counters)
              /. float_of_int (Stdlib.max 1 overhead);
          })
        policies)
    rs

(* {1 Overlay generality} *)

type overlay_row = {
  overlay_label : string;
  o_policy : string;
  o_total : int;
  o_miss : int;
  o_misses : int;
  o_latency : float;
}

let overlay_comparison ?pool scale =
  let base =
    { (base_scenario scale) with query_rate = List.nth (rates scale) 1 }
  in
  pmap ?pool
    (fun ((overlay_label, overlay), policy) ->
      let r =
        Runner.run (Scenario.with_policy { base with overlay } policy)
      in
      {
        overlay_label;
        o_policy = Policy.to_string policy;
        o_total = Counters.total_cost r.counters;
        o_miss = Counters.miss_cost r.counters;
        o_misses = Counters.misses r.counters;
        o_latency = one_way (Counters.avg_miss_latency_hops r.counters);
      })
    (List.concat_map
       (fun overlay ->
         List.map
           (fun policy -> (overlay, policy))
           [ Policy.Standard_caching; Policy.second_chance ])
       [
         ("CAN (2-d torus)", Cup_overlay.Net.Can `Random);
         ("Chord (64-bit ring)", Cup_overlay.Net.Chord);
         ("Pastry (prefix routing)", Cup_overlay.Net.Pastry);
       ])

(* {1 Replication across seeds} *)

type replicated = {
  runs : int;
  total_mean : float;
  total_stddev : float;
  miss_mean : float;
  miss_stddev : float;
  misses_mean : float;
  misses_stddev : float;
  latency_mean : float;
  latency_stddev : float;
}

let replicated_of_results ~runs results =
  let total = Cup_metrics.Welford.create () in
  let miss = Cup_metrics.Welford.create () in
  let misses = Cup_metrics.Welford.create () in
  let latency = Cup_metrics.Welford.create () in
  (* Accumulate in seed order: the reported moments are independent of
     the pool's scheduling. *)
  List.iter
    (fun (r : Runner.result) ->
      Cup_metrics.Welford.add total (float_of_int (Counters.total_cost r.counters));
      Cup_metrics.Welford.add miss (float_of_int (Counters.miss_cost r.counters));
      Cup_metrics.Welford.add misses (float_of_int (Counters.misses r.counters));
      Cup_metrics.Welford.add latency (Counters.avg_miss_latency_hops r.counters))
    results;
  {
    runs;
    total_mean = Cup_metrics.Welford.mean total;
    total_stddev = Cup_metrics.Welford.stddev total;
    miss_mean = Cup_metrics.Welford.mean miss;
    miss_stddev = Cup_metrics.Welford.stddev miss;
    misses_mean = Cup_metrics.Welford.mean misses;
    misses_stddev = Cup_metrics.Welford.stddev misses;
    latency_mean = Cup_metrics.Welford.mean latency;
    latency_stddev = Cup_metrics.Welford.stddev latency;
  }

let replicate ?pool cfg ~runs =
  if runs < 1 then invalid_arg "Experiments.replicate: runs must be >= 1";
  let results =
    pmap ?pool
      (fun i -> Runner.run { cfg with Scenario.seed = cfg.Scenario.seed + i })
      (List.init runs Fun.id)
  in
  replicated_of_results ~runs results

let replicate_metrics ?pool cfg ~runs =
  if runs < 1 then
    invalid_arg "Experiments.replicate_metrics: runs must be >= 1";
  let observed =
    pmap ?pool
      (fun i ->
        let live =
          Runner.Live.create { cfg with Scenario.seed = cfg.Scenario.seed + i }
        in
        let registry = Cup_metrics.Registry.create () in
        Runner.Live.set_metrics live (Some registry);
        let r = Runner.Live.finish live in
        (r, registry))
      (List.init runs Fun.id)
  in
  let stats = replicated_of_results ~runs (List.map fst observed) in
  (* Merge in seed order: [Registry.merge] is exact (counters sum, bin
     counts add), so the merged exposition is byte-identical across
     job counts and schedulers. *)
  let merged =
    List.fold_left
      (fun acc (_, registry) -> Cup_metrics.Registry.merge acc registry)
      (Cup_metrics.Registry.create ())
      observed
  in
  (stats, merged)

(* {1 Model versus simulation} *)

type model_row = {
  m_rate : float;
  m_fanout : int;
  measured_justified_pct : float;
  predicted_justified_pct : float;
}

let model_check ?pool scale =
  (* steady state: the model assumes queries keep arriving, so drop
     the drain period whose refreshes are unjustified by construction *)
  let base = { (base_scenario scale) with drain = 0. } in
  pmap ?pool
    (fun rate ->
      let cfg =
        Scenario.with_policy { base with query_rate = rate }
          (Policy.Push_level 1)
      in
      (* the topology is a pure function of the seed, so a fresh Live
         sees the same authority and neighbor count the run will *)
      let live = Runner.Live.create cfg in
      let net = Runner.Live.network live in
      let key = Runner.Live.key_of_index live 0 in
      let authority = Runner.Live.authority_of live key in
      let fanout =
        Stdlib.max 1
          (List.length (Cup_overlay.Net.neighbors net authority))
      in
      let r = Runner.run cfg in
      let predicted =
        Analysis.justified_probability
          ~subtree_rate:(rate /. float_of_int fanout)
          ~window:base.Scenario.replica_lifetime
      in
      {
        m_rate = rate;
        m_fanout = fanout;
        measured_justified_pct = justified_pct r;
        predicted_justified_pct = 100. *. predicted;
      })
    (* rates spanning the regime where P(justified) actually varies:
       subtree_rate * lifetime from ~0.4 to ~75 *)
    [ 0.005; 0.01; 0.02; 0.05; 0.1; 0.25; 1. ]
