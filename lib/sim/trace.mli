(** Structured protocol traces.

    A tracer observes every protocol event the runner performs —
    queries posted and forwarded, updates delivered, clear-bits,
    local answers — as typed events.  Attach one to a live simulation
    with {!Runner.Live.set_tracer} to debug protocol behaviour or to
    narrate it (see [examples/walkthrough.ml]).

    {!t} is a bounded ring buffer of events: constant memory no matter
    how long the run, keeping the most recent [capacity] events. *)

type event =
  | Query_posted of {
      at : Cup_dess.Time.t;
      node : Cup_overlay.Node_id.t;
      key : Cup_overlay.Key.t;
    }
  | Query_forwarded of {
      at : Cup_dess.Time.t;
      from_ : Cup_overlay.Node_id.t;
      to_ : Cup_overlay.Node_id.t;
      key : Cup_overlay.Key.t;
    }
  | Update_delivered of {
      at : Cup_dess.Time.t;
      from_ : Cup_overlay.Node_id.t;
      to_ : Cup_overlay.Node_id.t;
      key : Cup_overlay.Key.t;
      kind : Cup_proto.Update.kind;
      level : int;
      answering : bool;
    }
  | Clear_bit_delivered of {
      at : Cup_dess.Time.t;
      from_ : Cup_overlay.Node_id.t;
      to_ : Cup_overlay.Node_id.t;
      key : Cup_overlay.Key.t;
    }
  | Local_answer of {
      at : Cup_dess.Time.t;
      node : Cup_overlay.Node_id.t;
      key : Cup_overlay.Key.t;
      hit : bool;
      waiters : int;
    }
  | Node_crashed of {
      at : Cup_dess.Time.t;
      node : Cup_overlay.Node_id.t;
    }  (** fault injection removed the node without handover *)
  | Node_recovered of {
      at : Cup_dess.Time.t;
      node : Cup_overlay.Node_id.t;
    }  (** a replacement node joined after a crash *)
  | Message_lost of {
      at : Cup_dess.Time.t;
      from_ : Cup_overlay.Node_id.t;
      to_ : Cup_overlay.Node_id.t;
      key : Cup_overlay.Key.t;
    }  (** a message dropped on the wire or sent to a crashed node *)
  | Repair_query of {
      at : Cup_dess.Time.t;
      node : Cup_overlay.Node_id.t;
      key : Cup_overlay.Key.t;
      attempt : int;
    }
      (** the justification-deadline timeout fired and the node
          re-issued its interest up the overlay path *)

val event_time : event -> Cup_dess.Time.t
val pp_event : Format.formatter -> event -> unit

type t
(** A bounded event ring. *)

val create : ?capacity:int -> unit -> t
(** Default capacity: 4096 events. *)

val record : t -> event -> unit
val length : t -> int
val dropped : t -> int
(** Events that fell off the ring because it was full. *)

val events : t -> event list
(** Retained events, oldest first. *)

val clear : t -> unit

val filter_key : t -> Cup_overlay.Key.t -> event list
(** Retained events touching one key, oldest first.  Membership events
    ([Node_crashed], [Node_recovered]) carry no key and never match. *)
