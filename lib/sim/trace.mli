(** Structured protocol traces.

    A tracer observes every protocol event the runner performs —
    queries posted and forwarded, updates delivered, clear-bits,
    local answers — as typed events.  Attach one to a live simulation
    with {!Runner.Live.set_tracer} to debug protocol behaviour or to
    narrate it (see [examples/walkthrough.ml]).

    {2 Causal spans}

    Every protocol event except the membership pair carries three span
    fields linking it into a propagation tree:

    - [trace_id] names the root cause — a posted query, an
      origin-server update, or a repair attempt.  All events caused by
      the same root share one trace id.
    - [span_id] uniquely names this event within the run.
    - [parent_id] is the [span_id] of the event that caused this one,
      or [0] when the event is itself a root of its trace.

    Ids are drawn from a per-run counter in deterministic engine
    order, so they are byte-identical across schedulers and job
    counts.  A run with no tracer (and no metrics registry) attached
    does not allocate ids at all; such ids print as [0], which is also
    what the JSONL codec substitutes when parsing legacy id-less
    traces.

    {!t} is a bounded ring buffer of events: constant memory no matter
    how long the run, keeping the most recent [capacity] events. *)

type event =
  | Query_posted of {
      at : Cup_dess.Time.t;
      node : Cup_overlay.Node_id.t;
      key : Cup_overlay.Key.t;
      trace_id : int;
      span_id : int;
      parent_id : int;
    }
  | Query_forwarded of {
      at : Cup_dess.Time.t;
      from_ : Cup_overlay.Node_id.t;
      to_ : Cup_overlay.Node_id.t;
      key : Cup_overlay.Key.t;
      trace_id : int;
      span_id : int;
      parent_id : int;
    }
  | Update_delivered of {
      at : Cup_dess.Time.t;
      from_ : Cup_overlay.Node_id.t;
      to_ : Cup_overlay.Node_id.t;
      key : Cup_overlay.Key.t;
      kind : Cup_proto.Update.kind;
      level : int;
      answering : bool;
      entries : (int * float) list;
          (** the update's payload as [(replica id, expiry seconds)]
              pairs, in the update's own order — enough for an online
              freshness-monotonicity oracle ({!Cup_obs.Audit}) to
              track the receiver's cache without replaying the
              protocol.  Empty on legacy JSONL traces. *)
      trace_id : int;
      span_id : int;
      parent_id : int;
    }
  | Clear_bit_delivered of {
      at : Cup_dess.Time.t;
      from_ : Cup_overlay.Node_id.t;
      to_ : Cup_overlay.Node_id.t;
      key : Cup_overlay.Key.t;
      trace_id : int;
      span_id : int;
      parent_id : int;
    }
  | Local_answer of {
      at : Cup_dess.Time.t;
      node : Cup_overlay.Node_id.t;
      key : Cup_overlay.Key.t;
      hit : bool;
      waiters : int;
      trace_id : int;
      span_id : int;
      parent_id : int;
    }
  | Node_crashed of {
      at : Cup_dess.Time.t;
      node : Cup_overlay.Node_id.t;
    }  (** fault injection removed the node without handover *)
  | Node_recovered of {
      at : Cup_dess.Time.t;
      node : Cup_overlay.Node_id.t;
    }  (** a replacement node joined after a crash *)
  | Message_lost of {
      at : Cup_dess.Time.t;
      from_ : Cup_overlay.Node_id.t;
      to_ : Cup_overlay.Node_id.t;
      key : Cup_overlay.Key.t;
      trace_id : int;
      span_id : int;
      parent_id : int;
    }  (** a message dropped on the wire or sent to a crashed node *)
  | Repair_query of {
      at : Cup_dess.Time.t;
      node : Cup_overlay.Node_id.t;
      key : Cup_overlay.Key.t;
      attempt : int;
      trace_id : int;
      span_id : int;
      parent_id : int;
    }
      (** the justification-deadline timeout fired and the node
          re-issued its interest up the overlay path *)

val event_time : event -> Cup_dess.Time.t

val event_span : event -> (int * int * int) option
(** [(trace_id, span_id, parent_id)] for protocol events, [None] for
    the membership events which carry no span. *)

val pp_event : Format.formatter -> event -> unit

type t
(** A bounded event ring. *)

val create : ?capacity:int -> unit -> t
(** Default capacity: 4096 events. *)

val record : t -> event -> unit
val length : t -> int
val dropped : t -> int
(** Events that fell off the ring because it was full. *)

val events : t -> event list
(** Retained events, oldest first. *)

val clear : t -> unit

val filter_key : t -> Cup_overlay.Key.t -> event list
(** Retained events touching one key, oldest first.  Membership events
    ([Node_crashed], [Node_recovered]) carry no key and never match. *)
