(* Swarm-testing fuzzer: seed -> scenario -> audited run -> verdict.

   Everything here is a pure function of the fuzz seed.  The scenario
   generator draws from a dedicated substream of [Rng.create ~seed], so
   [cup fuzz --seed N] rebuilds byte-for-byte the scenario that seed N
   produced inside any larger sweep, and the executor (injected as
   [exec] — the fuzzer itself cannot depend on the observation layer)
   is a pure function of the scenario.  Fanning seeds over
   {!Cup_parallel.Pool.map} therefore returns verdicts in seed order
   regardless of job count.

   Swarm testing (Groce et al., ISSTA 2012): rather than exercising
   every fault axis in every run, each seed tosses an independent coin
   per axis, so the corpus covers axis {e combinations} — the bugs that
   hide in interactions (a partition closing while reordered updates
   are still in flight) get dedicated runs instead of being masked by
   always-on noise. *)

module Rng = Cup_prng.Rng

type fail = { code : string; invariant : string; at : float; detail : string }

type verdict = Pass of { events : int } | Fail of fail

type failure = {
  seed : int;
  scenario : Scenario.t;
  fail : fail;
  shrunk : (Scenario.t * fail) option;
}

type summary = {
  seeds_run : int;
  passed : int;
  total_events : int;
  failures : failure list;
  timings : (int * float) list;
}

(* {1 Scenario generation} *)

let overlays =
  [|
    Cup_overlay.Net.Can `Random;
    Cup_overlay.Net.Can `Grid;
    Cup_overlay.Net.Chord;
    Cup_overlay.Net.Pastry;
  |]

let policies =
  [|
    Cup_proto.Policy.Standard_caching;
    Cup_proto.Policy.All_out;
    Cup_proto.Policy.second_chance;
    Cup_proto.Policy.Push_level 2;
    Cup_proto.Policy.Linear 1.;
    Cup_proto.Policy.Logarithmic 2.;
  |]

let scenario_of_seed seed =
  let g = Rng.substream (Rng.create ~seed) "fuzz-gen" in
  let nodes = 4 + Rng.int g 93 in
  let overlay = Rng.choice g overlays in
  let keys = 1 + Rng.int g 4 in
  let replicas = 1 + Rng.int g 3 in
  let lifetime = Rng.choice g [| 60.; 120.; 300. |] in
  let policy = Rng.choice g policies in
  (* A flash crowd compresses the query load into a short, hot window
     — high rate, Zipf-skewed keys — instead of the usual trickle. *)
  let flash = Rng.float g < 0.15 in
  let duration =
    if flash then 120. else Rng.choice g [| 120.; 240.; 480. |]
  in
  let rate =
    if flash then Rng.float_range g 20. 60. else Rng.float_range g 0.3 4.
  in
  let key_dist =
    if flash || Rng.float g < 0.3 then `Zipf (Rng.float_range g 0.6 1.2)
    else `Uniform
  in
  let scheduler =
    Rng.choice g [| None; Some `Heap; Some `Calendar |]
  in
  let flat_node_state = Rng.float g < 0.25 in
  let crashes =
    if Rng.float g < 0.5 then
      Some
        {
          Scenario.crash_rate = Rng.float_range g 0.01 0.2;
          recover_after = Rng.float_range g 5. 60.;
          warmup = 0.;
        }
    else None
  in
  let loss =
    if Rng.float g < 0.5 then
      Some
        {
          Scenario.drop = Rng.float_range g 0.05 0.4;
          jitter = Rng.float_range g 0. 1.;
        }
    else None
  in
  let partition =
    if Rng.float g < 0.5 then
      Some
        {
          Scenario.fraction = Rng.float_range g 0.1 0.5;
          p_start = Rng.float_range g 0. (duration /. 2.);
          p_duration = Rng.float_range g 10. (Float.max 20. (duration /. 2.));
          symmetric = Rng.bool g;
        }
    else None
  in
  let reorder =
    if Rng.float g < 0.5 then
      Some
        {
          Scenario.r_probability = Rng.float_range g 0.1 0.8;
          r_spread = Rng.float_range g 1. 8.;
        }
    else None
  in
  let duplication =
    if Rng.float g < 0.5 then
      Some { Scenario.d_probability = Rng.float_range g 0.05 0.3 }
    else None
  in
  Scenario.with_policy
    {
      Scenario.default with
      seed;
      nodes;
      overlay;
      scheduler;
      total_keys_override = Some keys;
      replicas_per_key = replicas;
      replica_lifetime = lifetime;
      query_rate = rate;
      query_duration = duration;
      key_dist;
      flat_node_state;
      crashes;
      loss;
      partition;
      reorder;
      duplication;
    }
    policy

(* {1 Repro rendering}

   Every generated (and shrunk) scenario stays inside the subset of
   {!Scenario.t} expressible as [cup run] flags, so a failure report
   can hand the user a command instead of an OCaml value. *)

let policy_flag (p : Cup_proto.Policy.t) =
  match p with
  | Standard_caching -> "standard"
  | All_out -> "all-out"
  | Log_based 2 -> "second-chance"
  | Log_based n -> Printf.sprintf "log-based:%d" n
  | Push_level p -> Printf.sprintf "push-level:%d" p
  | Linear a -> Printf.sprintf "linear:%g" a
  | Logarithmic a -> Printf.sprintf "log:%g" a

let overlay_flag = function
  | Cup_overlay.Net.Can `Random -> "can"
  | Cup_overlay.Net.Can `Grid -> "can-grid"
  | Cup_overlay.Net.Chord -> "chord"
  | Cup_overlay.Net.Pastry -> "pastry"

let repro_command (cfg : Scenario.t) =
  let b = Buffer.create 128 in
  let addf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  addf "cup run --seed %d --nodes %d --keys %d" cfg.seed cfg.nodes
    (Scenario.total_keys cfg);
  addf " --rate %g --duration %g --lifetime %g --replicas %d" cfg.query_rate
    cfg.query_duration cfg.replica_lifetime cfg.replicas_per_key;
  addf " --policy %s --overlay %s"
    (policy_flag cfg.node_config.policy)
    (overlay_flag cfg.overlay);
  (match cfg.scheduler with
  | None -> ()
  | Some `Heap -> addf " --scheduler heap"
  | Some `Calendar -> addf " --scheduler calendar");
  if cfg.flat_node_state then addf " --flat-state";
  (match cfg.key_dist with
  | `Uniform -> ()
  | `Zipf a -> addf " --zipf %g" a);
  (match cfg.crashes with
  | None -> ()
  | Some { crash_rate; recover_after; _ } ->
      addf " --crash-rate %g --crash-recover %g" crash_rate recover_after);
  (match cfg.loss with
  | None -> ()
  | Some { drop; jitter } ->
      addf " --loss-rate %g" drop;
      if jitter > 0. then addf " --loss-jitter %g" jitter);
  (match cfg.partition with
  | None -> ()
  | Some { fraction; p_start; p_duration; symmetric } ->
      addf " --partition %g --partition-start %g --partition-duration %g"
        fraction p_start p_duration;
      if symmetric then addf " --partition-symmetric");
  (match cfg.reorder with
  | None -> ()
  | Some { r_probability; r_spread } ->
      addf " --reorder-rate %g --reorder-spread %g" r_probability r_spread);
  (match cfg.duplication with
  | None -> ()
  | Some { d_probability } -> addf " --duplicate-rate %g" d_probability);
  addf " --audit";
  Buffer.contents b

(* {1 Shrinking}

   Greedy delta-debugging over a fixed candidate order: try each
   simplification, keep the first that still fails, restart from the
   top.  Each acceptance strictly shrinks the scenario (fewer nodes,
   shorter schedule, one fault axis fewer), so termination does not
   need the safety cap — it is there for belt and braces.  The
   executor is deterministic, so no candidate needs re-running. *)

let shrink_candidates (cfg : Scenario.t) =
  let cand l f = if l then [ f cfg ] else [] in
  List.concat
    [
      cand (cfg.nodes >= 8) (fun c -> { c with Scenario.nodes = c.nodes / 2 });
      cand
        (cfg.query_duration > 60.)
        (fun c -> { c with Scenario.query_duration = c.query_duration /. 2. });
      cand (cfg.crashes <> None) (fun c -> { c with Scenario.crashes = None });
      cand (cfg.loss <> None) (fun c -> { c with Scenario.loss = None });
      cand (cfg.partition <> None) (fun c ->
          { c with Scenario.partition = None });
      cand (cfg.reorder <> None) (fun c -> { c with Scenario.reorder = None });
      cand (cfg.duplication <> None) (fun c ->
          { c with Scenario.duplication = None });
      cand
        (Scenario.total_keys cfg > 1)
        (fun c -> { c with Scenario.total_keys_override = Some 1 });
      cand (cfg.replicas_per_key > 1) (fun c ->
          { c with Scenario.replicas_per_key = 1 });
      cand
        (cfg.key_dist <> `Uniform)
        (fun c -> { c with Scenario.key_dist = `Uniform });
      cand (cfg.query_rate > 2.) (fun c ->
          { c with Scenario.query_rate = c.query_rate /. 2. });
      cand cfg.flat_node_state (fun c ->
          { c with Scenario.flat_node_state = false });
      cand (cfg.scheduler <> None) (fun c ->
          { c with Scenario.scheduler = None });
    ]

let shrink ~exec (cfg : Scenario.t) =
  match exec cfg with
  | Pass _ -> None
  | Fail fail ->
      let best = ref (cfg, fail) in
      let budget = ref 200 in
      let rec pass () =
        decr budget;
        if !budget > 0 then
          let cfg, _ = !best in
          let accepted =
            List.exists
              (fun candidate ->
                match Scenario.validate candidate with
                | Error _ -> false
                | Ok () -> (
                    match exec candidate with
                    | Pass _ -> false
                    | Fail f ->
                        best := (candidate, f);
                        true))
              (shrink_candidates cfg)
          in
          if accepted then pass ()
      in
      pass ();
      Some !best

(* {1 Driving a seed range} *)

let run_seeds ~exec ?pool ?(shrink_failures = true) ~seed_start ~seeds () =
  if seeds < 1 then invalid_arg "Fuzz.run_seeds: seeds must be >= 1";
  let eval seed =
    let scenario = scenario_of_seed seed in
    let t0 = Unix.gettimeofday () in
    let verdict = exec scenario in
    let ms = (Unix.gettimeofday () -. t0) *. 1e3 in
    (seed, scenario, verdict, ms)
  in
  let seed_list = List.init seeds (fun i -> seed_start + i) in
  let outcomes =
    match pool with
    | Some pool -> Cup_parallel.Pool.map pool eval seed_list
    | None -> List.map eval seed_list
  in
  let passed = ref 0 and total_events = ref 0 and failures = ref [] in
  List.iter
    (fun (seed, scenario, verdict, _ms) ->
      match verdict with
      | Pass { events } ->
          incr passed;
          total_events := !total_events + events
      | Fail fail ->
          (* Shrinks run sequentially after the sweep, in seed order:
             they re-execute scenarios, and racing them against the
             pool would interleave nondeterministically with nothing
             gained — failures are rare. *)
          let shrunk = if shrink_failures then shrink ~exec scenario else None in
          failures := { seed; scenario; fail; shrunk } :: !failures)
    outcomes;
  {
    seeds_run = seeds;
    passed = !passed;
    total_events = !total_events;
    failures = List.rev !failures;
    timings = List.map (fun (seed, _, _, ms) -> (seed, ms)) outcomes;
  }
