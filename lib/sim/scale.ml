(* Batch-synchronous sharded CUP runs over the arithmetic ring overlay.
   See scale.mli for the synchronization and byte-identity contract. *)

module Ring = Cup_overlay.Ring
module Node_id = Cup_overlay.Node_id
module Key = Cup_overlay.Key
module Node = Cup_proto.Node
module Node_store = Cup_proto.Node_store
module Update = Cup_proto.Update
module Entry = Cup_proto.Entry
module Replica_id = Cup_proto.Replica_id
module Time = Cup_dess.Time
module Window_sync = Cup_dess.Window_sync
module Pool = Cup_parallel.Pool
module Query_gen = Cup_workload.Query_gen
module Attribution = Cup_metrics.Attribution

type config = {
  seed : int;
  nodes : int;
  keys : int;
  replicas : int;
  rate : float;
  shards : int;
  hop_delay : float;
  lifetime : float;
  query_start : float;
  query_duration : float;
  drain : float;
  zipf : float;
  attribution : int; (* top-K sketch capacity per axis; 0 = detached *)
}

let default =
  {
    seed = 1;
    nodes = 10_000;
    keys = 512;
    replicas = 2;
    rate = 2000.;
    shards = 1;
    hop_delay = 0.01;
    lifetime = 8.;
    query_start = 8.;
    query_duration = 10.;
    drain = 2.;
    zipf = 0.9;
    attribution = 0;
  }

type totals = {
  mutable posts : int;
  mutable hits : int;
  mutable misses : int;
  mutable answered : int;
  mutable latency_hops : int;
  mutable query_hops : int;
  mutable ft_answer_hops : int;
  mutable ft_proactive_hops : int;
  mutable refresh_hops : int;
  mutable delete_hops : int;
  mutable append_hops : int;
  mutable clear_hops : int;
  mutable deliveries : int;
  mutable refreshes : int;
}

let zero_totals () =
  {
    posts = 0;
    hits = 0;
    misses = 0;
    answered = 0;
    latency_hops = 0;
    query_hops = 0;
    ft_answer_hops = 0;
    ft_proactive_hops = 0;
    refresh_hops = 0;
    delete_hops = 0;
    append_hops = 0;
    clear_hops = 0;
    deliveries = 0;
    refreshes = 0;
  }

(* Summed in shard order at run end; integer addition is
   order-independent anyway. *)
let add_totals into from =
  into.posts <- into.posts + from.posts;
  into.hits <- into.hits + from.hits;
  into.misses <- into.misses + from.misses;
  into.answered <- into.answered + from.answered;
  into.latency_hops <- into.latency_hops + from.latency_hops;
  into.query_hops <- into.query_hops + from.query_hops;
  into.ft_answer_hops <- into.ft_answer_hops + from.ft_answer_hops;
  into.ft_proactive_hops <- into.ft_proactive_hops + from.ft_proactive_hops;
  into.refresh_hops <- into.refresh_hops + from.refresh_hops;
  into.delete_hops <- into.delete_hops + from.delete_hops;
  into.append_hops <- into.append_hops + from.append_hops;
  into.clear_hops <- into.clear_hops + from.clear_hops;
  into.deliveries <- into.deliveries + from.deliveries;
  into.refreshes <- into.refreshes + from.refreshes

type result = {
  config : config;
  totals : totals;
  windows : int;
  events : int;
  live_slots : int;
  dropped_at_horizon : int;
  wallclock : float;
  events_per_sec : float;
  attribution : Attribution.t option;
}

(* {1 Events}

   Messages carry the emitting node and its per-source emission
   sequence number: (src, seq) is globally unique, making the in-window
   sort key a total order.  Workload events carry their pre-generation
   index, which is globally unique and increasing by construction. *)

type payload =
  | P_query of Key.t
  | P_update of Update.t * bool (* answering *)
  | P_clear of Key.t

type msg = { dst : int; cls : int; src : int; seq : int; payload : payload }

type local_ev =
  | L_refresh of { key : int; idx : int }
  | L_post of { node : int; key : int; idx : int }

type work = W_msg of msg | W_local of local_ev

(* Canonical in-window processing order: deliveries first (they were
   in flight when the window opened), then authority refreshes, then
   query posts; ties broken by ids that are independent of the shard
   layout. *)
let work_key = function
  | W_msg m -> (0, m.dst, m.cls, m.src, m.seq)
  | W_local (L_refresh { key; idx }) -> (1, idx, key, 0, 0)
  | W_local (L_post { node; idx; _ }) -> (2, idx, node, 0, 0)

let compare_work a b : int = Stdlib.compare (work_key a) (work_key b)

let validate cfg =
  let fail msg = invalid_arg ("Scale.run: " ^ msg) in
  if cfg.nodes < 1 then fail "nodes must be >= 1";
  if cfg.keys < 1 then fail "keys must be >= 1";
  if cfg.replicas < 1 then fail "replicas must be >= 1";
  if cfg.rate <= 0. then fail "rate must be > 0";
  if cfg.shards < 1 then fail "shards must be >= 1";
  if cfg.hop_delay <= 0. then fail "hop_delay must be > 0";
  if cfg.lifetime <= 0. then fail "lifetime must be > 0";
  if cfg.query_start < 0. then fail "query_start must be >= 0";
  if cfg.query_duration <= 0. then fail "query_duration must be > 0";
  if cfg.drain < 0. then fail "drain must be >= 0";
  if cfg.zipf < 0. then fail "zipf must be >= 0";
  if cfg.attribution < 0 then fail "attribution must be >= 0"

(* {1 Trace records}

   Traced runs hand the consumer one structured record per processed
   event instead of a preformatted string, so a binary sink can encode
   it compactly without the shard threads paying [Printf] costs.
   {!trace_line} is the canonical JSONL rendering — the byte format
   [--trace-out FILE.jsonl] has always written. *)

type trace_body =
  | B_query of int
  | B_update of { key : int; kind : Update.kind; level : int; answering : bool }
  | B_clear of int

type trace_event =
  | T_msg of {
      w : int;
      dst : int;
      src : int;
      seq : int;
      body : trace_body;
      out : int;
    }
  | T_refresh of { w : int; key : int; idx : int; out : int }
  | T_post of { w : int; node : int; key : int; idx : int; out : int }

let trace_line = function
  | T_msg { w; dst; src; seq; body; out } -> (
      match body with
      | B_query key ->
          Printf.sprintf
            "{\"w\":%d,\"type\":\"query\",\"dst\":%d,\"src\":%d,\"seq\":%d,\"key\":%d,\"out\":%d}"
            w dst src seq key out
      | B_update { key; kind; level; answering } ->
          Printf.sprintf
            "{\"w\":%d,\"type\":\"update\",\"dst\":%d,\"src\":%d,\"seq\":%d,\"key\":%d,\"kind\":\"%s\",\"level\":%d,\"answering\":%b,\"out\":%d}"
            w dst src seq key
            (Update.kind_to_string kind)
            level answering out
      | B_clear key ->
          Printf.sprintf
            "{\"w\":%d,\"type\":\"clear\",\"dst\":%d,\"src\":%d,\"seq\":%d,\"key\":%d,\"out\":%d}"
            w dst src seq key out)
  | T_refresh { w; key; idx; out } ->
      Printf.sprintf
        "{\"w\":%d,\"type\":\"refresh\",\"key\":%d,\"idx\":%d,\"out\":%d}" w key
        idx out
  | T_post { w; node; key; idx; out } ->
      Printf.sprintf
        "{\"w\":%d,\"type\":\"post\",\"node\":%d,\"key\":%d,\"idx\":%d,\"out\":%d}"
        w node key idx out

let trace_event_of w work out =
  match work with
  | W_msg { dst; src; seq; payload; _ } ->
      let body =
        match payload with
        | P_query key -> B_query (Key.to_int key)
        | P_update (u, answering) ->
            B_update
              {
                key = Key.to_int u.Update.key;
                kind = u.Update.kind;
                level = u.Update.level;
                answering;
              }
        | P_clear key -> B_clear (Key.to_int key)
      in
      T_msg { w; dst; src; seq; body; out }
  | W_local (L_refresh { key; idx }) -> T_refresh { w; key; idx; out }
  | W_local (L_post { node; key; idx }) -> T_post { w; node; key; idx; out }

(* Each shard's trace segment is already in canonical (ascending
   work-key) order — works are processed sorted — so the global
   canonical order is a k-way merge of the per-shard segments, not a
   re-sort.  Keys are globally unique, so ties cannot occur. *)
let merge_segments segments =
  let merge2 a b =
    let rec go acc a b =
      match (a, b) with
      | [], rest | rest, [] -> List.rev_append acc rest
      | ((ka, _) as xa) :: ta, ((kb, _) as xb) :: tb ->
          if Stdlib.compare (ka : int * int * int * int * int) kb <= 0 then
            go (xa :: acc) ta b
          else go (xb :: acc) a tb
    in
    go [] a b
  in
  List.fold_left merge2 [] segments

let run ?tracer cfg =
  validate cfg;
  let t0 = Unix.gettimeofday () in
  let width = cfg.hop_delay in
  let sim_end = cfg.query_start +. cfg.query_duration +. cfg.drain in
  let windows = max 1 (int_of_float (Float.ceil (sim_end /. width))) in
  let shards = cfg.shards in
  let ring = Ring.create ~n:cfg.nodes in
  let shard_of node = node mod shards in
  let window_of t =
    let w = int_of_float (t /. width) in
    if w >= windows then windows - 1 else if w < 0 then 0 else w
  in
  (* {2 Workload pre-generation}

     All stochastic choices happen here, before any shard runs: the
     simulation itself draws no randomness, so its behaviour depends
     only on this event list — not on the shard layout.  Events are
     binned by (window, shard of the acting node) and stamped with a
     global pre-generation index. *)
  let locals = Array.init windows (fun _ -> Array.make shards []) in
  let idx = ref 0 in
  let push_local w s ev = locals.(w).(s) <- ev :: locals.(w).(s) in
  (* Authority refresh schedule: every key refreshes its whole
     directory each half-lifetime, with a deterministic per-key phase
     so the network-wide refresh load is spread evenly. *)
  let period = cfg.lifetime /. 2. in
  for k = 0 to cfg.keys - 1 do
    let auth = Ring.owner ring k in
    let frac =
      Int64.to_float
        (Int64.shift_right_logical
           (Cup_prng.Splitmix.mix (Int64.of_int ((k * 2) + 1)))
           11)
      *. 0x1p-53
    in
    let t = ref (frac *. period) in
    while !t < sim_end do
      push_local (window_of !t) (shard_of auth) (L_refresh { key = k; idx = !idx });
      incr idx;
      t := !t +. period
    done
  done;
  (* Poisson query arrivals; Zipf (or uniform) key popularity. *)
  let rng = Cup_prng.Rng.substream (Cup_prng.Rng.create ~seed:cfg.seed) "scale-queries" in
  let gen =
    Query_gen.create ~rng ~rate:cfg.rate
      ~start:(Time.of_seconds cfg.query_start)
      ~stop:(Time.of_seconds (cfg.query_start +. cfg.query_duration))
      ~nodes:cfg.nodes
      ~key_dist:
        (if cfg.zipf > 0. then Query_gen.Zipf (cfg.keys, cfg.zipf)
         else Query_gen.Uniform cfg.keys)
  in
  Query_gen.fold gen ~init:() ~f:(fun () (ev : Query_gen.event) ->
      push_local
        (window_of (Time.to_seconds ev.at))
        (shard_of ev.node_index)
        (L_post { node = ev.node_index; key = ev.key_index; idx = !idx });
      incr idx);
  (* {2 Shard state} *)
  let node_cfg = Node.default_config in
  let slots_hint = max 1024 (cfg.nodes / shards / 4) in
  let stores =
    Array.init shards (fun _ -> Node_store.create ~slots_hint node_cfg)
  in
  for k = 0 to cfg.keys - 1 do
    let auth = Ring.owner ring k in
    Node_store.add_local_key stores.(shard_of auth) (Node_id.of_int auth)
      (Key.of_int k)
  done;
  (* Per-source emission counters: shared array, but each index is
     written only by the shard that owns the node, so parallel windows
     never race. *)
  let emit_seq = Array.make cfg.nodes 0 in
  let sync : msg Window_sync.t = Window_sync.create ~shards ~windows in
  let tot = Array.init shards (fun _ -> zero_totals ()) in
  (* One attribution layer per shard (each touched only by its own
     domain inside a window), merged exactly in shard order at run
     end. *)
  let attrs : Attribution.t option array =
    Array.init shards (fun _ ->
        if cfg.attribution = 0 then None
        else
          Some
            (Attribution.create
               ~config:
                 {
                   Attribution.default_config with
                   capacity = cfg.attribution;
                 }
               ()))
  in
  let next_hop_of node key =
    match
      Ring.next_hop ring ~node ~target:(Ring.owner ring (Key.to_int key))
    with
    | None -> None
    | Some h -> Some (Node_id.of_int h)
  in
  let traced = tracer <> None in
  (* With one shard the per-window work list is the canonical order
     already — processing order equals the merged order — so the
     tracer can be fed directly from the work loop, skipping the
     per-event (work_key, event) accumulation, reversal and merge.
     Multi-shard runs must keep the segment machinery for the k-way
     merge below; its output is byte-identical to this fast path. *)
  let direct_tracer =
    match tracer with Some f when shards = 1 -> Some f | _ -> None
  in
  (* {2 One shard, one window} *)
  let process_shard w s =
    let now_s = float_of_int w *. width in
    let now = Time.of_seconds now_s in
    let store = stores.(s) in
    let t = tot.(s) in
    let at = attrs.(s) in
    let works =
      List.sort compare_work
        (List.rev_append
           (List.rev_map (fun m -> W_msg m) (Window_sync.drain sync ~shard:s ~window:w))
           (List.map (fun l -> W_local l) locals.(w).(s)))
    in
    locals.(w).(s) <- [];
    let out = ref [] in
    let lines = ref [] in
    let emitted = ref 0 in
    let emit src cls payload to_ =
      let dst = Node_id.to_int to_ in
      let seq = emit_seq.(src) in
      emit_seq.(src) <- seq + 1;
      incr emitted;
      out := { dst; cls; src; seq; payload } :: !out
    in
    let exec node acts =
      List.iter
        (fun (act : Node.action) ->
          match act with
          | Node.Send_query { to_; key } ->
              t.query_hops <- t.query_hops + 1;
              (match at with
              | Some a ->
                  Attribution.record_query_hop a ~key:(Key.to_int key)
                    ~node
              | None -> ());
              emit node 0 (P_query key) to_
          | Node.Send_update { to_; update; answering } ->
              (match update.Update.kind with
              | Update.First_time ->
                  if answering then t.ft_answer_hops <- t.ft_answer_hops + 1
                  else t.ft_proactive_hops <- t.ft_proactive_hops + 1
              | Update.Refresh -> t.refresh_hops <- t.refresh_hops + 1
              | Update.Delete -> t.delete_hops <- t.delete_hops + 1
              | Update.Append -> t.append_hops <- t.append_hops + 1);
              emit node 1 (P_update (update, answering)) to_
          | Node.Send_clear_bit { to_; key } ->
              t.clear_hops <- t.clear_hops + 1;
              (match at with
              | Some a ->
                  Attribution.record_clear_bit_hop a ~key:(Key.to_int key)
                    ~node ~now:now_s
              | None -> ());
              emit node 2 (P_clear key) to_
          | Node.Answer_local { posted_at; hit; key; _ } ->
              if hit then begin
                t.hits <- t.hits + List.length posted_at;
                match at with
                | Some a ->
                    let key = Key.to_int key in
                    List.iter
                      (fun _ -> Attribution.record_hit a ~key ~node)
                      posted_at
                | None -> ()
              end
              else begin
                t.answered <- t.answered + List.length posted_at;
                List.iter
                  (fun p ->
                    t.latency_hops <-
                      t.latency_hops
                      + int_of_float
                          (Float.round ((now_s -. Time.to_seconds p) /. width)))
                  posted_at
              end)
        acts
    in
    List.iter
      (fun work ->
        let emitted0 = !emitted in
        (match work with
        | W_msg m -> (
            t.deliveries <- t.deliveries + 1;
            let nid = Node_id.of_int m.dst in
            let from = Node_id.of_int m.src in
            match m.payload with
            | P_query key ->
                exec m.dst
                  (Node_store.handle_query store ~node:nid ~now
                     ~next_hop:(next_hop_of m.dst key)
                     (Node.From_neighbor from) key)
            | P_update (u, answering) ->
                (match at with
                | Some a ->
                    let key = Key.to_int u.Update.key in
                    let overhead =
                      match u.Update.kind with
                      | Update.First_time -> not answering
                      | Update.Refresh | Update.Delete | Update.Append -> true
                    in
                    if answering then
                      Attribution.record_update_hop a ~key ~node:m.dst
                        ~level:u.Update.level ~overhead ~now:now_s
                    else
                      Attribution.record_update_delivered a ~key ~node:m.dst
                        ~level:u.Update.level ~overhead ~now:now_s
                | None -> ());
                exec m.dst (Node_store.handle_update store ~node:nid ~now ~from u)
            | P_clear key ->
                exec m.dst
                  (Node_store.handle_clear_bit store ~node:nid ~now ~from key))
        | W_local (L_refresh { key; _ }) ->
            t.refreshes <- t.refreshes + 1;
            let auth = Ring.owner ring key in
            let expiry = Time.of_seconds (now_s +. cfg.lifetime) in
            let entries =
              List.init cfg.replicas (fun r ->
                  Entry.make ~replica:(Replica_id.of_int r) ~expiry)
            in
            exec auth
              (Node_store.replica_refresh_batch store
                 ~node:(Node_id.of_int auth) ~now ~key:(Key.of_int key) entries)
        | W_local (L_post { node; key; _ }) ->
            t.posts <- t.posts + 1;
            let k = Key.of_int key in
            let acts =
              Node_store.handle_query store ~node:(Node_id.of_int node) ~now
                ~next_hop:(next_hop_of node k) (Node.From_local now) k
            in
            let hit =
              List.exists
                (function
                  | Node.Answer_local { hit = true; _ } -> true | _ -> false)
                acts
            in
            if not hit then t.misses <- t.misses + 1;
            (match at with
            | Some a ->
                if hit then Attribution.record_query a ~key ~node ~now:now_s
                else Attribution.record_query_miss a ~key ~node ~now:now_s
            | None -> ());
            exec node acts);
        if traced then
          match direct_tracer with
          | Some f -> f (trace_event_of w work (!emitted - emitted0))
          | None ->
              lines :=
                (work_key work, trace_event_of w work (!emitted - emitted0))
                :: !lines)
      works;
    (List.rev !out, List.rev !lines)
  in
  (* {2 The window barrier loop} *)
  let pool = if shards > 1 then Some (Pool.create ~jobs:shards) else None in
  let shard_ids = List.init shards Fun.id in
  Fun.protect
    ~finally:(fun () -> Option.iter Pool.shutdown pool)
    (fun () ->
      for w = 0 to windows - 1 do
        let results =
          match pool with
          | Some p -> Pool.map p (fun s -> process_shard w s) shard_ids
          | None -> List.map (fun s -> process_shard w s) shard_ids
        in
        (* Route every shard's outbox, in shard order then emission
           order, into the next window's bins. *)
        List.iter
          (fun (outs, _) ->
            List.iter
              (fun (m : msg) ->
                Window_sync.post sync ~shard:(shard_of m.dst) ~window:(w + 1) m)
              outs)
          results;
        match tracer with
        | None -> ()
        | Some _ when direct_tracer <> None -> ()
        | Some emit ->
            merge_segments (List.map snd results)
            |> List.iter (fun ((_ : int * int * int * int * int), ev) ->
                   emit ev)
      done);
  let totals = zero_totals () in
  Array.iter (fun t -> add_totals totals t) tot;
  (* Fold the per-shard sketches left-to-right in shard order; the
     merge is exact, so any fold shape gives the same result. *)
  let attribution =
    Array.fold_left
      (fun acc at ->
        match (acc, at) with
        | None, x | x, None -> x
        | Some a, Some b -> Some (Attribution.merge a b))
      None attrs
  in
  let live_slots =
    Array.fold_left (fun acc st -> acc + Node_store.live_slots st) 0 stores
  in
  let events = totals.deliveries + totals.posts + totals.refreshes in
  let wallclock = Unix.gettimeofday () -. t0 in
  {
    config = cfg;
    totals;
    windows;
    events;
    live_slots;
    dropped_at_horizon = Window_sync.dropped sync;
    wallclock;
    events_per_sec =
      (if wallclock > 0. then float_of_int events /. wallclock else 0.);
    attribution;
  }

let summary r =
  let c = r.config and t = r.totals in
  let b = Buffer.create 512 in
  Printf.bprintf b
    "scale: nodes=%d keys=%d replicas=%d rate=%g zipf=%g lifetime=%g \
     hop-delay=%g windows=%d\n"
    c.nodes c.keys c.replicas c.rate c.zipf c.lifetime c.hop_delay r.windows;
  Printf.bprintf b "queries: posted=%d hits=%d misses=%d answered=%d\n" t.posts
    t.hits t.misses t.answered;
  Printf.bprintf b
    "hops: query=%d ft-answer=%d ft-proactive=%d refresh=%d delete=%d \
     append=%d clear=%d\n"
    t.query_hops t.ft_answer_hops t.ft_proactive_hops t.refresh_hops
    t.delete_hops t.append_hops t.clear_hops;
  let miss_cost = t.query_hops + t.ft_answer_hops in
  let overhead =
    t.ft_proactive_hops + t.refresh_hops + t.delete_hops + t.append_hops
    + t.clear_hops
  in
  Printf.bprintf b "cost: miss=%d overhead=%d total=%d\n" miss_cost overhead
    (miss_cost + overhead);
  Printf.bprintf b "miss latency (hops): sum=%d answered=%d avg=%s\n"
    t.latency_hops t.answered
    (if t.answered = 0 then "-"
     else Printf.sprintf "%.2f" (float_of_int t.latency_hops /. float_of_int t.answered));
  Printf.bprintf b
    "state: live-slots=%d deliveries=%d refresh-events=%d \
     dropped-at-horizon=%d\n"
    r.live_slots t.deliveries t.refreshes r.dropped_at_horizon;
  Buffer.contents b
