module Time = Cup_dess.Time
module Node_id = Cup_overlay.Node_id
module Key = Cup_overlay.Key

type event =
  | Query_posted of {
      at : Time.t;
      node : Node_id.t;
      key : Key.t;
      trace_id : int;
      span_id : int;
      parent_id : int;
    }
  | Query_forwarded of {
      at : Time.t;
      from_ : Node_id.t;
      to_ : Node_id.t;
      key : Key.t;
      trace_id : int;
      span_id : int;
      parent_id : int;
    }
  | Update_delivered of {
      at : Time.t;
      from_ : Node_id.t;
      to_ : Node_id.t;
      key : Key.t;
      kind : Cup_proto.Update.kind;
      level : int;
      answering : bool;
      entries : (int * float) list;
      trace_id : int;
      span_id : int;
      parent_id : int;
    }
  | Clear_bit_delivered of {
      at : Time.t;
      from_ : Node_id.t;
      to_ : Node_id.t;
      key : Key.t;
      trace_id : int;
      span_id : int;
      parent_id : int;
    }
  | Local_answer of {
      at : Time.t;
      node : Node_id.t;
      key : Key.t;
      hit : bool;
      waiters : int;
      trace_id : int;
      span_id : int;
      parent_id : int;
    }
  | Node_crashed of { at : Time.t; node : Node_id.t }
  | Node_recovered of { at : Time.t; node : Node_id.t }
  | Message_lost of {
      at : Time.t;
      from_ : Node_id.t;
      to_ : Node_id.t;
      key : Key.t;
      trace_id : int;
      span_id : int;
      parent_id : int;
    }
  | Repair_query of {
      at : Time.t;
      node : Node_id.t;
      key : Key.t;
      attempt : int;
      trace_id : int;
      span_id : int;
      parent_id : int;
    }

let event_time = function
  | Query_posted { at; _ }
  | Query_forwarded { at; _ }
  | Update_delivered { at; _ }
  | Clear_bit_delivered { at; _ }
  | Local_answer { at; _ }
  | Node_crashed { at; _ }
  | Node_recovered { at; _ }
  | Message_lost { at; _ }
  | Repair_query { at; _ } ->
      at

let event_span = function
  | Query_posted { trace_id; span_id; parent_id; _ }
  | Query_forwarded { trace_id; span_id; parent_id; _ }
  | Update_delivered { trace_id; span_id; parent_id; _ }
  | Clear_bit_delivered { trace_id; span_id; parent_id; _ }
  | Local_answer { trace_id; span_id; parent_id; _ }
  | Message_lost { trace_id; span_id; parent_id; _ }
  | Repair_query { trace_id; span_id; parent_id; _ } ->
      Some (trace_id, span_id, parent_id)
  | Node_crashed _ | Node_recovered _ -> None

let pp_event fmt = function
  | Query_posted { at; node; key; _ } ->
      Format.fprintf fmt "%a  %a: local client queries %a" Time.pp at
        Node_id.pp node Key.pp key
  | Query_forwarded { at; from_; to_; key; _ } ->
      Format.fprintf fmt "%a  %a -> %a: query for %a" Time.pp at Node_id.pp
        from_ Node_id.pp to_ Key.pp key
  | Update_delivered { at; from_; to_; key; kind; level; answering; _ } ->
      Format.fprintf fmt "%a  %a -> %a: %s update for %a (level %d%s)"
        Time.pp at Node_id.pp from_ Node_id.pp to_
        (Cup_proto.Update.kind_to_string kind)
        Key.pp key level
        (if answering then ", answering" else "")
  | Clear_bit_delivered { at; from_; to_; key; _ } ->
      Format.fprintf fmt "%a  %a -> %a: clear-bit for %a" Time.pp at
        Node_id.pp from_ Node_id.pp to_ Key.pp key
  | Local_answer { at; node; key; hit; waiters; _ } ->
      Format.fprintf fmt "%a  %a: %s for %a (%d client%s)" Time.pp at
        Node_id.pp node
        (if hit then "cache hit" else "answer delivered")
        Key.pp key waiters
        (if waiters = 1 then "" else "s")
  | Node_crashed { at; node } ->
      Format.fprintf fmt "%a  %a: crashed" Time.pp at Node_id.pp node
  | Node_recovered { at; node } ->
      Format.fprintf fmt "%a  %a: joined as replacement" Time.pp at Node_id.pp
        node
  | Message_lost { at; from_; to_; key; _ } ->
      Format.fprintf fmt "%a  %a -> %a: message for %a lost" Time.pp at
        Node_id.pp from_ Node_id.pp to_ Key.pp key
  | Repair_query { at; node; key; attempt; _ } ->
      Format.fprintf fmt "%a  %a: re-issues interest in %a (attempt %d)"
        Time.pp at Node_id.pp node Key.pp key attempt

type t = {
  ring : event option array;
  mutable next : int;
  mutable stored : int;
  mutable dropped : int;
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be > 0";
  { ring = Array.make capacity None; next = 0; stored = 0; dropped = 0 }

let record t event =
  let capacity = Array.length t.ring in
  if t.stored = capacity then t.dropped <- t.dropped + 1
  else t.stored <- t.stored + 1;
  t.ring.(t.next) <- Some event;
  t.next <- (t.next + 1) mod capacity

let length t = t.stored
let dropped t = t.dropped

let events t =
  let capacity = Array.length t.ring in
  let start = (t.next - t.stored + capacity) mod capacity in
  List.init t.stored (fun i ->
      match t.ring.((start + i) mod capacity) with
      | Some e -> e
      | None -> assert false)

let clear t =
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.next <- 0;
  t.stored <- 0;
  t.dropped <- 0

let filter_key t key =
  List.filter
    (fun e ->
      match e with
      | Query_posted { key = k; _ }
      | Query_forwarded { key = k; _ }
      | Update_delivered { key = k; _ }
      | Clear_bit_delivered { key = k; _ }
      | Local_answer { key = k; _ }
      | Message_lost { key = k; _ }
      | Repair_query { key = k; _ } ->
          Key.equal k key
      | Node_crashed _ | Node_recovered _ -> false)
    (events t)
