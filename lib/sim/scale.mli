(** Million-node CUP runs: batch-synchronous sharded simulation.

    {!Runner} drives the full-fidelity simulator — table-backed
    overlays, per-message engine events, churn, faults — and tops out
    around [10^5] nodes on one machine.  This module trades those
    features for scale: the overlay is the O(1)-memory arithmetic
    {!Cup_overlay.Ring}, node state lives in per-shard
    {!Cup_proto.Node_store} struct-of-arrays tables, and the event loop
    is {e batch-synchronous}: virtual time is quantized into windows of
    one hop delay, every message emitted in window [w] is delivered in
    window [w + 1] (the conservative lookahead of
    {!Cup_dess.Window_sync}), and all events inside a window are
    processed in one canonical order.

    {b Byte-identity across shard counts.}  Within a window, a shard
    processes exactly the events addressed to its own nodes, sorted by
    a canonical key — (delivery class, destination, source, per-source
    emission sequence) for messages, pre-generation index for workload
    events — and cross-shard effects are deferred to the next window.
    The global state at every window barrier is therefore independent
    of the partitioning, so {!summary} output and the optional trace
    are byte-identical for any [shards] value, including [1].  All
    run statistics are integers (miss latency is accumulated as a hop
    {e sum}), so no floating-point accumulation order can leak the
    shard layout.

    The protocol logic itself is the real CUP state machine: queries
    route hop-by-hop toward the key's authority, interest bits are set
    from forwarded queries, answers return as first-time updates down
    the reverse paths, authorities refresh their replica directories on
    a deterministic per-key schedule, and the configured cut-off policy
    (second-chance, replica-independent) prunes unpopular branches. *)

type config = {
  seed : int;
  nodes : int;
  keys : int;
  replicas : int;  (** directory entries per key *)
  rate : float;  (** network-wide Poisson query rate, queries/second *)
  shards : int;  (** domains to partition the run across; 1 = sequential *)
  hop_delay : float;  (** seconds per overlay hop = window width *)
  lifetime : float;  (** entry lifetime; refresh period is half of it *)
  query_start : float;
  query_duration : float;
  drain : float;  (** extra windows after posting stops, for in-flight answers *)
  zipf : float;  (** key-popularity exponent; [0.] = uniform *)
  attribution : int;
      (** per-axis top-K capacity for {!Cup_metrics.Attribution};
          [0] (the default) detaches attribution entirely.  Each shard
          tracks its own sketches, merged in shard order at run end
          with the exact union-sum merge — in the exact regime (no
          evictions) the merged result is byte-identical across shard
          counts, and all attribution weights are integers, honoring
          the byte-identity contract above.  The sharded runner has no
          justification machinery, so the [justified] metric stays 0
          here; [deliveries] counts non-answering update deliveries. *)
}

val default : config
(** 10k nodes, 512 keys, 2 replicas, 2000 q/s for 10 s, one shard. *)

(** Integer run statistics (see the byte-identity note above). *)
type totals = {
  mutable posts : int;
  mutable hits : int;  (** posts answered synchronously from fresh state *)
  mutable misses : int;
  mutable answered : int;  (** misses answered by a first-time update *)
  mutable latency_hops : int;  (** summed miss latency, in hops *)
  mutable query_hops : int;
  mutable ft_answer_hops : int;
  mutable ft_proactive_hops : int;
  mutable refresh_hops : int;
  mutable delete_hops : int;
  mutable append_hops : int;
  mutable clear_hops : int;
  mutable deliveries : int;  (** messages delivered *)
  mutable refreshes : int;  (** authority refresh-batch events *)
}

type result = {
  config : config;
  totals : totals;
  windows : int;
  events : int;  (** deliveries + posts + refreshes *)
  live_slots : int;  (** allocated (node, key) state slots at run end *)
  dropped_at_horizon : int;  (** messages emitted in the final window *)
  wallclock : float;
  events_per_sec : float;
  attribution : Cup_metrics.Attribution.t option;
      (** merged per-key/per-node/per-level cost attribution, present
          iff [config.attribution > 0] *)
}

(** One processed event, as handed to the tracer.  [w] is the window,
    [out] the number of messages the event emitted; message records
    carry destination, source and the per-source emission sequence. *)
type trace_body =
  | B_query of int  (** key *)
  | B_update of {
      key : int;
      kind : Cup_proto.Update.kind;
      level : int;
      answering : bool;
    }
  | B_clear of int  (** key *)

type trace_event =
  | T_msg of {
      w : int;
      dst : int;
      src : int;
      seq : int;
      body : trace_body;
      out : int;
    }
  | T_refresh of { w : int; key : int; idx : int; out : int }
  | T_post of { w : int; node : int; key : int; idx : int; out : int }

val trace_line : trace_event -> string
(** Canonical JSONL rendering of a trace record — the exact byte
    format [--trace-out FILE.jsonl] writes (no trailing newline). *)

val run : ?tracer:(trace_event -> unit) -> config -> result
(** Execute the run.  [tracer], when given, receives one record per
    processed event, in the canonical order — and therefore, rendered
    through {!trace_line} or any deterministic codec, byte-identical
    across shard counts.  Raises [Invalid_argument] on a malformed
    config. *)

val summary : result -> string
(** The deterministic result block: configuration echo (excluding
    [shards]), query/hop/cost totals and miss latency.  Byte-identical
    across shard counts; contains no wall-clock or host-dependent
    data. *)
