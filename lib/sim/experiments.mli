(** The paper's evaluation, experiment by experiment (Section 3).

    Each function runs the simulations for one table or figure and
    returns structured results; rendering lives in [Cup_report] and
    the benchmark harness.  [Scaled] keeps every run laptop-sized:
    256 nodes with query rates scaled by 256/1024 so per-node query
    densities match the paper's 1024-node runs.  [Full] uses the
    paper's scale (1024–4096 nodes, rates up to 1000 q/s).

    All experiments exercise a single key's CUP tree — reverse-
    engineering the paper's reported magnitudes (overhead ~6.7 k hops,
    push levels spanning 0–30 ≈ the 2^10 CAN diameter, hit counts at
    λ = 1) shows its workloads are per-key-tree workloads; see
    EXPERIMENTS.md.

    Every experiment takes an optional [?pool]
    ({!Cup_parallel.Pool.t}): its independent simulator runs then fan
    out across the pool's domains.  Each run owns its engine, topology
    and RNG, and {!Cup_parallel.Pool.map} merges results in input
    order, so results are byte-identical whatever the pool size —
    [?pool] changes wall-clock time and nothing else.  Omitting it (or
    passing a 1-job pool) runs sequentially as before. *)

type scale = Scaled | Full

val base_scenario : scale -> Scenario.t
(** The shared configuration: replica lifetime 300 s, 3000 s of
    querying, second-chance default policy, one key. *)

val rates : scale -> float list
(** Query rates λ: [\[1; 10; 100\]] scaled, [\[1; 10; 100; 1000\]] full. *)

(** {1 Figures 3 and 4: cost versus push level} *)

type push_level_point = { level : int; total_cost : int; miss_cost : int }

type push_level_series = {
  rate : float;
  points : push_level_point list;
  optimal_level : int;  (** argmin of total cost *)
  optimal_total : int;
}

val push_level_sweep :
  ?pool:Cup_parallel.Pool.t ->
  ?levels:int list ->
  scale ->
  rate:float ->
  push_level_series

(** {1 Table 1: cut-off policies} *)

type policy_cell = { total : int; normalized : float }

type policy_row = {
  policy_label : string;
  cells : (float * policy_cell) list;  (** per query rate *)
}

val table1 :
  ?pool:Cup_parallel.Pool.t ->
  ?optimal:push_level_series list ->
  scale ->
  policy_row list
(** Rows: standard caching, linear and logarithmic policies across the
    paper's α values, second-chance, and the optimal push level (taken
    from [optimal] when provided — e.g. the Figure 3/4 sweeps — or
    from a fresh sweep otherwise). *)

(** {1 Table 2: varying the network size} *)

type size_row = {
  nodes : int;
  miss_cost_ratio : float;  (** CUP / standard caching *)
  cup_miss_latency : float;  (** one-way hops, as the paper reports *)
  std_miss_latency : float;
  saved_per_overhead : float;
}

val table2 : ?pool:Cup_parallel.Pool.t -> scale -> size_row list

(** {1 Table 3: multiple replicas per key} *)

type replica_row = {
  replicas : int;
  naive_miss_cost : int;
  naive_misses : int;
  indep_miss_cost : int;
  indep_misses : int;
  indep_total_cost : int;
}

val table3 : ?pool:Cup_parallel.Pool.t -> scale -> replica_row list

(** {1 Figures 5 and 6: reduced outgoing capacity} *)

type capacity_point = {
  capacity : float;
  up_and_down_total : int;
  once_down_total : int;
}

type capacity_series = {
  cap_rate : float;
  std_total : int;  (** the standard-caching horizontal reference *)
  cap_points : capacity_point list;
}

val capacity_sweep :
  ?pool:Cup_parallel.Pool.t ->
  ?capacities:float list ->
  scale ->
  rate:float ->
  capacity_series

(** {1 Ablations (beyond the paper's main line)} *)

type ordering_row = {
  ordering_label : string;
  ord_total : int;
  ord_miss : int;
  ord_misses : int;
}

val ablation_queue_ordering :
  ?pool:Cup_parallel.Pool.t -> scale -> ordering_row list
(** Section 2.8's queue re-ordering, measured under token-bucket
    capacity starvation: latency-first versus flash-crowd versus FIFO
    ordering of the outgoing update channels. *)

type dry_row = { dry_window : int; dry_total : int; dry_miss : int }

val ablation_log_based_window :
  ?pool:Cup_parallel.Pool.t -> scale -> dry_row list
(** Generalizing second-chance: cut after [n] consecutive dry updates,
    n = 1..5. *)

(** {1 Section 3.6 propagation-overhead techniques} *)

type technique_row = {
  technique_label : string;
  tech_total : int;
  tech_overhead : int;
  tech_miss : int;
  tech_misses : int;
  tech_justified_pct : float;
      (** percentage of propagated updates that were justified
          (Section 3.1): a query reached the receiving node within the
          update's critical window *)
}

val propagation_techniques :
  ?pool:Cup_parallel.Pool.t -> scale -> technique_row list
(** With many replicas per key, compare the baseline (every replica
    refresh propagated separately, as in Table 3) against the two
    techniques Section 3.6 proposes — aggregating refreshes into
    batched updates, and suppressing a sampled subset — plus
    piggy-backed clear-bits. *)

type justification_row = {
  j_policy : string;
  j_rate : float;
  j_justified_pct : float;
  j_tracked : int;
  j_saved_per_overhead : float;
}

val justification :
  ?pool:Cup_parallel.Pool.t -> scale -> justification_row list
(** The Section 3.1 cost-model check: the fraction of propagated
    updates that are justified, per policy and query rate, next to the
    realized saved-miss-per-overhead ratio.  The paper argues overhead
    is fully recovered when at least half the updates are justified. *)

(** {1 Overlay generality (Section 2.2)} *)

type overlay_row = {
  overlay_label : string;
  o_policy : string;
  o_total : int;
  o_miss : int;
  o_misses : int;
  o_latency : float;  (** one-way hops *)
}

val overlay_comparison :
  ?pool:Cup_parallel.Pool.t -> scale -> overlay_row list
(** CUP versus standard caching over both substrates — the 2-d CAN of
    the paper's evaluation and a Chord ring — under the same workload.
    CUP's benefits are a property of the query/update-channel design,
    not of any one routing geometry. *)

(** {1 Replication across seeds} *)

type replicated = {
  runs : int;
  total_mean : float;
  total_stddev : float;
  miss_mean : float;
  miss_stddev : float;
  misses_mean : float;
  misses_stddev : float;
  latency_mean : float;
  latency_stddev : float;
}

val replicate :
  ?pool:Cup_parallel.Pool.t -> Scenario.t -> runs:int -> replicated
(** Run the scenario [runs] times with seeds [seed, seed+1, ...] and
    report the mean and standard deviation of the headline metrics —
    for confidence intervals around any single-seed number.  Requires
    [runs >= 1]. *)

val replicate_metrics :
  ?pool:Cup_parallel.Pool.t ->
  Scenario.t ->
  runs:int ->
  replicated * Cup_metrics.Registry.t
(** Like {!replicate}, but each run also records into its own metrics
    registry ({!Runner.Live.set_metrics}); the per-run registries are
    merged in seed order with the exact deterministic
    {!Cup_metrics.Registry.merge}, so the combined exposition is
    byte-identical across schedulers and job counts.  Behind
    [--metrics-out] with [--runs > 1]. *)

(** {1 Model versus simulation (Section 3.1)} *)

type model_row = {
  m_rate : float;
  m_fanout : int;  (** the authority's neighbor count in this topology *)
  measured_justified_pct : float;
  predicted_justified_pct : float;
}

val model_check : ?pool:Cup_parallel.Pool.t -> scale -> model_row list
(** Push updates only to the authority's direct neighbors
    ([Push_level 1]) and compare the measured fraction of justified
    updates with the closed-form [1 - exp (-L T)] of Section 3.1,
    where each neighbor's subtree carries ~1/fanout of the network
    query rate and [T] is the replica lifetime.  The measured number
    counts queries that reach the neighbor, a slight undercount of the
    model's "any query in the subtree" at high rates (fresh caches
    below absorb some queries). *)
