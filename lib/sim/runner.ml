module Engine = Cup_dess.Engine
module Time = Cup_dess.Time
module Net = Cup_overlay.Net
module Route = Cup_overlay.Route
module Node_id = Cup_overlay.Node_id
module Key = Cup_overlay.Key
module Splitmix = Cup_prng.Splitmix
module Node = Cup_proto.Node
module Node_store = Cup_proto.Node_store
module Update = Cup_proto.Update
module Update_queue = Cup_proto.Update_queue
module Replica_id = Cup_proto.Replica_id
module Entry = Cup_proto.Entry
module Counters = Cup_metrics.Counters
module Registry = Cup_metrics.Registry
module Histogram = Cup_metrics.Histogram
module Attribution = Cup_metrics.Attribution
module Rng = Cup_prng.Rng
module Dist = Cup_prng.Dist

let log_src = Logs.Src.create "cup.sim" ~doc:"CUP simulation runner"

module Log = (val Logs.src_log log_src : Logs.LOG)

type result = {
  counters : Counters.t;
  node_stats : Node.stats;
  queries_posted : int;
  replica_events : int;
  engine_events : int;
  wallclock : float;
  events_per_sec : float;
  tracked_updates : int;
  justified_updates : int;
  profile : Engine.profile option;
}

(* Token-bucket mode: the Section 2.8 per-neighbor outgoing update
   channels of one node.  [drain_cb] is the drain callback, allocated
   once per channel the first time a drain is scheduled and reused for
   every subsequent drain event (the per-message closure allocation
   was a measurable share of the delivery path). *)
type channel_state = {
  queues : Update_queue.t Node_id.Table.t;
  mutable drain_scheduled : bool;
  mutable last_send : float;
  mutable drain_cb : Engine.t -> unit;
}

let no_drain : Engine.t -> unit = fun _ -> ()

(* Subscription-repair state for one (node, key): the node believes it
   sits in the key's propagation tree and expects updates before
   [r_deadline].  If the deadline passes without one, the node
   re-issues its interest up the (repaired) overlay path with capped
   exponential backoff; after [max_repair_attempts] it gives up and
   degrades to expiration-based polling (Section 2.9). *)
type repair_state = {
  r_node : Node_id.t;
  r_key : Key.t;
  mutable r_deadline : float; (* absolute seconds *)
  mutable r_attempts : int;
  mutable r_scheduled : bool; (* a check event is pending *)
  mutable r_started : float;
      (* when the first repair attempt of the current outage fired
         (absolute seconds); meaningful while [r_attempts > 0] *)
}

let max_transport_retries = 4
let max_repair_attempts = 5

(* {2 Causal span context}

   When a tracer or a metrics registry is attached ("observing"),
   every root cause — a posted query, an origin-server replica event,
   a repair attempt — opens a trace, and the context below rides along
   the delivery path so each emitted event records which span caused
   it.  Ids come from [next_span], bumped in engine event order: the
   engine executes an identical total order across schedulers and job
   counts, so span ids are byte-deterministic too.

   When nothing is observing, every path threads the one shared
   [no_ctx] value and ids stay 0: no allocation, no counter bumps, so
   the hot path is unchanged from the untraced baseline. *)

type span_ctx = {
  sc_trace : int; (* trace id of the root cause *)
  sc_parent : int; (* span id of the causing event; 0 at a root *)
  sc_root_at : float; (* root-cause time, seconds (propagation latency) *)
}

let no_ctx = { sc_trace = 0; sc_parent = 0; sc_root_at = 0. }

(* [sid = 0] means "not observing": keep threading the shared context
   instead of allocating a copy. *)
let child_ctx ctx sid = if sid = 0 then ctx else { ctx with sc_parent = sid }

(* Pre-resolved registry handles, so the delivery path updates
   histograms without any by-name lookups.  [level_latency.(l)] is the
   propagation-latency histogram of tree level [l], grown on demand. *)
type metric_set = {
  registry : Registry.t;
  query_latency : Histogram.t;
  repair_latency : Histogram.t;
  mutable level_latency : Histogram.t option array;
}

(* Which representation holds the per-(node, key) protocol state.  The
   two are byte-equivalent (checked end-to-end by [test_state_equiv]):
   [Map_nodes] is one {!Node.t} heap object per node, [Flat_nodes] is
   the struct-of-arrays pool sized for million-node runs. *)
type backend =
  | Map_nodes of Node.t Node_id.Table.t
  | Flat_nodes of Node_store.t

type live = {
  cfg : Scenario.t;
  engine : Engine.t;
  net : Net.t;
  nodes : backend;
  keys : Key.t array;
  authority : Node_id.t Key.Table.t;
  counters : Counters.t;
  capacity : float Node_id.Table.t; (* absent = full (1.0) *)
  channels : channel_state Node_id.Table.t;
  topo_rng : Rng.t;
  cap_rng : Rng.t;
  sample_rng : Rng.t;
  crash_rng : Rng.t; (* crash-victim picking *)
  loss_rng : Rng.t; (* per-delivery loss draws, in event order *)
  loss_salt : int64; (* per-run salt for per-channel drop rates *)
  reorder_rng : Rng.t; (* per-delivery reorder draws, in event order *)
  dup_rng : Rng.t; (* per-delivery duplication draws, in event order *)
  partition_salt : int64; (* per-run salt for island membership *)
  fault_mode : bool; (* any Scenario fault axis present *)
  repair : (int, repair_state) Hashtbl.t; (* packed (node, key) *)
  repair_timeout : float; (* seconds a subscriber waits for an answer *)
  repair_slack : float; (* grace past an entry expiry before repairing *)
  batches : Entry.t list ref Key.Table.t; (* authority-side refresh batching *)
  justif : (int, float list ref) Hashtbl.t;
      (* packed (node, key) -> justification deadlines of updates
         applied there and not yet judged (Section 3.1).  Judged
         entries are emptied in place, not removed, so the ref cell is
         reused by the next update at the same (node, key). *)
  inv_hop_delay : float; (* 1 / hop_delay, or 0 under zero delay *)
  mutable tracked_updates : int;
  mutable justified_updates : int;
  mutable queries_posted : int;
  mutable replica_events : int;
  mutable tracer : (Trace.event -> unit) option;
  mutable metrics : metric_set option;
  mutable attribution : Attribution.t option;
  mutable next_span : int; (* last span id handed out; 0 = none yet *)
  started : float; (* host wallclock at creation *)
}

(* Call sites build the [Trace.event] record lazily behind a
   [t.tracer <> None] test: tracing is off in every benchmark and most
   runs, and allocating a record per delivered message just to drop it
   in [emit] was pure garbage-collector load. *)
let emit t event =
  match t.tracer with Some f -> f event | None -> ()

let tracing t = t.tracer <> None
let observing t = t.tracer <> None || t.metrics <> None

(* Fresh span id, or 0 when nothing is observing (the counter must not
   advance then, so attaching a tracer never perturbs an untraced
   baseline and the disabled path allocates nothing). *)
let new_span t =
  if observing t then begin
    let id = t.next_span + 1 in
    t.next_span <- id;
    id
  end
  else 0

let level_hist ms level =
  let n = Array.length ms.level_latency in
  if level >= n then begin
    let grown = Array.make (Stdlib.max (level + 1) (2 * n)) None in
    Array.blit ms.level_latency 0 grown 0 n;
    ms.level_latency <- grown
  end;
  match ms.level_latency.(level) with
  | Some h -> h
  | None ->
      let h =
        Registry.histogram ms.registry
          ~help:"Update propagation latency from origin event to delivery"
          ~labels:[ ("level", string_of_int level) ]
          ~min_value:1e-3 "cup_update_propagation_seconds"
      in
      ms.level_latency.(level) <- Some h;
      h

let now t = Engine.now t.engine

(* {2 State-backend dispatch}

   Every protocol-state touch goes through one of these [b_]
   wrappers.  The match is a two-way branch on an immutable field, so
   the cost is noise next to the handler bodies. *)

let b_register t id =
  match t.nodes with
  | Map_nodes nodes -> Node_id.Table.replace nodes id (Node.create ~id t.cfg.Scenario.node_config)
  | Flat_nodes store -> Node_store.register store id

let b_mem t id =
  match t.nodes with
  | Map_nodes nodes -> Node_id.Table.mem nodes id
  | Flat_nodes store -> Node_store.mem store id

let b_handle_query t id ~now ~next_hop source key =
  match t.nodes with
  | Map_nodes nodes ->
      Node.handle_query (Node_id.Table.find nodes id) ~now ~next_hop source key
  | Flat_nodes store ->
      Node_store.handle_query store ~node:id ~now ~next_hop source key

let b_handle_update t id ~now ~from update =
  match t.nodes with
  | Map_nodes nodes ->
      Node.handle_update (Node_id.Table.find nodes id) ~now ~from update
  | Flat_nodes store -> Node_store.handle_update store ~node:id ~now ~from update

let b_handle_clear_bit t id ~now ~from key =
  match t.nodes with
  | Map_nodes nodes ->
      Node.handle_clear_bit (Node_id.Table.find nodes id) ~now ~from key
  | Flat_nodes store ->
      Node_store.handle_clear_bit store ~node:id ~now ~from key

let b_add_local_key t id key =
  match t.nodes with
  | Map_nodes nodes -> Node.add_local_key (Node_id.Table.find nodes id) key
  | Flat_nodes store -> Node_store.add_local_key store id key

let b_replica_birth t id ~now ~key entry =
  match t.nodes with
  | Map_nodes nodes ->
      Node.replica_birth (Node_id.Table.find nodes id) ~now ~key entry
  | Flat_nodes store -> Node_store.replica_birth store ~node:id ~now ~key entry

let b_replica_refresh t id ~now ~key entry =
  match t.nodes with
  | Map_nodes nodes ->
      Node.replica_refresh (Node_id.Table.find nodes id) ~now ~key entry
  | Flat_nodes store ->
      Node_store.replica_refresh store ~node:id ~now ~key entry

let b_replica_refresh_batch t id ~now ~key entries =
  match t.nodes with
  | Map_nodes nodes ->
      Node.replica_refresh_batch (Node_id.Table.find nodes id) ~now ~key entries
  | Flat_nodes store ->
      Node_store.replica_refresh_batch store ~node:id ~now ~key entries

let b_replica_death t id ~now ~key replica =
  match t.nodes with
  | Map_nodes nodes ->
      Node.replica_death (Node_id.Table.find nodes id) ~now ~key replica
  | Flat_nodes store ->
      Node_store.replica_death store ~node:id ~now ~key replica

let b_pending_first t id key =
  match t.nodes with
  | Map_nodes nodes -> Node.pending_first (Node_id.Table.find nodes id) key
  | Flat_nodes store -> Node_store.pending_first store id key

let b_interested_neighbors t id key =
  match t.nodes with
  | Map_nodes nodes ->
      Node.interested_neighbors (Node_id.Table.find nodes id) key
  | Flat_nodes store -> Node_store.interested_neighbors store id key

let b_remap_neighbor t id ~old_id ~new_id =
  match t.nodes with
  | Map_nodes nodes ->
      Node.remap_neighbor (Node_id.Table.find nodes id) ~old_id ~new_id
  | Flat_nodes store -> Node_store.remap_neighbor store ~node:id ~old_id ~new_id

let b_drop_neighbor t id neighbor =
  match t.nodes with
  | Map_nodes nodes -> Node.drop_neighbor (Node_id.Table.find nodes id) neighbor
  | Flat_nodes store -> Node_store.drop_neighbor store ~node:id neighbor

let b_retain_neighbors t id current =
  match t.nodes with
  | Map_nodes nodes ->
      Node.retain_neighbors (Node_id.Table.find nodes id) current
  | Flat_nodes store -> Node_store.retain_neighbors store ~node:id current

let b_handover_local t id key =
  match t.nodes with
  | Map_nodes nodes -> Node.handover_local (Node_id.Table.find nodes id) key
  | Flat_nodes store -> Node_store.handover_local store id key

let b_receive_local t id key entries =
  match t.nodes with
  | Map_nodes nodes ->
      Node.receive_local (Node_id.Table.find nodes id) key entries
  | Flat_nodes store -> Node_store.receive_local store id key entries

let capacity_of t id =
  match Node_id.Table.find_opt t.capacity id with
  | Some c -> c
  | None -> 1.

let channel_of t id =
  match Node_id.Table.find_opt t.channels id with
  | Some ch -> ch
  | None ->
      let ch =
        {
          queues = Node_id.Table.create 8;
          drain_scheduled = false;
          last_send = Float.neg_infinity;
          drain_cb = no_drain;
        }
      in
      Node_id.Table.replace t.channels id ch;
      ch

(* {2 Message loss}

   The drop probability of a channel is a pure hash of (run salt,
   sender, receiver): asking for it never consumes randomness, so the
   rate of one channel cannot depend on traffic elsewhere.  Whether a
   given message is lost is then one Bernoulli draw from the dedicated
   "loss" substream; the engine executes events in an identical total
   order across schedulers and job counts, so the draw sequence — and
   therefore every loss — is byte-deterministic. *)

let channel_drop t ~from ~to_ =
  match t.cfg.loss with
  | None -> 0.
  | Some { Scenario.drop; jitter } ->
      if jitter <= 0. then drop
      else begin
        let mixed =
          Splitmix.mix
            (Int64.logxor t.loss_salt
               (Int64.of_int
                  ((Node_id.to_int from lsl 24) lxor Node_id.to_int to_)))
        in
        (* top 53 bits -> u uniform in [-1, 1) *)
        let u =
          (Int64.to_float (Int64.shift_right_logical mixed 11)
          /. 9007199254740992.)
          *. 2.
          -. 1.
        in
        Float.min 1. (Float.max 0. (drop *. (1. +. (jitter *. u))))
      end

let lost_in_transit t ~from ~to_ =
  match t.cfg.loss with
  | None -> false
  | Some _ -> Dist.bernoulli t.loss_rng ~p:(channel_drop t ~from ~to_)

(* {2 Partitions, reordering, duplication}

   Island membership is a pure hash of (run salt, node id) — like
   per-channel drop rates it costs no randomness, so turning the
   partition window on or off cannot shift any other draw stream.
   Reorder and duplication each have a dedicated substream consumed in
   event order, keeping all fault axes independently deterministic. *)

let in_island t id =
  match t.cfg.partition with
  | None -> false
  | Some { Scenario.fraction; _ } ->
      let mixed =
        Splitmix.mix
          (Int64.logxor t.partition_salt (Int64.of_int (Node_id.to_int id)))
      in
      (* top 53 bits -> uniform in [0, 1) *)
      Int64.to_float (Int64.shift_right_logical mixed 11) /. 9007199254740992.
      < fraction

let partition_active t =
  match t.cfg.partition with
  | None -> false
  | Some { Scenario.p_start; p_duration; _ } ->
      let tnow = Time.to_seconds (Engine.now t.engine) in
      let opens = t.cfg.query_start +. p_start in
      tnow >= opens && tnow < opens +. p_duration

let partition_blocks t ~from ~to_ =
  match t.cfg.partition with
  | None -> false
  | Some { Scenario.symmetric; _ } ->
      partition_active t
      &&
      let fi = in_island t from and ti = in_island t to_ in
      if symmetric then fi <> ti
      else (* asymmetric: the island hears nothing but is still heard *)
        ti && not fi

(* The loss draw is consumed unconditionally so the "loss" stream stays
   independent of whether the partition window happens to be open. *)
let dropped_in_transit t ~from ~to_ =
  let lost = lost_in_transit t ~from ~to_ in
  lost || partition_blocks t ~from ~to_

(* Per-message delivery delay: [hop_delay] exactly, unless reordering
   stretches this copy by up to [r_spread] extra hop delays — enough
   for later sends to overtake it. *)
let delivery_delay t =
  match t.cfg.reorder with
  | None -> t.cfg.hop_delay
  | Some { Scenario.r_probability; r_spread } ->
      if Dist.bernoulli t.reorder_rng ~p:r_probability then
        t.cfg.hop_delay *. (1. +. (r_spread *. Rng.float t.reorder_rng))
      else t.cfg.hop_delay

(* Drawn only for messages that were not dropped: a lost message has
   no copy to duplicate, and skipping the draw there keeps the stream
   aligned with what actually crossed the wire. *)
let duplicated_in_transit t =
  match t.cfg.duplication with
  | None -> false
  | Some { Scenario.d_probability } ->
      Dist.bernoulli t.dup_rng ~p:d_probability

(* Capped exponential backoff for transport-level query retries. *)
let retry_delay t attempt =
  t.cfg.hop_delay *. 4. *. Float.of_int (1 lsl Stdlib.min attempt 4)

(* {2 Justified-update accounting (Section 3.1)}

   An update pushed to a node is justified if a query for the key
   arrives at that node before the update's critical window closes
   (the carried entries' expiry).  We register a deadline when a
   non-answering update is applied at a node and judge all pending
   deadlines at the node's next query for the key. *)

(* Packed (node, key) table key: an int avoids the tuple allocation
   and polymorphic hashing a pair key pays on every probe. *)
let justif_key node key = (Node_id.to_int node lsl 31) lor Key.to_int key

let register_update_for_justification t ~node (update : Update.t) =
  let deadline =
    List.fold_left
      (fun acc (e : Entry.t) -> Float.max acc (Time.to_seconds e.expiry))
      0. update.entries
  in
  t.tracked_updates <- t.tracked_updates + 1;
  (match t.attribution with
  | Some a ->
      Attribution.record_delivery a ~key:(Key.to_int update.key)
        ~node:(Node_id.to_int node)
  | None -> ());
  let k = justif_key node update.key in
  match Hashtbl.find_opt t.justif k with
  | Some deadlines ->
      (* Sweep entries whose critical window already closed: they can
         never count as justified, and without the sweep a (node, key)
         that receives updates but no queries grows its deadline list
         without bound for the whole run. *)
      let tnow = Time.to_seconds (Engine.now t.engine) in
      deadlines := deadline :: List.filter (fun d -> d >= tnow) !deadlines
  | None -> Hashtbl.replace t.justif k (ref [ deadline ])

let judge_pending_updates t ~node ~key =
  match Hashtbl.find_opt t.justif (justif_key node key) with
  | None | Some { contents = [] } -> ()
  | Some deadlines ->
      let now = Time.to_seconds (Engine.now t.engine) in
      List.iter
        (fun deadline ->
          if deadline >= now then begin
            t.justified_updates <- t.justified_updates + 1;
            match t.attribution with
            | Some a ->
                Attribution.record_justified a ~key:(Key.to_int key)
                  ~node:(Node_id.to_int node)
            | None -> ()
          end)
        !deadlines;
      (* Empty in place: the table slot and ref cell live on for the
         next update registered at this (node, key). *)
      deadlines := []

(* {2 Message transport}

   Each [Send_*] action becomes a delivery event one [hop_delay]
   later.  Hops are recorded at delivery so that first-time-update
   hops can be classified by the receiver's pending flag. *)

let rec perform t ~ctx ~from actions =
  List.iter (fun a -> perform_one t ~ctx ~from a) actions

and perform_one t ~ctx ~from = function
  | Node.Send_query { to_; key } -> send_query t ~ctx ~from ~to_ ~attempt:0 key
  | Node.Send_clear_bit { to_; key } ->
      if not t.cfg.piggyback_clear_bits then begin
        Counters.record_clear_bit_hop t.counters;
        match t.attribution with
        | Some a ->
            Attribution.record_clear_bit_hop a ~key:(Key.to_int key)
              ~node:(Node_id.to_int from)
              ~now:(Time.to_seconds (now t))
        | None -> ()
      end;
      (* The sender is cutting itself out of the key's tree: it no
         longer expects updates, so stop watching its deadline. *)
      if t.fault_mode then Hashtbl.remove t.repair (justif_key from key);
      Counters.record_sent t.counters;
      let sid = new_span t in
      if dropped_in_transit t ~from ~to_ then begin
        (* A lost clear-bit is harmless: the upstream keeps pushing
           until the bit is cleared by a later cut-off or expiry. *)
        Counters.record_lost_message t.counters;
        Counters.record_transport_lost t.counters;
        if tracing t then
          emit t
            (Trace.Message_lost
               {
                 at = now t;
                 from_ = from;
                 to_;
                 key;
                 trace_id = ctx.sc_trace;
                 span_id = sid;
                 parent_id = ctx.sc_parent;
               })
      end
      else begin
        ignore
          (Engine.schedule_after ~label:"deliver.clear_bit" t.engine
             ~delay:(delivery_delay t) (fun _ ->
               deliver_clear_bit t ~ctx ~sid ~from ~to_ key));
        if duplicated_in_transit t then begin
          (* The extra copy is a transport message in its own right:
             own sent/delivered accounting, own span.  Clearing an
             already-cleared bit is a no-op at the receiver. *)
          Counters.record_sent t.counters;
          Counters.record_duplicate t.counters;
          let dsid = new_span t in
          ignore
            (Engine.schedule_after ~label:"deliver.clear_bit" t.engine
               ~delay:(t.cfg.hop_delay +. delivery_delay t) (fun _ ->
                 deliver_clear_bit t ~ctx ~sid:dsid ~from ~to_ key))
        end
      end
  | Node.Send_update { to_; update; answering } ->
      send_update t ~ctx ~from ~to_ ~answering update
  | Node.Answer_local { posted_at; hit; key; _ } ->
      if tracing t then
        emit t
          (Trace.Local_answer
             {
               at = now t;
               node = from;
               key;
               hit;
               waiters = List.length posted_at;
               trace_id = ctx.sc_trace;
               span_id = new_span t;
               parent_id = ctx.sc_parent;
             });
      if hit then begin
        List.iter (fun _ -> Counters.record_hit t.counters) posted_at;
        match t.attribution with
        | Some a ->
            let key = Key.to_int key and node = Node_id.to_int from in
            List.iter
              (fun _ -> Attribution.record_hit a ~key ~node)
              posted_at
        | None -> ()
      end
      else begin
        let n = now t in
        List.iter
          (fun posted ->
            let hops = Time.diff n posted *. t.inv_hop_delay in
            Counters.record_miss t.counters ~hops;
            (match t.attribution with
            | Some a ->
                Attribution.record_miss a ~key:(Key.to_int key)
                  ~node:(Node_id.to_int from)
                  ~now:(Time.to_seconds n)
            | None -> ());
            match t.metrics with
            | Some ms -> Histogram.add ms.query_latency hops
            | None -> ())
          posted_at
      end

(* One query crossing one overlay edge.  [attempt] counts transport
   retries of this logical query: 0 on the first send, bumped each
   time the message is lost on the wire or reaches a crashed node. *)
and send_query t ~ctx ~from ~to_ ~attempt key =
  Counters.record_query_hop t.counters;
  (match t.attribution with
  | Some a ->
      Attribution.record_query_hop a ~key:(Key.to_int key)
        ~node:(Node_id.to_int from)
  | None -> ());
  if t.fault_mode then
    arm_repair t ~node:from ~key
      ~deadline:(Time.to_seconds (now t) +. t.repair_timeout);
  Counters.record_sent t.counters;
  let sid = new_span t in
  if dropped_in_transit t ~from ~to_ then begin
    Counters.record_lost_message t.counters;
    Counters.record_transport_lost t.counters;
    if tracing t then
      emit t
        (Trace.Message_lost
           {
             at = now t;
             from_ = from;
             to_;
             key;
             trace_id = ctx.sc_trace;
             span_id = sid;
             parent_id = ctx.sc_parent;
           });
    (* Sender-side timeout: re-route after a capped backoff.  The
       retry descends from the lost message's span, so the repair cost
       shows up on the trace's critical path. *)
    let ctx = child_ctx ctx sid in
    ignore
      (Engine.schedule_after ~label:"transport.retry" t.engine
         ~delay:(retry_delay t attempt) (fun _ ->
           retry_query t ~ctx ~from ~key ~attempt:(attempt + 1)))
  end
  else begin
    ignore
      (Engine.schedule_after ~label:"deliver.query" t.engine
         ~delay:(delivery_delay t) (fun _ ->
           deliver_query t ~ctx ~sid ~attempt ~from ~to_ key));
    if duplicated_in_transit t then begin
      (* Redelivered queries coalesce in the receiver's pending set;
         the copy still pays full transport accounting. *)
      Counters.record_sent t.counters;
      Counters.record_duplicate t.counters;
      let dsid = new_span t in
      ignore
        (Engine.schedule_after ~label:"deliver.query" t.engine
           ~delay:(t.cfg.hop_delay +. delivery_delay t) (fun _ ->
             deliver_query t ~ctx ~sid:dsid ~attempt ~from ~to_ key))
    end
  end

and deliver_query t ~ctx ?(sid = 0) ?(attempt = 0) ~from ~to_ key =
  if tracing t then
    emit t
      (Trace.Query_forwarded
         {
           at = now t;
           from_ = from;
           to_;
           key;
           trace_id = ctx.sc_trace;
           span_id = sid;
           parent_id = ctx.sc_parent;
         });
  if Net.is_alive t.net to_ then begin
    Counters.record_delivered t.counters;
    if attempt > 0 then Counters.record_repair t.counters;
    judge_pending_updates t ~node:to_ ~key;
    match Net.next_hop t.net to_ key with
    | Route.Stuck _ ->
        (* The receiver can make no routing progress toward the key's
           authority: the query dies here, typed, instead of the old
           [failwith] escaping the engine. *)
        Counters.record_unreachable t.counters
    | (Route.Owner | Route.Forward _) as hop ->
        let next_hop =
          match hop with Route.Forward h -> Some h | _ -> None
        in
        perform t ~ctx:(child_ctx ctx sid) ~from:to_
          (b_handle_query t to_ ~now:(now t) ~next_hop
             (Node.From_neighbor from) key)
  end
  else begin
    (* The next hop crashed with the query in flight: the sender times
       out and re-routes around the hole the overlay has since
       repaired.  Transport accounting covers every dead receiver
       (graceful churn included), not just injected faults, so the
       conservation identity drains to zero in either case. *)
    Counters.record_transport_lost t.counters;
    if t.fault_mode then begin
    Counters.record_lost_message t.counters;
    let lost_sid = new_span t in
    if tracing t then
      emit t
        (Trace.Message_lost
           {
             at = now t;
             from_ = from;
             to_;
             key;
             trace_id = ctx.sc_trace;
             span_id = lost_sid;
             parent_id = sid;
           });
    let ctx = child_ctx ctx lost_sid in
    ignore
      (Engine.schedule_after ~label:"transport.retry" t.engine
         ~delay:(retry_delay t attempt) (fun _ ->
           retry_query t ~ctx ~from ~key ~attempt:(attempt + 1)))
    end
  end

(* Re-route a lost or bounced query from its original sender. *)
and retry_query t ~ctx ~from ~key ~attempt =
  if attempt > max_transport_retries then
    Counters.record_unreachable t.counters
  else if not (Net.is_alive t.net from) then
    (* The sender itself crashed while waiting; nobody is left to
       retry on this path. *)
    Counters.record_unreachable t.counters
  else begin
    Counters.record_retry t.counters;
    match Net.next_hop t.net from key with
    | Route.Stuck _ | Route.Owner ->
        (* Stuck: routing cannot converge from here.  Owner: the
           sender absorbed the key's zone while the query was in
           flight, so there is no upstream left to ask; local waiters
           fall back to expiration-based polling. *)
        Counters.record_unreachable t.counters
    | Route.Forward h -> send_query t ~ctx ~from ~to_:h ~attempt key
  end

and deliver_clear_bit t ~ctx ?(sid = 0) ~from ~to_ key =
  if tracing t then
    emit t
      (Trace.Clear_bit_delivered
         {
           at = now t;
           from_ = from;
           to_;
           key;
           trace_id = ctx.sc_trace;
           span_id = sid;
           parent_id = ctx.sc_parent;
         });
  if Net.is_alive t.net to_ then begin
    Counters.record_delivered t.counters;
    perform t
      ~ctx:(child_ctx ctx sid)
      ~from:to_
      (b_handle_clear_bit t to_ ~now:(now t) ~from key)
  end
  else
    (* A clear-bit to a dead receiver needs no repair, but it must
       still leave the in-flight ledger. *)
    Counters.record_transport_lost t.counters

and send_update t ~ctx ~from ~to_ ~answering (update : Update.t) =
  match (update.kind, t.cfg.capacity_mode) with
  | Update.First_time, _ when answering ->
      (* Query answers always flow: a capacity-limited node degrades
         its dependents to standard caching but still answers them.
         Proactive first-time pushes are ordinary update propagation
         and take the capacity-limited paths below. *)
      transmit_update t ~ctx ~from ~to_ ~answering update
  | _, Scenario.Bernoulli ->
      let c = capacity_of t from in
      if c >= 1. || Dist.bernoulli t.cap_rng ~p:c then
        transmit_update t ~ctx ~from ~to_ update
      else Counters.record_dropped_update t.counters
  | _, Scenario.Token_bucket _ ->
      let ch = channel_of t from in
      let queue =
        match Node_id.Table.find_opt ch.queues to_ with
        | Some q -> q
        | None ->
            let q = Update_queue.create t.cfg.queue_ordering in
            Node_id.Table.replace ch.queues to_ q;
            q
      in
      (* The span context must survive the queueing delay; it rides
         the queue as an opaque tag and is rebuilt at drain time. *)
      if observing t then
        Update_queue.push
          ~tag:(ctx.sc_trace, ctx.sc_parent, ctx.sc_root_at)
          queue update
      else Update_queue.push queue update;
      schedule_drain t from ch

and transmit_update t ~ctx ~from ~to_ ?(answering = false) (update : Update.t)
    =
  Counters.record_sent t.counters;
  let sid = new_span t in
  if dropped_in_transit t ~from ~to_ then begin
    (* Updates are not retransmitted: the subscriber's
       justification-deadline repair (below) detects the gap and
       re-issues its interest instead. *)
    Counters.record_lost_message t.counters;
    Counters.record_transport_lost t.counters;
    if tracing t then
      emit t
        (Trace.Message_lost
           {
             at = now t;
             from_ = from;
             to_;
             key = update.key;
             trace_id = ctx.sc_trace;
             span_id = sid;
             parent_id = ctx.sc_parent;
           })
  end
  else begin
    ignore
      (Engine.schedule_after ~label:"deliver.update" t.engine
         ~delay:(delivery_delay t) (fun _ ->
           deliver_update t ~ctx ~sid ~from ~to_ ~answering update));
    if duplicated_in_transit t then begin
      (* Entry application is idempotent under the receiver's
         last-writer-wins guard, so the copy can even arrive after a
         fresher update without regressing the cache. *)
      Counters.record_sent t.counters;
      Counters.record_duplicate t.counters;
      let dsid = new_span t in
      ignore
        (Engine.schedule_after ~label:"deliver.update" t.engine
           ~delay:(t.cfg.hop_delay +. delivery_delay t) (fun _ ->
             deliver_update t ~ctx ~sid:dsid ~from ~to_ ~answering update))
    end
  end

and deliver_update t ~ctx ?(sid = 0) ~from ~to_ ~answering (update : Update.t)
    =
  if tracing t then
    emit t
      (Trace.Update_delivered
         {
           at = now t;
           from_ = from;
           to_;
           key = update.key;
           kind = update.kind;
           level = update.level;
           answering;
           entries =
             List.map
               (fun (e : Entry.t) ->
                 (Replica_id.to_int e.replica, Time.to_seconds e.expiry))
               update.entries;
           trace_id = ctx.sc_trace;
           span_id = sid;
           parent_id = ctx.sc_parent;
         });
  (match t.metrics with
  | Some ms when (not answering) && ctx != no_ctx ->
      Histogram.add
        (level_hist ms update.level)
        (Time.to_seconds (now t) -. ctx.sc_root_at)
  | _ -> ());
  let node_alive = Net.is_alive t.net to_ in
  (match update.kind with
  | Update.First_time -> Counters.record_first_time_hop t.counters ~answering
  | Update.Refresh -> Counters.record_update_hop t.counters `Refresh
  | Update.Delete -> Counters.record_update_hop t.counters `Delete
  | Update.Append -> Counters.record_update_hop t.counters `Append);
  (match t.attribution with
  | Some a ->
      (* Section 3.1 ledger split: a first-time update answering a
         pending query is miss cost, every other delivery is overhead. *)
      let overhead =
        match update.kind with
        | Update.First_time -> not answering
        | Update.Refresh | Update.Delete | Update.Append -> true
      in
      Attribution.record_update_hop a
        ~key:(Key.to_int update.key)
        ~node:(Node_id.to_int to_)
        ~level:update.level ~overhead
        ~now:(Time.to_seconds (now t))
  | None -> ());
  if node_alive then begin
    Counters.record_delivered t.counters;
    if not answering then register_update_for_justification t ~node:to_ update;
    if t.fault_mode then note_update_for_repair t ~node:to_ update;
    perform t
      ~ctx:(child_ctx ctx sid)
      ~from:to_
      (b_handle_update t to_ ~now:(now t) ~from update)
  end
  else begin
    Counters.record_transport_lost t.counters;
    if t.fault_mode then begin
    (* The child crashed: the update is lost and the sender prunes the
       dead edge from its propagation tree so later updates stop
       burning hops on it. *)
    Counters.record_lost_message t.counters;
    if tracing t then
      emit t
        (Trace.Message_lost
           {
             at = now t;
             from_ = from;
             to_;
             key = update.key;
             trace_id = ctx.sc_trace;
             span_id = new_span t;
             parent_id = sid;
           });
    if Net.is_alive t.net from && b_mem t from then begin
      b_drop_neighbor t from to_;
      Counters.record_repair t.counters
    end
    end
  end

(* {2 Subscription repair (fault mode)}

   A node that expects updates for a key — it forwarded a query up, or
   updates have been flowing to it — tracks a deadline; see
   [repair_state].  When the deadline passes with no update, the
   justification-deadline timeout fires: the node re-issues its
   interest along the current (already repaired) overlay path, with
   capped exponential backoff between attempts, and gives up into
   expiration-based polling after [max_repair_attempts]. *)

and arm_repair t ~node ~key ~deadline =
  let packed = justif_key node key in
  match Hashtbl.find_opt t.repair packed with
  | Some st ->
      if deadline > st.r_deadline then st.r_deadline <- deadline;
      schedule_repair_check t st
  | None ->
      let st =
        {
          r_node = node;
          r_key = key;
          r_deadline = deadline;
          r_attempts = 0;
          r_scheduled = false;
          r_started = 0.;
        }
      in
      Hashtbl.replace t.repair packed st;
      schedule_repair_check t st

(* An update arrived: the subscription works.  Reset the attempt
   counter (counting a completed repair if we had been retrying) and
   push the deadline past the carried entries' expiry. *)
and note_update_for_repair t ~node (update : Update.t) =
  let expiry =
    List.fold_left
      (fun acc (e : Entry.t) -> Float.max acc (Time.to_seconds e.expiry))
      0. update.entries
  in
  let tnow = Time.to_seconds (now t) in
  let deadline =
    Float.max (expiry +. t.repair_slack) (tnow +. t.repair_timeout)
  in
  let packed = justif_key node update.key in
  match Hashtbl.find_opt t.repair packed with
  | Some st ->
      if st.r_attempts > 0 then begin
        st.r_attempts <- 0;
        Counters.record_repair t.counters;
        (* Update flow restored: the outage ran from the first
           re-issued interest to this delivery. *)
        match t.metrics with
        | Some ms -> Histogram.add ms.repair_latency (tnow -. st.r_started)
        | None -> ()
      end;
      if deadline > st.r_deadline then st.r_deadline <- deadline;
      schedule_repair_check t st
  | None ->
      (* Updates can start flowing to a node that never queried in
         fault mode (e.g. interest remapped to it by churn); watch
         those subscriptions too. *)
      arm_repair t ~node ~key:update.key ~deadline

and schedule_repair_check t st =
  if not st.r_scheduled then begin
    st.r_scheduled <- true;
    ignore
      (Engine.schedule ~label:"repair.check" t.engine
         ~at:(Time.of_seconds st.r_deadline) (fun _ -> repair_check t st))
  end

and repair_check t st =
  st.r_scheduled <- false;
  let tnow = Time.to_seconds (now t) in
  if st.r_deadline > tnow +. 1e-9 then
    (* The deadline moved while this check was queued. *)
    schedule_repair_check t st
  else begin
    let packed = justif_key st.r_node st.r_key in
    let drop () = Hashtbl.remove t.repair packed in
    if not (Net.is_alive t.net st.r_node) then drop ()
    else begin
      let needs =
        b_pending_first t st.r_node st.r_key
        || b_interested_neighbors t st.r_node st.r_key <> []
      in
      if not needs then
        (* No waiters and no downstream interest: a stale leaf cache
           simply degrades to expiration-based caching. *)
        drop ()
      else if tnow >= Scenario.sim_end t.cfg then
        (* Past the workload horizon nothing new will flow; without
           this gate a re-issued interest and its answering update
           would keep re-arming each other and the run would never
           drain its event queue. *)
        drop ()
      else if st.r_attempts >= max_repair_attempts then begin
        Counters.record_unreachable t.counters;
        drop ()
      end
      else begin
        st.r_attempts <- st.r_attempts + 1;
        if st.r_attempts = 1 then st.r_started <- tnow;
        match Net.next_hop t.net st.r_node st.r_key with
        | Route.Owner ->
            (* Became the authority itself; nothing to re-subscribe
               to. *)
            drop ()
        | Route.Stuck _ ->
            Counters.record_unreachable t.counters;
            drop ()
        | Route.Forward h ->
            Counters.record_retry t.counters;
            (* A repair attempt is a root cause of its own: the
               re-issued interest and whatever flows back form a fresh
               trace rooted at this event. *)
            let rid = new_span t in
            if tracing t then
              emit t
                (Trace.Repair_query
                   {
                     at = now t;
                     node = st.r_node;
                     key = st.r_key;
                     attempt = st.r_attempts;
                     trace_id = rid;
                     span_id = rid;
                     parent_id = 0;
                   });
            st.r_deadline <-
              tnow
              +. (t.repair_timeout
                 *. Float.of_int (1 lsl Stdlib.min st.r_attempts 5));
            let ctx =
              if rid = 0 then no_ctx
              else { sc_trace = rid; sc_parent = rid; sc_root_at = tnow }
            in
            (* Raw re-issue on the wire: bypasses the node's own query
               coalescing, which would swallow the retry while the
               pending-first flag is still set. *)
            send_query t ~ctx ~from:st.r_node ~to_:h ~attempt:0 st.r_key;
            schedule_repair_check t st
      end
    end
  end

(* Token-bucket drain: one update leaves the node per 1/rate seconds,
   taken from the longest per-neighbor queue (the paper's
   proportional-share allocation keeps queues equal; always serving
   the longest is its work-conserving equivalent). *)
and schedule_drain t node_id ch =
  if not ch.drain_scheduled then begin
    let rate =
      match t.cfg.capacity_mode with
      | Scenario.Token_bucket full_rate -> capacity_of t node_id *. full_rate
      | Scenario.Bernoulli -> 0.
    in
    if rate > 0. then begin
      ch.drain_scheduled <- true;
      if ch.drain_cb == no_drain then
        ch.drain_cb <-
          (fun _ ->
            ch.drain_scheduled <- false;
            drain_once t node_id ch);
      let at =
        Time.max (now t) (Time.of_seconds (ch.last_send +. (1. /. rate)))
      in
      ignore (Engine.schedule ~label:"channel.drain" t.engine ~at ch.drain_cb)
    end
  end

and drain_once t node_id ch =
  let longest =
    Node_id.Table.fold
      (fun neighbor queue acc ->
        let len = Update_queue.length queue in
        if len = 0 then acc
        else
          match acc with
          | Some (_, _, best_len) when best_len >= len -> acc
          | Some _ | None -> Some (neighbor, queue, len))
      ch.queues None
  in
  match longest with
  | None -> ()
  | Some (neighbor, queue, _) ->
      (match Update_queue.pop_tagged queue ~now:(now t) with
      | Some (update, tag) ->
          ch.last_send <- Time.to_seconds (now t);
          let ctx =
            match tag with
            | Some (sc_trace, sc_parent, sc_root_at) ->
                { sc_trace; sc_parent; sc_root_at }
            | None -> no_ctx
          in
          transmit_update t ~ctx ~from:node_id ~to_:neighbor update
      | None -> ());
      let remaining =
        Node_id.Table.fold
          (fun _ q acc -> acc + Update_queue.length q)
          ch.queues 0
      in
      if remaining > 0 then schedule_drain t node_id ch

(* {2 Local queries} *)

let post_query t ~node ~key =
  if Net.is_alive t.net node then begin
    (* A locally posted query roots a new trace; everything it causes
       descends from this span. *)
    let rid = new_span t in
    if tracing t then
      emit t
        (Trace.Query_posted
           {
             at = now t;
             node;
             key;
             trace_id = rid;
             span_id = rid;
             parent_id = 0;
           });
    let ctx =
      if rid = 0 then no_ctx
      else
        {
          sc_trace = rid;
          sc_parent = rid;
          sc_root_at = Time.to_seconds (now t);
        }
    in
    judge_pending_updates t ~node ~key;
    t.queries_posted <- t.queries_posted + 1;
    (match t.attribution with
    | Some a ->
        Attribution.record_query a ~key:(Key.to_int key)
          ~node:(Node_id.to_int node)
          ~now:(Time.to_seconds (now t))
    | None -> ());
    match Net.next_hop t.net node key with
    | Route.Stuck _ -> Counters.record_unreachable t.counters
    | (Route.Owner | Route.Forward _) as hop ->
        let next_hop =
          match hop with Route.Forward h -> Some h | _ -> None
        in
        perform t ~ctx ~from:node
          (b_handle_query t node ~now:(now t) ~next_hop
             (Node.From_local (now t)) key)
  end

(* {2 Workload pumps}

   Generators are pulled one event at a time: the handler for each
   event schedules the next, keeping the event heap small. *)

let pump_queries t gen =
  let rec next () =
    match Cup_workload.Query_gen.next gen with
    | None -> ()
    | Some e ->
        ignore
          (Engine.schedule ~label:"pump.query" t.engine ~at:e.at (fun _ ->
               let node = Node_id.of_int e.node_index in
               let key = t.keys.(e.key_index) in
               post_query t ~node ~key;
               next ()))
  in
  next ()

(* An origin-server replica event roots a new trace.  No event is
   emitted for the root itself, so its children carry [parent_id = 0]:
   the first delivery hops are the roots of the trace's forest. *)
let origin_ctx t =
  let rid = new_span t in
  if rid = 0 then no_ctx
  else
    {
      sc_trace = rid;
      sc_parent = 0;
      sc_root_at = Time.to_seconds (Engine.now t.engine);
    }

let dispatch_replica_event t (e : Cup_workload.Replica_gen.event) =
  t.replica_events <- t.replica_events + 1;
  let key = t.keys.(e.key_index) in
  let auth = Key.Table.find t.authority key in
  if Net.is_alive t.net auth then begin
    let replica = Replica_id.of_int e.replica in
    match e.kind with
    | Cup_workload.Replica_gen.Birth ->
        let entry = Entry.make ~replica ~expiry:(Time.add e.at e.lifetime) in
        perform t ~ctx:(origin_ctx t) ~from:auth
          (b_replica_birth t auth ~now:(now t) ~key entry)
    | Cup_workload.Replica_gen.Death ->
        perform t ~ctx:(origin_ctx t) ~from:auth
          (b_replica_death t auth ~now:(now t) ~key replica)
    | Cup_workload.Replica_gen.Refresh ->
        let entry = Entry.make ~replica ~expiry:(Time.add e.at e.lifetime) in
        if t.cfg.refresh_batch_window > 0. then begin
          (* Section 3.6 aggregation: buffer this key's refreshes and
             flush them as one batched update when the window closes. *)
          match Key.Table.find_opt t.batches key with
          | Some buffer -> buffer := entry :: !buffer
          | None ->
              let buffer = ref [ entry ] in
              Key.Table.replace t.batches key buffer;
              ignore
                (Engine.schedule_after ~label:"refresh.batch" t.engine
                   ~delay:t.cfg.refresh_batch_window (fun _ ->
                     Key.Table.remove t.batches key;
                     let auth = Key.Table.find t.authority key in
                     if Net.is_alive t.net auth then
                       (* The batched flush is the root cause: it is
                          what actually enters the tree. *)
                       perform t ~ctx:(origin_ctx t) ~from:auth
                         (b_replica_refresh_batch t auth ~now:(now t) ~key
                            !buffer)))
        end
        else begin
          let actions = b_replica_refresh t auth ~now:(now t) ~key entry in
          if
            t.cfg.refresh_sample >= 1.
            || Dist.bernoulli t.sample_rng ~p:t.cfg.refresh_sample
          then perform t ~ctx:(origin_ctx t) ~from:auth actions
          else begin
            (* Section 3.6 suppression: the directory was updated by
               [replica_refresh]; drop the propagation. *)
            let ctx = origin_ctx t in
            List.iter
              (function
                | Node.Send_update _ ->
                    Counters.record_dropped_update t.counters
                | other -> perform_one t ~ctx ~from:auth other)
              actions
          end
        end
  end

let pump_replicas t gen =
  let rec next () =
    match Cup_workload.Replica_gen.next gen with
    | None -> ()
    | Some e ->
        ignore
          (Engine.schedule ~label:"pump.replica" t.engine ~at:e.at (fun _ ->
               dispatch_replica_event t e;
               next ()))
  in
  next ()

let set_capacity t id c =
  Log.debug (fun m ->
      m "t=%a: node %a capacity -> %.2f" Time.pp (now t) Node_id.pp id c);
  Node_id.Table.replace t.capacity id c;
  match t.cfg.capacity_mode with
  | Scenario.Token_bucket _ when c > 0. -> (
      match Node_id.Table.find_opt t.channels id with
      | Some ch -> schedule_drain t id ch
      | None -> ())
  | Scenario.Token_bucket _ | Scenario.Bernoulli -> ()

let pump_faults t gen =
  let rec next () =
    match Cup_workload.Fault_gen.next gen with
    | None -> ()
    | Some e ->
        ignore
          (Engine.schedule ~label:"pump.fault" t.engine ~at:e.at (fun _ ->
               List.iter
                 (fun { Cup_workload.Fault_gen.node_index; capacity } ->
                   set_capacity t (Node_id.of_int node_index) capacity)
                 e.changes;
               next ()))
  in
  next ()

(* {2 Construction} *)

let create_base cfg =
  (match Scenario.validate cfg with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Runner: invalid scenario: " ^ msg));
  let root = Rng.create ~seed:cfg.Scenario.seed in
  let topo_rng = Rng.substream root "topology" in
  let net =
    Net.create ~rng:topo_rng ~route_cache:cfg.route_cache
      ~churn_lookups:cfg.route_cache_churn_lookups ~kind:cfg.overlay
      ~n:cfg.nodes ()
  in
  let nodes =
    if cfg.flat_node_state then begin
      let store =
        Node_store.create ~slots_hint:(4 * cfg.nodes) cfg.node_config
      in
      List.iter (Node_store.register store) (Net.node_ids net);
      Flat_nodes store
    end
    else begin
      let table = Node_id.Table.create cfg.nodes in
      List.iter
        (fun id ->
          Node_id.Table.replace table id (Node.create ~id cfg.node_config))
        (Net.node_ids net);
      Map_nodes table
    end
  in
  let keys = Array.init (Scenario.total_keys cfg) Key.of_int in
  let authority = Key.Table.create (Array.length keys) in
  Array.iter
    (fun key ->
      let owner = Net.owner_of_key net key in
      Key.Table.replace authority key owner;
      match nodes with
      | Map_nodes table ->
          Node.add_local_key (Node_id.Table.find table owner) key
      | Flat_nodes store -> Node_store.add_local_key store owner key)
    keys;
  let t =
    {
      cfg;
      engine = Engine.create ?scheduler:cfg.scheduler ();
      net;
      nodes;
      keys;
      authority;
      counters = Counters.create ();
      capacity = Node_id.Table.create 16;
      channels = Node_id.Table.create 16;
      topo_rng;
      cap_rng = Rng.substream root "capacity";
      sample_rng = Rng.substream root "refresh-sample";
      crash_rng = Rng.substream root "crashes";
      loss_rng = Rng.substream root "loss";
      loss_salt = Splitmix.mix (Int64.of_int cfg.seed);
      reorder_rng = Rng.substream root "reorder";
      dup_rng = Rng.substream root "duplicate";
      (* Distinct from [loss_salt] so channel drop rates and island
         membership are uncorrelated hashes of the same seed. *)
      partition_salt = Splitmix.mix (Int64.lognot (Int64.of_int cfg.seed));
      fault_mode = Scenario.fault_injection cfg;
      repair = Hashtbl.create 256;
      repair_timeout =
        Float.max 1.0 (64. *. cfg.hop_delay) +. cfg.refresh_batch_window;
      repair_slack =
        Float.max 1.0 (64. *. cfg.hop_delay) +. cfg.refresh_batch_window;
      batches = Key.Table.create 16;
      justif = Hashtbl.create 1024;
      inv_hop_delay =
        (if cfg.hop_delay > 0. then 1. /. cfg.hop_delay else 0.);
      tracked_updates = 0;
      justified_updates = 0;
      queries_posted = 0;
      replica_events = 0;
      tracer = None;
      metrics = None;
      attribution = None;
      next_span = 0;
      started = Unix.gettimeofday ();
    }
  in
  let stop = Time.of_seconds (Scenario.sim_end cfg) in
  pump_replicas t
    (Cup_workload.Replica_gen.create
       ~rng:(Rng.substream root "replicas")
       ~keys:(Array.length keys) ~replicas_per_key:cfg.replicas_per_key
       ~lifetime:cfg.replica_lifetime ~stop ~death_prob:cfg.death_prob ());
  let key_dist =
    match cfg.key_dist with
    | `Uniform -> Cup_workload.Query_gen.Uniform (Array.length keys)
    | `Zipf s -> Cup_workload.Query_gen.Zipf (Array.length keys, s)
  in
  pump_queries t
    (Cup_workload.Query_gen.create
       ~rng:(Rng.substream root "queries")
       ~rate:cfg.query_rate
       ~start:(Time.of_seconds cfg.query_start)
       ~stop:(Time.of_seconds (cfg.query_start +. cfg.query_duration))
       ~nodes:cfg.nodes ~key_dist);
  (match cfg.faults with
  | None -> ()
  | Some (Scenario.Up_and_down { fraction; reduced; warmup; down; gap }) ->
      pump_faults t
        (Cup_workload.Fault_gen.up_and_down
           ~rng:(Rng.substream root "faults")
           ~nodes:cfg.nodes ~fraction ~reduced
           ~warmup:(cfg.query_start +. warmup)
           ~down ~gap
           ~stop:(Time.of_seconds (cfg.query_start +. cfg.query_duration)))
  | Some (Scenario.Once_down { fraction; reduced; warmup }) ->
      pump_faults t
        (Cup_workload.Fault_gen.once_down
           ~rng:(Rng.substream root "faults")
           ~nodes:cfg.nodes ~fraction ~reduced
           ~warmup:(cfg.query_start +. warmup)));
  t

let aggregate_stats t =
  let total : Node.stats =
    {
      queries_in = 0;
      queries_coalesced = 0;
      cache_answers = 0;
      updates_in = 0;
      updates_forwarded = 0;
      clear_bits_sent = 0;
      clear_bits_in = 0;
      expired_updates_dropped = 0;
    }
  in
  (match t.nodes with
  | Map_nodes nodes ->
      Node_id.Table.iter
        (fun _ node ->
          let s = Node.stats node in
          total.queries_in <- total.queries_in + s.queries_in;
          total.queries_coalesced <-
            total.queries_coalesced + s.queries_coalesced;
          total.cache_answers <- total.cache_answers + s.cache_answers;
          total.updates_in <- total.updates_in + s.updates_in;
          total.updates_forwarded <-
            total.updates_forwarded + s.updates_forwarded;
          total.clear_bits_sent <- total.clear_bits_sent + s.clear_bits_sent;
          total.clear_bits_in <- total.clear_bits_in + s.clear_bits_in;
          total.expired_updates_dropped <-
            total.expired_updates_dropped + s.expired_updates_dropped)
        nodes
  | Flat_nodes store ->
      (* The store aggregates as it goes (one shared record); copy so
         the result owns its stats like the map path's fold does. *)
      let s = Node_store.stats store in
      total.queries_in <- s.queries_in;
      total.queries_coalesced <- s.queries_coalesced;
      total.cache_answers <- s.cache_answers;
      total.updates_in <- s.updates_in;
      total.updates_forwarded <- s.updates_forwarded;
      total.clear_bits_sent <- s.clear_bits_sent;
      total.clear_bits_in <- s.clear_bits_in;
      total.expired_updates_dropped <- s.expired_updates_dropped);
  total

(* Snapshot the run's counters into the attached registry so a
   [--metrics-out] dump carries the whole-run totals next to the
   latency histograms recorded live.  Standalone over (counters,
   registry) so a live HTTP scrape ({!Cup_obs.Serve}) can inject a
   mid-run snapshot into a registry copy using the same code path —
   keeping the scrape byte-identical to the file written at finish. *)
let export_counters c reg =
  let add_counter ?labels name help v =
    Registry.inc ~by:v (Registry.counter reg ~help ?labels name)
  in
  let hop_help = "Overlay hops by message class" in
  add_counter "cup_hops_total" hop_help (Counters.query_hops c)
    ~labels:[ ("class", "query") ];
  add_counter "cup_hops_total" hop_help
    (Counters.first_time_answer_hops c)
    ~labels:[ ("class", "first_time_answer") ];
  add_counter "cup_hops_total" hop_help
    (Counters.first_time_proactive_hops c)
    ~labels:[ ("class", "first_time_proactive") ];
  add_counter "cup_hops_total" hop_help (Counters.refresh_hops c)
    ~labels:[ ("class", "refresh") ];
  add_counter "cup_hops_total" hop_help (Counters.delete_hops c)
    ~labels:[ ("class", "delete") ];
  add_counter "cup_hops_total" hop_help (Counters.append_hops c)
    ~labels:[ ("class", "append") ];
  add_counter "cup_hops_total" hop_help (Counters.clear_bit_hops c)
    ~labels:[ ("class", "clear_bit") ];
  let query_help = "Locally posted queries by outcome" in
  add_counter "cup_queries_total" query_help (Counters.hits c)
    ~labels:[ ("result", "hit") ];
  add_counter "cup_queries_total" query_help (Counters.misses c)
    ~labels:[ ("result", "miss") ];
  add_counter "cup_dropped_updates_total"
    "Updates suppressed by reduced outgoing capacity"
    (Counters.dropped_updates c);
  let fault_help = "Fault-path incidents by kind" in
  add_counter "cup_faults_total" fault_help (Counters.lost_messages c)
    ~labels:[ ("kind", "lost_message") ];
  add_counter "cup_faults_total" fault_help (Counters.retries c)
    ~labels:[ ("kind", "retry") ];
  add_counter "cup_faults_total" fault_help (Counters.repairs c)
    ~labels:[ ("kind", "repair") ];
  add_counter "cup_faults_total" fault_help (Counters.unreachable c)
    ~labels:[ ("kind", "unreachable") ];
  let transport_help = "Transport-level messages by conservation state" in
  add_counter "cup_transport_messages_total" transport_help (Counters.sent c)
    ~labels:[ ("state", "sent") ];
  add_counter "cup_transport_messages_total" transport_help
    (Counters.delivered c)
    ~labels:[ ("state", "delivered") ];
  add_counter "cup_transport_messages_total" transport_help
    (Counters.transport_lost c)
    ~labels:[ ("state", "lost") ]

let finish t =
  Engine.run t.engine;
  let hits, misses = Net.route_cache_stats t.net in
  Counters.set_route_cache_stats t.counters ~hits ~misses;
  (match t.metrics with
  | Some ms -> export_counters t.counters ms.registry
  | None -> ());
  let engine_events = Engine.events_executed t.engine in
  let wallclock = Unix.gettimeofday () -. t.started in
  {
    counters = t.counters;
    node_stats = aggregate_stats t;
    queries_posted = t.queries_posted;
    replica_events = t.replica_events;
    engine_events;
    wallclock;
    events_per_sec =
      (if wallclock > 0. then float_of_int engine_events /. wallclock else 0.);
    tracked_updates = t.tracked_updates;
    justified_updates = t.justified_updates;
    profile = Engine.profile t.engine;
  }

(* {2 Churn (Section 2.9)} *)

(* Re-point every key whose routing owner no longer matches the
   recorded authority, handing the directory over (or dropping it when
   the old authority crashed).  Per-key, because a membership change
   can move different keys to different nodes (e.g. a Pastry join
   takes keys from both ring sides). *)
let reassign_authorities ?(handover = true) t =
  Key.Table.iter
    (fun key auth ->
      let owner = Net.owner_of_key t.net key in
      if not (Node_id.equal owner auth) then begin
        (if b_mem t auth then begin
           let entries = b_handover_local t auth key in
           if handover then b_receive_local t owner key entries
           else b_add_local_key t owner key
         end
         else b_add_local_key t owner key);
        Key.Table.replace t.authority key owner
      end)
    t.authority

let patch_affected t affected =
  List.iter
    (fun id ->
      if Net.is_alive t.net id && b_mem t id then
        b_retain_neighbors t id (Net.neighbors t.net id))
    affected

let node_join t =
  let change = Net.join_random t.net ~rng:t.topo_rng in
  Log.info (fun m ->
      m "t=%a: node %a joined (split %a, %d nodes patched)" Time.pp (now t)
        Node_id.pp change.subject
        (Format.pp_print_option Node_id.pp)
        change.peer
        (List.length change.affected));
  b_register t change.subject;
  reassign_authorities t;
  patch_affected t (change.subject :: change.affected);
  change.subject

let node_leave ?(graceful = true) t id =
  let change = Net.leave t.net id in
  Log.info (fun m ->
      m "t=%a: node %a left %s (taker %a, %d nodes patched)" Time.pp (now t)
        Node_id.pp id
        (if graceful then "gracefully" else "by crashing")
        (Format.pp_print_option Node_id.pp)
        change.peer
        (List.length change.affected));
  (* The departed node will never judge its pending justification
     deadlines — node ids are not reused, so no query can ever arrive
     there again — and nothing else sweeps them: left in place they
     would sit in the table (and the V3 backlog probe) for the rest of
     the run. *)
  let departed = Node_id.to_int id in
  Hashtbl.filter_map_inplace
    (fun packed deadlines ->
      if packed lsr 31 = departed then None else Some deadlines)
    t.justif;
  (* Graceful departure hands directories over; a crash loses them and
     the replicas' keep-alives rebuild the index at the new owner. *)
  reassign_authorities ~handover:graceful t;
  (match change.peer with
  | Some taker ->
      (* Bits that pointed at the departed node now point at the node
         that took over its zone (Section 2.9). *)
      List.iter
        (fun a ->
          if Net.is_alive t.net a then
            b_remap_neighbor t a ~old_id:id ~new_id:taker)
        change.affected
  | None -> ());
  patch_affected t change.affected

(* {2 Crash / recovery injection}

   A crash is [node_leave ~graceful:false] plus losing the victim's
   queued outgoing updates and capacity state; a recovery is a fresh
   replacement join.  The victim is drawn from the dedicated "crashes"
   substream in event order, so the crash schedule is byte-identical
   across schedulers, job counts and cache settings. *)

let crash_random_node t =
  match Net.node_ids t.net with
  | [] | [ _ ] -> () (* never crash the last node *)
  | ids ->
      let victim = List.nth ids (Rng.int t.crash_rng (List.length ids)) in
      if tracing t then
        emit t (Trace.Node_crashed { at = now t; node = victim });
      (* Everything queued at the victim dies with it. *)
      (match Node_id.Table.find_opt t.channels victim with
      | Some ch ->
          Node_id.Table.reset ch.queues;
          Node_id.Table.remove t.channels victim
      | None -> ());
      Node_id.Table.remove t.capacity victim;
      node_leave ~graceful:false t victim

let recover_node t =
  let id = node_join t in
  if tracing t then emit t (Trace.Node_recovered { at = now t; node = id })

let pump_crashes t gen =
  let rec next () =
    match Cup_workload.Crash_gen.next gen with
    | None -> ()
    | Some e ->
        ignore
          (Engine.schedule ~label:"pump.crash" t.engine ~at:e.at (fun _ ->
               (match e.kind with
               | Cup_workload.Crash_gen.Crash -> crash_random_node t
               | Cup_workload.Crash_gen.Recover -> recover_node t);
               next ()))
  in
  next ()

let create cfg =
  let t = create_base cfg in
  (match cfg.Scenario.crashes with
  | None -> ()
  | Some { Scenario.crash_rate; recover_after; warmup } ->
      pump_crashes t
        (Cup_workload.Crash_gen.create ~rng:t.crash_rng ~crash_rate
           ~recover_after
           ~start:(Time.of_seconds (cfg.query_start +. warmup))
           ~stop:(Time.of_seconds (cfg.query_start +. cfg.query_duration))));
  t

let run cfg = finish (create cfg)

type queue_stats = {
  pending_events : int;
  queued_updates : int;
  max_queue_depth : int;
}

module Live = struct
  type t = live

  let create = create
  let engine t = t.engine
  let scenario t = t.cfg
  let network t = t.net

  (* The one shared depth accessor: /health, Timeseries and the
     queue-depth report all read the same fold instead of each
     re-deriving it from the engine and channel tables. *)
  let queue_stats t =
    let queued, deepest =
      Node_id.Table.fold
        (fun _ ch (total, deepest) ->
          let depth =
            Node_id.Table.fold
              (fun _ q acc -> acc + Update_queue.length q)
              ch.queues 0
          in
          (total + depth, Stdlib.max deepest depth))
        t.channels (0, 0)
    in
    {
      pending_events = Engine.pending t.engine;
      queued_updates = queued;
      max_queue_depth = deepest;
    }

  let wallclock_elapsed t = Unix.gettimeofday () -. t.started
  let queries_posted t = t.queries_posted

  (* Walk the memoized sorted membership instead of sorting the
     channel table on every report tick. *)
  let update_queue_depths t =
    List.filter_map
      (fun id ->
        match Node_id.Table.find_opt t.channels id with
        | None -> None
        | Some ch ->
            let depth =
              Node_id.Table.fold
                (fun _ q acc -> acc + Update_queue.length q)
                ch.queues 0
            in
            if depth > 0 then Some (id, depth) else None)
      (Net.node_ids t.net)
  let node t id =
    match t.nodes with
    | Map_nodes nodes -> Node_id.Table.find nodes id
    | Flat_nodes _ ->
        invalid_arg
          "Runner.Live.node: per-node introspection is unavailable under \
           flat_node_state"
  let counters t = t.counters
  let key_of_index t i = t.keys.(i)
  let authority_of t key = Key.Table.find t.authority key
  let post_query t ~node ~key = post_query t ~node ~key
  let set_capacity t id c = set_capacity t id c

  let run_until t at =
    Engine.run ~until:(Time.of_seconds at) t.engine

  let finish = finish
  let node_join = node_join
  let node_leave ?graceful t id = node_leave ?graceful t id
  let set_tracer t tracer = t.tracer <- tracer

  let set_metrics t = function
    | None -> t.metrics <- None
    | Some registry ->
        t.metrics <-
          Some
            {
              registry;
              query_latency =
                Registry.histogram registry
                  ~help:
                    "Per-miss query latency in overlay hops, posting to \
                     local answer"
                  "cup_query_latency_hops";
              repair_latency =
                Registry.histogram registry
                  ~help:
                    "Seconds from a first re-issued interest to the update \
                     flow resuming"
                  ~min_value:1e-3 "cup_repair_seconds";
              level_latency = Array.make 8 None;
            }

  let metrics t =
    match t.metrics with Some ms -> Some ms.registry | None -> None

  let set_attribution t a = t.attribution <- a
  let attribution t = t.attribution

  let justification_backlog t =
    Hashtbl.fold (fun _ deadlines acc -> acc + List.length !deadlines) t.justif 0
end
