(** Simulation scenarios: everything that defines one run.

    The timeline of a run is

    {v
    0 ............ query_start ............ +query_duration ....... +drain
    | replica births (staggered) |  queries posted (Poisson)  | cool-down |
    v}

    Replica refreshes flow for the whole run.  All costs are accounted
    over the whole run, as in the paper (whose simulations ran longer
    than the querying window). *)

type capacity_mode =
  | Bernoulli
      (** a node with capacity [c] forwards each non-first-time update
          with probability [c] — the paper's "only pushing out
          one-fourth the updates it receives" (Section 3.7) *)
  | Token_bucket of float
      (** a node with capacity [c] pushes at most [c *. rate] updates
          per second through the Section 2.8 priority queues; the
          float is the full-capacity [rate] *)

type fault_spec =
  | Up_and_down of {
      fraction : float;
      reduced : float;
      warmup : float;
      down : float;
      gap : float;
    }
  | Once_down of { fraction : float; reduced : float; warmup : float }

type crash_spec = {
  crash_rate : float;
      (** Poisson intensity of node crashes, crashes/second.  Each
          crash removes a uniformly chosen alive node without handing
          its directories over (Section 2.9's unplanned departure). *)
  recover_after : float;
      (** seconds after each crash until a replacement node joins at a
          random position; [0.] means crashed capacity is never
          replaced *)
  warmup : float;
      (** seconds after [query_start] before the first crash can
          occur *)
}

type loss_spec = {
  drop : float;
      (** mean per-message drop probability across directed channels *)
  jitter : float;
      (** per-channel spread in [\[0, 1\]]: each directed (from, to)
          channel drops with probability
          [drop * (1 + jitter * u)] for a deterministic per-channel
          [u] in [\[-1, 1)], clamped to [\[0, 1\]].  [0.] gives every
          channel the same rate. *)
}

type partition_spec = {
  fraction : float;
      (** each node lands on the island side of the cut with this
          probability, decided by a pure hash of (run salt, node id) —
          membership is stable for the whole run and costs no PRNG
          draws *)
  p_start : float;  (** seconds after [query_start] the cut opens *)
  p_duration : float;  (** seconds the cut stays open *)
  symmetric : bool;
      (** [true] drops every message crossing the cut.  [false] — the
          asymmetric shape — drops only messages {e into} the island:
          island nodes keep sending (queries escape, clear-bits
          escape) but never hear back, the classic one-way
          reachability pathology. *)
}

type reorder_spec = {
  r_probability : float;
      (** per-message probability of a delayed (hence potentially
          reordered) delivery, drawn from the dedicated "reorder"
          substream in event order *)
  r_spread : float;
      (** a delayed message arrives after
          [hop_delay * (1 + u * r_spread)], [u] uniform in [\[0, 1)];
          bounded by validation to 32 hop delays so transport-level
          repair timeouts are never mistaken for loss *)
}

type duplicate_spec = {
  d_probability : float;
      (** per-message probability the channel delivers a second copy
          one extra hop delay later.  Each copy is a distinct
          transport message (own sent/delivered accounting, own span),
          so conservation and span soundness hold per copy. *)
}

type t = {
  seed : int;
  nodes : int;
  overlay : Cup_overlay.Net.kind;
      (** which structured overlay CUP runs over (Section 2.2): a 2-d
          CAN with random or grid placement, or a Chord ring *)
  scheduler : Cup_dess.Engine.scheduler option;
      (** event-queue implementation for this run's engine; [None]
          defers to {!Cup_dess.Engine.default_scheduler}.  Either
          choice produces byte-identical results — this knob only
          affects wall-clock speed. *)
  route_cache : bool;
      (** enable the overlay's per-node next-hop cache (default
          [true]); never changes results, only speed *)
  keys_per_node : float;
  total_keys_override : int option;
      (** when set, the exact number of keys in the global index; the
          paper's evaluation workloads exercise a single key's CUP
          tree, i.e. [Some 1] *)
  replicas_per_key : int;
  replica_lifetime : float;  (** seconds; the paper uses 300 *)
  death_prob : float;
      (** probability a replica dies (instead of refreshing) at each
          expiration; a replacement is born to keep the population *)
  node_config : Cup_proto.Node.config;
  hop_delay : float;  (** seconds per overlay hop *)
  query_rate : float;  (** network-wide Poisson rate, queries/second *)
  query_start : float;
  query_duration : float;
  drain : float;  (** extra simulated time after querying stops *)
  key_dist : [ `Uniform | `Zipf of float ];
  capacity_mode : capacity_mode;
  queue_ordering : Cup_proto.Update_queue.ordering;
  faults : fault_spec option;
  crashes : crash_spec option;
      (** node crash/recovery injection; crashes are drawn from the
          deterministic PRNG ("crashes" substream), so the same seed
          and spec produce the same crash schedule on every run *)
  loss : loss_spec option;
      (** per-channel message loss; in-flight queries retransmit with
          capped exponential backoff, lost update flow is healed by
          the justification-deadline repair (see README "Robustness") *)
  partition : partition_spec option;
      (** a network cut for a time window; drops across the cut are
          accounted exactly like wire loss (retry/repair heal the flow
          after the cut closes) *)
  reorder : reorder_spec option;
      (** per-message delivery-delay jitter: messages can overtake
          each other on the wire.  Receivers discard entries staler
          than their cache (see {!Cup_proto.Node}), so reordering
          never regresses freshness. *)
  duplication : duplicate_spec option;
      (** per-message duplicate delivery; protocol handlers tolerate
          redelivery (interest sets and entry upserts are idempotent,
          pending queries coalesce) *)
  refresh_batch_window : float;
      (** Section 3.6's aggregation technique: when [> 0.], the
          authority buffers replica refreshes for a key and propagates
          them as one batched update once the window closes.  [0.]
          sends every replica refresh separately, as in the paper's
          Table 3 runs. *)
  refresh_sample : float;
      (** Section 3.6's suppression technique: the authority
          propagates each replica refresh with this probability
          (its local directory is always updated).  [1.] propagates
          everything. *)
  piggyback_clear_bits : bool;
      (** When [true], clear-bit hops are not charged to the overhead
          (Section 2.7 allows piggy-backing them onto queries or
          updates; the paper's accounting conservatively does not). *)
  flat_node_state : bool;
      (** run the protocol state machine on the flat struct-of-arrays
          tables ({!Cup_proto.Node_store}) instead of one map-backed
          {!Cup_proto.Node} per node.  Byte-identical results either
          way (checked by [test_state_equiv]); the flat backend exists
          for memory footprint at large [nodes].  The live-introspection
          hook {!Runner.Live.node} is unavailable under it. *)
  route_cache_churn_lookups : int;
      (** the overlay's next-hop cache is bypassed for a topology
          generation when the {e previous} generation served fewer than
          this many lookups before being invalidated — refilling a
          cache that churns faster than it is read costs more than
          routing uncached.  [0] never bypasses.  Speed-only knob:
          results are byte-identical regardless. *)
}

val default : t
(** 256 random-placement CAN nodes, 1 key/node, 1 replica/key, lifetime
    300 s, second-chance policy with replica-independent cut-off,
    10 ms hops, 1 query/s for 3000 s after a 300 s start, 600 s drain,
    uniform keys, Bernoulli capacity (all nodes at full), latency-first
    queue ordering, no faults, no refresh batching or sampling. *)

val sim_end : t -> float
(** [query_start + query_duration + drain]. *)

val total_keys : t -> int

val with_policy : t -> Cup_proto.Policy.t -> t
(** Convenience: replace the cut-off policy, keeping the rest. *)

val fault_injection : t -> bool
(** Whether any channel/node fault injection is configured (crashes,
    loss, partition, reordering or duplication); the runner only arms
    its repair machinery (deadline checks, transport retries) when
    this holds, so fault-free scenarios are byte-identical to runs
    before the fault subsystem existed. *)

val validate : t -> (unit, string) result
