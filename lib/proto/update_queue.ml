type ordering = Latency_first | Flash_crowd | Fifo

(* [expiry] caches [earliest_expiry item.update] so comparisons do not
   re-walk the update's entry list.  [tag] is opaque caller context
   (the runner threads trace-span ids through it) returned with the
   update by [pop_tagged]; it never affects ordering. *)
type item = {
  seq : int;
  update : Update.t;
  expiry : Cup_dess.Time.t;
  tag : (int * int * float) option;
}

(* Pairing heap: O(1) push, O(log n) amortized pop, keyed by the
   [priority] order below.  The priority is a total order (ties broken
   by the insertion sequence number), so pop order is exactly the
   sorted order the old list representation maintained eagerly. *)
type heap = Empty | Node of item * heap list

type t = {
  ordering : ordering;
  mutable heap : heap;
  mutable count : int;  (* cached: number of items in [heap] *)
  mutable next_seq : int;
}

let create ordering = { ordering; heap = Empty; count = 0; next_seq = 0 }

let length t = t.count

let is_empty t = t.count = 0

let kind_rank ordering (kind : Update.kind) =
  match (ordering, kind) with
  | (Latency_first | Fifo), First_time -> 0
  | (Latency_first | Fifo), Delete -> 1
  | (Latency_first | Fifo), Refresh -> 2
  | (Latency_first | Fifo), Append -> 3
  | Flash_crowd, First_time -> 0
  | Flash_crowd, Append -> 1
  | Flash_crowd, Delete -> 2
  | Flash_crowd, Refresh -> 3

let earliest_expiry (u : Update.t) =
  List.fold_left
    (fun acc (e : Entry.t) -> Cup_dess.Time.min acc e.expiry)
    Cup_dess.Time.infinity u.entries

(* Pop order: smaller is better. *)
let priority ordering a b =
  match ordering with
  | Fifo -> Int.compare a.seq b.seq
  | Latency_first | Flash_crowd -> (
      match
        Int.compare
          (kind_rank ordering a.update.kind)
          (kind_rank ordering b.update.kind)
      with
      | 0 -> (
          (* Entries about to expire are the most urgent. *)
          match Cup_dess.Time.compare a.expiry b.expiry with
          | 0 -> Int.compare a.seq b.seq
          | c -> c)
      | c -> c)

let merge ordering a b =
  match (a, b) with
  | Empty, h | h, Empty -> h
  | Node (ia, ca), Node (ib, cb) ->
      if priority ordering ia ib < 0 then Node (ia, b :: ca)
      else Node (ib, a :: cb)

let rec merge_pairs ordering = function
  | [] -> Empty
  | [ h ] -> h
  | h1 :: h2 :: rest ->
      merge ordering (merge ordering h1 h2) (merge_pairs ordering rest)

let push ?tag t update =
  let item =
    { seq = t.next_seq; update; expiry = earliest_expiry update; tag }
  in
  t.next_seq <- t.next_seq + 1;
  t.heap <- merge t.ordering t.heap (Node (item, []));
  t.count <- t.count + 1

let rec pop_tagged t ~now =
  match t.heap with
  | Empty -> None
  | Node (best, children) ->
      t.heap <- merge_pairs t.ordering children;
      t.count <- t.count - 1;
      if Update.is_expired best.update ~now then pop_tagged t ~now
      else Some (best.update, best.tag)

let pop t ~now =
  match pop_tagged t ~now with
  | None -> None
  | Some (update, _) -> Some update

let rec heap_items acc = function
  | Empty -> acc
  | Node (item, children) -> List.fold_left heap_items (item :: acc) children

let drop_expired t ~now =
  let live =
    List.filter
      (fun item -> not (Update.is_expired item.update ~now))
      (heap_items [] t.heap)
  in
  let kept = List.length live in
  let dropped = t.count - kept in
  if dropped > 0 then begin
    t.heap <-
      List.fold_left
        (fun h item -> merge t.ordering h (Node (item, [])))
        Empty live;
    t.count <- kept
  end;
  dropped

let peek_all t =
  let rec drain h acc =
    match h with
    | Empty -> List.rev acc
    | Node (item, children) ->
        drain (merge_pairs t.ordering children) (item.update :: acc)
  in
  drain t.heap []
