type t = { mutable data : int array; mutable len : int }

let create () = { data = [||]; len = 0 }
let cardinal t = t.len
let is_empty t = t.len = 0

(* Index of [x], or the insertion point encoded as [-(pos) - 1]. *)
let search t x =
  let lo = ref 0 and hi = ref t.len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.data.(mid) < x then lo := mid + 1 else hi := mid
  done;
  if !lo < t.len && t.data.(!lo) = x then !lo else -(!lo) - 1

let mem t x = search t x >= 0

let add t x =
  let i = search t x in
  if i < 0 then begin
    let pos = -i - 1 in
    let cap = Array.length t.data in
    if t.len = cap then begin
      let grown = Array.make (Stdlib.max 4 (2 * cap)) 0 in
      Array.blit t.data 0 grown 0 t.len;
      t.data <- grown
    end;
    Array.blit t.data pos t.data (pos + 1) (t.len - pos);
    t.data.(pos) <- x;
    t.len <- t.len + 1
  end

let remove t x =
  let i = search t x in
  if i >= 0 then begin
    Array.blit t.data (i + 1) t.data i (t.len - i - 1);
    t.len <- t.len - 1
  end

let clear t = t.len <- 0
let get t i = t.data.(i)

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let to_list t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (t.data.(i) :: acc) in
  go (t.len - 1) []

let remap t ~old_id ~new_id =
  if mem t old_id then begin
    remove t old_id;
    add t new_id
  end
