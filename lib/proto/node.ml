module Key = Cup_overlay.Key
module Node_id = Cup_overlay.Node_id
module Time = Cup_dess.Time

type config = { policy : Policy.t; replica_independent_cutoff : bool }

let default_config =
  { policy = Policy.second_chance; replica_independent_cutoff = true }

type source = From_neighbor of Node_id.t | From_local of Time.t

type action =
  | Send_query of { to_ : Node_id.t; key : Key.t }
  | Send_update of { to_ : Node_id.t; update : Update.t; answering : bool }
  | Send_clear_bit of { to_ : Node_id.t; key : Key.t }
  | Answer_local of {
      key : Key.t;
      entries : Entry.t list;
      posted_at : Time.t list;
      hit : bool;
    }

type stats = {
  mutable queries_in : int;
  mutable queries_coalesced : int;
  mutable cache_answers : int;
  mutable updates_in : int;
  mutable updates_forwarded : int;
  mutable clear_bits_sent : int;
  mutable clear_bits_in : int;
  mutable expired_updates_dropped : int;
}

(* State for one cached (non-local) key: Section 2.3 bookkeeping. *)
type key_state = {
  mutable entries : Entry.t Replica_id.Map.t;
  mutable pending_first : bool;
  interest : Interest.t;
  mutable queries_since_update : int;
  mutable dry_updates : int; (* consecutive trigger updates with 0 queries *)
  mutable distance : int; (* hops from the authority, from update levels *)
  mutable trigger : Replica_id.t option; (* replica-independent cut-off *)
  mutable upstream : Node_id.t option; (* whom we receive updates from *)
  mutable cut_sent : bool; (* clear-bit pushed and not yet re-subscribed *)
  mutable waiters : Time.t list; (* open local client connections *)
  mutable waiting : Node_id.Set.t;
      (* neighbors whose query we absorbed and owe a response to;
         always a subset of the interested set *)
  mutable queried_to : Node_id.t option;
      (* where the pending query instance was pushed; lets churn
         patching un-stick the pending flag if that hop disappears *)
}

(* State for one owned key: the local index directory slice plus the
   interest bits of neighbors that queried for it. *)
type local_state = {
  mutable directory : Entry.t Replica_id.Map.t;
  local_interest : Interest.t;
}

type t = {
  node_id : Node_id.t;
  config : config;
  cache : key_state Key.Table.t;
  local : local_state Key.Table.t;
  stats : stats;
}

let create ~id config =
  {
    node_id = id;
    config;
    cache = Key.Table.create 64;
    local = Key.Table.create 8;
    stats =
      {
        queries_in = 0;
        queries_coalesced = 0;
        cache_answers = 0;
        updates_in = 0;
        updates_forwarded = 0;
        clear_bits_sent = 0;
        clear_bits_in = 0;
        expired_updates_dropped = 0;
      };
  }

let id t = t.node_id
let config t = t.config
let stats t = t.stats

let get_state t key =
  match Key.Table.find_opt t.cache key with
  | Some state -> state
  | None ->
      let state =
        {
          entries = Replica_id.Map.empty;
          pending_first = false;
          interest = Interest.create ();
          queries_since_update = 0;
          dry_updates = 0;
          distance = 1;
          trigger = None;
          upstream = None;
          cut_sent = false;
          waiters = [];
          waiting = Node_id.Set.empty;
          queried_to = None;
        }
      in
      Key.Table.replace t.cache key state;
      state

let prune_expired entries ~now =
  Replica_id.Map.filter (fun _ e -> Entry.is_fresh e ~now) entries

let fresh_entry_list state ~now =
  state.entries <- prune_expired state.entries ~now;
  List.map snd (Replica_id.Map.bindings state.entries)

(* {2 Authority side} *)

let add_local_key t key =
  if not (Key.Table.mem t.local key) then
    Key.Table.replace t.local key
      { directory = Replica_id.Map.empty; local_interest = Interest.create () }

let owns t key = Key.Table.mem t.local key

let local_directory t key =
  match Key.Table.find_opt t.local key with
  | Some ls -> List.map snd (Replica_id.Map.bindings ls.directory)
  | None -> []

(* Originate an update at the authority (distance 0): push to every
   interested neighbor, unless the policy bounds propagation at the
   sender and level 1 already exceeds the bound. *)
let originate t ls (update : Update.t) =
  let allowed =
    match Policy.sender_limit t.config.policy with
    | Some p -> 1 <= p
    | None -> true
  in
  if not allowed then []
  else
    List.map
      (fun neighbor ->
        t.stats.updates_forwarded <- t.stats.updates_forwarded + 1;
        Send_update { to_ = neighbor; update; answering = false })
      (Interest.interested ls.local_interest)

let replica_birth t ~now:_ ~key entry =
  match Key.Table.find_opt t.local key with
  | None -> invalid_arg "Node.replica_birth: key not owned"
  | Some ls ->
      ls.directory <-
        Replica_id.Map.add entry.Entry.replica entry ls.directory;
      originate t ls (Update.append ~key ~entry ~level:1)

let replica_refresh t ~now:_ ~key entry =
  match Key.Table.find_opt t.local key with
  | None -> invalid_arg "Node.replica_refresh: key not owned"
  | Some ls ->
      ls.directory <-
        Replica_id.Map.add entry.Entry.replica entry ls.directory;
      originate t ls (Update.refresh ~key ~entry ~level:1)

let replica_refresh_batch t ~now:_ ~key entries =
  match (Key.Table.find_opt t.local key, entries) with
  | None, _ -> invalid_arg "Node.replica_refresh_batch: key not owned"
  | Some _, [] -> []
  | Some ls, entries ->
      ls.directory <-
        List.fold_left
          (fun dir (e : Entry.t) -> Replica_id.Map.add e.replica e dir)
          ls.directory entries;
      let update =
        { (Update.refresh ~key ~entry:(List.hd entries) ~level:1) with
          Update.entries }
      in
      originate t ls update

let replica_death t ~now:_ ~key replica =
  match Key.Table.find_opt t.local key with
  | None -> invalid_arg "Node.replica_death: key not owned"
  | Some ls -> (
      match Replica_id.Map.find_opt replica ls.directory with
      | None -> []
      | Some entry ->
          ls.directory <- Replica_id.Map.remove replica ls.directory;
          originate t ls (Update.delete ~key ~entry ~level:1))

(* {2 Queries (Section 2.5)} *)

let answer_as_authority t ls ~now key source =
  ls.directory <- prune_expired ls.directory ~now;
  let entries = List.map snd (Replica_id.Map.bindings ls.directory) in
  match source with
  | From_local posted ->
      [ Answer_local { key; entries; posted_at = [ posted ]; hit = true } ]
  | From_neighbor from ->
      Interest.set ls.local_interest from;
      let update = Update.first_time ~key ~entries ~level:1 in
      t.stats.updates_forwarded <- t.stats.updates_forwarded + 1;
      [ Send_update { to_ = from; update; answering = true } ]

let handle_query t ~now ~next_hop source key =
  t.stats.queries_in <- t.stats.queries_in + 1;
  match Key.Table.find_opt t.local key with
  | Some ls ->
      t.stats.cache_answers <- t.stats.cache_answers + 1;
      answer_as_authority t ls ~now key source
  | None when next_hop = None ->
      (* Routing says our zone contains the key but we have no
         directory for it: become its (empty) authority. *)
      add_local_key t key;
      let ls = Key.Table.find t.local key in
      answer_as_authority t ls ~now key source
  | None -> (
      let state = get_state t key in
      (* Bookkeeping common to all three cases. *)
      state.queries_since_update <- state.queries_since_update + 1;
      (match source with
      | From_neighbor from -> Interest.set state.interest from
      | From_local _ -> ());
      match fresh_entry_list state ~now with
      | _ :: _ as entries -> (
          (* Case 1: fresh entries cached — answer immediately. *)
          t.stats.cache_answers <- t.stats.cache_answers + 1;
          match source with
          | From_local posted ->
              [
                Answer_local
                  { key; entries; posted_at = [ posted ]; hit = true };
              ]
          | From_neighbor from ->
              let update =
                Update.first_time ~key ~entries ~level:(state.distance + 1)
              in
              t.stats.updates_forwarded <- t.stats.updates_forwarded + 1;
              [ Send_update { to_ = from; update; answering = true } ])
      | [] ->
          (* Cases 2 and 3: no usable entries.  Queue local clients;
             push one query instance unless one is already pending. *)
          (match source with
          | From_local posted -> state.waiters <- posted :: state.waiters
          | From_neighbor from ->
              state.waiting <- Node_id.Set.add from state.waiting);
          if state.pending_first && Policy.coalesces_queries t.config.policy
          then begin
            t.stats.queries_coalesced <- t.stats.queries_coalesced + 1;
            []
          end
          else begin
            state.pending_first <- true;
            state.cut_sent <- false;
            match next_hop with
            | Some hop ->
                state.queried_to <- Some hop;
                [ Send_query { to_ = hop; key } ]
            | None -> assert false (* handled above *)
          end)

(* {2 Updates (Section 2.6)} *)

(* Apply [u] to the key's cached entry set.  Returns whether the cache
   actually changed: a no-news arrival — a duplicated delivery, or an
   update that travelled a (fault-rewired) interest cycle back around —
   must not be forwarded again, or the cycle amplifies it into an
   update storm. *)
let apply_update state (u : Update.t) =
  match u.kind with
  | First_time ->
      let entries =
        List.fold_left
          (fun m (e : Entry.t) -> Replica_id.Map.add e.replica e m)
          Replica_id.Map.empty u.entries
      in
      let changed =
        not
          (Replica_id.Map.equal
             (fun (a : Entry.t) (b : Entry.t) -> a.expiry = b.expiry)
             state.entries entries)
      in
      state.entries <- entries;
      changed
  | Refresh | Append ->
      (* Last-writer-wins by expiry: an entry at or below the cached
         expiry is no news — discarded, so a reordered or duplicated
         channel can never regress the cache to older data.  In-order
         tree-shaped propagation always carries strictly fresher
         expiries, making the guard a no-op there. *)
      List.fold_left
        (fun changed (e : Entry.t) ->
          match Replica_id.Map.find_opt e.replica state.entries with
          | Some (prev : Entry.t) when Time.(prev.expiry >= e.expiry) ->
              changed
          | Some _ | None ->
              state.entries <- Replica_id.Map.add e.replica e state.entries;
              true)
        false u.entries
  | Delete ->
      List.fold_left
        (fun changed (e : Entry.t) ->
          let present = Replica_id.Map.mem e.replica state.entries in
          state.entries <- Replica_id.Map.remove e.replica state.entries;
          (* A deleted trigger replica cannot trigger decisions any
             more: adopt another cached replica (or none). *)
          if state.trigger = Some e.replica then
            state.trigger <-
              (match Replica_id.Map.min_binding_opt state.entries with
              | Some (r, _) -> Some r
              | None -> None);
          changed || present)
        false u.entries

(* Forward an update to every interested neighbor, respecting a
   sender-side push-level bound.  Answers to waiting neighbors do not
   go through here — this path is purely proactive propagation. *)
let forward_update t state (u : Update.t) =
  let next = Update.forwarded u in
  let allowed =
    match Policy.sender_limit t.config.policy with
    | Some p -> next.Update.level <= p
    | None -> true
  in
  if not allowed then []
  else
    List.map
      (fun neighbor ->
        t.stats.updates_forwarded <- t.stats.updates_forwarded + 1;
        Send_update { to_ = neighbor; update = next; answering = false })
      (Interest.interested state.interest)

(* Whether this arrival triggers the cut-off evaluation (and the
   popularity reset).  Always in naive mode; only for the trigger
   replica (adopting one if none) in replica-independent mode.
   First-time updates always count: they are query responses, not
   per-replica refreshes. *)
let is_trigger_arrival t state (u : Update.t) =
  if not t.config.replica_independent_cutoff then true
  else
    match Update.subject u with
    | None -> true
    | Some replica -> (
        match state.trigger with
        | None ->
            state.trigger <- Some replica;
            true
        | Some r -> Replica_id.equal r replica)

let record_trigger_arrival state =
  if state.queries_since_update = 0 then
    state.dry_updates <- state.dry_updates + 1
  else state.dry_updates <- 0;
  state.queries_since_update <- 0

let handle_update t ~now ~from (u : Update.t) =
  t.stats.updates_in <- t.stats.updates_in + 1;
  let state = get_state t u.key in
  state.upstream <- Some from;
  if Update.is_expired u ~now then begin
    (* Case 3: the update did not arrive in time — drop it. *)
    t.stats.expired_updates_dropped <-
      t.stats.expired_updates_dropped + 1;
    []
  end
  else begin
    state.distance <- u.level;
    if state.pending_first then begin
      (* Case 1: this answers our pending query.  Apply it, answer the
         waiting local clients, and push the response as a first-time
         update to every interested neighbor. *)
      let (_ : bool) = apply_update state u in
      let trigger = is_trigger_arrival t state u in
      if trigger then record_trigger_arrival state;
      let entries = fresh_entry_list state ~now in
      if u.kind = Update.First_time || entries <> [] then begin
        state.pending_first <- false;
        state.queried_to <- None;
        let response =
          Update.forwarded (Update.first_time ~key:u.key ~entries ~level:u.level)
        in
        (* Waiting neighbors always get their answer; other interested
           neighbors get it proactively only when the policy's
           sender-side bound allows pushing one level deeper. *)
        let proactive_ok =
          match Policy.sender_limit t.config.policy with
          | Some p -> response.Update.level <= p
          | None -> true
        in
        let waiting = state.waiting in
        let targets =
          if proactive_ok then
            Node_id.Set.union waiting
              (Node_id.Set.of_list (Interest.interested state.interest))
          else waiting
        in
        state.waiting <- Node_id.Set.empty;
        let forwards =
          List.map
            (fun neighbor ->
              t.stats.updates_forwarded <- t.stats.updates_forwarded + 1;
              Send_update
                {
                  to_ = neighbor;
                  update = response;
                  answering = Node_id.Set.mem neighbor waiting;
                })
            (Node_id.Set.elements targets)
        in
        let answers =
          match state.waiters with
          | [] -> []
          | posted_at ->
              state.waiters <- [];
              [
                Answer_local
                  { key = u.key; entries; posted_at; hit = false };
              ]
        in
        forwards @ answers
      end
      else
        (* e.g. a Delete arrived while pending: keep waiting for the
           actual response. *)
        []
    end
    else begin
      (* Case 2: pending flag clear. *)
      let downstream_interest = Interest.any state.interest in
      let trigger = is_trigger_arrival t state u in
      if downstream_interest then begin
        state.cut_sent <- false;
        if trigger then record_trigger_arrival state;
        (* Forward only updates that carried news.  A no-news arrival
           has already been seen along another path (duplication, or an
           interest graph that a crash rewired into a cycle); pushing
           it onward again is what turns the cycle into an unbounded
           update storm.  Found by fuzzing — see fuzz seeds 36, 267,
           580, 1827: all-out refresh waves ping-ponged forever across
           crash-rewired CAN neighborhoods. *)
        if apply_update state u then forward_update t state u else []
      end
      else if not trigger then begin
        (* Replica-independent mode, non-trigger replica: apply but do
           not touch the popularity measure or the decision. *)
        let (_ : bool) = apply_update state u in
        []
      end
      else begin
        let queries_since_update = state.queries_since_update in
        record_trigger_arrival state;
        match
          Policy.decide t.config.policy ~distance:state.distance
            ~queries_since_update ~dry_updates:state.dry_updates
        with
        | Policy.Keep ->
            state.cut_sent <- false;
            let (_ : bool) = apply_update state u in
            []
        | Policy.Cut ->
            (* An update arriving while our clear-bit is already in
               flight does not warrant another one. *)
            if state.cut_sent then []
            else begin
              state.cut_sent <- true;
              t.stats.clear_bits_sent <- t.stats.clear_bits_sent + 1;
              [ Send_clear_bit { to_ = from; key = u.key } ]
            end
      end
    end
  end

(* {2 Clear-bits (Section 2.7)} *)

let handle_clear_bit t ~now:_ ~from key =
  t.stats.clear_bits_in <- t.stats.clear_bits_in + 1;
  match Key.Table.find_opt t.local key with
  | Some ls ->
      Interest.clear ls.local_interest from;
      []
  | None -> (
      match Key.Table.find_opt t.cache key with
      | None -> []
      | Some state ->
          Interest.clear state.interest from;
          if
            Policy.uses_clear_bits t.config.policy
            && (not (Interest.any state.interest))
            && (not state.pending_first)
            && not state.cut_sent
          then
            let decision =
              Policy.decide t.config.policy ~distance:state.distance
                ~queries_since_update:state.queries_since_update
                ~dry_updates:state.dry_updates
            in
            match (decision, state.upstream) with
            | Policy.Cut, Some up ->
                state.cut_sent <- true;
                t.stats.clear_bits_sent <- t.stats.clear_bits_sent + 1;
                [ Send_clear_bit { to_ = up; key } ]
            | Policy.Cut, None | Policy.Keep, _ -> []
          else [])

(* {2 Churn (Section 2.9)} *)

let remap_neighbor t ~old_id ~new_id =
  Key.Table.iter
    (fun _ state ->
      Interest.remap state.interest ~old_id ~new_id;
      if state.upstream = Some old_id then state.upstream <- Some new_id)
    t.cache;
  Key.Table.iter
    (fun _ ls -> Interest.remap ls.local_interest ~old_id ~new_id)
    t.local

(* Losing the upstream while a query is pending would leave the
   pending flag stuck and suppress re-queries forever; dropping the
   flag lets the next query restart the propagation (the queued local
   waiters are answered when that response arrives). *)
let lose_upstream state =
  state.upstream <- None;
  state.queried_to <- None;
  if state.pending_first then state.pending_first <- false

let drop_neighbor t neighbor =
  Key.Table.iter
    (fun _ state ->
      Interest.clear state.interest neighbor;
      if state.upstream = Some neighbor || state.queried_to = Some neighbor
      then lose_upstream state)
    t.cache;
  Key.Table.iter
    (fun _ ls -> Interest.clear ls.local_interest neighbor)
    t.local

let retain_neighbors t current =
  let keep = Node_id.Set.of_list current in
  let patch interest =
    List.iter
      (fun member ->
        if not (Node_id.Set.mem member keep) then Interest.clear interest member)
      (Interest.interested interest)
  in
  Key.Table.iter
    (fun _ state ->
      patch state.interest;
      match state.upstream with
      | Some up when not (Node_id.Set.mem up keep) -> lose_upstream state
      | Some _ | None -> ())
    t.cache;
  Key.Table.iter (fun _ ls -> patch ls.local_interest) t.local

let handover_local t key =
  match Key.Table.find_opt t.local key with
  | None -> []
  | Some ls ->
      Key.Table.remove t.local key;
      List.map snd (Replica_id.Map.bindings ls.directory)

let receive_local t key entries =
  add_local_key t key;
  let ls = Key.Table.find t.local key in
  ls.directory <-
    List.fold_left
      (fun m (e : Entry.t) ->
        match Replica_id.Map.find_opt e.replica m with
        | Some existing when Time.(existing.Entry.expiry >= e.expiry) -> m
        | Some _ | None -> Replica_id.Map.add e.replica e m)
      ls.directory entries

(* {2 Introspection} *)

let fresh_entries t ~now key =
  match Key.Table.find_opt t.cache key with
  | None -> []
  | Some state -> fresh_entry_list state ~now

let pending_first t key =
  match Key.Table.find_opt t.cache key with
  | None -> false
  | Some state -> state.pending_first

let interested_neighbors t key =
  match Key.Table.find_opt t.cache key with
  | None -> []
  | Some state -> Interest.interested state.interest

let popularity t key =
  match Key.Table.find_opt t.cache key with
  | None -> 0
  | Some state -> state.queries_since_update

let distance_of t key =
  match Key.Table.find_opt t.cache key with
  | None -> None
  | Some state ->
      if state.upstream = None && Replica_id.Map.is_empty state.entries then
        None
      else Some state.distance

let cached_keys t =
  Key.Table.fold (fun key _ acc -> key :: acc) t.cache []
  |> List.sort Key.compare

let owned_keys t =
  Key.Table.fold (fun key _ acc -> key :: acc) t.local []
  |> List.sort Key.compare
