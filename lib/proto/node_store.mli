(** Flat struct-of-arrays node-state tables.

    A drop-in state backend for the CUP protocol: one {!t} holds the
    per-(node, key) protocol state of {e every} node in the overlay in
    pre-allocated, int-indexed parallel arrays, instead of one {!Node.t}
    heap object per node with functional maps inside.  Slots are
    recycled through an intrusive freelist and chained per node, so a
    million-node run costs a few flat arrays rather than millions of
    balanced-tree nodes.

    Every handler mirrors the corresponding {!Node} handler exactly:
    given the same history it returns the same action list, element for
    element, and advances the (aggregated) {!Node.stats} by the same
    amounts.  [test/test_state_equiv.ml] checks this end-to-end against
    whole simulation traces.  The handlers take an explicit [node]
    argument where {!Node}'s take the state object itself; stats are
    aggregated across all nodes in one shared record. *)

type t

val create : ?slots_hint:int -> Node.config -> t
(** [slots_hint] pre-sizes the slot pool (it still grows on demand). *)

val config : t -> Node.config

val stats : t -> Node.stats
(** Aggregate over all nodes — the sum the runner computes by folding
    per-node stats in the map-backed representation. *)

val live_slots : t -> int
(** Currently allocated (node, key) state slots, for capacity
    telemetry. *)

(** {1 Node registry}

    The map-backed runner tracks node liveness by table membership;
    the flat backend tracks it here. *)

val register : t -> Cup_overlay.Node_id.t -> unit
val mem : t -> Cup_overlay.Node_id.t -> bool

(** {1 Protocol handlers (mirror {!Node})} *)

val handle_query :
  t ->
  node:Cup_overlay.Node_id.t ->
  now:Cup_dess.Time.t ->
  next_hop:Cup_overlay.Node_id.t option ->
  Node.source ->
  Cup_overlay.Key.t ->
  Node.action list

val handle_update :
  t ->
  node:Cup_overlay.Node_id.t ->
  now:Cup_dess.Time.t ->
  from:Cup_overlay.Node_id.t ->
  Update.t ->
  Node.action list

val handle_clear_bit :
  t ->
  node:Cup_overlay.Node_id.t ->
  now:Cup_dess.Time.t ->
  from:Cup_overlay.Node_id.t ->
  Cup_overlay.Key.t ->
  Node.action list

(** {1 Authority-side operations} *)

val add_local_key : t -> Cup_overlay.Node_id.t -> Cup_overlay.Key.t -> unit
val owns : t -> Cup_overlay.Node_id.t -> Cup_overlay.Key.t -> bool

val local_directory :
  t -> Cup_overlay.Node_id.t -> Cup_overlay.Key.t -> Entry.t list

val replica_birth :
  t ->
  node:Cup_overlay.Node_id.t ->
  now:Cup_dess.Time.t ->
  key:Cup_overlay.Key.t ->
  Entry.t ->
  Node.action list

val replica_refresh :
  t ->
  node:Cup_overlay.Node_id.t ->
  now:Cup_dess.Time.t ->
  key:Cup_overlay.Key.t ->
  Entry.t ->
  Node.action list

val replica_refresh_batch :
  t ->
  node:Cup_overlay.Node_id.t ->
  now:Cup_dess.Time.t ->
  key:Cup_overlay.Key.t ->
  Entry.t list ->
  Node.action list

val replica_death :
  t ->
  node:Cup_overlay.Node_id.t ->
  now:Cup_dess.Time.t ->
  key:Cup_overlay.Key.t ->
  Replica_id.t ->
  Node.action list

(** {1 Churn support} *)

val remap_neighbor :
  t ->
  node:Cup_overlay.Node_id.t ->
  old_id:Cup_overlay.Node_id.t ->
  new_id:Cup_overlay.Node_id.t ->
  unit

val drop_neighbor :
  t -> node:Cup_overlay.Node_id.t -> Cup_overlay.Node_id.t -> unit

val retain_neighbors :
  t -> node:Cup_overlay.Node_id.t -> Cup_overlay.Node_id.t list -> unit

val handover_local :
  t -> Cup_overlay.Node_id.t -> Cup_overlay.Key.t -> Entry.t list
(** Remove and return the directory entries for an owned key, freeing
    its slot back to the pool. *)

val receive_local :
  t -> Cup_overlay.Node_id.t -> Cup_overlay.Key.t -> Entry.t list -> unit

(** {1 Introspection} *)

val fresh_entries :
  t ->
  node:Cup_overlay.Node_id.t ->
  now:Cup_dess.Time.t ->
  Cup_overlay.Key.t ->
  Entry.t list

val pending_first : t -> Cup_overlay.Node_id.t -> Cup_overlay.Key.t -> bool

val interested_neighbors :
  t -> Cup_overlay.Node_id.t -> Cup_overlay.Key.t -> Cup_overlay.Node_id.t list

val popularity : t -> Cup_overlay.Node_id.t -> Cup_overlay.Key.t -> int
val distance_of : t -> Cup_overlay.Node_id.t -> Cup_overlay.Key.t -> int option
val cached_keys : t -> Cup_overlay.Node_id.t -> Cup_overlay.Key.t list
val owned_keys : t -> Cup_overlay.Node_id.t -> Cup_overlay.Key.t list
