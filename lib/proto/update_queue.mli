(** Outgoing update channels under limited capacity (Section 2.8).

    When a node cannot push updates as fast as they arrive, the
    pending updates wait in a per-neighbor queue.  While queued they
    may be re-ordered to push the highest-impact updates first, and
    expired updates are eliminated.  The queue is naturally bounded:
    every queued update refers to entries with finite lifetimes, so
    even a fully shut-down channel drains by expiration.

    Orderings ([Section 2.8]):
    - [Latency_first]: first-time > delete > refresh > append; among
      refreshes/appends, entries closer to expiry first (they are the
      ones about to cause freshness misses).
    - [Flash_crowd]: appends promoted above deletes and refreshes, to
      spread sudden demand across new replicas faster.
    - [Fifo]: no re-ordering (ablation baseline). *)

type ordering = Latency_first | Flash_crowd | Fifo

type t

val create : ordering -> t

val length : t -> int
(** Number of queued updates, including ones that may have expired
    since they were enqueued. *)

val is_empty : t -> bool

val push : ?tag:int * int * float -> t -> Update.t -> unit
(** [tag] is opaque caller context returned with the update by
    {!pop_tagged} — the simulation runner uses it to carry trace-span
    ids across the queueing delay.  It never affects pop order. *)

val pop : t -> now:Cup_dess.Time.t -> Update.t option
(** Highest-priority update still worth sending; expired updates
    encountered on the way are dropped.  [None] when nothing sendable
    remains. *)

val pop_tagged :
  t -> now:Cup_dess.Time.t -> (Update.t * (int * int * float) option) option
(** Like {!pop} but also returns the [tag] passed at {!push} time. *)

val drop_expired : t -> now:Cup_dess.Time.t -> int
(** Eliminate every expired queued update; returns how many were
    dropped. *)

val peek_all : t -> Update.t list
(** Queue contents in pop order (ignoring expiry), for tests. *)
