module Key = Cup_overlay.Key
module Node_id = Cup_overlay.Node_id
module Time = Cup_dess.Time

(* One pool of (node, key) slots holds every node's protocol state.
   Scalar per-slot fields live in parallel arrays; set-valued fields
   (interest, waiting) are sorted int arrays ({!Intset}); directory /
   cache entries are per-slot (replica, expiry) parallel arrays kept
   sorted by replica.  [s_next] is intrusive: the freelist chain while
   a slot is free, the owning node's slot chain while it is live — the
   tigerbeetle iops/fifo idiom, one int per slot either way.

   A slot is either a cached-key state (Node.key_state) or an owned-key
   authority state (Node.local_state), told apart by [s_local]; both
   kinds share the pool and the per-node chain so churn patching walks
   one list.  Only authority slots are ever freed (handover); cache
   states, as in {!Node}, live for the run.

   Byte-identity contract: every handler returns the exact action list
   the map-backed {!Node} returns for the same history.  The orders
   that matter — [Node_id.Set.elements] (ascending), [Replica_id.Map.
   bindings] (ascending), [Set.union] (sorted merge), [min_binding_opt]
   (smallest) — are reproduced by the sorted-array representations. *)

type t = {
  config : Node.config;
  stats : Node.stats; (* aggregated over all nodes *)
  mutable cap : int;
  mutable hwm : int; (* slots ever initialized; next fresh slot *)
  mutable free_head : int; (* intrusive freelist head, -1 = empty *)
  mutable s_next : int array;
  mutable s_node : int array;
  mutable s_key : int array;
  mutable s_local : Bytes.t; (* 1 = authority (local_state) slot *)
  mutable s_pending : Bytes.t;
  mutable s_cut_sent : Bytes.t;
  mutable s_qsu : int array; (* queries_since_update *)
  mutable s_dry : int array;
  mutable s_dist : int array;
  mutable s_trigger : int array; (* replica id, -1 = None *)
  mutable s_upstream : int array; (* node id, -1 = None *)
  mutable s_queried_to : int array; (* node id, -1 = None *)
  mutable s_interest : Intset.t array;
  mutable s_waiting : Intset.t array;
  mutable s_waiters : Time.t list array;
  mutable e_rep : int array array; (* entries: replica ids, sorted *)
  mutable e_exp : float array array; (* entries: expiry seconds *)
  mutable e_len : int array;
  index : (int, int) Hashtbl.t; (* packed (node, key, kind) -> slot *)
  head : (int, int) Hashtbl.t; (* node -> first slot of its chain *)
  known : (int, unit) Hashtbl.t; (* registered node ids *)
  unset : Intset.t; (* placeholder marking never-initialized set cells *)
}

(* Packed index key: (node lsl 31 | key) lsl 1 | kind-tag.  Node and
   key both fit well below 31 bits (same packing as the runner's justif
   table and the overlay's hop cache); the tag keeps a node's cached
   state and its authority state for the same key — which legally
   coexist across churn — in distinct slots. *)
let pack_cache nid kid = (((nid lsl 31) lor kid) lsl 1)
let pack_local nid kid = (((nid lsl 31) lor kid) lsl 1) lor 1

let create ?(slots_hint = 1024) config =
  let cap = Stdlib.max 16 slots_hint in
  let unset = Intset.create () in
  {
    config;
    stats =
      {
        Node.queries_in = 0;
        queries_coalesced = 0;
        cache_answers = 0;
        updates_in = 0;
        updates_forwarded = 0;
        clear_bits_sent = 0;
        clear_bits_in = 0;
        expired_updates_dropped = 0;
      };
    cap;
    hwm = 0;
    free_head = -1;
    s_next = Array.make cap (-1);
    s_node = Array.make cap 0;
    s_key = Array.make cap 0;
    s_local = Bytes.make cap '\000';
    s_pending = Bytes.make cap '\000';
    s_cut_sent = Bytes.make cap '\000';
    s_qsu = Array.make cap 0;
    s_dry = Array.make cap 0;
    s_dist = Array.make cap 1;
    s_trigger = Array.make cap (-1);
    s_upstream = Array.make cap (-1);
    s_queried_to = Array.make cap (-1);
    s_interest = Array.make cap unset;
    s_waiting = Array.make cap unset;
    s_waiters = Array.make cap [];
    e_rep = Array.make cap [||];
    e_exp = Array.make cap [||];
    e_len = Array.make cap 0;
    index = Hashtbl.create (2 * cap);
    head = Hashtbl.create 256;
    known = Hashtbl.create 256;
    unset;
  }

let config t = t.config
let stats t = t.stats
let register t id = Hashtbl.replace t.known (Node_id.to_int id) ()
let mem t id = Hashtbl.mem t.known (Node_id.to_int id)

let live_slots t =
  let free = ref 0 in
  let s = ref t.free_head in
  while !s >= 0 do
    incr free;
    s := t.s_next.(!s)
  done;
  t.hwm - !free

let grow t =
  let ncap = 2 * t.cap in
  let garr a init =
    let b = Array.make ncap init in
    Array.blit a 0 b 0 t.cap;
    b
  in
  let gbytes a =
    let b = Bytes.make ncap '\000' in
    Bytes.blit a 0 b 0 t.cap;
    b
  in
  t.s_next <- garr t.s_next (-1);
  t.s_node <- garr t.s_node 0;
  t.s_key <- garr t.s_key 0;
  t.s_local <- gbytes t.s_local;
  t.s_pending <- gbytes t.s_pending;
  t.s_cut_sent <- gbytes t.s_cut_sent;
  t.s_qsu <- garr t.s_qsu 0;
  t.s_dry <- garr t.s_dry 0;
  t.s_dist <- garr t.s_dist 1;
  t.s_trigger <- garr t.s_trigger (-1);
  t.s_upstream <- garr t.s_upstream (-1);
  t.s_queried_to <- garr t.s_queried_to (-1);
  t.s_interest <- garr t.s_interest t.unset;
  t.s_waiting <- garr t.s_waiting t.unset;
  t.s_waiters <- garr t.s_waiters [];
  t.e_rep <- garr t.e_rep [||];
  t.e_exp <- garr t.e_exp [||];
  t.e_len <- garr t.e_len 0;
  t.cap <- ncap

let fresh_set t arr slot =
  if arr.(slot) == t.unset then arr.(slot) <- Intset.create ()
  else Intset.clear arr.(slot)

let alloc_slot t ~packed ~nid ~kid ~local =
  let slot =
    match t.free_head with
    | -1 ->
        if t.hwm = t.cap then grow t;
        let s = t.hwm in
        t.hwm <- t.hwm + 1;
        s
    | s ->
        t.free_head <- t.s_next.(s);
        s
  in
  t.s_node.(slot) <- nid;
  t.s_key.(slot) <- kid;
  Bytes.set t.s_local slot (if local then '\001' else '\000');
  Bytes.set t.s_pending slot '\000';
  Bytes.set t.s_cut_sent slot '\000';
  t.s_qsu.(slot) <- 0;
  t.s_dry.(slot) <- 0;
  t.s_dist.(slot) <- 1;
  t.s_trigger.(slot) <- -1;
  t.s_upstream.(slot) <- -1;
  t.s_queried_to.(slot) <- -1;
  fresh_set t t.s_interest slot;
  fresh_set t t.s_waiting slot;
  t.s_waiters.(slot) <- [];
  t.e_len.(slot) <- 0;
  (* Link at the head of the owning node's chain. *)
  t.s_next.(slot) <-
    (match Hashtbl.find_opt t.head nid with Some h -> h | None -> -1);
  Hashtbl.replace t.head nid slot;
  Hashtbl.replace t.index packed slot;
  slot

let unlink_slot t slot =
  let nid = t.s_node.(slot) in
  (match Hashtbl.find_opt t.head nid with
  | Some h when h = slot -> (
      match t.s_next.(slot) with
      | -1 -> Hashtbl.remove t.head nid
      | nxt -> Hashtbl.replace t.head nid nxt)
  | Some h ->
      let prev = ref h in
      while t.s_next.(!prev) <> slot do
        prev := t.s_next.(!prev)
      done;
      t.s_next.(!prev) <- t.s_next.(slot)
  | None -> ())

let free_slot t ~packed slot =
  unlink_slot t slot;
  Hashtbl.remove t.index packed;
  t.s_next.(slot) <- t.free_head;
  t.free_head <- slot

let find_cache t nid kid = Hashtbl.find_opt t.index (pack_cache nid kid)
let find_local t nid kid = Hashtbl.find_opt t.index (pack_local nid kid)

(* [Node.get_state]: look up the cached-key slot, creating it empty. *)
let cache_slot t nid kid =
  let packed = pack_cache nid kid in
  match Hashtbl.find_opt t.index packed with
  | Some s -> s
  | None -> alloc_slot t ~packed ~nid ~kid ~local:false

(* {2 Per-slot entry sets: sorted (replica, expiry) parallel arrays} *)

(* Index of [r] in the slot's replica array, or [-(insertion) - 1]. *)
let ent_search t slot r =
  let rep = t.e_rep.(slot) in
  let lo = ref 0 and hi = ref t.e_len.(slot) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if rep.(mid) < r then lo := mid + 1 else hi := mid
  done;
  if !lo < t.e_len.(slot) && rep.(!lo) = r then !lo else -(!lo) - 1

(* [Replica_id.Map.add]: replace on the same replica, insert sorted
   otherwise. *)
let ent_upsert t slot r exp =
  let i = ent_search t slot r in
  if i >= 0 then t.e_exp.(slot).(i) <- exp
  else begin
    let pos = -i - 1 in
    let len = t.e_len.(slot) in
    if len = Array.length t.e_rep.(slot) then begin
      let ncap = Stdlib.max 4 (2 * len) in
      let nrep = Array.make ncap 0 and nexp = Array.make ncap 0. in
      Array.blit t.e_rep.(slot) 0 nrep 0 len;
      Array.blit t.e_exp.(slot) 0 nexp 0 len;
      t.e_rep.(slot) <- nrep;
      t.e_exp.(slot) <- nexp
    end;
    let rep = t.e_rep.(slot) and expa = t.e_exp.(slot) in
    Array.blit rep pos rep (pos + 1) (len - pos);
    Array.blit expa pos expa (pos + 1) (len - pos);
    rep.(pos) <- r;
    expa.(pos) <- exp;
    t.e_len.(slot) <- len + 1
  end

let ent_remove t slot r =
  let i = ent_search t slot r in
  if i >= 0 then begin
    let len = t.e_len.(slot) in
    let rep = t.e_rep.(slot) and expa = t.e_exp.(slot) in
    Array.blit rep (i + 1) rep i (len - i - 1);
    Array.blit expa (i + 1) expa i (len - i - 1);
    t.e_len.(slot) <- len - 1
  end

(* [prune_expired]: drop entries with [expiry <= now], keeping order. *)
let ent_prune t slot ~now_s =
  let len = t.e_len.(slot) in
  let rep = t.e_rep.(slot) and expa = t.e_exp.(slot) in
  let w = ref 0 in
  for i = 0 to len - 1 do
    if now_s < expa.(i) then begin
      if !w < i then begin
        rep.(!w) <- rep.(i);
        expa.(!w) <- expa.(i)
      end;
      incr w
    end
  done;
  t.e_len.(slot) <- !w

(* Entries as [Entry.t list] in replica order — what
   [Replica_id.Map.bindings] yields. *)
let ent_list t slot =
  let rep = t.e_rep.(slot) and expa = t.e_exp.(slot) in
  let rec go i acc =
    if i < 0 then acc
    else
      go (i - 1)
        (Entry.make
           ~replica:(Replica_id.of_int rep.(i))
           ~expiry:(Time.of_seconds expa.(i))
         :: acc)
  in
  go (t.e_len.(slot) - 1) []

(* [fresh_entry_list]: prune in place, then list what is left. *)
let fresh_ent_list t slot ~now =
  ent_prune t slot ~now_s:(Time.to_seconds now);
  ent_list t slot

(* {2 Authority side} *)

let add_local_key t node key =
  let nid = Node_id.to_int node and kid = Key.to_int key in
  let packed = pack_local nid kid in
  if not (Hashtbl.mem t.index packed) then
    ignore (alloc_slot t ~packed ~nid ~kid ~local:true)

let owns t node key =
  find_local t (Node_id.to_int node) (Key.to_int key) <> None

let local_directory t node key =
  match find_local t (Node_id.to_int node) (Key.to_int key) with
  | Some slot -> ent_list t slot
  | None -> []

let originate t slot (update : Update.t) =
  let allowed =
    match Policy.sender_limit t.config.Node.policy with
    | Some p -> 1 <= p
    | None -> true
  in
  if not allowed then []
  else
    List.map
      (fun neighbor ->
        t.stats.Node.updates_forwarded <- t.stats.Node.updates_forwarded + 1;
        Node.Send_update
          { to_ = Node_id.of_int neighbor; update; answering = false })
      (Intset.to_list t.s_interest.(slot))

let local_slot_exn t node key op =
  match find_local t (Node_id.to_int node) (Key.to_int key) with
  | Some slot -> slot
  | None -> invalid_arg ("Node_store." ^ op ^ ": key not owned")

let replica_birth t ~node ~now:_ ~key (entry : Entry.t) =
  let slot = local_slot_exn t node key "replica_birth" in
  ent_upsert t slot
    (Replica_id.to_int entry.Entry.replica)
    (Time.to_seconds entry.Entry.expiry);
  originate t slot (Update.append ~key ~entry ~level:1)

let replica_refresh t ~node ~now:_ ~key (entry : Entry.t) =
  let slot = local_slot_exn t node key "replica_refresh" in
  ent_upsert t slot
    (Replica_id.to_int entry.Entry.replica)
    (Time.to_seconds entry.Entry.expiry);
  originate t slot (Update.refresh ~key ~entry ~level:1)

let replica_refresh_batch t ~node ~now:_ ~key entries =
  let slot = local_slot_exn t node key "replica_refresh_batch" in
  match entries with
  | [] -> []
  | entries ->
      List.iter
        (fun (e : Entry.t) ->
          ent_upsert t slot
            (Replica_id.to_int e.replica)
            (Time.to_seconds e.expiry))
        entries;
      let update =
        { (Update.refresh ~key ~entry:(List.hd entries) ~level:1) with
          Update.entries }
      in
      originate t slot update

let replica_death t ~node ~now:_ ~key replica =
  let slot = local_slot_exn t node key "replica_death" in
  let r = Replica_id.to_int replica in
  match ent_search t slot r with
  | i when i < 0 -> []
  | i ->
      let entry =
        Entry.make ~replica ~expiry:(Time.of_seconds t.e_exp.(slot).(i))
      in
      ent_remove t slot r;
      originate t slot (Update.delete ~key ~entry ~level:1)

(* {2 Queries (Section 2.5)} *)

let answer_as_authority t slot ~now key source =
  ent_prune t slot ~now_s:(Time.to_seconds now);
  let entries = ent_list t slot in
  match source with
  | Node.From_local posted ->
      [ Node.Answer_local { key; entries; posted_at = [ posted ]; hit = true } ]
  | Node.From_neighbor from ->
      Intset.add t.s_interest.(slot) (Node_id.to_int from);
      let update = Update.first_time ~key ~entries ~level:1 in
      t.stats.Node.updates_forwarded <- t.stats.Node.updates_forwarded + 1;
      [ Node.Send_update { to_ = from; update; answering = true } ]

let handle_query t ~node ~now ~next_hop source key =
  t.stats.Node.queries_in <- t.stats.Node.queries_in + 1;
  let nid = Node_id.to_int node and kid = Key.to_int key in
  match find_local t nid kid with
  | Some slot ->
      t.stats.Node.cache_answers <- t.stats.Node.cache_answers + 1;
      answer_as_authority t slot ~now key source
  | None when next_hop = None ->
      add_local_key t node key;
      let slot = Option.get (find_local t nid kid) in
      answer_as_authority t slot ~now key source
  | None -> (
      let slot = cache_slot t nid kid in
      t.s_qsu.(slot) <- t.s_qsu.(slot) + 1;
      (match source with
      | Node.From_neighbor from ->
          Intset.add t.s_interest.(slot) (Node_id.to_int from)
      | Node.From_local _ -> ());
      match fresh_ent_list t slot ~now with
      | _ :: _ as entries -> (
          t.stats.Node.cache_answers <- t.stats.Node.cache_answers + 1;
          match source with
          | Node.From_local posted ->
              [
                Node.Answer_local
                  { key; entries; posted_at = [ posted ]; hit = true };
              ]
          | Node.From_neighbor from ->
              let update =
                Update.first_time ~key ~entries ~level:(t.s_dist.(slot) + 1)
              in
              t.stats.Node.updates_forwarded <-
                t.stats.Node.updates_forwarded + 1;
              [ Node.Send_update { to_ = from; update; answering = true } ])
      | [] ->
          (match source with
          | Node.From_local posted ->
              t.s_waiters.(slot) <- posted :: t.s_waiters.(slot)
          | Node.From_neighbor from ->
              Intset.add t.s_waiting.(slot) (Node_id.to_int from));
          if
            Bytes.get t.s_pending slot = '\001'
            && Policy.coalesces_queries t.config.Node.policy
          then begin
            t.stats.Node.queries_coalesced <-
              t.stats.Node.queries_coalesced + 1;
            []
          end
          else begin
            Bytes.set t.s_pending slot '\001';
            Bytes.set t.s_cut_sent slot '\000';
            match next_hop with
            | Some hop ->
                t.s_queried_to.(slot) <- Node_id.to_int hop;
                [ Node.Send_query { to_ = hop; key } ]
            | None -> assert false (* handled above *)
          end)

(* {2 Updates (Section 2.6)} *)

(* Mirror of {!Node.apply_update}, including its changed-result
   contract: returns whether the slot's entry set actually changed, so
   the caller can refuse to forward no-news arrivals (the update-storm
   guard). *)
let apply_update t slot (u : Update.t) =
  match u.kind with
  | Update.First_time ->
      let old_len = t.e_len.(slot) in
      let old_rep = Array.sub t.e_rep.(slot) 0 old_len in
      let old_exp = Array.sub t.e_exp.(slot) 0 old_len in
      t.e_len.(slot) <- 0;
      List.iter
        (fun (e : Entry.t) ->
          ent_upsert t slot
            (Replica_id.to_int e.replica)
            (Time.to_seconds e.expiry))
        u.entries;
      let len = t.e_len.(slot) in
      len <> old_len
      ||
      let rep = t.e_rep.(slot) and exp = t.e_exp.(slot) in
      let changed = ref false in
      for i = 0 to len - 1 do
        if rep.(i) <> old_rep.(i) || exp.(i) <> old_exp.(i) then changed := true
      done;
      !changed
  | Update.Refresh | Update.Append ->
      (* Last-writer-wins guard: keep the cached expiry when it is at
         least as fresh — an equal-or-staler entry is no news. *)
      List.fold_left
        (fun changed (e : Entry.t) ->
          let r = Replica_id.to_int e.replica in
          let exp = Time.to_seconds e.expiry in
          match ent_search t slot r with
          | i when i >= 0 ->
              if t.e_exp.(slot).(i) < exp then begin
                t.e_exp.(slot).(i) <- exp;
                true
              end
              else changed
          | _ ->
              ent_upsert t slot r exp;
              true)
        false u.entries
  | Update.Delete ->
      List.fold_left
        (fun changed (e : Entry.t) ->
          let r = Replica_id.to_int e.replica in
          let present = ent_search t slot r >= 0 in
          ent_remove t slot r;
          if t.s_trigger.(slot) = r then
            t.s_trigger.(slot) <-
              (if t.e_len.(slot) > 0 then t.e_rep.(slot).(0) else -1);
          changed || present)
        false u.entries

let forward_update t slot (u : Update.t) =
  let next = Update.forwarded u in
  let allowed =
    match Policy.sender_limit t.config.Node.policy with
    | Some p -> next.Update.level <= p
    | None -> true
  in
  if not allowed then []
  else
    List.map
      (fun neighbor ->
        t.stats.Node.updates_forwarded <- t.stats.Node.updates_forwarded + 1;
        Node.Send_update
          { to_ = Node_id.of_int neighbor; update = next; answering = false })
      (Intset.to_list t.s_interest.(slot))

let is_trigger_arrival t slot (u : Update.t) =
  if not t.config.Node.replica_independent_cutoff then true
  else
    match Update.subject u with
    | None -> true
    | Some replica ->
        let r = Replica_id.to_int replica in
        if t.s_trigger.(slot) = -1 then begin
          t.s_trigger.(slot) <- r;
          true
        end
        else t.s_trigger.(slot) = r

let record_trigger_arrival t slot =
  if t.s_qsu.(slot) = 0 then t.s_dry.(slot) <- t.s_dry.(slot) + 1
  else t.s_dry.(slot) <- 0;
  t.s_qsu.(slot) <- 0

(* The pending-answer fan-out: waiting ∪ interested in ascending node
   order (what [Node_id.Set.elements (Set.union ...)] yields), each
   tagged with waiting-membership for the [answering] flag.  Two-pointer
   merge over the two sorted arrays. *)
let merge_targets waiting interest ~proactive_ok =
  let nw = Intset.cardinal waiting in
  if not proactive_ok then
    List.init nw (fun i -> (Intset.get waiting i, true))
  else begin
    let ni = Intset.cardinal interest in
    let rec go i j acc =
      if i >= nw && j >= ni then List.rev acc
      else if j >= ni || (i < nw && Intset.get waiting i < Intset.get interest j)
      then go (i + 1) j ((Intset.get waiting i, true) :: acc)
      else if i >= nw || Intset.get interest j < Intset.get waiting i then
        go i (j + 1) ((Intset.get interest j, false) :: acc)
      else go (i + 1) (j + 1) ((Intset.get waiting i, true) :: acc)
    in
    go 0 0 []
  end

let handle_update t ~node ~now ~from (u : Update.t) =
  t.stats.Node.updates_in <- t.stats.Node.updates_in + 1;
  let slot = cache_slot t (Node_id.to_int node) (Key.to_int u.key) in
  t.s_upstream.(slot) <- Node_id.to_int from;
  if Update.is_expired u ~now then begin
    t.stats.Node.expired_updates_dropped <-
      t.stats.Node.expired_updates_dropped + 1;
    []
  end
  else begin
    t.s_dist.(slot) <- u.level;
    if Bytes.get t.s_pending slot = '\001' then begin
      let (_ : bool) = apply_update t slot u in
      let trigger = is_trigger_arrival t slot u in
      if trigger then record_trigger_arrival t slot;
      let entries = fresh_ent_list t slot ~now in
      if u.kind = Update.First_time || entries <> [] then begin
        Bytes.set t.s_pending slot '\000';
        t.s_queried_to.(slot) <- -1;
        let response =
          Update.forwarded
            (Update.first_time ~key:u.key ~entries ~level:u.level)
        in
        let proactive_ok =
          match Policy.sender_limit t.config.Node.policy with
          | Some p -> response.Update.level <= p
          | None -> true
        in
        let targets =
          merge_targets t.s_waiting.(slot) t.s_interest.(slot) ~proactive_ok
        in
        Intset.clear t.s_waiting.(slot);
        let forwards =
          List.map
            (fun (neighbor, answering) ->
              t.stats.Node.updates_forwarded <-
                t.stats.Node.updates_forwarded + 1;
              Node.Send_update
                { to_ = Node_id.of_int neighbor; update = response; answering })
            targets
        in
        let answers =
          match t.s_waiters.(slot) with
          | [] -> []
          | posted_at ->
              t.s_waiters.(slot) <- [];
              [
                Node.Answer_local
                  { key = u.key; entries; posted_at; hit = false };
              ]
        in
        forwards @ answers
      end
      else []
    end
    else begin
      let downstream_interest = not (Intset.is_empty t.s_interest.(slot)) in
      let trigger = is_trigger_arrival t slot u in
      if downstream_interest then begin
        Bytes.set t.s_cut_sent slot '\000';
        if trigger then record_trigger_arrival t slot;
        (* Update-storm guard, as in {!Node.handle_update}: no-news
           arrivals are never pushed onward. *)
        if apply_update t slot u then forward_update t slot u else []
      end
      else if not trigger then begin
        let (_ : bool) = apply_update t slot u in
        []
      end
      else begin
        let queries_since_update = t.s_qsu.(slot) in
        record_trigger_arrival t slot;
        match
          Policy.decide t.config.Node.policy ~distance:t.s_dist.(slot)
            ~queries_since_update ~dry_updates:t.s_dry.(slot)
        with
        | Policy.Keep ->
            Bytes.set t.s_cut_sent slot '\000';
            let (_ : bool) = apply_update t slot u in
            []
        | Policy.Cut ->
            if Bytes.get t.s_cut_sent slot = '\001' then []
            else begin
              Bytes.set t.s_cut_sent slot '\001';
              t.stats.Node.clear_bits_sent <- t.stats.Node.clear_bits_sent + 1;
              [ Node.Send_clear_bit { to_ = from; key = u.key } ]
            end
      end
    end
  end

(* {2 Clear-bits (Section 2.7)} *)

let handle_clear_bit t ~node ~now:_ ~from key =
  t.stats.Node.clear_bits_in <- t.stats.Node.clear_bits_in + 1;
  let nid = Node_id.to_int node and kid = Key.to_int key in
  match find_local t nid kid with
  | Some slot ->
      Intset.remove t.s_interest.(slot) (Node_id.to_int from);
      []
  | None -> (
      match find_cache t nid kid with
      | None -> []
      | Some slot ->
          Intset.remove t.s_interest.(slot) (Node_id.to_int from);
          if
            Policy.uses_clear_bits t.config.Node.policy
            && Intset.is_empty t.s_interest.(slot)
            && Bytes.get t.s_pending slot = '\000'
            && Bytes.get t.s_cut_sent slot = '\000'
          then
            let decision =
              Policy.decide t.config.Node.policy ~distance:t.s_dist.(slot)
                ~queries_since_update:t.s_qsu.(slot)
                ~dry_updates:t.s_dry.(slot)
            in
            match (decision, t.s_upstream.(slot)) with
            | Policy.Cut, up when up >= 0 ->
                Bytes.set t.s_cut_sent slot '\001';
                t.stats.Node.clear_bits_sent <-
                  t.stats.Node.clear_bits_sent + 1;
                [ Node.Send_clear_bit { to_ = Node_id.of_int up; key } ]
            | Policy.Cut, _ | Policy.Keep, _ -> []
          else [])

(* {2 Churn (Section 2.9)} *)

let lose_upstream t slot =
  t.s_upstream.(slot) <- -1;
  t.s_queried_to.(slot) <- -1;
  Bytes.set t.s_pending slot '\000'

let iter_node_slots t nid f =
  match Hashtbl.find_opt t.head nid with
  | None -> ()
  | Some h ->
      let s = ref h in
      while !s >= 0 do
        (* Read the link first so [f] may free the slot. *)
        let next = t.s_next.(!s) in
        f !s;
        s := next
      done

let remap_neighbor t ~node ~old_id ~new_id =
  let o = Node_id.to_int old_id and n = Node_id.to_int new_id in
  iter_node_slots t (Node_id.to_int node) (fun slot ->
      Intset.remap t.s_interest.(slot) ~old_id:o ~new_id:n;
      if Bytes.get t.s_local slot = '\000' && t.s_upstream.(slot) = o then
        t.s_upstream.(slot) <- n)

let drop_neighbor t ~node neighbor =
  let nb = Node_id.to_int neighbor in
  iter_node_slots t (Node_id.to_int node) (fun slot ->
      Intset.remove t.s_interest.(slot) nb;
      if
        Bytes.get t.s_local slot = '\000'
        && (t.s_upstream.(slot) = nb || t.s_queried_to.(slot) = nb)
      then lose_upstream t slot)

let retain_neighbors t ~node current =
  let keep = Intset.create () in
  List.iter (fun id -> Intset.add keep (Node_id.to_int id)) current;
  iter_node_slots t (Node_id.to_int node) (fun slot ->
      List.iter
        (fun member ->
          if not (Intset.mem keep member) then
            Intset.remove t.s_interest.(slot) member)
        (Intset.to_list t.s_interest.(slot));
      if Bytes.get t.s_local slot = '\000' then
        let up = t.s_upstream.(slot) in
        if up >= 0 && not (Intset.mem keep up) then lose_upstream t slot)

let handover_local t node key =
  let nid = Node_id.to_int node and kid = Key.to_int key in
  let packed = pack_local nid kid in
  match Hashtbl.find_opt t.index packed with
  | None -> []
  | Some slot ->
      let entries = ent_list t slot in
      free_slot t ~packed slot;
      entries

let receive_local t node key entries =
  add_local_key t node key;
  let slot =
    Option.get (find_local t (Node_id.to_int node) (Key.to_int key))
  in
  List.iter
    (fun (e : Entry.t) ->
      let r = Replica_id.to_int e.replica in
      let exp = Time.to_seconds e.expiry in
      match ent_search t slot r with
      | i when i >= 0 -> if t.e_exp.(slot).(i) < exp then t.e_exp.(slot).(i) <- exp
      | _ -> ent_upsert t slot r exp)
    entries

(* {2 Introspection} *)

let fresh_entries t ~node ~now key =
  match find_cache t (Node_id.to_int node) (Key.to_int key) with
  | None -> []
  | Some slot -> fresh_ent_list t slot ~now

let pending_first t node key =
  match find_cache t (Node_id.to_int node) (Key.to_int key) with
  | None -> false
  | Some slot -> Bytes.get t.s_pending slot = '\001'

let interested_neighbors t node key =
  match find_cache t (Node_id.to_int node) (Key.to_int key) with
  | None -> []
  | Some slot -> List.map Node_id.of_int (Intset.to_list t.s_interest.(slot))

let popularity t node key =
  match find_cache t (Node_id.to_int node) (Key.to_int key) with
  | None -> 0
  | Some slot -> t.s_qsu.(slot)

let distance_of t node key =
  match find_cache t (Node_id.to_int node) (Key.to_int key) with
  | None -> None
  | Some slot ->
      if t.s_upstream.(slot) = -1 && t.e_len.(slot) = 0 then None
      else Some t.s_dist.(slot)

let keys_of t node ~local =
  let acc = ref [] in
  iter_node_slots t (Node_id.to_int node) (fun slot ->
      if Bytes.get t.s_local slot = (if local then '\001' else '\000') then
        acc := Key.of_int t.s_key.(slot) :: !acc);
  List.sort Key.compare !acc

let cached_keys t node = keys_of t node ~local:false
let owned_keys t node = keys_of t node ~local:true
