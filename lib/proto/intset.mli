(** Sorted growable int-array set.

    The flat node-state tables ({!Node_store}) keep interest vectors
    and waiting sets as sorted [int array]s instead of functional
    [Node_id.Set]s: no per-element boxing, no tree rebalancing, and
    iteration is a linear array walk.  Elements are kept in strictly
    increasing order, so {!to_list} and {!iter} enumerate exactly the
    order [Node_id.Set.elements] would — the property the byte-identity
    contract with the map-backed {!Node} rests on.

    Sets here are tiny (a node's overlay degree), so inserts and
    removals shift with [Array.blit] rather than anything clever. *)

type t

val create : unit -> t
val cardinal : t -> int
val is_empty : t -> bool
val mem : t -> int -> bool
val add : t -> int -> unit
(** No-op when already present. *)

val remove : t -> int -> unit
(** No-op when absent. *)

val clear : t -> unit
(** Empty the set, keeping its capacity for reuse. *)

val get : t -> int -> int
(** [get t i] is the [i]-th smallest element.  Undefined outside
    [0 .. cardinal t - 1] (no bounds check beyond the array's own). *)

val iter : (int -> unit) -> t -> unit
(** Ascending order. *)

val to_list : t -> int list
(** Ascending order — element-for-element what
    [Node_id.Set.elements] yields on the same membership. *)

val remap : t -> old_id:int -> new_id:int -> unit
(** If [old_id] is a member, remove it and add [new_id]; otherwise do
    nothing.  Mirrors {!Interest.remap}. *)
