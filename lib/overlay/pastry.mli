(** A Pastry-style prefix-routing overlay (Rowstron & Druschel,
    Middleware 2001) — the third substrate the paper names.

    Nodes carry 64-bit identifiers read as sixteen hexadecimal digits.
    Each node keeps a routing table (for each prefix length, the known
    node matching one more digit of a target) and a leaf set (the [l]
    numerically closest nodes on each side of its identifier).  A key
    is owned by the node numerically closest to its hash; routing
    forwards to a longer-prefix match when one exists and otherwise to
    a numerically closer node, so every hop makes strict progress.

    As with the other substrates, joins and leaves rebuild routing
    state from global knowledge — the simulator stands in for Pastry's
    join gossip, while the routing structure CUP sees is Pastry's. *)

type t

type change = {
  subject : Node_id.t;
  peer : Node_id.t option;
      (** previous/new owner of the subject's key neighborhood *)
  affected : Node_id.t list;
}

val create : ?rng:Cup_prng.Rng.t -> ?leaf_radius:int -> n:int -> unit -> t
(** [leaf_radius] is the leaf-set half-size [l] (default 4).  Without
    [rng], identifiers are evenly spaced.  Requires [n >= 1]. *)

val size : t -> int

val generation : t -> int
(** Membership generation: bumped on every join and leave.  Suitable as
    a cache-invalidation stamp. *)

val node_ids : t -> Node_id.t list
(** Alive node ids in increasing order.  Memoized per {!generation}. *)

val is_alive : t -> Node_id.t -> bool

val ident : t -> Node_id.t -> int64
(** The node's 64-bit Pastry identifier (unsigned). *)

val neighbors : t -> Node_id.t -> Node_id.t list
(** Routing-table entries, leaf set, and reverse edges. *)

val owner_of_key : t -> Key.t -> Node_id.t
(** The alive node numerically closest to the key's hash (ties break
    to the lower identifier). *)

val next_hop : t -> Node_id.t -> Key.t -> Route.hop
(** [Owner] when this node is numerically closest to the key's hash;
    [Forward] per the Pastry rule (longer prefix, else numerically
    closer, else ring-step through the leaf set); [Stuck] — reported,
    not raised — for a dead node or when no known peer is closer. *)

val route : t -> from:Node_id.t -> Key.t -> Route.t
(** Successive hops to the owner; [Unreachable] (never an exception)
    if prefix routing fails to converge. *)

val join_random : t -> rng:Cup_prng.Rng.t -> change
val leave : t -> Node_id.t -> change
val check_invariants : t -> (unit, string) result
