let ucmp = Int64.unsigned_compare

(* Circular numeric distance between two identifiers. *)
let udist a b =
  let d1 = Int64.sub a b and d2 = Int64.sub b a in
  if ucmp d1 d2 <= 0 then d1 else d2

let digits = 16 (* sixteen hex digits of a 64-bit identifier *)

let digit id i = Int64.to_int (Int64.logand (Int64.shift_right_logical id (60 - (4 * i))) 0xFL)

(* Number of equal leading hex digits. *)
let shared_prefix a b =
  let x = Int64.logxor a b in
  if x = 0L then digits
  else
    (* leading zero bits of x, in whole hex digits *)
    let rec count i = if i < digits && digit x i = 0 then count (i + 1) else i in
    count 0

type node = {
  id : Node_id.t;
  ident : int64;
  mutable table : Node_id.t array; (* deduplicated routing-table entries *)
  mutable leaves : Node_id.t array; (* leaf set, both sides *)
  mutable alive : bool;
}

module Pos_map = Map.Make (struct
  type t = int64

  let compare = ucmp
end)

type t = {
  nodes : node Node_id.Table.t;
  mutable ring : Node_id.t Pos_map.t;
  leaf_radius : int;
  mutable next_id : int;
  mutable generation : int; (* bumped on every membership change *)
  mutable ids_gen : int;
  mutable ids_cache : Node_id.t list;
}

type change = {
  subject : Node_id.t;
  peer : Node_id.t option;
  affected : Node_id.t list;
}

let get t id =
  match Node_id.Table.find_opt t.nodes id with
  | Some node when node.alive -> node
  | Some _ | None -> raise Not_found

let size t = Pos_map.cardinal t.ring

let generation t = t.generation

(* Cached on the generation counter: membership changes rarely
   relative to how often callers re-request the sorted listing. *)
let node_ids t =
  if t.ids_gen = t.generation then t.ids_cache
  else begin
    let ids =
      List.sort Node_id.compare (List.map snd (Pos_map.bindings t.ring))
    in
    t.ids_gen <- t.generation;
    t.ids_cache <- ids;
    ids
  end

let is_alive t id =
  match Node_id.Table.find_opt t.nodes id with
  | Some node -> node.alive
  | None -> false

let ident t id = (get t id).ident

let key_ident key = Cup_prng.Splitmix.mix (Int64.of_int (Key.to_int key))

(* The alive node numerically closest to an identifier (ring metric);
   lower id breaks ties deterministically. *)
let closest_to t target =
  let after =
    match Pos_map.find_first_opt (fun q -> ucmp q target >= 0) t.ring with
    | Some binding -> Some binding
    | None -> Pos_map.min_binding_opt t.ring
  in
  let before =
    match Pos_map.find_last_opt (fun q -> ucmp q target < 0) t.ring with
    | Some binding -> Some binding
    | None -> Pos_map.max_binding_opt t.ring
  in
  match (after, before) with
  | Some (pa, na), Some (pb, nb) ->
      let da = udist pa target and db = udist pb target in
      let c = ucmp da db in
      if c < 0 then na
      else if c > 0 then nb
      else if Node_id.compare na nb <= 0 then na
      else nb
  | Some (_, n), None | None, Some (_, n) -> n
  | None, None -> failwith "Pastry.closest_to: empty overlay"

let owner_of_key t key = closest_to t (key_ident key)

(* Rebuild one node's routing table and leaf set from the ring. *)
let rebuild_node t node =
  (* routing table: for each (row, column) the numerically closest
     alive node sharing exactly [row] digits with us and having digit
     [column] at position [row] *)
  let best = Array.make (digits * 16) None in
  Pos_map.iter
    (fun _ oid ->
      if not (Node_id.equal oid node.id) then begin
        let other = get t oid in
        let row = shared_prefix node.ident other.ident in
        if row < digits then begin
          let col = digit other.ident row in
          let slot = (row * 16) + col in
          match best.(slot) with
          | Some (cur, _)
            when ucmp (udist cur node.ident) (udist other.ident node.ident) <= 0
            ->
              ()
          | Some _ | None -> best.(slot) <- Some (other.ident, oid)
        end
      end)
    t.ring;
  let entries = ref Node_id.Set.empty in
  Array.iter
    (function
      | Some (_, oid) -> entries := Node_id.Set.add oid !entries
      | None -> ())
    best;
  node.table <- Array.of_list (Node_id.Set.elements !entries);
  (* leaf set: the l ring-nearest nodes on each side *)
  let ring = Array.of_list (List.map snd (Pos_map.bindings t.ring)) in
  let n = Array.length ring in
  let idx = ref 0 in
  Array.iteri (fun i oid -> if Node_id.equal oid node.id then idx := i) ring;
  let leaves = ref Node_id.Set.empty in
  for d = 1 to Stdlib.min t.leaf_radius ((n - 1) / 2 + 1) do
    leaves := Node_id.Set.add ring.((!idx + d) mod n) !leaves;
    leaves := Node_id.Set.add ring.((!idx - d + (2 * n)) mod n) !leaves
  done;
  node.leaves <-
    Array.of_list (Node_id.Set.elements (Node_id.Set.remove node.id !leaves))

let rebuild_all t = Pos_map.iter (fun _ id -> rebuild_node t (get t id)) t.ring

let known_peers node =
  Node_id.Set.union
    (Node_id.Set.of_list (Array.to_list node.table))
    (Node_id.Set.of_list (Array.to_list node.leaves))

let neighbors t id =
  let node = get t id in
  let out = known_peers node in
  let inbound = ref Node_id.Set.empty in
  Pos_map.iter
    (fun _ oid ->
      if not (Node_id.equal oid id) then begin
        let other = get t oid in
        if Node_id.Set.mem id (known_peers other) then
          inbound := Node_id.Set.add oid !inbound
      end)
    t.ring;
  Node_id.Set.elements (Node_id.Set.remove id (Node_id.Set.union out !inbound))

let next_hop t id key =
  match Node_id.Table.find_opt t.nodes id with
  | None -> Route.Stuck Route.Dead_node
  | Some node when not node.alive -> Route.Stuck Route.Dead_node
  | Some node ->
  let target = key_ident key in
  let owner = closest_to t target in
  if Node_id.equal owner id then Route.Owner
  else begin
    let peers = known_peers node in
    if Node_id.Set.mem owner peers then
      (* leaf-set endgame (and any-table shortcut): deliver straight
         to the numerically closest node *)
      Route.Forward owner
    else begin
      let my_prefix = shared_prefix node.ident target in
      let my_dist = udist node.ident target in
      (* Pastry rule: prefer a strictly longer prefix match; otherwise
         any known node at least as good in prefix and strictly closer
         numerically. *)
      let best = ref None in
      Node_id.Set.iter
        (fun oid ->
          let other = get t oid in
          let p = shared_prefix other.ident target in
          let d = udist other.ident target in
          let better_than_me =
            p > my_prefix || (p >= my_prefix && ucmp d my_dist < 0)
          in
          if better_than_me then
            match !best with
            | Some (bp, bd, _) when bp > p || (bp = p && ucmp bd d <= 0) -> ()
            | Some _ | None -> best := Some (p, d, oid))
        peers;
      match !best with
      | Some (_, _, oid) -> Route.Forward oid
      | None ->
          (* last resort: step along the ring toward the target; the
             leaf set always contains both ring neighbors, and ring
             distance to the owner strictly shrinks *)
          let toward = ref None in
          Node_id.Set.iter
            (fun oid ->
              let d = udist (get t oid).ident target in
              if ucmp d my_dist < 0 then
                match !toward with
                | Some (bd, _) when ucmp bd d <= 0 -> ()
                | Some _ | None -> toward := Some (d, oid))
            peers;
          (match !toward with
          | Some (_, oid) -> Route.Forward oid
          | None -> Route.Stuck Route.No_progress)
    end
  end

let route t ~from key =
  Route.walk ~limit:(digits + size t)
    ~next_hop:(fun current -> next_hop t current key)
    from

let neighbor_snapshot t = List.map (fun id -> (id, neighbors t id)) (node_ids t)

let diff_affected before after =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (id, ns) -> Hashtbl.replace tbl id ns) before;
  List.filter_map
    (fun (id, ns) ->
      match Hashtbl.find_opt tbl id with
      | Some old when old = ns -> None
      | Some _ | None -> Some id)
    after

let fresh_node t ident =
  let id = Node_id.of_int t.next_id in
  t.next_id <- t.next_id + 1;
  let node = { id; ident; table = [||]; leaves = [||]; alive = true } in
  Node_id.Table.replace t.nodes id node;
  t.ring <- Pos_map.add ident id t.ring;
  t.generation <- t.generation + 1;
  node

let join_at t ident =
  if Pos_map.mem ident t.ring then invalid_arg "Pastry: identifier collision";
  let before = neighbor_snapshot t in
  let peer = if Pos_map.is_empty t.ring then None else Some (closest_to t ident) in
  let node = fresh_node t ident in
  rebuild_all t;
  let affected =
    List.filter
      (fun id -> not (Node_id.equal id node.id))
      (diff_affected before (neighbor_snapshot t))
  in
  { subject = node.id; peer; affected }

let join_random t ~rng =
  let rec fresh () =
    let ident = Cup_prng.Rng.int64 rng in
    if Pos_map.mem ident t.ring then fresh () else ident
  in
  join_at t (fresh ())

let leave t id =
  let node =
    try get t id
    with Not_found -> invalid_arg "Pastry.leave: unknown or dead node"
  in
  if size t = 1 then invalid_arg "Pastry.leave: cannot remove last node";
  let before = neighbor_snapshot t in
  node.alive <- false;
  t.ring <- Pos_map.remove node.ident t.ring;
  t.generation <- t.generation + 1;
  let taker = closest_to t node.ident in
  rebuild_all t;
  let affected =
    List.filter
      (fun a -> not (Node_id.equal a id))
      (diff_affected before (neighbor_snapshot t))
  in
  { subject = id; peer = Some taker; affected }

let create ?rng ?(leaf_radius = 4) ~n () =
  if n < 1 then invalid_arg "Pastry.create: n must be >= 1";
  if leaf_radius < 1 then invalid_arg "Pastry.create: leaf_radius must be >= 1";
  let t =
    {
      nodes = Node_id.Table.create (2 * n);
      ring = Pos_map.empty;
      leaf_radius;
      next_id = 0;
      generation = 0;
      ids_gen = -1;
      ids_cache = [];
    }
  in
  (match rng with
  | Some rng ->
      for _ = 1 to n do
        let rec fresh () =
          let ident = Cup_prng.Rng.int64 rng in
          if Pos_map.mem ident t.ring then fresh () else ident
        in
        ignore (fresh_node t (fresh ()))
      done
  | None ->
      let step = Int64.unsigned_div (-1L) (Int64.of_int n) in
      for i = 0 to n - 1 do
        ignore (fresh_node t (Int64.mul step (Int64.of_int i)))
      done);
  rebuild_all t;
  t

let check_invariants t =
  let ( let* ) = Result.bind in
  let* () = if size t >= 1 then Ok () else Error "empty overlay" in
  let ids = node_ids t in
  List.fold_left
    (fun acc id ->
      let* () = acc in
      let node = get t id in
      (* the leaf set is exactly the l ring neighbors on each side *)
      let ring = Array.of_list (List.map snd (Pos_map.bindings t.ring)) in
      let n = Array.length ring in
      let idx = ref 0 in
      Array.iteri (fun i oid -> if Node_id.equal oid id then idx := i) ring;
      let expected = ref Node_id.Set.empty in
      for d = 1 to Stdlib.min t.leaf_radius ((n - 1) / 2 + 1) do
        expected := Node_id.Set.add ring.((!idx + d) mod n) !expected;
        expected := Node_id.Set.add ring.((!idx - d + (2 * n)) mod n) !expected
      done;
      let expected = Node_id.Set.remove id !expected in
      let leaves = Node_id.Set.of_list (Array.to_list node.leaves) in
      if not (Node_id.Set.equal leaves expected) then
        Error (Format.asprintf "%a: leaf set out of sync" Node_id.pp id)
      else
        (* routing from this node reaches the owner of a probe key *)
        let key = Key.of_int (Node_id.to_int id * 7) in
        let owner = owner_of_key t key in
        match route t ~from:id key with
        | Route.Unreachable { reason; _ } ->
            Error
              (Format.asprintf "%a: route unreachable (%a)" Node_id.pp id
                 Route.pp_reason reason)
        | Route.Delivered { hops; _ } -> (
            match List.rev hops with
            | [] when Node_id.equal id owner -> Ok ()
            | last :: _ when Node_id.equal last owner -> Ok ()
            | _ -> Error (Format.asprintf "%a: route misses owner" Node_id.pp id)))
    (Ok ()) ids
