(** The "bare-bones" CAN overlay.

    Nodes own rectangular zones that tile the 2-d unit torus.  A node
    normally owns one zone; after absorbing a departed neighbor's zone
    it may temporarily own several, exactly as in the CAN takeover
    rule.  Two nodes are neighbors when any of their zones abut on the
    torus.  Routing toward a point is greedy: forward to the neighbor
    whose region is closest to the point, stopping at the node whose
    region contains it.

    All mutation goes through {!join_random}, {!join_at} and {!leave},
    which return the set of nodes whose neighbor sets changed so the
    protocol layer can patch its per-neighbor bookkeeping (interest
    bit vectors, Section 2.9 of the paper). *)

type t

type change = {
  subject : Node_id.t;  (** the node that joined or left *)
  peer : Node_id.t option;
      (** on join: the node whose zone was split; on leave: the node
          that took over the zones (if any) *)
  affected : Node_id.t list;
      (** alive nodes whose neighbor set changed, including [peer] *)
}

val create : ?rng:Cup_prng.Rng.t -> n:int -> placement:[ `Random | `Grid ] -> unit -> t
(** [create ~n ~placement ()] bootstraps an overlay of [n] nodes.
    [`Random] joins each node at a uniformly random point (requires
    [rng]); [`Grid] repeatedly splits the largest zone, producing a
    regular grid when [n] is a power of two.  Requires [n >= 1]. *)

val size : t -> int
(** Number of alive nodes. *)

val generation : t -> int
(** Membership generation: bumped on every join and leave.  Suitable as
    a cache-invalidation stamp for anything derived from the current
    membership or neighbor structure. *)

val node_ids : t -> Node_id.t list
(** Alive node ids in increasing order.  Memoized per {!generation}. *)

val is_alive : t -> Node_id.t -> bool

val neighbors : t -> Node_id.t -> Node_id.t list
(** Neighbor ids in increasing order.  Raises [Not_found] if the node
    is dead or unknown. *)

val zones_of : t -> Node_id.t -> Zone.t list

val owner_of_point : t -> Point.t -> Node_id.t
(** The alive node whose region contains the point. *)

val owner_of_key : t -> Key.t -> Node_id.t
(** [owner_of_point] of the key's hash — the key's authority node. *)

val next_hop : t -> Node_id.t -> Point.t -> Route.hop
(** [next_hop t n p] is [Owner] when [n]'s region contains [p],
    otherwise [Forward] to the neighbor whose region is closest to [p]
    (ties broken by lowest id).  [Stuck Dead_node] for a dead or
    unknown [n]; [Stuck No_progress] when [n] has no neighbors —
    impossible while the tiling invariant holds, but reported as data
    rather than raised so fault injection cannot abort a run. *)

val route : t -> from:Node_id.t -> Point.t -> Route.t
(** [Delivered hops]: successive hops from [from] (exclusive) to the
    owner of the point (inclusive); [Delivered \[\]] when [from] is the
    owner.  [Unreachable] when greedy forwarding fails to converge
    (dead origin, no progress, or step budget exhausted) — never
    raises. *)

val join_random : t -> rng:Cup_prng.Rng.t -> change
(** A new node joins at a uniformly random point: the zone containing
    the point splits, the new node takes the half containing it. *)

val join_at : t -> Point.t -> change
(** As {!join_random} with an explicit point. *)

val leave : t -> Node_id.t -> change
(** Graceful departure: the neighbor owning the smallest region takes
    over the departing node's zones.  Raises [Invalid_argument] when
    asked to remove the last node or a dead node. *)

val check_invariants : t -> (unit, string) result
(** Full O(n^2) consistency check: zones tile the torus (volumes sum
    to 1), neighbor sets are symmetric and match geometric adjacency.
    For tests. *)
