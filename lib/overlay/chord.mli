(** A Chord ring substrate (Stoica et al., SIGCOMM 2001).

    The paper notes CUP "can be used in the context of any of these
    systems" — CAN, Chord, Pastry, Tapestry.  This module provides the
    Chord instantiation: nodes sit at positions on a 64-bit identifier
    ring, a key is owned by the successor of its hash, and greedy
    routing forwards through finger tables (the [i]-th finger is the
    successor of [position + 2^i]).

    Like the CAN substrate, this is a simulator component: joins and
    leaves rebuild routing state from global knowledge instead of
    running Chord's stabilization gossip — the routing structure is
    exactly Chord's, which is what CUP's behaviour depends on.

    The neighbor relation reported to the protocol layer is
    symmetric: a node's neighbors are its fingers and predecessor plus
    every node pointing a finger at it, so interest bit vectors can be
    patched under churn exactly as in Section 2.9. *)

type t

type change = {
  subject : Node_id.t;  (** the node that joined or left *)
  peer : Node_id.t option;
      (** on join: the previous owner of the subject's key range; on
          leave: the successor that takes the departed range over *)
  affected : Node_id.t list;
      (** alive nodes whose neighbor set changed *)
}

val create : ?rng:Cup_prng.Rng.t -> n:int -> unit -> t
(** [create ~n ()] builds an [n]-node ring.  With [rng], positions are
    uniform random; without, they are evenly spaced (the deterministic
    analogue of the CAN grid placement).  Requires [n >= 1]. *)

val size : t -> int

val generation : t -> int
(** Membership generation: bumped on every join and leave.  Suitable as
    a cache-invalidation stamp. *)

val node_ids : t -> Node_id.t list
(** Alive node ids in increasing order.  Memoized per {!generation}. *)

val is_alive : t -> Node_id.t -> bool

val position : t -> Node_id.t -> int64
(** The node's ring identifier (unsigned). *)

val successor : t -> Node_id.t -> Node_id.t
(** Next alive node clockwise ([t] itself when alone). *)

val predecessor : t -> Node_id.t -> Node_id.t

val neighbors : t -> Node_id.t -> Node_id.t list
(** Fingers, predecessor, and reverse fingers; increasing id order. *)

val owner_of_key : t -> Key.t -> Node_id.t
(** The successor of the key's ring hash. *)

val next_hop : t -> Node_id.t -> Key.t -> Route.hop
(** [Owner] when the node owns the key; otherwise [Forward] to the
    closest preceding finger (falling back to the successor), as in
    Chord's greedy lookup.  [Stuck Dead_node] for a dead or unknown
    node. *)

val route : t -> from:Node_id.t -> Key.t -> Route.t
(** Successive hops to the owner; [Unreachable] (never an exception)
    if lookup fails to converge. *)

val join_random : t -> rng:Cup_prng.Rng.t -> change
val leave : t -> Node_id.t -> change
(** Raises [Invalid_argument] for the last node or a dead node. *)

val check_invariants : t -> (unit, string) result
(** Ring ordering, finger correctness against the definition, neighbor
    symmetry, ownership partition. *)
