(* Neighbor bookkeeping: each node keeps its neighbors as a
   [Node_id]-keyed map from id to the neighbor's node record.  The map
   only ever contains alive nodes ([leave] removes the departing node
   from every neighbor's map), so the routing hot path — [next_hop]
   folds over the current node's neighbors once per hop — touches no
   hashtable and performs no per-neighbor [get].  Key order of the map
   preserves the old [Node_id.Set] iteration order, so routing
   tie-breaks and all published neighbor lists are unchanged. *)

type node = {
  id : Node_id.t;
  mutable zones : Zone.t list;
  mutable neighbors : node Node_id.Map.t;
  mutable alive : bool;
}

type t = {
  nodes : node Node_id.Table.t;
  mutable alive_count : int;
  mutable next_id : int;
  mutable generation : int; (* bumped on every membership change *)
  mutable ids_gen : int; (* generation [ids_cache] was computed at *)
  mutable ids_cache : Node_id.t list;
}

type change = {
  subject : Node_id.t;
  peer : Node_id.t option;
  affected : Node_id.t list;
}

let get t id =
  match Node_id.Table.find_opt t.nodes id with
  | Some node when node.alive -> node
  | Some _ | None -> raise Not_found

let size t = t.alive_count

let generation t = t.generation

(* The sorted membership is re-requested constantly (reports, bench
   setup, invariant checks) but only changes on join/leave: cache it on
   the generation counter. *)
let node_ids t =
  if t.ids_gen = t.generation then t.ids_cache
  else begin
    let ids =
      Node_id.Table.fold
        (fun id node acc -> if node.alive then id :: acc else acc)
        t.nodes []
      |> List.sort Node_id.compare
    in
    t.ids_gen <- t.generation;
    t.ids_cache <- ids;
    ids
  end

let is_alive t id =
  match Node_id.Table.find_opt t.nodes id with
  | Some node -> node.alive
  | None -> false

let neighbors t id =
  List.rev
    (Node_id.Map.fold (fun nid _ acc -> nid :: acc) (get t id).neighbors [])

let neighbor_nodes node =
  List.rev (Node_id.Map.fold (fun _ n acc -> n :: acc) node.neighbors [])

let zones_of t id = (get t id).zones

let nodes_adjacent a b =
  List.exists
    (fun za -> List.exists (fun zb -> Zone.adjacent za zb) b.zones)
    a.zones

let region_distance node p =
  List.fold_left
    (fun acc z -> Float.min acc (Zone.distance_to_point z p))
    Float.infinity node.zones

let region_contains node p = List.exists (fun z -> Zone.contains z p) node.zones

let owner_of_point t p =
  let found =
    Node_id.Table.fold
      (fun id node acc ->
        if node.alive && region_contains node p then
          match acc with
          | Some best when Node_id.compare best id <= 0 -> acc
          | Some _ | None -> Some id
        else acc)
      t.nodes None
  in
  match found with
  | Some id -> id
  | None -> failwith "Topology.owner_of_point: space not covered"

let owner_of_key t k = owner_of_point t (Key.to_point k)

let next_hop t id p =
  match Node_id.Table.find_opt t.nodes id with
  | None -> Route.Stuck Route.Dead_node
  | Some node when not node.alive -> Route.Stuck Route.Dead_node
  | Some node ->
      if region_contains node p then Route.Owner
      else
        let best =
          Node_id.Map.fold
            (fun nid nnode acc ->
              let d = region_distance nnode p in
              match acc with
              | Some (_, best_d) when best_d < d -> acc
              | Some (best_id, best_d)
                when best_d = d && Node_id.compare best_id nid <= 0 ->
                  acc
              | Some _ | None -> Some (nid, d))
            node.neighbors None
        in
        (match best with
        | Some (nid, _) -> Route.Forward nid
        | None -> Route.Stuck Route.No_progress)

let route t ~from p =
  Route.walk ~limit:((4 * t.alive_count) + 64)
    ~next_hop:(fun current -> next_hop t current p)
    from

(* Recompute the neighbor relation between [node] and every candidate,
   fixing both directions.  Returns candidates whose sets changed. *)
let refresh_edges node candidates =
  List.filter
    (fun cand ->
      if not cand.alive || Node_id.equal cand.id node.id then false
      else begin
        let linked = nodes_adjacent node cand in
        let had = Node_id.Map.mem cand.id node.neighbors in
        if linked && not had then begin
          node.neighbors <- Node_id.Map.add cand.id cand node.neighbors;
          cand.neighbors <- Node_id.Map.add node.id node cand.neighbors;
          true
        end
        else if (not linked) && had then begin
          node.neighbors <- Node_id.Map.remove cand.id node.neighbors;
          cand.neighbors <- Node_id.Map.remove node.id cand.neighbors;
          true
        end
        else false
      end)
    candidates

let fresh_node t zones =
  let id = Node_id.of_int t.next_id in
  t.next_id <- t.next_id + 1;
  let node = { id; zones; neighbors = Node_id.Map.empty; alive = true } in
  Node_id.Table.replace t.nodes id node;
  t.alive_count <- t.alive_count + 1;
  t.generation <- t.generation + 1;
  node

let join_at t p =
  if t.alive_count = 0 then begin
    let node = fresh_node t [ Zone.unit ] in
    { subject = node.id; peer = None; affected = [] }
  end
  else begin
    let owner = get t (owner_of_point t p) in
    let zone =
      match List.find_opt (fun z -> Zone.contains z p) owner.zones with
      | Some z -> z
      | None -> assert false
    in
    let low, high = Zone.split zone in
    let keep, give = if Zone.contains low p then (high, low) else (low, high) in
    owner.zones <-
      keep :: List.filter (fun z -> not (Zone.equal z zone)) owner.zones;
    let node = fresh_node t [ give ] in
    (* Only previous neighbors of the split node (and the split node
       itself) can gain or lose an edge. *)
    let candidates = owner :: neighbor_nodes owner in
    let touched_new = refresh_edges node candidates in
    let touched_owner = refresh_edges owner candidates in
    let affected =
      List.sort_uniq Node_id.compare
        (owner.id
        :: List.map (fun n -> n.id) touched_new
        @ List.map (fun n -> n.id) touched_owner)
    in
    { subject = node.id; peer = Some owner.id; affected }
  end

let join_random t ~rng =
  let p =
    Point.make ~x:(Cup_prng.Rng.float rng) ~y:(Cup_prng.Rng.float rng)
  in
  join_at t p

let total_volume node =
  List.fold_left (fun acc z -> acc +. Zone.volume z) 0. node.zones

let leave t id =
  let node =
    try get t id
    with Not_found -> invalid_arg "Topology.leave: unknown or dead node"
  in
  if t.alive_count = 1 then invalid_arg "Topology.leave: cannot remove last node";
  let departing_neighbors = neighbor_nodes node in
  (* CAN takeover rule: the neighbor with the smallest region absorbs
     the departing zones (lowest id on ties, for determinism).  A
     single fold instead of sorting the whole neighbor list. *)
  let taker =
    match
      List.fold_left
        (fun acc n ->
          let v = total_volume n in
          match acc with
          | Some (_, best_v) when best_v < v -> acc
          | Some (best, best_v)
            when best_v = v && Node_id.compare best.id n.id <= 0 ->
              acc
          | Some _ | None -> Some (n, v))
        None departing_neighbors
    with
    | None -> assert false (* alive > 1 implies at least one neighbor *)
    | Some (taker, _) -> taker
  in
  node.alive <- false;
  t.alive_count <- t.alive_count - 1;
  t.generation <- t.generation + 1;
  (* Drop the departed node from every neighbor's map. *)
  List.iter
    (fun n -> n.neighbors <- Node_id.Map.remove id n.neighbors)
    departing_neighbors;
  taker.zones <- node.zones @ taker.zones;
  let candidates =
    List.filter (fun n -> not (Node_id.equal n.id taker.id)) departing_neighbors
    @ neighbor_nodes taker
  in
  let touched = refresh_edges taker candidates in
  let affected =
    List.sort_uniq Node_id.compare
      (taker.id
      :: List.map (fun n -> n.id) departing_neighbors
      @ List.map (fun n -> n.id) touched)
  in
  { subject = id; peer = Some taker.id; affected }

let largest_zone_owner t =
  let best =
    Node_id.Table.fold
      (fun _ node acc ->
        if not node.alive then acc
        else
          let v =
            List.fold_left (fun m z -> Float.max m (Zone.volume z)) 0.
              node.zones
          in
          match acc with
          | Some (_, best_v) when best_v > v -> acc
          | Some (best_node, best_v)
            when best_v = v && Node_id.compare best_node.id node.id <= 0 ->
              acc
          | Some _ | None -> Some (node, v))
      t.nodes None
  in
  match best with Some (node, _) -> node | None -> assert false

let create ?rng ~n ~placement () =
  if n < 1 then invalid_arg "Topology.create: n must be >= 1";
  let t =
    {
      nodes = Node_id.Table.create (2 * n);
      alive_count = 0;
      next_id = 0;
      generation = 0;
      ids_gen = -1;
      ids_cache = [];
    }
  in
  ignore (join_at t (Point.make ~x:0.5 ~y:0.5));
  for _ = 2 to n do
    match placement with
    | `Random -> (
        match rng with
        | Some rng -> ignore (join_random t ~rng)
        | None -> invalid_arg "Topology.create: `Random needs ~rng")
    | `Grid ->
        (* Split the largest zone: its high half's center is a point
           guaranteed to land in that half after the split. *)
        let owner = largest_zone_owner t in
        let zone =
          match
            List.sort
              (fun a b -> Float.compare (Zone.volume b) (Zone.volume a))
              owner.zones
          with
          | z :: _ -> z
          | [] -> assert false
        in
        let _, high = Zone.split zone in
        ignore (join_at t (Zone.center high))
  done;
  t

let check_invariants t =
  let ( let* ) r f = Result.bind r f in
  let all =
    Node_id.Table.fold
      (fun _ node acc -> if node.alive then node :: acc else acc)
      t.nodes []
  in
  let* () =
    if List.length all = t.alive_count then Ok ()
    else Error "alive count does not match table"
  in
  let volume =
    List.fold_left (fun acc node -> acc +. total_volume node) 0. all
  in
  let* () =
    if Float.abs (volume -. 1.) < 1e-9 then Ok ()
    else Error (Printf.sprintf "zones do not tile the torus: volume %f" volume)
  in
  let check_node node =
    let geometric =
      List.filter
        (fun other ->
          (not (Node_id.equal other.id node.id)) && nodes_adjacent node other)
        all
      |> List.map (fun n -> n.id)
      |> Node_id.Set.of_list
    in
    let recorded =
      Node_id.Map.fold
        (fun nid _ acc -> Node_id.Set.add nid acc)
        node.neighbors Node_id.Set.empty
    in
    if not (Node_id.Set.equal geometric recorded) then
      Error
        (Format.asprintf "node %a: neighbor set out of sync" Node_id.pp node.id)
    else if
      Node_id.Map.exists
        (fun nid nnode ->
          (not nnode.alive)
          || (not (Node_id.Map.mem node.id nnode.neighbors))
          ||
          match Node_id.Table.find_opt t.nodes nid with
          | Some other -> not (other == nnode)
          | None -> true)
        node.neighbors
    then
      Error
        (Format.asprintf "node %a: asymmetric or stale edge" Node_id.pp node.id)
    else Ok ()
  in
  List.fold_left
    (fun acc node ->
      let* () = acc in
      check_node node)
    (Ok ()) all
