type kind = Can of [ `Random | `Grid ] | Chord | Pastry

type impl =
  | Can_net of Topology.t
  | Chord_net of Chord.t
  | Pastry_net of Pastry.t

(* The simulation layer routes the same (node, key) pairs over and
   over — every query for a key walks next_hop from the querying node,
   and the key universe is small.  The overlays answer from static
   routing state that only changes on membership events, so the
   answers are cacheable: [hop_cache] memoizes next_hop keyed by a
   packed (node, key) int and is flushed whenever the underlying
   overlay's generation counter moves (join/leave/churn). *)
type t = {
  impl : impl;
  cache_enabled : bool;
  hop_cache : (int, Route.hop) Hashtbl.t;
  mutable hop_gen : int; (* generation [hop_cache] entries belong to *)
  churn_lookups : int; (* bypass threshold; 0 = never bypass *)
  mutable gen_lookups : int; (* lookups served in the current generation *)
  mutable bypass : bool; (* skip cache maintenance this generation *)
  mutable cache_hits : int;
  mutable cache_misses : int;
}

type change = {
  subject : Node_id.t;
  peer : Node_id.t option;
  affected : Node_id.t list;
}

let create ?rng ?(route_cache = true) ?(churn_lookups = 0) ~kind ~n () =
  let impl =
    match kind with
    | Can placement -> Can_net (Topology.create ?rng ~n ~placement ())
    | Chord -> Chord_net (Chord.create ?rng ~n ())
    | Pastry -> Pastry_net (Pastry.create ?rng ~n ())
  in
  {
    impl;
    cache_enabled = route_cache;
    hop_cache = Hashtbl.create (if route_cache then 4096 else 1);
    hop_gen = -1;
    churn_lookups;
    gen_lookups = 0;
    bypass = false;
    cache_hits = 0;
    cache_misses = 0;
  }

let kind net =
  match net.impl with
  | Can_net _ -> Can `Random
  | Chord_net _ -> Chord
  | Pastry_net _ -> Pastry

let size net =
  match net.impl with
  | Can_net t -> Topology.size t
  | Chord_net c -> Chord.size c
  | Pastry_net p -> Pastry.size p

let generation net =
  match net.impl with
  | Can_net t -> Topology.generation t
  | Chord_net c -> Chord.generation c
  | Pastry_net p -> Pastry.generation p

let route_cache_enabled net = net.cache_enabled

let node_ids net =
  match net.impl with
  | Can_net t -> Topology.node_ids t
  | Chord_net c -> Chord.node_ids c
  | Pastry_net p -> Pastry.node_ids p

let is_alive net id =
  match net.impl with
  | Can_net t -> Topology.is_alive t id
  | Chord_net c -> Chord.is_alive c id
  | Pastry_net p -> Pastry.is_alive p id

let neighbors net id =
  match net.impl with
  | Can_net t -> Topology.neighbors t id
  | Chord_net c -> Chord.neighbors c id
  | Pastry_net p -> Pastry.neighbors p id

let owner_of_key net key =
  match net.impl with
  | Can_net t -> Topology.owner_of_key t key
  | Chord_net c -> Chord.owner_of_key c key
  | Pastry_net p -> Pastry.owner_of_key p key

let next_hop_uncached impl id key =
  match impl with
  | Can_net t -> Topology.next_hop t id (Key.to_point key)
  | Chord_net c -> Chord.next_hop c id key
  | Pastry_net p -> Pastry.next_hop p id key

(* Packed (node, key) cache key: both fit comfortably below 31 bits,
   and an int key avoids the tuple allocation and polymorphic hashing
   a [(int * int)] key would pay on every lookup. *)
let pack_hop_key id key = (Node_id.to_int id lsl 31) lor Key.to_int key

let next_hop net id key =
  if not net.cache_enabled then begin
    net.cache_misses <- net.cache_misses + 1;
    next_hop_uncached net.impl id key
  end
  else begin
    let gen = generation net in
    if gen <> net.hop_gen then begin
      (* Under heavy churn a generation can be invalidated before the
         refill pays for itself.  When the generation that just died
         served fewer lookups than the refill would need to amortize,
         route the next generation uncached instead of rebuilding — and
         if it then survives past the threshold, resume caching. *)
      net.bypass <-
        net.churn_lookups > 0 && net.hop_gen >= 0
        && net.gen_lookups < net.churn_lookups;
      net.gen_lookups <- 0;
      if Hashtbl.length net.hop_cache > 0 then Hashtbl.reset net.hop_cache;
      net.hop_gen <- gen
    end;
    net.gen_lookups <- net.gen_lookups + 1;
    if net.bypass && net.gen_lookups > net.churn_lookups then
      net.bypass <- false;
    if net.bypass then begin
      net.cache_misses <- net.cache_misses + 1;
      next_hop_uncached net.impl id key
    end
    else
      let packed = pack_hop_key id key in
      match Hashtbl.find_opt net.hop_cache packed with
      | Some hop ->
          net.cache_hits <- net.cache_hits + 1;
          hop
      | None ->
          net.cache_misses <- net.cache_misses + 1;
          let hop = next_hop_uncached net.impl id key in
          Hashtbl.add net.hop_cache packed hop;
          hop
  end

let route_cache_stats net = (net.cache_hits, net.cache_misses)

(* Same per-kind step budgets as the underlying [route]s use. *)
let route_limit net =
  match net.impl with
  | Can_net t -> (4 * Topology.size t) + 64
  | Chord_net c -> 128 + Chord.size c
  | Pastry_net p -> 16 + Pastry.size p

let route net ~from key =
  if not net.cache_enabled then begin
    match net.impl with
    | Can_net t -> Topology.route t ~from (Key.to_point key)
    | Chord_net c -> Chord.route c ~from key
    | Pastry_net p -> Pastry.route p ~from key
  end
  else
    (* Walk through the cached next_hop so every hop of every route
       warms — and benefits from — the cache. *)
    Route.walk ~limit:(route_limit net)
      ~next_hop:(fun current -> next_hop net current key)
      from

let of_can_change (c : Topology.change) =
  { subject = c.Topology.subject; peer = c.Topology.peer; affected = c.Topology.affected }

let of_chord_change (c : Chord.change) =
  { subject = c.Chord.subject; peer = c.Chord.peer; affected = c.Chord.affected }

let of_pastry_change (c : Pastry.change) =
  { subject = c.Pastry.subject; peer = c.Pastry.peer; affected = c.Pastry.affected }

let join_random net ~rng =
  match net.impl with
  | Can_net t -> of_can_change (Topology.join_random t ~rng)
  | Chord_net c -> of_chord_change (Chord.join_random c ~rng)
  | Pastry_net p -> of_pastry_change (Pastry.join_random p ~rng)

let leave net id =
  match net.impl with
  | Can_net t -> of_can_change (Topology.leave t id)
  | Chord_net c -> of_chord_change (Chord.leave c id)
  | Pastry_net p -> of_pastry_change (Pastry.leave p id)

let check_invariants net =
  match net.impl with
  | Can_net t -> Topology.check_invariants t
  | Chord_net c -> Chord.check_invariants c
  | Pastry_net p -> Pastry.check_invariants p

let as_can net =
  match net.impl with Can_net t -> Some t | Chord_net _ | Pastry_net _ -> None

let as_chord net =
  match net.impl with Chord_net c -> Some c | Can_net _ | Pastry_net _ -> None

let as_pastry net =
  match net.impl with Pastry_net p -> Some p | Can_net _ | Chord_net _ -> None
