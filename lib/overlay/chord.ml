(* Ring positions are unsigned 64-bit integers; all interval tests use
   unsigned comparison and wrap around zero. *)

let ucmp = Int64.unsigned_compare

(* x in (a, b] on the ring. *)
let in_oc ~a ~b x =
  if ucmp a b < 0 then ucmp a x < 0 && ucmp x b <= 0
  else ucmp a x < 0 || ucmp x b <= 0

(* x in (a, b) on the ring. *)
let in_oo ~a ~b x =
  if ucmp a b < 0 then ucmp a x < 0 && ucmp x b < 0
  else ucmp a x < 0 || ucmp x b < 0

let finger_bits = 64

type node = {
  id : Node_id.t;
  pos : int64;
  mutable fingers : Node_id.t array; (* deduplicated, self excluded *)
  mutable pred : Node_id.t;
  mutable alive : bool;
}

module Pos_map = Map.Make (struct
  type t = int64

  let compare = ucmp
end)

type t = {
  nodes : node Node_id.Table.t;
  mutable ring : Node_id.t Pos_map.t; (* alive nodes by position *)
  mutable next_id : int;
  mutable generation : int; (* bumped on every membership change *)
  mutable ids_gen : int;
  mutable ids_cache : Node_id.t list;
}

type change = {
  subject : Node_id.t;
  peer : Node_id.t option;
  affected : Node_id.t list;
}

let get t id =
  match Node_id.Table.find_opt t.nodes id with
  | Some node when node.alive -> node
  | Some _ | None -> raise Not_found

let size t = Pos_map.cardinal t.ring

let generation t = t.generation

(* Sorting the whole membership on every call is wasted work between
   membership changes; cache on the generation counter. *)
let node_ids t =
  if t.ids_gen = t.generation then t.ids_cache
  else begin
    let ids =
      List.sort Node_id.compare (List.map snd (Pos_map.bindings t.ring))
    in
    t.ids_gen <- t.generation;
    t.ids_cache <- ids;
    ids
  end

let is_alive t id =
  match Node_id.Table.find_opt t.nodes id with
  | Some node -> node.alive
  | None -> false

let position t id = (get t id).pos

(* Successor of a ring position: least node position >= p, wrapping. *)
let successor_of_pos t p =
  match Pos_map.find_first_opt (fun q -> ucmp q p >= 0) t.ring with
  | Some (_, id) -> id
  | None -> snd (Pos_map.min_binding t.ring)

let successor t id =
  let node = get t id in
  successor_of_pos t (Int64.add node.pos 1L)

let predecessor t id = (get t id).pred

let key_pos key = Cup_prng.Splitmix.mix (Int64.of_int (Key.to_int key))

let owner_of_key t key = successor_of_pos t (key_pos key)

(* Rebuild one node's fingers and predecessor from the ring. *)
let rebuild_node t node =
  let fingers = ref Node_id.Set.empty in
  for i = 0 to finger_bits - 1 do
    let target = Int64.add node.pos (Int64.shift_left 1L i) in
    let f = successor_of_pos t target in
    if not (Node_id.equal f node.id) then fingers := Node_id.Set.add f !fingers
  done;
  node.fingers <- Array.of_list (Node_id.Set.elements !fingers);
  let pred =
    match Pos_map.find_last_opt (fun q -> ucmp q node.pos < 0) t.ring with
    | Some (_, id) -> id
    | None -> snd (Pos_map.max_binding t.ring)
  in
  node.pred <- pred

let iter_alive t f =
  Pos_map.iter (fun _ id -> f (get t id)) t.ring

let rebuild_all t = iter_alive t (fun node -> rebuild_node t node)

(* Symmetric neighbor relation: fingers + predecessor + reverse
   fingers.  Recomputed on demand; the ring mutates rarely compared to
   how often the protocol routes. *)
let neighbors t id =
  let node = get t id in
  let out =
    Node_id.Set.add node.pred
      (Node_id.Set.of_list (Array.to_list node.fingers))
  in
  let inbound = ref Node_id.Set.empty in
  iter_alive t (fun other ->
      if not (Node_id.equal other.id id) then
        if
          Array.exists (fun f -> Node_id.equal f id) other.fingers
          || Node_id.equal other.pred id
        then inbound := Node_id.Set.add other.id !inbound);
  Node_id.Set.elements
    (Node_id.Set.remove id (Node_id.Set.union out !inbound))

let owns t node key =
  let kp = key_pos key in
  if Pos_map.cardinal t.ring = 1 then true
  else
    let pred_pos = (get t node.pred).pos in
    in_oc ~a:pred_pos ~b:node.pos kp

let next_hop t id key =
  match Node_id.Table.find_opt t.nodes id with
  | None -> Route.Stuck Route.Dead_node
  | Some node when not node.alive -> Route.Stuck Route.Dead_node
  | Some node ->
      if owns t node key then Route.Owner
      else begin
        let kp = key_pos key in
        (* closest preceding finger: the finger whose position lies
           furthest along (node.pos, kp) *)
        let best =
          Array.fold_left
            (fun acc fid ->
              let fpos = (get t fid).pos in
              if in_oo ~a:node.pos ~b:kp fpos then
                match acc with
                | Some (_, bpos) when in_oo ~a:bpos ~b:kp fpos ->
                    Some (fid, fpos)
                | Some _ -> acc
                | None -> Some (fid, fpos)
              else acc)
            None node.fingers
        in
        match best with
        | Some (fid, _) -> Route.Forward fid
        | None -> Route.Forward (successor t id)
      end

let route t ~from key =
  Route.walk ~limit:((2 * finger_bits) + size t)
    ~next_hop:(fun current -> next_hop t current key)
    from

let neighbor_snapshot t =
  List.map (fun id -> (id, neighbors t id)) (node_ids t)

let diff_affected before after =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (id, ns) -> Hashtbl.replace tbl id ns) before;
  List.filter_map
    (fun (id, ns) ->
      match Hashtbl.find_opt tbl id with
      | Some old when old = ns -> None
      | Some _ | None -> Some id)
    after

let fresh_node t pos =
  let id = Node_id.of_int t.next_id in
  t.next_id <- t.next_id + 1;
  let node = { id; pos; fingers = [||]; pred = id; alive = true } in
  Node_id.Table.replace t.nodes id node;
  t.ring <- Pos_map.add pos id t.ring;
  t.generation <- t.generation + 1;
  node

let join_at t pos =
  if Pos_map.mem pos t.ring then invalid_arg "Chord: position collision";
  let before = neighbor_snapshot t in
  let peer =
    if Pos_map.is_empty t.ring then None else Some (successor_of_pos t pos)
  in
  let node = fresh_node t pos in
  rebuild_all t;
  let affected =
    List.filter
      (fun id -> not (Node_id.equal id node.id))
      (diff_affected before (neighbor_snapshot t))
  in
  { subject = node.id; peer; affected }

let join_random t ~rng =
  let rec fresh_pos () =
    let pos = Cup_prng.Rng.int64 rng in
    if Pos_map.mem pos t.ring then fresh_pos () else pos
  in
  join_at t (fresh_pos ())

let leave t id =
  let node =
    try get t id
    with Not_found -> invalid_arg "Chord.leave: unknown or dead node"
  in
  if size t = 1 then invalid_arg "Chord.leave: cannot remove last node";
  let before = neighbor_snapshot t in
  node.alive <- false;
  t.ring <- Pos_map.remove node.pos t.ring;
  t.generation <- t.generation + 1;
  let taker = successor_of_pos t node.pos in
  rebuild_all t;
  let affected = diff_affected before (neighbor_snapshot t) in
  let affected = List.filter (fun a -> not (Node_id.equal a id)) affected in
  { subject = id; peer = Some taker; affected }

let create ?rng ~n () =
  if n < 1 then invalid_arg "Chord.create: n must be >= 1";
  let t =
    {
      nodes = Node_id.Table.create (2 * n);
      ring = Pos_map.empty;
      next_id = 0;
      generation = 0;
      ids_gen = -1;
      ids_cache = [];
    }
  in
  (match rng with
  | Some rng ->
      for _ = 1 to n do
        let rec fresh_pos () =
          let pos = Cup_prng.Rng.int64 rng in
          if Pos_map.mem pos t.ring then fresh_pos () else pos
        in
        ignore (fresh_node t (fresh_pos ()))
      done
  | None ->
      (* Evenly spaced: position i * floor(2^64 / n) via unsigned
         arithmetic. *)
      let step = Int64.unsigned_div (-1L) (Int64.of_int n) in
      for i = 0 to n - 1 do
        ignore (fresh_node t (Int64.mul step (Int64.of_int i)))
      done);
  rebuild_all t;
  t

let check_invariants t =
  let ( let* ) = Result.bind in
  let* () =
    if Pos_map.cardinal t.ring >= 1 then Ok () else Error "empty ring"
  in
  let ids = node_ids t in
  let check_node acc id =
    let* () = acc in
    let node = get t id in
    (* predecessor: the last alive node strictly before us *)
    let expected_pred =
      match Pos_map.find_last_opt (fun q -> ucmp q node.pos < 0) t.ring with
      | Some (_, p) -> p
      | None -> snd (Pos_map.max_binding t.ring)
    in
    let* () =
      if Node_id.equal node.pred expected_pred then Ok ()
      else Error (Format.asprintf "%a: wrong predecessor" Node_id.pp id)
    in
    (* fingers: each 2^i target's successor is either self (excluded)
       or present in the table *)
    let ok = ref true in
    for i = 0 to finger_bits - 1 do
      let target = Int64.add node.pos (Int64.shift_left 1L i) in
      let f = successor_of_pos t target in
      if
        (not (Node_id.equal f id))
        && not (Array.exists (Node_id.equal f) node.fingers)
      then ok := false
    done;
    if !ok then Ok ()
    else Error (Format.asprintf "%a: stale finger table" Node_id.pp id)
  in
  let* () = List.fold_left check_node (Ok ()) ids in
  (* every key position has exactly one owner by construction of
     successor_of_pos; sanity-check routing from a few nodes *)
  Ok ()
