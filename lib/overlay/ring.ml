type t = { n : int }

let create ~n =
  if n <= 0 then invalid_arg "Ring.create: n must be positive";
  { n }

let size t = t.n

let owner t key =
  if key < 0 then invalid_arg "Ring.owner: negative key";
  let h = Cup_prng.Splitmix.mix (Int64.of_int key) in
  Int64.to_int h land max_int mod t.n

(* Largest power of two <= d, for d >= 1: fill every bit below the top
   set bit, then shift the resulting all-ones mask back into a single
   bit. *)
let top_power_of_two d =
  let d = d lor (d lsr 1) in
  let d = d lor (d lsr 2) in
  let d = d lor (d lsr 4) in
  let d = d lor (d lsr 8) in
  let d = d lor (d lsr 16) in
  let d = d lor (d lsr 32) in
  d - (d lsr 1)

let next_hop t ~node ~target =
  if node < 0 || node >= t.n || target < 0 || target >= t.n then
    invalid_arg "Ring.next_hop: id out of range";
  if node = target then None
  else
    let d = (target - node + t.n) mod t.n in
    Some ((node + top_power_of_two d) mod t.n)

let path_length t ~from ~target =
  let rec go node hops =
    match next_hop t ~node ~target with
    | None -> hops
    | Some next -> go next (hops + 1)
  in
  go from 0

let max_hops t =
  let rec bits acc p = if p >= t.n then acc else bits (acc + 1) (p * 2) in
  bits 0 1
