type reason = Dead_node | No_progress | Hop_limit

type hop = Owner | Forward of Node_id.t | Stuck of reason

type t =
  | Delivered of { hops : Node_id.t list; count : int }
  | Unreachable of { reason : reason; partial : Node_id.t list; count : int }

let reason_to_string = function
  | Dead_node -> "dead-node"
  | No_progress -> "no-progress"
  | Hop_limit -> "hop-limit"

let pp_reason fmt r = Format.pp_print_string fmt (reason_to_string r)

let pp fmt = function
  | Delivered { count; _ } -> Format.fprintf fmt "delivered (%d hops)" count
  | Unreachable { reason; count; _ } ->
      Format.fprintf fmt "unreachable after %d hops (%a)" count pp_reason
        reason

let is_delivered = function Delivered _ -> true | Unreachable _ -> false

let hop_count = function
  | Delivered { count; _ } | Unreachable { count; _ } -> count

let hops_exn = function
  | Delivered { hops; _ } -> hops
  | Unreachable { reason; _ } ->
      invalid_arg ("Route.hops_exn: unreachable: " ^ reason_to_string reason)

(* The shared greedy-forwarding loop: every substrate's [route] is this
   walk over its own [next_hop], differing only in the step budget.
   [steps] always equals the length of [acc], so both outcomes carry
   their hop count without a final [List.length]. *)
let walk ~limit ~next_hop from =
  let rec go current steps acc =
    if steps > limit then
      Unreachable { reason = Hop_limit; partial = List.rev acc; count = steps }
    else
      match next_hop current with
      | Owner -> Delivered { hops = List.rev acc; count = steps }
      | Forward hop -> go hop (steps + 1) (hop :: acc)
      | Stuck reason ->
          Unreachable { reason; partial = List.rev acc; count = steps }
  in
  go from 0 []
