(** Unified overlay interface.

    CUP runs over any structured overlay with deterministic
    key-rooted routing (Section 2.2); this module lets the protocol
    and simulation layers treat the CAN, Chord and Pastry substrates
    uniformly.  All operations dispatch to the underlying overlay. *)

type t

type kind =
  | Can of [ `Random | `Grid ]  (** 2-d CAN with the given placement *)
  | Chord  (** 64-bit Chord ring *)
  | Pastry  (** Pastry-style prefix routing with leaf sets *)

type change = {
  subject : Node_id.t;
  peer : Node_id.t option;
  affected : Node_id.t list;
}

val create :
  ?rng:Cup_prng.Rng.t ->
  ?route_cache:bool ->
  ?churn_lookups:int ->
  kind:kind ->
  n:int ->
  unit ->
  t
(** [Can `Random] and [Chord] require [rng] for placement ([Chord]
    falls back to evenly-spaced positions without it).

    [route_cache] (default [true]) enables the per-node next-hop
    cache: {!next_hop} and {!route} answers are memoized per
    (node, key) pair and invalidated wholesale whenever the overlay's
    {!generation} moves (any join, leave, or churn event).  Caching
    never changes any answer — overlay routing is a pure function of
    the membership — so runs are byte-identical with it on or off.

    [churn_lookups] (default [0] = off) adapts the cache to churn:
    when a generation is invalidated after serving fewer than this
    many lookups, the next generation is routed uncached (no refill
    cost) until it proves stable by surviving that many lookups.
    Speed-only, like [route_cache] itself. *)

val kind : t -> kind
val size : t -> int

val generation : t -> int
(** The underlying overlay's membership generation; bumped on every
    join and leave.  The next-hop cache is keyed to this stamp. *)

val route_cache_enabled : t -> bool

val route_cache_stats : t -> int * int
(** [(hits, misses)] of the next-hop cache over this net's lifetime.
    Bypassed and cache-disabled lookups count as misses.  Diagnostic
    only — deliberately outside the deterministic counter set. *)

val node_ids : t -> Node_id.t list
(** Alive node ids in increasing order; memoized per {!generation}. *)

val is_alive : t -> Node_id.t -> bool
val neighbors : t -> Node_id.t -> Node_id.t list
val owner_of_key : t -> Key.t -> Node_id.t

val next_hop : t -> Node_id.t -> Key.t -> Route.hop
(** [Owner] when the node's region/range contains the key; [Stuck]
    when no routing decision is possible (dead node, no closer peer).
    Never raises. *)

val route : t -> from:Node_id.t -> Key.t -> Route.t
(** Typed routing outcome ({!Route.t}); [Unreachable] instead of an
    exception when the lookup cannot converge. *)

val join_random : t -> rng:Cup_prng.Rng.t -> change
val leave : t -> Node_id.t -> change
val check_invariants : t -> (unit, string) result

val as_can : t -> Topology.t option
(** The underlying CAN topology, for CAN-specific inspection. *)

val as_chord : t -> Chord.t option
val as_pastry : t -> Pastry.t option
