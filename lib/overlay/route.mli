(** Typed routing outcomes.

    Overlay routing used to abort the whole process ([failwith]) when
    greedy forwarding failed to make progress — which under churn and
    crash injection turns one failed lookup into a dead experiment
    grid.  Every substrate's [next_hop]/[route] now reports failure as
    data instead: the runner records an unreachable lookup and keeps
    simulating.

    On a healthy overlay the [Stuck]/[Unreachable] cases are
    unreachable by construction (the invariant checks still verify
    that); they become observable only when routing state is
    inconsistent — exactly the conditions fault injection creates. *)

type reason =
  | Dead_node  (** the routing node is dead or unknown *)
  | No_progress  (** no known peer is closer to the target *)
  | Hop_limit  (** the per-substrate step budget was exhausted *)

type hop =
  | Owner  (** the routing node's region/range contains the key *)
  | Forward of Node_id.t  (** forward to this neighbor *)
  | Stuck of reason  (** no routing decision possible *)

type t =
  | Delivered of { hops : Node_id.t list; count : int }
      (** successive hops from the origin (exclusive) to the owner
          (inclusive); [[]] when the origin is the owner.  [count] is
          [List.length hops], carried from the walk so printing a
          route never re-walks the list *)
  | Unreachable of { reason : reason; partial : Node_id.t list; count : int }
      (** the hops taken before the lookup failed, with their count *)

val reason_to_string : reason -> string
val pp_reason : Format.formatter -> reason -> unit
val pp : Format.formatter -> t -> unit
val is_delivered : t -> bool

val hop_count : t -> int
(** Hops taken, delivered or not — the carried [count], O(1). *)

val hops_exn : t -> Node_id.t list
(** The hop list of a [Delivered] route.  Raises [Invalid_argument] on
    [Unreachable] — for tests and examples that assume a healthy
    overlay, not for the simulation hot path. *)

val walk :
  limit:int -> next_hop:(Node_id.t -> hop) -> Node_id.t -> t
(** The shared greedy-forwarding loop: repeatedly apply [next_hop]
    until [Owner], a [Stuck] decision, or more than [limit] steps. *)
