(** Arithmetic ring overlay for very large simulated networks.

    The membership-table overlays ({!Topology}, {!Chord}, {!Pastry})
    materialize per-node routing state — zones, finger tables, routing
    tables — which costs hundreds of bytes per node and makes a
    million-node network expensive before the first query is posted.
    This overlay stores {e nothing} per node: membership is the integer
    interval [\[0, n)], a key's authority is a hash of the key modulo
    [n], and routing is Chord-style greedy doubling computed from pure
    arithmetic on the ids.  O(1) memory for any [n], and every route
    converges in at most [log2 n] hops (each hop at least halves the
    clockwise distance to the target).

    Determinism: {!owner} is a stateless SplitMix64 finalizer hash and
    {!next_hop} is integer arithmetic, so routes are identical across
    platforms, runs, and shard partitionings — the property the sharded
    scale runner's byte-identity contract relies on.

    The trade-off versus the table-backed overlays is fidelity, not
    correctness: there is no churn (nodes never join or leave) and the
    hop metric is the idealized power-of-two progression rather than a
    measured topology.  The scale runner uses it to exercise the CUP
    protocol state machine at sizes the table overlays cannot reach. *)

type t

val create : n:int -> t
(** [create ~n] is a ring over nodes [0 .. n-1].  Raises
    [Invalid_argument] when [n <= 0]. *)

val size : t -> int

val owner : t -> int -> int
(** [owner t key] is the authority node for [key]: a uniform stateless
    hash of the key, modulo [n]. *)

val next_hop : t -> node:int -> target:int -> int option
(** Greedy clockwise routing: [None] when [node = target] (the query
    has arrived), otherwise [Some next] where [next] advances by the
    largest power of two not exceeding the clockwise distance to
    [target].  The distance at least halves every hop, so a route takes
    at most [ceil (log2 n)] hops. *)

val path_length : t -> from:int -> target:int -> int
(** Number of hops {!next_hop} takes from [from] to [target]. *)

val max_hops : t -> int
(** Upper bound on {!path_length} for any pair: [ceil (log2 n)]. *)
