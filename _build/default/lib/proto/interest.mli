(** Interest bit vectors (Section 2.3).

    One per cached key: records which neighbors want updates for the
    key.  Represented as a set of neighbor ids rather than a positional
    bit vector so that the neighbor set can grow, shrink, and be
    remapped under churn (Section 2.9) without any repacking. *)

type t

val create : unit -> t
val set : t -> Cup_overlay.Node_id.t -> unit
val clear : t -> Cup_overlay.Node_id.t -> unit
val is_set : t -> Cup_overlay.Node_id.t -> bool

val any : t -> bool
(** [true] if at least one neighbor is interested. *)

val cardinal : t -> int

val interested : t -> Cup_overlay.Node_id.t list
(** Interested neighbor ids in increasing order (deterministic
    forwarding order). *)

val remap : t -> old_id:Cup_overlay.Node_id.t -> new_id:Cup_overlay.Node_id.t -> unit
(** [remap t ~old_id ~new_id] makes the bit that pointed at [old_id]
    point at [new_id] — the bit-vector patch a node performs when a
    neighbor's zone is taken over by another node.  No-op when
    [old_id]'s bit is clear. *)

val pp : Format.formatter -> t -> unit
