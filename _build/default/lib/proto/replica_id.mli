(** Identifiers for content replicas.

    A replica is a peer that serves a copy of some content; the global
    index maps each key to the set of replicas serving it.  The value
    field of a real index entry would be the replica's IP address; an
    opaque id is all the protocol needs. *)

type t = private int

val of_int : int -> t
(** Raises [Invalid_argument] on negative input. *)

val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
