(** Updates flowing down the reverse query paths (Section 2.4).

    Four kinds:
    - {b First_time}: a query response.  Carries the full fresh entry
      set for the key and always flows to every interested neighbor —
      it is what answers queries, so it is exempt from cut-off and
      capacity filtering.
    - {b Delete}: remove one replica's entry.
    - {b Refresh}: extend one replica's entry lifetime.
    - {b Append}: add an entry for a new replica.

    [level] is the recipient's hop distance from the authority node:
    the authority emits updates with [level = 1]; {!forwarded}
    increments it.  Probability-based cut-off policies and the
    push-level benchmark read their distance [D] from it. *)

type kind = First_time | Delete | Refresh | Append

type t = {
  key : Cup_overlay.Key.t;
  kind : kind;
  entries : Entry.t list;
      (** full set for [First_time]; the single affected entry
          otherwise *)
  level : int;  (** recipient's hop distance from the authority *)
}

val first_time : key:Cup_overlay.Key.t -> entries:Entry.t list -> level:int -> t
val delete : key:Cup_overlay.Key.t -> entry:Entry.t -> level:int -> t
val refresh : key:Cup_overlay.Key.t -> entry:Entry.t -> level:int -> t
val append : key:Cup_overlay.Key.t -> entry:Entry.t -> level:int -> t

val forwarded : t -> t
(** The same update as pushed one hop further down. *)

val subject : t -> Replica_id.t option
(** The replica a [Delete]/[Refresh]/[Append] is about; [None] for
    [First_time]. *)

val is_expired : t -> now:Cup_dess.Time.t -> bool
(** Case 3 of Section 2.6: an update whose payload entries have all
    expired in flight.  [First_time] responses are never considered
    expired (they must answer the waiting query), nor are [Delete]s
    (retracting an entry is never stale). *)

val kind_to_string : kind -> string
val pp : Format.formatter -> t -> unit
