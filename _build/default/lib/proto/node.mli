(** The CUP node state machine (Sections 2.3–2.9).

    A node is pure protocol state: it consumes protocol inputs
    (queries, updates, clear-bits, replica events at the authority) and
    returns the list of {!action}s to perform.  It never performs I/O
    and knows nothing about time sources or message delays — the
    simulation layer (or a real transport) executes the actions and
    invokes the handlers.  This keeps every protocol rule directly
    unit-testable.

    Per neighbor there are two logical channels: handlers that emit
    [Send_query] use the query channel (upstream, toward the
    authority); [Send_update] and [Send_clear_bit] use the update
    channel (downstream, along reverse query paths) — clear-bits
    travel on it in the reverse direction, as in Figure 1 of the
    paper.

    State per cached key (Section 2.3): the cached entry set, the
    Pending-First-Update flag, the interest bit vector, the popularity
    measure (queries since last update), the dry-update streak for
    log-based policies, the hop distance from the authority, and the
    cut-off trigger replica (Section 3.6). *)

type config = {
  policy : Policy.t;
  replica_independent_cutoff : bool;
      (** evaluate (and reset) the cut-off popularity measure only on
          updates for the key's trigger replica, so the decision is
          independent of the number of replicas (Section 3.6).  When
          [false], the naive implementation: every update arrival
          triggers the decision. *)
}

val default_config : config
(** Second-chance policy, replica-independent cut-off. *)

type t

type source =
  | From_neighbor of Cup_overlay.Node_id.t
  | From_local of Cup_dess.Time.t  (** a local client; payload = post time *)

type action =
  | Send_query of { to_ : Cup_overlay.Node_id.t; key : Cup_overlay.Key.t }
  | Send_update of {
      to_ : Cup_overlay.Node_id.t;
      update : Update.t;
      answering : bool;
          (** [true] when this first-time update answers a query the
              recipient is waiting on (miss-cost hop in the Section 3.1
              accounting); [false] for proactive propagation *)
    }
  | Send_clear_bit of { to_ : Cup_overlay.Node_id.t; key : Cup_overlay.Key.t }
  | Answer_local of {
      key : Cup_overlay.Key.t;
      entries : Entry.t list;
      posted_at : Cup_dess.Time.t list;
          (** post times of the local queries being answered *)
      hit : bool;
          (** [true] when served synchronously from a fresh cache or
              the local directory; [false] when the answer arrived by
              first-time update *)
    }

val create : id:Cup_overlay.Node_id.t -> config -> t

val id : t -> Cup_overlay.Node_id.t
val config : t -> config

(** {1 Protocol handlers} *)

val handle_query :
  t ->
  now:Cup_dess.Time.t ->
  next_hop:Cup_overlay.Node_id.t option ->
  source ->
  Cup_overlay.Key.t ->
  action list
(** Section 2.5.  [next_hop] is the routing decision toward the key's
    authority ([None] when this node's zone contains the key — then
    the node answers as authority, with an empty entry set if it has
    no directory entries for the key). *)

val handle_update :
  t ->
  now:Cup_dess.Time.t ->
  from:Cup_overlay.Node_id.t ->
  Update.t ->
  action list
(** Section 2.6. *)

val handle_clear_bit :
  t -> now:Cup_dess.Time.t -> from:Cup_overlay.Node_id.t -> Cup_overlay.Key.t -> action list
(** Section 2.7. *)

(** {1 Authority-side operations (Section 2.4 update origination)} *)

val add_local_key : t -> Cup_overlay.Key.t -> unit
(** Declare this node the authority for [key] with an empty directory. *)

val owns : t -> Cup_overlay.Key.t -> bool

val local_directory : t -> Cup_overlay.Key.t -> Entry.t list
(** Current directory entries (unpruned) for an owned key; [\[\]] if
    not owned. *)

val replica_birth :
  t -> now:Cup_dess.Time.t -> key:Cup_overlay.Key.t -> Entry.t -> action list
(** A replica announced it serves [key]: add it to the directory and
    originate an Append. *)

val replica_refresh :
  t -> now:Cup_dess.Time.t -> key:Cup_overlay.Key.t -> Entry.t -> action list
(** A replica keep-alive extended its entry: originate a Refresh. *)

val replica_refresh_batch :
  t ->
  now:Cup_dess.Time.t ->
  key:Cup_overlay.Key.t ->
  Entry.t list ->
  action list
(** Aggregated refreshes (Section 3.6): apply several replicas'
    keep-alives to the directory and originate them as a single
    Refresh update carrying all the entries.  Empty input is a no-op. *)

val replica_death :
  t ->
  now:Cup_dess.Time.t ->
  key:Cup_overlay.Key.t ->
  Replica_id.t ->
  action list
(** The replica left (or missed its keep-alives): drop the entry and
    originate a Delete. *)

(** {1 Churn support (Section 2.9)} *)

val remap_neighbor :
  t -> old_id:Cup_overlay.Node_id.t -> new_id:Cup_overlay.Node_id.t -> unit
(** Patch every interest bit vector: the bit that pointed at [old_id]
    now points at [new_id]. *)

val drop_neighbor : t -> Cup_overlay.Node_id.t -> unit
(** Clear the departed neighbor's bit in every vector. *)

val retain_neighbors : t -> Cup_overlay.Node_id.t list -> unit
(** Clear every interest bit that does not point at one of the given
    (current) neighbors — the conservative patch applied when a node's
    neighborhood changes shape under churn. *)

val handover_local : t -> Cup_overlay.Key.t -> Entry.t list
(** Remove and return the directory entries for an owned key (for
    handing the key over to the node taking over the zone). *)

val receive_local : t -> Cup_overlay.Key.t -> Entry.t list -> unit
(** Accept directory entries for a newly owned key, merging with any
    existing ones (keeping the later expiry per replica). *)

(** {1 Introspection (tests and metrics)} *)

val fresh_entries : t -> now:Cup_dess.Time.t -> Cup_overlay.Key.t -> Entry.t list
val pending_first : t -> Cup_overlay.Key.t -> bool
val interested_neighbors : t -> Cup_overlay.Key.t -> Cup_overlay.Node_id.t list
val popularity : t -> Cup_overlay.Key.t -> int
(** Queries since the last cut-off-triggering update. *)

val distance_of : t -> Cup_overlay.Key.t -> int option
(** Hop distance from the key's authority, once learned. *)

val cached_keys : t -> Cup_overlay.Key.t list
val owned_keys : t -> Cup_overlay.Key.t list

type stats = {
  mutable queries_in : int;
  mutable queries_coalesced : int;
      (** queries absorbed by an already-pending flag (Section 2.5
          case 3 / the burst-coalescing benefit) *)
  mutable cache_answers : int;  (** queries served from fresh cache *)
  mutable updates_in : int;
  mutable updates_forwarded : int;
  mutable clear_bits_sent : int;
  mutable clear_bits_in : int;
  mutable expired_updates_dropped : int;
}

val stats : t -> stats
