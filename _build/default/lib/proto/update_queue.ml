type ordering = Latency_first | Flash_crowd | Fifo

type item = { seq : int; update : Update.t }

type t = {
  ordering : ordering;
  mutable items : item list; (* kept sorted by priority, best first *)
  mutable next_seq : int;
}

let create ordering = { ordering; items = []; next_seq = 0 }

let length t = List.length t.items

let is_empty t = t.items = []

let kind_rank ordering (kind : Update.kind) =
  match (ordering, kind) with
  | (Latency_first | Fifo), First_time -> 0
  | (Latency_first | Fifo), Delete -> 1
  | (Latency_first | Fifo), Refresh -> 2
  | (Latency_first | Fifo), Append -> 3
  | Flash_crowd, First_time -> 0
  | Flash_crowd, Append -> 1
  | Flash_crowd, Delete -> 2
  | Flash_crowd, Refresh -> 3

let earliest_expiry (u : Update.t) =
  List.fold_left
    (fun acc (e : Entry.t) -> Cup_dess.Time.min acc e.expiry)
    Cup_dess.Time.infinity u.entries

(* Pop order: smaller is better. *)
let priority t a b =
  match t.ordering with
  | Fifo -> Int.compare a.seq b.seq
  | Latency_first | Flash_crowd -> (
      match
        Int.compare
          (kind_rank t.ordering a.update.kind)
          (kind_rank t.ordering b.update.kind)
      with
      | 0 -> (
          (* Entries about to expire are the most urgent. *)
          match
            Cup_dess.Time.compare (earliest_expiry a.update)
              (earliest_expiry b.update)
          with
          | 0 -> Int.compare a.seq b.seq
          | c -> c)
      | c -> c)

let push t update =
  let item = { seq = t.next_seq; update } in
  t.next_seq <- t.next_seq + 1;
  let rec insert = function
    | [] -> [ item ]
    | hd :: tl as items ->
        if priority t item hd < 0 then item :: items else hd :: insert tl
  in
  t.items <- insert t.items

let rec pop t ~now =
  match t.items with
  | [] -> None
  | best :: rest ->
      t.items <- rest;
      if Update.is_expired best.update ~now then pop t ~now
      else Some best.update

let drop_expired t ~now =
  let before = List.length t.items in
  t.items <-
    List.filter (fun item -> not (Update.is_expired item.update ~now)) t.items;
  before - List.length t.items

let peek_all t = List.map (fun item -> item.update) t.items
