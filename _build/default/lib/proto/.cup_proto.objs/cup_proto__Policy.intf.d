lib/proto/policy.mli: Format
