lib/proto/update_queue.ml: Cup_dess Entry Int List Update
