lib/proto/interest.mli: Cup_overlay Format
