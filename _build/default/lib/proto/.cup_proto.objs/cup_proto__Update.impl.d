lib/proto/update.ml: Cup_overlay Entry Format List
