lib/proto/node.ml: Cup_dess Cup_overlay Entry Interest List Policy Replica_id Update
