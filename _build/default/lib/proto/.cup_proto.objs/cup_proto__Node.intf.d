lib/proto/node.mli: Cup_dess Cup_overlay Entry Policy Replica_id Update
