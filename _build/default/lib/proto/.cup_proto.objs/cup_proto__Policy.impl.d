lib/proto/policy.ml: Format Printf
