lib/proto/entry.mli: Cup_dess Format Replica_id
