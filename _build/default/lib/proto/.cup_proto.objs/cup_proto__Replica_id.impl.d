lib/proto/replica_id.ml: Format Int Map Set
