lib/proto/update.mli: Cup_dess Cup_overlay Entry Format Replica_id
