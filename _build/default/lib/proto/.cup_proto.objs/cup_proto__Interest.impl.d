lib/proto/interest.ml: Cup_overlay Format
