lib/proto/update_queue.mli: Cup_dess Update
