lib/proto/replica_id.mli: Format Map Set
