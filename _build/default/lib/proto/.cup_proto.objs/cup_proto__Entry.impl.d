lib/proto/entry.ml: Cup_dess Format Replica_id
