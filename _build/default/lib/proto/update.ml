type kind = First_time | Delete | Refresh | Append

type t = {
  key : Cup_overlay.Key.t;
  kind : kind;
  entries : Entry.t list;
  level : int;
}

let first_time ~key ~entries ~level = { key; kind = First_time; entries; level }
let delete ~key ~entry ~level = { key; kind = Delete; entries = [ entry ]; level }
let refresh ~key ~entry ~level = { key; kind = Refresh; entries = [ entry ]; level }
let append ~key ~entry ~level = { key; kind = Append; entries = [ entry ]; level }

let forwarded t = { t with level = t.level + 1 }

let subject t =
  match (t.kind, t.entries) with
  | First_time, _ -> None
  | (Delete | Refresh | Append), entry :: _ -> Some entry.Entry.replica
  | (Delete | Refresh | Append), [] -> None

let is_expired t ~now =
  match t.kind with
  | First_time | Delete -> false
  | Refresh | Append ->
      not (List.exists (fun e -> Entry.is_fresh e ~now) t.entries)

let kind_to_string = function
  | First_time -> "first-time"
  | Delete -> "delete"
  | Refresh -> "refresh"
  | Append -> "append"

let pp fmt t =
  Format.fprintf fmt "%s(%a, level %d, %d entries)" (kind_to_string t.kind)
    Cup_overlay.Key.pp t.key t.level (List.length t.entries)
