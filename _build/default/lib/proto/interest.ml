module Set = Cup_overlay.Node_id.Set

type t = { mutable members : Set.t }

let create () = { members = Set.empty }
let set t id = t.members <- Set.add id t.members
let clear t id = t.members <- Set.remove id t.members
let is_set t id = Set.mem id t.members
let any t = not (Set.is_empty t.members)
let cardinal t = Set.cardinal t.members
let interested t = Set.elements t.members

let remap t ~old_id ~new_id =
  if Set.mem old_id t.members then
    t.members <- Set.add new_id (Set.remove old_id t.members)

let pp fmt t =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       Cup_overlay.Node_id.pp)
    (interested t)
