type t = { replica : Replica_id.t; expiry : Cup_dess.Time.t }

let make ~replica ~expiry = { replica; expiry }

let is_fresh t ~now = Cup_dess.Time.(now < t.expiry)

let pp fmt t =
  Format.fprintf fmt "%a@%a" Replica_id.pp t.replica Cup_dess.Time.pp t.expiry
