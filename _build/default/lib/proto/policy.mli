(** Incentive-based cut-off policies (Sections 3.3–3.4).

    When an update for key [K] arrives at a node whose interest bits
    for [K] are all clear, the node decides whether [K] is still
    popular enough to keep receiving updates.  If not, it pushes a
    Clear-Bit message upstream.

    The popularity inputs are the number of queries received since the
    last (cut-off-triggering) update and the count of consecutive such
    updates that arrived with zero intervening queries.

    - [Standard_caching]: the baseline.  No update propagation at all:
      the authority squelches every non-first-time update at the root,
      caches live purely on expiration.
    - [All_out]: never cut off — the maximal-propagation benchmark of
      Section 3.3.
    - [Push_level p]: propagate to nodes at most [p] hops from the
      authority.  Enforced at the sender ([p = 0] is exactly
      [Standard_caching]), matching the paper's description that at
      push level 0 "updates from the authority node are immediately
      squelched".
    - [Linear alpha]: keep iff at least [alpha * D] queries arrived
      since the last update, [D] = distance from the authority.
    - [Logarithmic alpha]: keep iff at least [alpha * lg D] queries.
    - [Log_based n]: history-based — cut after [n] consecutive update
      arrivals with no intervening query.  [second_chance] is
      [Log_based 2]: the first dry update gets a "second chance", the
      second pushes the clear-bit (the paper describes this as a
      window of [n = 3] update arrivals). *)

type t =
  | Standard_caching
  | All_out
  | Push_level of int
  | Linear of float
  | Logarithmic of float
  | Log_based of int

val second_chance : t

type decision = Keep | Cut

val decide :
  t -> distance:int -> queries_since_update:int -> dry_updates:int -> decision
(** The cut-off test, evaluated on a (cut-off-triggering) update
    arrival.  [dry_updates] counts this arrival too: it is [>= 1] iff
    no query arrived since the previous update. *)

val sender_limit : t -> int option
(** [sender_limit t] is [Some p] when the policy bounds propagation at
    the sender: a node at distance [d] forwards non-first-time updates
    only while [d < p].  [Some 0] for [Standard_caching]. *)

val uses_clear_bits : t -> bool
(** Whether the policy cuts off via Clear-Bit messages (the
    popularity-driven policies) rather than at the sender. *)

val coalesces_queries : t -> bool
(** CUP's query channel collapses bursts of queries for one key into a
    single upstream query (Section 2.5 case 3).  Standard caching has
    no query channel: every miss query travels on its own, which is
    exactly the burst behaviour the paper contrasts against. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
