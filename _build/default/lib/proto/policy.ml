type t =
  | Standard_caching
  | All_out
  | Push_level of int
  | Linear of float
  | Logarithmic of float
  | Log_based of int

let second_chance = Log_based 2

type decision = Keep | Cut

let lg x = if x <= 1 then 0. else log (float_of_int x) /. log 2.

let decide t ~distance ~queries_since_update ~dry_updates =
  match t with
  | Standard_caching | All_out | Push_level _ -> Keep
  | Linear alpha ->
      if float_of_int queries_since_update >= alpha *. float_of_int distance
      then Keep
      else Cut
  | Logarithmic alpha ->
      if float_of_int queries_since_update >= alpha *. lg distance then Keep
      else Cut
  | Log_based n -> if dry_updates >= n then Cut else Keep

let sender_limit = function
  | Standard_caching -> Some 0
  | Push_level p -> Some p
  | All_out | Linear _ | Logarithmic _ | Log_based _ -> None

let uses_clear_bits = function
  | Standard_caching | All_out | Push_level _ -> false
  | Linear _ | Logarithmic _ | Log_based _ -> true

let coalesces_queries = function
  | Standard_caching -> false
  | All_out | Push_level _ | Linear _ | Logarithmic _ | Log_based _ -> true

let to_string = function
  | Standard_caching -> "standard-caching"
  | All_out -> "all-out"
  | Push_level p -> Printf.sprintf "push-level-%d" p
  | Linear a -> Printf.sprintf "linear-%g" a
  | Logarithmic a -> Printf.sprintf "logarithmic-%g" a
  | Log_based 2 -> "second-chance"
  | Log_based n -> Printf.sprintf "log-based-%d" n

let pp fmt t = Format.pp_print_string fmt (to_string t)
