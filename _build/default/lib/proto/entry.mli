(** Index entries.

    An index entry [(key, replica, expiry)] says "replica [replica]
    serves the content named by [key], and this claim may be used until
    [expiry]".  The key is implicit here — entries are always handled
    grouped under their key. *)

type t = { replica : Replica_id.t; expiry : Cup_dess.Time.t }

val make : replica:Replica_id.t -> expiry:Cup_dess.Time.t -> t

val is_fresh : t -> now:Cup_dess.Time.t -> bool
(** [is_fresh e ~now] is [true] while [now < e.expiry]. *)

val pp : Format.formatter -> t -> unit
