type t = { x : float; y : float }

let wrap c =
  let c = Float.rem c 1. in
  if c < 0. then c +. 1. else c

let make ~x ~y = { x = wrap x; y = wrap y }

let axis_distance a b =
  let d = Float.abs (a -. b) in
  Float.min d (1. -. d)

let distance p q =
  let dx = axis_distance p.x q.x and dy = axis_distance p.y q.y in
  sqrt ((dx *. dx) +. (dy *. dy))

let equal p q = p.x = q.x && p.y = q.y

let pp fmt p = Format.fprintf fmt "(%.4f, %.4f)" p.x p.y
