type kind = Can of [ `Random | `Grid ] | Chord | Pastry

type t =
  | Can_net of Topology.t
  | Chord_net of Chord.t
  | Pastry_net of Pastry.t

type change = {
  subject : Node_id.t;
  peer : Node_id.t option;
  affected : Node_id.t list;
}

let create ?rng ~kind ~n () =
  match kind with
  | Can placement -> Can_net (Topology.create ?rng ~n ~placement ())
  | Chord -> Chord_net (Chord.create ?rng ~n ())
  | Pastry -> Pastry_net (Pastry.create ?rng ~n ())

let kind = function
  | Can_net _ -> Can `Random
  | Chord_net _ -> Chord
  | Pastry_net _ -> Pastry

let size = function
  | Can_net t -> Topology.size t
  | Chord_net c -> Chord.size c
  | Pastry_net p -> Pastry.size p

let node_ids = function
  | Can_net t -> Topology.node_ids t
  | Chord_net c -> Chord.node_ids c
  | Pastry_net p -> Pastry.node_ids p

let is_alive net id =
  match net with
  | Can_net t -> Topology.is_alive t id
  | Chord_net c -> Chord.is_alive c id
  | Pastry_net p -> Pastry.is_alive p id

let neighbors net id =
  match net with
  | Can_net t -> Topology.neighbors t id
  | Chord_net c -> Chord.neighbors c id
  | Pastry_net p -> Pastry.neighbors p id

let owner_of_key net key =
  match net with
  | Can_net t -> Topology.owner_of_key t key
  | Chord_net c -> Chord.owner_of_key c key
  | Pastry_net p -> Pastry.owner_of_key p key

let next_hop net id key =
  match net with
  | Can_net t -> Topology.next_hop t id (Key.to_point key)
  | Chord_net c -> Chord.next_hop c id key
  | Pastry_net p -> Pastry.next_hop p id key

let route net ~from key =
  match net with
  | Can_net t -> Topology.route t ~from (Key.to_point key)
  | Chord_net c -> Chord.route c ~from key
  | Pastry_net p -> Pastry.route p ~from key

let of_can_change (c : Topology.change) =
  { subject = c.Topology.subject; peer = c.Topology.peer; affected = c.Topology.affected }

let of_chord_change (c : Chord.change) =
  { subject = c.Chord.subject; peer = c.Chord.peer; affected = c.Chord.affected }

let of_pastry_change (c : Pastry.change) =
  { subject = c.Pastry.subject; peer = c.Pastry.peer; affected = c.Pastry.affected }

let join_random net ~rng =
  match net with
  | Can_net t -> of_can_change (Topology.join_random t ~rng)
  | Chord_net c -> of_chord_change (Chord.join_random c ~rng)
  | Pastry_net p -> of_pastry_change (Pastry.join_random p ~rng)

let leave net id =
  match net with
  | Can_net t -> of_can_change (Topology.leave t id)
  | Chord_net c -> of_chord_change (Chord.leave c id)
  | Pastry_net p -> of_pastry_change (Pastry.leave p id)

let check_invariants = function
  | Can_net t -> Topology.check_invariants t
  | Chord_net c -> Chord.check_invariants c
  | Pastry_net p -> Pastry.check_invariants p

let as_can = function Can_net t -> Some t | Chord_net _ | Pastry_net _ -> None
let as_chord = function Chord_net c -> Some c | Can_net _ | Pastry_net _ -> None
let as_pastry = function Pastry_net p -> Some p | Can_net _ | Chord_net _ -> None
