type t = int

let of_int i =
  if i < 0 then invalid_arg "Key.of_int: negative key";
  i

let to_int t = t
let equal = Int.equal
let compare = Int.compare
let hash = Hashtbl.hash
let pp fmt t = Format.fprintf fmt "k%d" t

let to_unit_float bits =
  Int64.to_float (Int64.shift_right_logical bits 11) *. 0x1p-53

let to_point t =
  let x = to_unit_float (Cup_prng.Splitmix.mix (Int64.of_int t)) in
  let y =
    to_unit_float
      (Cup_prng.Splitmix.mix
         (Int64.logxor (Int64.of_int t) 0x6A09E667F3BCC909L))
  in
  Point.make ~x ~y

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
