type t = { x_lo : float; x_hi : float; y_lo : float; y_hi : float }

let unit = { x_lo = 0.; x_hi = 1.; y_lo = 0.; y_hi = 1. }

let make ~x_lo ~x_hi ~y_lo ~y_hi =
  let valid lo hi = 0. <= lo && lo < hi && hi <= 1. in
  if not (valid x_lo x_hi && valid y_lo y_hi) then
    invalid_arg "Zone.make: bounds must satisfy 0 <= lo < hi <= 1";
  { x_lo; x_hi; y_lo; y_hi }

let contains z (p : Point.t) =
  z.x_lo <= p.x && p.x < z.x_hi && z.y_lo <= p.y && p.y < z.y_hi

let split z =
  let width = z.x_hi -. z.x_lo and height = z.y_hi -. z.y_lo in
  if width >= height then
    let mid = (z.x_lo +. z.x_hi) /. 2. in
    ({ z with x_hi = mid }, { z with x_lo = mid })
  else
    let mid = (z.y_lo +. z.y_hi) /. 2. in
    ({ z with y_hi = mid }, { z with y_lo = mid })

let volume z = (z.x_hi -. z.x_lo) *. (z.y_hi -. z.y_lo)

let center z =
  Point.make ~x:((z.x_lo +. z.x_hi) /. 2.) ~y:((z.y_lo +. z.y_hi) /. 2.)

(* Coordinates 0. and 1. denote the same torus seam. *)
let seam_eq a b =
  a = b || (a = 0. && b = 1.) || (a = 1. && b = 0.)

let intervals_abut a_lo a_hi b_lo b_hi =
  seam_eq a_hi b_lo || seam_eq b_hi a_lo

let intervals_overlap a_lo a_hi b_lo b_hi =
  Float.min a_hi b_hi -. Float.max a_lo b_lo > 0.

let adjacent a b =
  let x_abut = intervals_abut a.x_lo a.x_hi b.x_lo b.x_hi in
  let y_abut = intervals_abut a.y_lo a.y_hi b.y_lo b.y_hi in
  let x_overlap = intervals_overlap a.x_lo a.x_hi b.x_lo b.x_hi in
  let y_overlap = intervals_overlap a.y_lo a.y_hi b.y_lo b.y_hi in
  (x_abut && y_overlap) || (y_abut && x_overlap)

let axis_distance_to_interval c lo hi =
  if lo <= c && c < hi then 0.
  else Float.min (Point.axis_distance c lo) (Point.axis_distance c hi)

let distance_to_point z (p : Point.t) =
  let dx = axis_distance_to_interval p.x z.x_lo z.x_hi in
  let dy = axis_distance_to_interval p.y z.y_lo z.y_hi in
  sqrt ((dx *. dx) +. (dy *. dy))

let equal a b =
  a.x_lo = b.x_lo && a.x_hi = b.x_hi && a.y_lo = b.y_lo && a.y_hi = b.y_hi

let pp fmt z =
  Format.fprintf fmt "[%.4f,%.4f)x[%.4f,%.4f)" z.x_lo z.x_hi z.y_lo z.y_hi
