(** Identifiers for overlay nodes.

    Dense small integers assigned at join time; usable as array indices
    in per-node state tables. *)

type t = private int

val of_int : int -> t
(** Raises [Invalid_argument] on negative input. *)

val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Table : Hashtbl.S with type key = t
