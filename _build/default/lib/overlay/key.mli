(** Keys of the global index.

    A key names a piece of content.  Following the CAN scheme the paper
    assumes, a key is hashed onto a point of the coordinate space with
    a uniform hash; the node whose zone contains that point is the
    key's {e authority node}. *)

type t = private int

val of_int : int -> t
(** Raises [Invalid_argument] on negative input. *)

val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

val to_point : t -> Point.t
(** Deterministic uniform hash of the key onto the coordinate space.
    Same key, same point, on every platform. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Table : Hashtbl.S with type key = t
