(** Points of the CAN coordinate space: the 2-d unit torus.

    The CAN paper maps keys onto a d-dimensional torus; the CUP paper
    evaluates on a two-dimensional one, which we fix here.  All
    coordinates live in [\[0, 1)]. *)

type t = { x : float; y : float }

val make : x:float -> y:float -> t
(** Coordinates are wrapped into [\[0, 1)]. *)

val axis_distance : float -> float -> float
(** Circular distance between two coordinates on the unit circle;
    always in [\[0, 0.5\]]. *)

val distance : t -> t -> float
(** Euclidean distance on the torus. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
