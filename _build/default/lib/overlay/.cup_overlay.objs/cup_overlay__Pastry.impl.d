lib/overlay/pastry.ml: Array Cup_prng Format Hashtbl Int64 Key List Map Node_id Result Stdlib
