lib/overlay/topology.mli: Cup_prng Key Node_id Point Zone
