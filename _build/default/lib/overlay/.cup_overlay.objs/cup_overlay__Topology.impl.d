lib/overlay/topology.ml: Cup_prng Float Format Key List Node_id Point Printf Result Zone
