lib/overlay/point.ml: Float Format
