lib/overlay/node_id.ml: Format Hashtbl Int Map Set
