lib/overlay/chord.mli: Cup_prng Key Node_id
