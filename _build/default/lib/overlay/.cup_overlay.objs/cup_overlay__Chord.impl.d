lib/overlay/chord.ml: Array Cup_prng Format Hashtbl Int64 Key List Map Node_id Result
