lib/overlay/zone.ml: Float Format Point
