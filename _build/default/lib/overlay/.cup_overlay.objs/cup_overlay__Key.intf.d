lib/overlay/key.mli: Format Hashtbl Map Point Set
