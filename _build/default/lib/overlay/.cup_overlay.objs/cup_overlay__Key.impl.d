lib/overlay/key.ml: Cup_prng Format Hashtbl Int Int64 Map Point Set
