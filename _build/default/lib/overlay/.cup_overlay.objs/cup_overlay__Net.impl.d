lib/overlay/net.ml: Chord Key Node_id Pastry Topology
