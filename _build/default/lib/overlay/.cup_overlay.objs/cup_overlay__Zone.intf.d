lib/overlay/zone.mli: Format Point
