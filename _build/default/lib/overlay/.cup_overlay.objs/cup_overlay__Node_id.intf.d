lib/overlay/node_id.mli: Format Hashtbl Map Set
