lib/overlay/net.mli: Chord Cup_prng Key Node_id Pastry Topology
