lib/overlay/point.mli: Format
