lib/overlay/pastry.mli: Cup_prng Key Node_id
