(** Rectangular zones of the CAN coordinate space.

    A zone is a half-open axis-aligned rectangle
    [\[x_lo, x_hi) × \[y_lo, y_hi)] inside the unit square.  Zones are
    produced only by binary splits of the unit square, so all bounds
    are exact dyadic floats and equality tests on bounds are exact —
    the adjacency test relies on this. *)

type t = private { x_lo : float; x_hi : float; y_lo : float; y_hi : float }

val unit : t
(** The whole coordinate space. *)

val make : x_lo:float -> x_hi:float -> y_lo:float -> y_hi:float -> t
(** Raises [Invalid_argument] unless [0 <= lo < hi <= 1] in each
    dimension. *)

val contains : t -> Point.t -> bool

val split : t -> t * t
(** [split z] halves [z] along its longer dimension (x on ties).  The
    first component is the low half. *)

val volume : t -> float

val center : t -> Point.t

val adjacent : t -> t -> bool
(** [adjacent a b] is [true] when [a] and [b] share a border segment of
    positive length on the torus (they abut in one dimension, possibly
    across the wrap-around seam, and overlap in the other).  A zone is
    not adjacent to itself unless it wraps the whole torus in some
    dimension. *)

val distance_to_point : t -> Point.t -> float
(** Torus distance from the point to the nearest point of the zone;
    [0.] if the point is inside. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
