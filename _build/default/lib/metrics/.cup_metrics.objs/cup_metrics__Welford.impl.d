lib/metrics/welford.ml: Float
