lib/metrics/counters.mli: Format Histogram Welford
