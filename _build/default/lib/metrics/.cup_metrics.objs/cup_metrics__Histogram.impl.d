lib/metrics/histogram.ml: Array Float Format Stdlib
