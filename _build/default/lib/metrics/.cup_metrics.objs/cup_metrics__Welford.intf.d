lib/metrics/welford.mli:
