lib/metrics/counters.ml: Format Histogram Welford
