(** Running mean / variance / extrema (Welford's online algorithm).

    Used for per-miss latency so runs with millions of misses do not
    need to retain per-sample data. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
(** [0.] when empty. *)

val variance : t -> float
(** Population variance; [0.] with fewer than two samples. *)

val stddev : t -> float
val min : t -> float
(** [nan] when empty. *)

val max : t -> float
(** [nan] when empty. *)

val total : t -> float

val merge : t -> t -> t
(** Exact combination of two sample sets (Chan et al.'s parallel
    update). *)
