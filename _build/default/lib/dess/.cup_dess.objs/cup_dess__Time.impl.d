lib/dess/time.ml: Float Format Stdlib
