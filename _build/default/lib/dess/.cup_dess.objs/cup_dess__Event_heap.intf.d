lib/dess/event_heap.mli: Time
