lib/dess/engine.ml: Event_heap Time
