lib/dess/event_heap.ml: Array Time
