lib/dess/engine.mli: Time
