lib/dess/time.mli: Format
