(** Simulated time.

    Time is a float number of seconds since the start of a run.  A thin
    module (rather than a bare [float]) so call sites read as time
    arithmetic and so the representation could change without touching
    the protocol code. *)

type t = float

val zero : t
val of_seconds : float -> t
val to_seconds : t -> float
val add : t -> float -> t
val diff : t -> t -> float
(** [diff later earlier] is [later - earlier] in seconds. *)

val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t
val compare : t -> t -> int
val is_finite : t -> bool
val infinity : t
val pp : Format.formatter -> t -> unit
