type t = float

let zero = 0.
let of_seconds s = s
let to_seconds t = t
let add t s = t +. s
let diff later earlier = later -. earlier
let ( <= ) = Stdlib.( <= )
let ( < ) = Stdlib.( < )
let ( >= ) = Stdlib.( >= )
let ( > ) = Stdlib.( > )
let min = Stdlib.min
let max = Stdlib.max
let compare = Float.compare
let is_finite = Float.is_finite
let infinity = Float.infinity
let pp fmt t = Format.fprintf fmt "%.3fs" t
