type t = {
  mutable clock : Time.t;
  mutable executed : int;
  mutable stopping : bool;
  queue : (t -> unit) Event_heap.t;
}

type handle = Event_heap.handle

let create () =
  {
    clock = Time.zero;
    executed = 0;
    stopping = false;
    queue = Event_heap.create ();
  }

let now t = t.clock

let schedule t ~at f =
  if not (Time.is_finite at) then
    invalid_arg "Engine.schedule: time must be finite";
  if Time.(at < t.clock) then
    invalid_arg "Engine.schedule: cannot schedule in the past";
  Event_heap.push t.queue ~time:at f

let schedule_after t ~delay f =
  if delay < 0. then invalid_arg "Engine.schedule_after: negative delay";
  schedule t ~at:(Time.add t.clock delay) f

let cancel t handle = Event_heap.cancel t.queue handle

let stop t = t.stopping <- true

let run ?(until = Time.infinity) ?(max_events = max_int) t =
  t.stopping <- false;
  let budget = ref max_events in
  let rec loop () =
    if t.stopping || !budget <= 0 then ()
    else
      match Event_heap.peek_time t.queue with
      | None -> ()
      | Some time when Time.(time > until) ->
          if Time.is_finite until then t.clock <- Time.max t.clock until
      | Some _ -> (
          match Event_heap.pop t.queue with
          | None -> ()
          | Some (time, f) ->
              t.clock <- time;
              t.executed <- t.executed + 1;
              decr budget;
              f t;
              loop ())
  in
  loop ()

let pending t = Event_heap.length t.queue

let events_executed t = t.executed
