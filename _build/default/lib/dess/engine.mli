(** Sequential discrete-event simulation engine.

    This replaces the Stanford Narses simulator used by the paper: a
    single virtual clock and an event queue.  Callbacks scheduled with
    {!schedule} run at their timestamp in nondecreasing time order;
    equal timestamps run in scheduling order, so a run is a pure
    function of its inputs and random seed.

    A callback may schedule further events (including at the current
    instant) and may cancel pending ones. *)

type t

type handle
(** A pending event, usable with {!cancel}. *)

val create : unit -> t

val now : t -> Time.t
(** Current virtual time.  [Time.zero] before the first event. *)

val schedule : t -> at:Time.t -> (t -> unit) -> handle
(** [schedule t ~at f] runs [f t] at virtual time [at].  Raises
    [Invalid_argument] if [at] is in the past or not finite. *)

val schedule_after : t -> delay:float -> (t -> unit) -> handle
(** [schedule_after t ~delay f] is [schedule t ~at:(now t + delay) f].
    Requires [delay >= 0.]. *)

val cancel : t -> handle -> bool
(** Cancel a pending event; [false] if it already ran or was cancelled. *)

val stop : t -> unit
(** Stop the current {!run} after the executing callback returns. *)

val run : ?until:Time.t -> ?max_events:int -> t -> unit
(** [run t] executes events until the queue empties, [until] is
    exceeded (events strictly after [until] stay queued and [now]
    becomes [until]), [max_events] callbacks have run, or {!stop} is
    called. *)

val pending : t -> int
(** Number of scheduled, not-yet-fired, not-cancelled events. *)

val events_executed : t -> int
(** Total callbacks run since [create]. *)
