module Time = Cup_dess.Time
module Rng = Cup_prng.Rng
module Dist = Cup_prng.Dist
module Heap = Cup_dess.Event_heap

type event_kind = Birth | Refresh | Death

type event = {
  at : Time.t;
  kind : event_kind;
  key_index : int;
  replica : int;
  lifetime : float;
}

type pending = { p_kind : event_kind; p_key : int; p_replica : int }

type t = {
  rng : Rng.t;
  lifetime : float;
  stop : Time.t;
  death_prob : float;
  heap : pending Heap.t;
  mutable next_replica : int;
}

let fresh_replica t =
  let r = t.next_replica in
  t.next_replica <- r + 1;
  r

let schedule t ~at kind key replica =
  if Time.(at <= t.stop) then
    ignore
      (Heap.push t.heap ~time:at { p_kind = kind; p_key = key; p_replica = replica })

let create ~rng ~keys ~replicas_per_key ~lifetime ~stop ?(death_prob = 0.) () =
  if keys <= 0 then invalid_arg "Replica_gen.create: keys must be > 0";
  if replicas_per_key <= 0 then
    invalid_arg "Replica_gen.create: replicas_per_key must be > 0";
  if not (lifetime > 0.) then
    invalid_arg "Replica_gen.create: lifetime must be > 0";
  if death_prob < 0. || death_prob > 1. then
    invalid_arg "Replica_gen.create: death_prob must be in [0, 1]";
  let t =
    {
      rng;
      lifetime;
      stop;
      death_prob;
      heap = Heap.create ();
      next_replica = 0;
    }
  in
  for key = 0 to keys - 1 do
    for _ = 1 to replicas_per_key do
      let replica = fresh_replica t in
      (* Stagger births across the first lifetime window so refresh
         points do not all align. *)
      let at = Time.of_seconds (Rng.float rng *. lifetime) in
      schedule t ~at Birth key replica
    done
  done;
  t

let next t =
  match Heap.pop t.heap with
  | None -> None
  | Some (at, p) ->
      let emit kind =
        { at; kind; key_index = p.p_key; replica = p.p_replica;
          lifetime = t.lifetime }
      in
      (match p.p_kind with
      | Birth | Refresh ->
          (* The entry expires one lifetime from now; the replica then
             refreshes or (with death_prob) dies and is replaced. *)
          let next_at = Time.add at t.lifetime in
          if Dist.bernoulli t.rng ~p:t.death_prob then begin
            schedule t ~at:next_at Death p.p_key p.p_replica;
            let replacement = fresh_replica t in
            schedule t ~at:next_at Birth p.p_key replacement
          end
          else schedule t ~at:next_at Refresh p.p_key p.p_replica
      | Death -> ());
      Some (emit p.p_kind)

let fold t ~init ~f =
  let rec loop acc = match next t with None -> acc | Some e -> loop (f acc e) in
  loop init
