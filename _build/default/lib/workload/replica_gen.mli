(** Replica lifecycle workload (Sections 2.1, 3.2, 3.6).

    Each key is served by a population of replicas.  A replica is born
    at a staggered time in the first lifetime window and then sends a
    keep-alive {e refresh} to the authority exactly when its index
    entry expires — "for all experiments, refreshes of index entries
    occur at expiration".  Optionally a replica dies at a refresh
    point with probability [death_prob]; a replacement replica is born
    at the same instant so the population per key stays constant (the
    paper's "replicas of existing content are continuously added").

    The stream yields events in nondecreasing time order. *)

type event_kind =
  | Birth  (** the replica starts serving the key *)
  | Refresh  (** keep-alive extending the entry by one lifetime *)
  | Death  (** the replica stops serving (emits a deletion) *)

type event = {
  at : Cup_dess.Time.t;
  kind : event_kind;
  key_index : int;
  replica : int;  (** globally unique replica number *)
  lifetime : float;  (** entry lifetime granted by Birth/Refresh *)
}

type t

val create :
  rng:Cup_prng.Rng.t ->
  keys:int ->
  replicas_per_key:int ->
  lifetime:float ->
  stop:Cup_dess.Time.t ->
  ?death_prob:float ->
  unit ->
  t
(** Requires [keys > 0], [replicas_per_key > 0], [lifetime > 0.],
    [0. <= death_prob <= 1.] (default [0.]). *)

val next : t -> event option
(** Next lifecycle event, or [None] once the stream reaches [stop]. *)

val fold : t -> init:'a -> f:('a -> event -> 'a) -> 'a
