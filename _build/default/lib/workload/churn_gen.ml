module Time = Cup_dess.Time
module Dist = Cup_prng.Dist

type event_kind = Join | Leave

type event = { at : Time.t; kind : event_kind }

type t = {
  rng : Cup_prng.Rng.t;
  join_rate : float;
  leave_rate : float;
  stop : Time.t;
  mutable next_join : Time.t;
  mutable next_leave : Time.t;
}

let draw rng clock rate =
  if rate > 0. then Time.add clock (Dist.exponential rng ~rate)
  else Time.infinity

let create ~rng ~join_rate ~leave_rate ~start ~stop =
  if join_rate < 0. || leave_rate < 0. then
    invalid_arg "Churn_gen.create: negative rate";
  {
    rng;
    join_rate;
    leave_rate;
    stop;
    next_join = draw rng start join_rate;
    next_leave = draw rng start leave_rate;
  }

let next t =
  let at, kind =
    if Time.(t.next_join <= t.next_leave) then (t.next_join, Join)
    else (t.next_leave, Leave)
  in
  if (not (Time.is_finite at)) || Time.(at > t.stop) then None
  else begin
    (match kind with
    | Join -> t.next_join <- draw t.rng at t.join_rate
    | Leave -> t.next_leave <- draw t.rng at t.leave_rate);
    Some { at; kind }
  end
