(** Node arrival/departure workload (Section 2.9).

    Joins and leaves each arrive as independent Poisson processes.
    The generator emits abstract events; the simulation decides which
    concrete node leaves (uniformly at random among the alive ones)
    because it owns the current membership. *)

type event_kind = Join | Leave

type event = { at : Cup_dess.Time.t; kind : event_kind }

type t

val create :
  rng:Cup_prng.Rng.t ->
  join_rate:float ->
  leave_rate:float ->
  start:Cup_dess.Time.t ->
  stop:Cup_dess.Time.t ->
  t
(** Rates in events/second; a rate of [0.] disables that kind. *)

val next : t -> event option
