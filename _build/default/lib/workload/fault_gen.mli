(** Outgoing-capacity fault schedules (Section 3.7).

    Both experiments degrade a random 20 % of the nodes to a reduced
    outgoing update capacity [c]:

    - {b Up-And-Down}: after a warm-up period, a random set is
      degraded for [down] seconds, restored, the network stabilizes
      for [gap] seconds, then a fresh random set is degraded — for as
      long as queries are posted.
    - {b Once-Down-Always-Down}: after the warm-up a single random set
      is degraded and never restored.

    The stream yields batches of capacity changes in time order. *)

type change = { node_index : int; capacity : float }

type event = { at : Cup_dess.Time.t; changes : change list }

type t

val up_and_down :
  rng:Cup_prng.Rng.t ->
  nodes:int ->
  fraction:float ->
  reduced:float ->
  warmup:float ->
  down:float ->
  gap:float ->
  stop:Cup_dess.Time.t ->
  t
(** The paper's configuration is [fraction = 0.2], [warmup = 300.]
    (five minutes), [down = 600.] (ten minutes), [gap = 300.]. *)

val once_down :
  rng:Cup_prng.Rng.t ->
  nodes:int ->
  fraction:float ->
  reduced:float ->
  warmup:float ->
  t

val next : t -> event option
