module Time = Cup_dess.Time
module Rng = Cup_prng.Rng

type change = { node_index : int; capacity : float }

type event = { at : Time.t; changes : change list }

type t = { mutable events : event list }

let check ~nodes ~fraction ~reduced =
  if nodes <= 0 then invalid_arg "Fault_gen: nodes must be > 0";
  if fraction < 0. || fraction > 1. then
    invalid_arg "Fault_gen: fraction must be in [0, 1]";
  if reduced < 0. || reduced > 1. then
    invalid_arg "Fault_gen: reduced capacity must be in [0, 1]"

let pick_set rng ~nodes ~fraction ~capacity =
  let k = int_of_float (Float.round (fraction *. float_of_int nodes)) in
  let chosen = Rng.sample_without_replacement rng k nodes in
  Array.to_list (Array.map (fun i -> { node_index = i; capacity }) chosen)

let up_and_down ~rng ~nodes ~fraction ~reduced ~warmup ~down ~gap ~stop =
  check ~nodes ~fraction ~reduced;
  let events = ref [] in
  let t = ref warmup in
  while Time.(Time.of_seconds !t < stop) do
    let degraded = pick_set rng ~nodes ~fraction ~capacity:reduced in
    events := { at = Time.of_seconds !t; changes = degraded } :: !events;
    let restore_at = !t +. down in
    let restored =
      List.map (fun c -> { c with capacity = 1. }) degraded
    in
    if Time.(Time.of_seconds restore_at < stop) then
      events := { at = Time.of_seconds restore_at; changes = restored } :: !events;
    t := restore_at +. gap
  done;
  { events = List.rev !events }

let once_down ~rng ~nodes ~fraction ~reduced ~warmup =
  check ~nodes ~fraction ~reduced;
  let degraded = pick_set rng ~nodes ~fraction ~capacity:reduced in
  { events = [ { at = Time.of_seconds warmup; changes = degraded } ] }

let next t =
  match t.events with
  | [] -> None
  | e :: rest ->
      t.events <- rest;
      Some e
