module Time = Cup_dess.Time
module Rng = Cup_prng.Rng
module Dist = Cup_prng.Dist

type key_dist = Uniform of int | Zipf of int * float | Fixed of int

type event = { at : Time.t; key_index : int; node_index : int }

type sampler = Uniform_s of int | Zipf_s of Dist.zipf | Fixed_s of int

type t = {
  rng : Rng.t;
  rate : float;
  stop : Time.t;
  nodes : int;
  sampler : sampler;
  mutable clock : Time.t;
}

let create ~rng ~rate ~start ~stop ~nodes ~key_dist =
  if not (rate > 0.) then invalid_arg "Query_gen.create: rate must be > 0";
  if nodes <= 0 then invalid_arg "Query_gen.create: nodes must be > 0";
  if Time.(stop < start) then invalid_arg "Query_gen.create: stop < start";
  let sampler =
    match key_dist with
    | Uniform n ->
        if n <= 0 then invalid_arg "Query_gen.create: need >= 1 key";
        Uniform_s n
    | Zipf (n, s) -> Zipf_s (Dist.zipf ~n ~s)
    | Fixed i ->
        if i < 0 then invalid_arg "Query_gen.create: negative key index";
        Fixed_s i
  in
  { rng; rate; stop; nodes; sampler; clock = start }

let sample_key t =
  match t.sampler with
  | Uniform_s n -> Rng.int t.rng n
  | Zipf_s z -> Dist.zipf_sample z t.rng
  | Fixed_s i -> i

let next t =
  let gap = Dist.exponential t.rng ~rate:t.rate in
  let at = Time.add t.clock gap in
  if Time.(at > t.stop) then begin
    t.clock <- t.stop;
    None
  end
  else begin
    t.clock <- at;
    Some { at; key_index = sample_key t; node_index = Rng.int t.rng t.nodes }
  end

let fold t ~init ~f =
  let rec loop acc = match next t with None -> acc | Some e -> loop (f acc e) in
  loop init
