(** Search-query workload (Section 3.2).

    Queries arrive network-wide as a Poisson process with rate
    [rate] queries/second between [start] and [stop].  Each query
    picks a key from the configured popularity distribution and a
    posting node uniformly from [0, nodes) — "nodes were randomly
    selected to post the queries".

    The generator is a pull stream so the simulator can schedule one
    arrival at a time instead of materializing millions of events. *)

type key_dist =
  | Uniform of int  (** uniform over [n] keys *)
  | Zipf of int * float  (** [n] keys with Zipf exponent [s] *)
  | Fixed of int  (** every query targets key index [i] (flash crowd) *)

type event = { at : Cup_dess.Time.t; key_index : int; node_index : int }

type t

val create :
  rng:Cup_prng.Rng.t ->
  rate:float ->
  start:Cup_dess.Time.t ->
  stop:Cup_dess.Time.t ->
  nodes:int ->
  key_dist:key_dist ->
  t
(** Requires [rate > 0.], [nodes > 0], [start <= stop]. *)

val next : t -> event option
(** The next arrival, or [None] once past [stop].  Arrival times are
    strictly increasing. *)

val fold : t -> init:'a -> f:('a -> event -> 'a) -> 'a
(** Drain the stream (for tests and non-interactive analyses). *)
