lib/workload/fault_gen.ml: Array Cup_dess Cup_prng Float List
