lib/workload/replica_gen.ml: Cup_dess Cup_prng
