lib/workload/churn_gen.ml: Cup_dess Cup_prng
