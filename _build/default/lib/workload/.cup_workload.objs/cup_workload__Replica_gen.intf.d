lib/workload/replica_gen.mli: Cup_dess Cup_prng
