lib/workload/fault_gen.mli: Cup_dess Cup_prng
