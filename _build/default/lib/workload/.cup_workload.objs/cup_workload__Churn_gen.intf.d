lib/workload/churn_gen.mli: Cup_dess Cup_prng
