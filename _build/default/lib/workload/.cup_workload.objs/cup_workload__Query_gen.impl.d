lib/workload/query_gen.ml: Cup_dess Cup_prng
