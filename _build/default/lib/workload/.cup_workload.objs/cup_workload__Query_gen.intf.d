lib/workload/query_gen.mli: Cup_dess Cup_prng
