(** Minimal CSV output for experiment results.

    Values are quoted only when needed (comma, quote, or newline in
    the cell), per RFC 4180. *)

val escape : string -> string

val row_to_string : string list -> string

val write : path:string -> header:string list -> string list list -> unit
(** Write a whole file: header then rows. *)
