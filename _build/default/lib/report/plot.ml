type series = { label : string; points : (float * float) list }

let markers = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&' |]

let render ?(width = 60) ?(height = 20) ?(log_y = false) ~title ~x_label
    ~y_label series =
  let transform y = if log_y then log10 (Float.max y 1e-12) else y in
  let all_points =
    List.concat_map (fun s -> List.map (fun (x, y) -> (x, transform y)) s.points)
      series
  in
  if all_points = [] then title ^ "\n(no data)\n"
  else begin
    let xs = List.map fst all_points and ys = List.map snd all_points in
    let x_min = List.fold_left Float.min Float.infinity xs in
    let x_max = List.fold_left Float.max Float.neg_infinity xs in
    let y_min = List.fold_left Float.min Float.infinity ys in
    let y_max = List.fold_left Float.max Float.neg_infinity ys in
    let x_span = if x_max > x_min then x_max -. x_min else 1. in
    let y_span = if y_max > y_min then y_max -. y_min else 1. in
    let grid = Array.make_matrix height width ' ' in
    List.iteri
      (fun si s ->
        let marker = markers.(si mod Array.length markers) in
        List.iter
          (fun (x, y) ->
            let y = transform y in
            let col =
              int_of_float
                (Float.round ((x -. x_min) /. x_span *. float_of_int (width - 1)))
            in
            let row =
              height - 1
              - int_of_float
                  (Float.round
                     ((y -. y_min) /. y_span *. float_of_int (height - 1)))
            in
            if row >= 0 && row < height && col >= 0 && col < width then
              grid.(row).(col) <- marker)
          s.points)
      series;
    let buf = Buffer.create 2048 in
    Buffer.add_string buf title;
    Buffer.add_char buf '\n';
    let y_axis_value row =
      let frac = float_of_int (height - 1 - row) /. float_of_int (height - 1) in
      let v = y_min +. (frac *. y_span) in
      if log_y then Float.pow 10. v else v
    in
    Array.iteri
      (fun row line ->
        let label =
          if row = 0 || row = height - 1 || row = height / 2 then
            Printf.sprintf "%10.4g |" (y_axis_value row)
          else Printf.sprintf "%10s |" ""
        in
        Buffer.add_string buf label;
        Buffer.add_string buf (String.init width (fun c -> line.(c)));
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf (Printf.sprintf "%10s +%s\n" "" (String.make width '-'));
    Buffer.add_string buf
      (Printf.sprintf "%10s  %-8.4g%s%8.4g\n" ""
         x_min
         (String.make (max 1 (width - 16)) ' ')
         x_max);
    Buffer.add_string buf
      (Printf.sprintf "%10s  x: %s, y: %s%s\n" "" x_label y_label
         (if log_y then " (log scale)" else ""));
    List.iteri
      (fun si s ->
        Buffer.add_string buf
          (Printf.sprintf "%10s  %c = %s\n" ""
             markers.(si mod Array.length markers)
             s.label))
      series;
    Buffer.contents buf
  end

let print ?width ?height ?log_y ~title ~x_label ~y_label series =
  print_string (render ?width ?height ?log_y ~title ~x_label ~y_label series);
  print_newline ()
