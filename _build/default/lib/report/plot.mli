(** ASCII line plots for the reproduced figures.

    Renders one or more named series of [(x, y)] points onto a
    character grid — enough to eyeball the shapes the paper's figures
    show (monotone decrease, interior minimum, graceful degradation)
    straight from the benchmark output. *)

type series = { label : string; points : (float * float) list }

val render :
  ?width:int ->
  ?height:int ->
  ?log_y:bool ->
  title:string ->
  x_label:string ->
  y_label:string ->
  series list ->
  string
(** [width]/[height] are the plot-area size in characters (defaults
    60x20).  [log_y] plots log10 of the values (the paper's Figures 4
    and 6 use log-scale y axes).  Series are drawn with the markers
    [*], [o], [+], [x], ... in order. *)

val print :
  ?width:int ->
  ?height:int ->
  ?log_y:bool ->
  title:string ->
  x_label:string ->
  y_label:string ->
  series list ->
  unit
