lib/report/plot.ml: Array Buffer Float List Printf String
