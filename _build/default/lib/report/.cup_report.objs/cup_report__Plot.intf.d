lib/report/plot.mli:
