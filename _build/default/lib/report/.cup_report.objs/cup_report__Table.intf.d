lib/report/table.mli:
