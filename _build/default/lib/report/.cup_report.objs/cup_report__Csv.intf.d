lib/report/csv.mli:
