type row = Cells of string list | Separator

type t = {
  title : string;
  columns : string list;
  mutable rows : row list; (* reverse order *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let looks_numeric s =
  s <> ""
  && String.for_all
       (fun c ->
         (c >= '0' && c <= '9')
         || c = '.' || c = '-' || c = '+' || c = '(' || c = ')' || c = '%'
         || c = 'e' || c = 'x')
       s

let render t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.columns) in
  List.iter
    (function
      | Separator -> ()
      | Cells cells ->
          List.iteri
            (fun i cell ->
              if String.length cell > widths.(i) then
                widths.(i) <- String.length cell)
            cells)
    rows;
  let buf = Buffer.create 1024 in
  let pad i cell =
    let w = widths.(i) in
    let n = w - String.length cell in
    if looks_numeric cell then String.make n ' ' ^ cell
    else cell ^ String.make n ' '
  in
  let total_width =
    Array.fold_left ( + ) 0 widths + (3 * (Array.length widths - 1))
  in
  let hline = String.make (max total_width (String.length t.title)) '-' in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  Buffer.add_string buf hline;
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (String.concat " | "
       (List.mapi (fun i c -> pad i c) t.columns));
  Buffer.add_char buf '\n';
  Buffer.add_string buf hline;
  Buffer.add_char buf '\n';
  List.iter
    (function
      | Separator ->
          Buffer.add_string buf hline;
          Buffer.add_char buf '\n'
      | Cells cells ->
          Buffer.add_string buf
            (String.concat " | " (List.mapi (fun i c -> pad i c) cells));
          Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let cell_int n = string_of_int n

let cell_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x

let cell_ratio ?(decimals = 2) x = Printf.sprintf "(%.*f)" decimals x
