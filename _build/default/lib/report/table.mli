(** Paper-style ASCII tables.

    A table is a header row plus data rows of strings; rendering
    right-aligns numeric-looking cells and pads columns.  Used by the
    benchmark harness to print each reproduced table in a layout close
    to the paper's. *)

type t

val create : title:string -> columns:string list -> t

val add_row : t -> string list -> unit
(** Raises [Invalid_argument] if the arity differs from [columns]. *)

val add_separator : t -> unit

val render : t -> string

val print : t -> unit
(** [render] to stdout, followed by a blank line. *)

(** {1 Cell formatting helpers} *)

val cell_int : int -> string
val cell_float : ?decimals:int -> float -> string
val cell_ratio : ?decimals:int -> float -> string
(** Formats like the paper's parenthesized normalizations: ["(0.27)"]. *)
