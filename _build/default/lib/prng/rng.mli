(** Simulation random streams.

    A thin stateful wrapper over {!Splitmix} that adds named substreams.
    Every stochastic component of the simulator (query generator, replica
    lifecycle, fault injector, per-node tie-breaking, ...) draws from its
    own substream, so adding draws to one component never perturbs the
    sequence seen by another.  This keeps experiment runs comparable
    across configurations that share a master seed. *)

type t

val create : seed:int -> t
(** [create ~seed] is a root stream derived from [seed]. *)

val substream : t -> string -> t
(** [substream t name] is a stream deterministically derived from [t]'s
    seed and [name].  Same [(seed, name)] always yields the same stream;
    repeated calls return fresh, identically-seeded streams. *)

val split : t -> t
(** [split t] draws a child stream from [t], advancing [t]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val float_range : t -> float -> float -> float
(** [float_range t lo hi] is uniform in [\[lo, hi)].  Requires [lo < hi]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. *)

val int64 : t -> int64
(** 64 uniform bits. *)

val bool : t -> bool

val choice : t -> 'a array -> 'a
(** [choice t arr] picks a uniform element.  Raises [Invalid_argument]
    on an empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t k n] is [k] distinct uniform indices
    from [\[0, n)], in random order.  Requires [0 <= k <= n]. *)
