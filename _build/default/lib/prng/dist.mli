(** Random variates for the simulation workloads.

    The paper's evaluation generates query arrivals as a Poisson process
    (exponential inter-arrivals), picks querying nodes uniformly, and
    leaves the query-popularity distribution as an input; we provide
    uniform and Zipf.  All samplers draw from a {!Rng.t} stream. *)

val exponential : Rng.t -> rate:float -> float
(** [exponential rng ~rate] samples Exp(rate) by inversion.  This is the
    inter-arrival time of a Poisson process with intensity [rate].
    Requires [rate > 0.]. *)

val poisson : Rng.t -> mean:float -> int
(** [poisson rng ~mean] samples a Poisson count.  Uses Knuth's product
    method for small means and a normal approximation above 500 to keep
    the cost bounded.  Requires [mean >= 0.]. *)

val bernoulli : Rng.t -> p:float -> bool
(** [bernoulli rng ~p] is [true] with probability [p] (clamped to
    [\[0, 1\]]). *)

val uniform_int : Rng.t -> n:int -> int
(** Uniform in [\[0, n)]. *)

val normal : Rng.t -> mu:float -> sigma:float -> float
(** Gaussian via Box–Muller. *)

type zipf
(** A precomputed Zipf(s) sampler over [\[0, n)]: rank [k] has
    probability proportional to [1 / (k+1)^s]. *)

val zipf : n:int -> s:float -> zipf
(** [zipf ~n ~s] precomputes the CDF; O(n) space, O(log n) sampling.
    Requires [n > 0] and [s >= 0.]  ([s = 0.] degenerates to uniform). *)

val zipf_sample : zipf -> Rng.t -> int

val zipf_pmf : zipf -> int -> float
(** [zipf_pmf z k] is the probability of rank [k] (for tests). *)

type categorical
(** Arbitrary finite discrete distribution over [\[0, n)]. *)

val categorical : weights:float array -> categorical
(** Requires at least one strictly positive weight; negative weights are
    rejected. *)

val categorical_sample : categorical -> Rng.t -> int
