let exponential rng ~rate =
  if not (rate > 0.) then invalid_arg "Dist.exponential: rate must be > 0";
  (* Inversion: -ln(U)/rate.  [Rng.float] is in [0,1), so guard the
     u = 0 endpoint which would yield infinity. *)
  let rec positive_uniform () =
    let u = Rng.float rng in
    if u > 0. then u else positive_uniform ()
  in
  -.log (positive_uniform ()) /. rate

let normal rng ~mu ~sigma =
  let rec draw () =
    let u1 = Rng.float rng in
    if u1 <= 0. then draw ()
    else
      let u2 = Rng.float rng in
      mu +. (sigma *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))
  in
  draw ()

let poisson rng ~mean =
  if mean < 0. then invalid_arg "Dist.poisson: mean must be >= 0";
  if mean = 0. then 0
  else if mean > 500. then
    (* Normal approximation with continuity correction; exact sampling
       would draw O(mean) uniforms. *)
    let x = normal rng ~mu:mean ~sigma:(sqrt mean) in
    max 0 (int_of_float (Float.round x))
  else
    let limit = exp (-.mean) in
    let rec count k prod =
      let prod = prod *. Rng.float rng in
      if prod <= limit then k else count (k + 1) prod
    in
    count 0 1.

let bernoulli rng ~p =
  if p >= 1. then true else if p <= 0. then false else Rng.float rng < p

let uniform_int rng ~n = Rng.int rng n

type zipf = { cdf : float array; pmf : float array }

let zipf ~n ~s =
  if n <= 0 then invalid_arg "Dist.zipf: n must be > 0";
  if s < 0. then invalid_arg "Dist.zipf: s must be >= 0";
  let pmf = Array.init n (fun k -> 1. /. Float.pow (float_of_int (k + 1)) s) in
  let total = Array.fold_left ( +. ) 0. pmf in
  let acc = ref 0. in
  let cdf =
    Array.map
      (fun w ->
        let w = w /. total in
        acc := !acc +. w;
        !acc)
      pmf
  in
  (* Close the CDF exactly despite float rounding. *)
  cdf.(n - 1) <- 1.;
  { cdf; pmf = Array.map (fun w -> w /. total) pmf }

let zipf_sample z rng =
  let u = Rng.float rng in
  (* Binary search for the first index with cdf >= u. *)
  let lo = ref 0 and hi = ref (Array.length z.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if z.cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

let zipf_pmf z k = z.pmf.(k)

type categorical = zipf

let categorical ~weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Dist.categorical: empty weights";
  Array.iter
    (fun w -> if w < 0. then invalid_arg "Dist.categorical: negative weight")
    weights;
  let total = Array.fold_left ( +. ) 0. weights in
  if not (total > 0.) then invalid_arg "Dist.categorical: all weights zero";
  let acc = ref 0. in
  let cdf =
    Array.map
      (fun w ->
        acc := !acc +. (w /. total);
        !acc)
      weights
  in
  cdf.(n - 1) <- 1.;
  { cdf; pmf = Array.map (fun w -> w /. total) weights }

let categorical_sample = zipf_sample
