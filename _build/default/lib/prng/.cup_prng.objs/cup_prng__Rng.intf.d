lib/prng/rng.mli:
