lib/prng/splitmix.mli:
