type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

(* The SplitMix64 output function: advance by the golden gamma, then
   apply the murmur-style finalizer to the new state. *)
let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let next_float t =
  (* 53 high bits -> [0,1). *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. 0x1p-53

let next_int t bound =
  if bound <= 0 then invalid_arg "Splitmix.next_int: bound must be positive";
  (* Rejection sampling on the top bits to avoid modulo bias. *)
  let bound64 = Int64.of_int bound in
  let rec draw () =
    let bits = Int64.shift_right_logical (next_int64 t) 1 in
    let value = Int64.rem bits bound64 in
    if Int64.(sub (add bits (sub bound64 1L)) value) < 0L then draw ()
    else Int64.to_int value
  in
  draw ()

let split t =
  let seed = next_int64 t in
  (* Mixing with a distinct constant decorrelates the child stream. *)
  { state = mix (Int64.logxor seed 0x5851F42D4C957F2DL) }
