(** SplitMix64: a fast, splittable 64-bit pseudo-random generator.

    This is the generator from Steele, Lea and Flood, "Fast Splittable
    Pseudorandom Number Generators" (OOPSLA 2014), as popularized by
    Vigna's [splitmix64.c].  We use it as the root of all randomness in
    the simulator because it is trivially seedable, has a cheap [split]
    operation for carving independent substreams (one per workload
    generator, one per node, ...), and is fully deterministic across
    platforms — a requirement for reproducible simulation runs. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] makes a fresh generator from a 64-bit seed. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val next_int64 : t -> int64
(** [next_int64 t] advances [t] and returns 64 uniformly random bits. *)

val next_int : t -> int -> int
(** [next_int t bound] is uniform in [\[0, bound)].  [bound] must be
    positive.  Uses rejection sampling, so it is exactly uniform. *)

val next_float : t -> float
(** [next_float t] is uniform in [\[0, 1)], with 53 bits of precision. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of [t]'s subsequent output. *)

val mix : int64 -> int64
(** [mix z] is the stateless SplitMix64 finalizer — a high-quality
    64-bit hash.  Exposed for hashing keys to overlay coordinates. *)
