type t = { gen : Splitmix.t }

let create ~seed = { gen = Splitmix.create (Int64.of_int seed) }

(* FNV-1a over the name, folded into the stream seed.  Cheap, stable,
   and good enough to decorrelate named substreams once passed through
   the SplitMix finalizer. *)
let hash_name name =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    name;
  !h

let substream t name =
  let base = Splitmix.next_int64 (Splitmix.copy t.gen) in
  { gen = Splitmix.create (Splitmix.mix (Int64.logxor base (hash_name name))) }

let split t = { gen = Splitmix.split t.gen }

let float t = Splitmix.next_float t.gen

let float_range t lo hi =
  if not (lo < hi) then invalid_arg "Rng.float_range: lo must be < hi";
  lo +. ((hi -. lo) *. float t)

let int t bound = Splitmix.next_int t.gen bound

let int64 t = Splitmix.next_int64 t.gen

let bool t = Int64.logand (int64 t) 1L = 1L

let choice t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choice: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  (* Partial Fisher–Yates over an index array: O(n) setup, O(k) draws. *)
  let idx = Array.init n (fun i -> i) in
  for i = 0 to k - 1 do
    let j = i + int t (n - i) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  Array.sub idx 0 k
