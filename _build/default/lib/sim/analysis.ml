let justified_probability ~subtree_rate ~window =
  if subtree_rate < 0. || window < 0. then
    invalid_arg "Analysis.justified_probability: negative input";
  1. -. exp (-.subtree_rate *. window)

let miss_cost_per_query ~distance =
  if distance < 0 then invalid_arg "Analysis.miss_cost_per_query";
  2. *. float_of_int distance

let expected_queries_per_window ~rate ~window = rate *. window

let second_chance_subscription_span ~lifetime = 2. *. lifetime

let expected_hit_fraction ~node_rate ~lifetime =
  if node_rate <= 0. then 0.
  else
    let usable = second_chance_subscription_span ~lifetime +. lifetime in
    1. -. exp (-.node_rate *. usable)

let break_even_justified_fraction = 0.5

let optimal_push_level ~rates ~window ~tree_fanout =
  if Array.length rates = 0 then invalid_arg "Analysis.optimal_push_level";
  if tree_fanout <= 1. then invalid_arg "Analysis.optimal_push_level: fanout";
  let network_rate = Array.fold_left ( +. ) 0. rates in
  (* A node at level i roots a subtree holding roughly a fanout^-i
     fraction of the network's query mass.  Push one level deeper as
     long as the marginal update is at least break-even. *)
  let rec deepest level =
    let subtree_rate = network_rate /. Float.pow tree_fanout (float_of_int level) in
    if
      justified_probability ~subtree_rate ~window
      >= break_even_justified_fraction
    then deepest (level + 1)
    else level - 1
  in
  Stdlib.max 0 (deepest 1)
