(** Closed-form results from the paper's cost model (Section 3.1).

    These are the analytic counterparts of what the simulator
    measures; the benchmark's model-vs-simulation target checks the
    two against each other.

    The model: queries for a key arrive at each node of the subtree
    under node [N] as independent Poisson processes; their sum is a
    Poisson process with rate [lambda_subtree].  An update pushed to
    [N] is justified iff at least one query arrives somewhere in
    [N]'s virtual subtree within the update's critical window [t]. *)

val justified_probability : subtree_rate:float -> window:float -> float
(** [1 - exp (-. subtree_rate *. window)] — the paper's example:
    rate 1 q/s and a 6 s window give 0.998. *)

val miss_cost_per_query : distance:int -> float
(** Standard caching, cold path: [2 * D] hops — [D] up to the
    authority and [D] back down the reverse path. *)

val expected_queries_per_window : rate:float -> window:float -> float

val second_chance_subscription_span : lifetime:float -> float
(** How long a second-chance subscription survives after its last
    query: two dry refresh cycles. *)

val expected_hit_fraction :
  node_rate:float -> lifetime:float -> float
(** Probability that a node's next query for a key arrives while its
    entry is still fresh, given the node queries it at Poisson rate
    [node_rate] and a second-chance subscription: the entry stays
    usable for up to [subscription span + lifetime] after a query, so
    a hit needs the next gap below that. *)

val break_even_justified_fraction : float
(** The paper's Section 3.1 claim: pushed updates recover their cost
    when at least this fraction of them is justified (each justified
    update saves two hops — one up, one down — against one pushed
    hop). *)

val optimal_push_level :
  rates:float array -> window:float -> tree_fanout:float -> int
(** The deepest level [p] at which an update pushed to a level-[p]
    node is still more likely justified than not, for a regular tree
    whose level-[i] subtree sees the given per-node query [rates]
    diluted by [tree_fanout^i].  A coarse analytic analogue of the
    Figure 3/4 optimum. *)
