lib/sim/runner.mli: Cup_dess Cup_metrics Cup_overlay Cup_proto Scenario Trace
