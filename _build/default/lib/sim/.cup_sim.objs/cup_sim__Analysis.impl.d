lib/sim/analysis.ml: Array Float Stdlib
