lib/sim/scenario.ml: Cup_overlay Cup_proto Float Result Stdlib
