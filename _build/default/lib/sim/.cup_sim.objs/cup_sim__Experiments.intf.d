lib/sim/experiments.mli: Scenario
