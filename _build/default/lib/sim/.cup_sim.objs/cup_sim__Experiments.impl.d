lib/sim/experiments.ml: Analysis Cup_metrics Cup_overlay Cup_proto List Runner Scenario Stdlib
