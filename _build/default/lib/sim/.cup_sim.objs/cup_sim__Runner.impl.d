lib/sim/runner.ml: Array Cup_dess Cup_metrics Cup_overlay Cup_prng Cup_proto Cup_workload Float Format Hashtbl List Logs Scenario Trace Unix
