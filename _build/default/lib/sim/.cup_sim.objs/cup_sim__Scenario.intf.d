lib/sim/scenario.mli: Cup_overlay Cup_proto
