lib/sim/trace.ml: Array Cup_dess Cup_overlay Cup_proto Format List
