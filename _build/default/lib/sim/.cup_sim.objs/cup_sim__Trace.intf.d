lib/sim/trace.mli: Cup_dess Cup_overlay Cup_proto Format
