lib/sim/analysis.mli:
