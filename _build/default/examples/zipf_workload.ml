(* Zipf popularity: CUP adapts per key.

   The paper's evaluation exercises one key's CUP tree, but the
   protocol runs one instance of its bookkeeping per key.  This
   example runs a 64-key index under a Zipf(1.2) query distribution
   and shows how the second-chance policy behaves across the
   popularity spectrum: hot keys keep their subscriptions and serve
   queries from fresh caches; cold keys are cut off after their
   second dry update, costing almost nothing.

   Run with:  dune exec examples/zipf_workload.exe
*)

module Live = Cup_sim.Runner.Live
module Scenario = Cup_sim.Scenario
module Counters = Cup_metrics.Counters
module Net = Cup_overlay.Net
module Node = Cup_proto.Node

let () =
  Printf.printf "== Zipf(1.2) workload over 64 keys ==\n\n";
  let cfg =
    {
      Scenario.default with
      nodes = 256;
      total_keys_override = Some 64;
      key_dist = `Zipf 1.2;
      query_rate = 20.;
      query_duration = 1800.;
      drain = 300.;
      seed = 404;
    }
  in
  let live = Live.create cfg in
  (* run to the end of the query window, then inspect subscriptions
     before the drain lets them decay *)
  Live.run_until live (cfg.query_start +. cfg.query_duration);
  let net = Live.network live in
  let now = Cup_dess.Time.of_seconds (cfg.query_start +. cfg.query_duration) in
  let subscription_stats rank =
    let key = Live.key_of_index live rank in
    let fresh = ref 0 and interested = ref 0 in
    List.iter
      (fun id ->
        let node = Live.node live id in
        if Node.fresh_entries node ~now key <> [] then incr fresh;
        if Node.interested_neighbors node key <> [] then incr interested)
      (Net.node_ids net);
    (!fresh, !interested)
  in
  Printf.printf "%-10s | %-18s | %s\n" "key rank" "nodes caching fresh"
    "nodes with interested children";
  Printf.printf "%s\n" (String.make 62 '-');
  List.iter
    (fun rank ->
      let fresh, interested = subscription_stats rank in
      Printf.printf "%-10d | %-18d | %d\n" rank fresh interested)
    [ 0; 1; 3; 7; 15; 31; 63 ];
  let result = Live.finish live in
  Printf.printf
    "\noverall: %d queries, %d hits (%.0f%%), %d misses, total cost %d hops\n"
    (Counters.local_queries result.counters)
    (Counters.hits result.counters)
    (100.
    *. float_of_int (Counters.hits result.counters)
    /. float_of_int (max 1 (Counters.local_queries result.counters)))
    (Counters.misses result.counters)
    (Counters.total_cost result.counters);
  Printf.printf
    "the head of the distribution stays subscribed across the network;\n\
     the tail is cut off by second-chance after two dry refreshes.\n"
