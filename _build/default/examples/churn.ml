(* Churn: nodes join and leave while CUP runs (Section 2.9).

   Starts a 128-node network with a steady query workload, then
   repeatedly joins fresh nodes and removes random ones mid-run.  Each
   membership change triggers the paper's bookkeeping: zones split or
   are taken over, interest bit vectors are patched (bits pointing at
   a departed node are remapped to its taker), and authority
   directories are handed over.  The run finishing with consistent
   costs and a valid topology demonstrates the seamless-churn claim.

   Run with:  dune exec examples/churn.exe
*)

module Live = Cup_sim.Runner.Live
module Scenario = Cup_sim.Scenario
module T = Cup_overlay.Net
module Counters = Cup_metrics.Counters

let () =
  Printf.printf "== CUP under churn ==\n\n";
  let cfg =
    {
      Scenario.default with
      nodes = 128;
      total_keys_override = Some 4;
      query_rate = 2.;
      query_duration = 1800.;
      drain = 300.;
      seed = 5;
    }
  in
  let live = Live.create cfg in
  let rng = Cup_prng.Rng.create ~seed:99 in
  let joins = ref 0 and leaves = ref 0 in
  (* One membership event every 60 seconds of simulated time. *)
  for step = 1 to 25 do
    Live.run_until live (300. +. (60. *. float_of_int step));
    let topo = Live.network live in
    if Cup_prng.Rng.bool rng && T.size topo > 8 then begin
      let ids = Array.of_list (T.node_ids topo) in
      let victim = ids.(Cup_prng.Rng.int rng (Array.length ids)) in
      Live.node_leave live victim;
      incr leaves
    end
    else begin
      ignore (Live.node_join live);
      incr joins
    end;
    match T.check_invariants (Live.network live) with
    | Ok () -> ()
    | Error msg -> failwith ("topology corrupted by churn: " ^ msg)
  done;
  Printf.printf "applied %d joins and %d leaves; topology stayed valid\n"
    !joins !leaves;
  let topo = Live.network live in
  Printf.printf "final network size: %d nodes\n\n" (T.size topo);
  (* Authorities moved with their zones: verify every key's directory
     lives where routing says it should. *)
  let ok = ref true in
  for i = 0 to 3 do
    let key = Live.key_of_index live i in
    let by_routing = T.owner_of_key topo key in
    let recorded = Live.authority_of live key in
    if not (Cup_overlay.Node_id.equal by_routing recorded) then begin
      ok := false;
      Printf.printf "key %d: authority table out of sync!\n" i
    end
  done;
  Printf.printf "authority hand-over: %s\n\n"
    (if !ok then "every key's directory follows its zone" else "BROKEN");
  let result = Live.finish live in
  Printf.printf "run completed: %d queries, %d hits, %d misses\n"
    (Counters.local_queries result.counters)
    (Counters.hits result.counters)
    (Counters.misses result.counters);
  Printf.printf "%s\n" (Format.asprintf "%a" Counters.pp result.counters)
