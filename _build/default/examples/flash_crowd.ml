(* Flash crowd: a key becomes suddenly hot.

   The paper motivates CUP with items that "become suddenly hot":
   bursts of queries for one item are coalesced into a single upstream
   query by the query channel, and updates keep the intermediate
   caches fresh so the crowd is absorbed near its sources.

   This example fires a burst of queries for one key from many nodes
   within a few hundred milliseconds, under CUP and under standard
   caching, and compares the work the network had to do.

   Run with:  dune exec examples/flash_crowd.exe
*)

module Live = Cup_sim.Runner.Live
module Scenario = Cup_sim.Scenario
module Counters = Cup_metrics.Counters
module Policy = Cup_proto.Policy

let burst_size = 200

let run_with policy =
  let cfg =
    Scenario.with_policy
      {
        Scenario.default with
        nodes = 256;
        total_keys_override = Some 1;
        query_rate = 0.01;
        (* nearly no background: the crowd hits cold caches *)
        query_duration = 900.;
        drain = 300.;
        seed = 77;
      }
      policy
  in
  let live = Live.create cfg in
  let key = Live.key_of_index live 0 in
  let rng = Cup_prng.Rng.create ~seed:123 in
  let ids = Array.of_list (Cup_overlay.Net.node_ids (Live.network live)) in
  (* Warm up, then the crowd arrives within ~0.2 seconds at t=600 —
     queries overlap in flight, so the query channels get to coalesce
     them. *)
  Live.run_until live 600.;
  for i = 0 to burst_size - 1 do
    Live.run_until live (600. +. (0.001 *. float_of_int i));
    Live.post_query live ~node:(Cup_prng.Rng.choice rng ids) ~key
  done;
  let result = Live.finish live in
  (result.counters, result.node_stats)

let () =
  Printf.printf "== Flash crowd: %d queries for one key in ~2 seconds ==\n\n"
    burst_size;
  let report label (c, (s : Cup_proto.Node.stats)) =
    Printf.printf
      "%-16s total cost %5d hops | misses %4d | avg miss latency %5.2f hops \
       | queries coalesced in-network: %d\n"
      label (Counters.total_cost c) (Counters.misses c)
      (Counters.avg_miss_latency_hops c)
      s.queries_coalesced
  in
  let cup = run_with Policy.second_chance in
  let std = run_with Policy.Standard_caching in
  report "CUP:" cup;
  report "standard:" std;
  let (ccup, scup), (cstd, _) = (cup, std) in
  Printf.printf
    "\nCUP coalesced %d of the crowd's queries in-network, cut the query \
     traffic %.1fx\n(%d vs %d query hops) and answered misses %.1fx \
     faster.\n"
    scup.queries_coalesced
    (float_of_int (Counters.query_hops cstd)
    /. float_of_int (max 1 (Counters.query_hops ccup)))
    (Counters.query_hops ccup) (Counters.query_hops cstd)
    (Counters.avg_miss_latency_hops cstd
    /. Float.max 0.01 (Counters.avg_miss_latency_hops ccup))
