(* Capacity loss: nodes stop propagating updates (Section 3.7).

   CUP's fallback property: when a node's outgoing update capacity
   drops — even to zero — its dependents degrade gracefully to
   standard caching with expiration, never worse.  This example runs
   the same workload three times: full capacity, 20% of nodes at zero
   capacity, and every node at zero capacity (which must behave like
   standard caching plus the cost of the authority's first push).

   Run with:  dune exec examples/capacity_loss.exe
*)

module Live = Cup_sim.Runner.Live
module Scenario = Cup_sim.Scenario
module Counters = Cup_metrics.Counters
module Policy = Cup_proto.Policy

let base =
  {
    Scenario.default with
    nodes = 256;
    total_keys_override = Some 1;
    query_rate = 1.;
    query_duration = 1800.;
    drain = 600.;
    seed = 31;
  }

let run ~degrade_fraction =
  let live = Live.create base in
  (if degrade_fraction > 0. then begin
     let ids = Array.of_list (Cup_overlay.Net.node_ids (Live.network live)) in
     let rng = Cup_prng.Rng.create ~seed:8 in
     let k =
       int_of_float (degrade_fraction *. float_of_int (Array.length ids))
     in
     let picks =
       Cup_prng.Rng.sample_without_replacement rng k (Array.length ids)
     in
     Live.run_until live 300.;
     Array.iter (fun i -> Live.set_capacity live ids.(i) 0.) picks
   end);
  Live.finish live

let run_standard () =
  Cup_sim.Runner.run (Scenario.with_policy base Policy.Standard_caching)

let () =
  Printf.printf "== Graceful degradation under capacity loss ==\n\n";
  let report label (r : Cup_sim.Runner.result) =
    Printf.printf
      "%-28s total %6d | miss cost %6d | misses %5d | updates dropped %5d\n"
      label
      (Counters.total_cost r.counters)
      (Counters.miss_cost r.counters)
      (Counters.misses r.counters)
      (Counters.dropped_updates r.counters)
  in
  report "full capacity:" (run ~degrade_fraction:0.);
  report "20% of nodes at zero:" (run ~degrade_fraction:0.2);
  report "all nodes at zero:" (run ~degrade_fraction:1.);
  report "standard caching:" (run_standard ());
  Printf.printf
    "\nWith every node at zero capacity the network falls back to \
     expiration-based caching:\nno refresh propagates beyond the \
     authority's interested neighbors, and the miss\nprofile approaches the \
     standard-caching run, exactly as Section 3.7 promises.\n"
