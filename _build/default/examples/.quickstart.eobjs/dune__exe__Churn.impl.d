examples/churn.ml: Array Cup_metrics Cup_overlay Cup_prng Cup_sim Format Printf
