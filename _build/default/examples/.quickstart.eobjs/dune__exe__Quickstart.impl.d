examples/quickstart.ml: Cup_dess Cup_metrics Cup_overlay Cup_proto Cup_sim Format List Printf
