examples/zipf_workload.ml: Cup_dess Cup_metrics Cup_overlay Cup_proto Cup_sim List Printf String
