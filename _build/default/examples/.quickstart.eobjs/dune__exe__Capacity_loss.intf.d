examples/capacity_loss.mli:
