examples/capacity_loss.ml: Array Cup_metrics Cup_overlay Cup_prng Cup_proto Cup_sim Printf
