examples/walkthrough.ml: Cup_overlay Cup_sim Format List Printf
