examples/churn.mli:
