examples/walkthrough.mli:
