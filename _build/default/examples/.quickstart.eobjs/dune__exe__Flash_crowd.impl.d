examples/flash_crowd.ml: Array Cup_metrics Cup_overlay Cup_prng Cup_proto Cup_sim Float Printf
