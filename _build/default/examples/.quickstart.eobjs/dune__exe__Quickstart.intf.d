examples/quickstart.mli:
