examples/zipf_workload.mli:
