(* Tests for Cup_report: table rendering, plots, and CSV quoting. *)

module Table = Cup_report.Table
module Plot = Cup_report.Plot
module Csv = Cup_report.Csv

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  scan 0

(* {1 Table} *)

let test_table_renders_rows () =
  let t = Table.create ~title:"demo" ~columns:[ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "beta"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "title" true (contains ~needle:"demo" s);
  Alcotest.(check bool) "row 1" true (contains ~needle:"alpha" s);
  Alcotest.(check bool) "row 2" true (contains ~needle:"22" s)

let test_table_arity_checked () =
  let t = Table.create ~title:"demo" ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Table.add_row t [ "only one" ])

let test_table_numeric_right_aligned () =
  let t = Table.create ~title:"demo" ~columns:[ "label"; "number" ] in
  Table.add_row t [ "x"; "5" ];
  Table.add_row t [ "y"; "12345" ];
  let lines = String.split_on_char '\n' (Table.render t) in
  let row_x = List.find (fun l -> contains ~needle:"x" l) lines in
  (* the short number is padded on the left up to the column width *)
  Alcotest.(check bool) "right aligned" true
    (contains ~needle:"     5" row_x)

let test_table_separator () =
  let t = Table.create ~title:"demo" ~columns:[ "a" ] in
  Table.add_row t [ "1" ];
  Table.add_separator t;
  Table.add_row t [ "2" ];
  let dashes =
    List.filter
      (fun l -> l <> "" && String.for_all (fun c -> c = '-') l)
      (String.split_on_char '\n' (Table.render t))
  in
  (* two header rules plus the explicit separator *)
  Alcotest.(check int) "three rules" 3 (List.length dashes)

let test_cell_formatters () =
  Alcotest.(check string) "int" "42" (Table.cell_int 42);
  Alcotest.(check string) "float" "3.14" (Table.cell_float ~decimals:2 3.14159);
  Alcotest.(check string) "ratio" "(0.27)" (Table.cell_ratio 0.272)

(* {1 Plot} *)

let test_plot_renders () =
  let s =
    Plot.render ~title:"t" ~x_label:"x" ~y_label:"y"
      [
        { Plot.label = "up"; points = [ (0., 0.); (1., 1.); (2., 4.) ] };
        { Plot.label = "down"; points = [ (0., 4.); (2., 0.) ] };
      ]
  in
  Alcotest.(check bool) "legend series 1" true (contains ~needle:"* = up" s);
  Alcotest.(check bool) "legend series 2" true (contains ~needle:"o = down" s);
  Alcotest.(check bool) "has marks" true (contains ~needle:"*" s)

let test_plot_empty () =
  let s = Plot.render ~title:"t" ~x_label:"x" ~y_label:"y" [] in
  Alcotest.(check bool) "no data notice" true (contains ~needle:"no data" s)

let test_plot_log_scale () =
  let s =
    Plot.render ~log_y:true ~title:"t" ~x_label:"x" ~y_label:"y"
      [ { Plot.label = "s"; points = [ (0., 10.); (1., 100000.) ] } ]
  in
  Alcotest.(check bool) "log annotation" true (contains ~needle:"log scale" s)

let test_plot_flat_series () =
  (* constant series must not divide by a zero span *)
  let s =
    Plot.render ~title:"t" ~x_label:"x" ~y_label:"y"
      [ { Plot.label = "flat"; points = [ (0., 5.); (1., 5.) ] } ]
  in
  Alcotest.(check bool) "renders" true (String.length s > 0)

(* {1 Csv} *)

let test_csv_escaping () =
  Alcotest.(check string) "plain" "abc" (Csv.escape "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Csv.escape "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Csv.escape "a\"b");
  Alcotest.(check string) "newline" "\"a\nb\"" (Csv.escape "a\nb")

let test_csv_row () =
  Alcotest.(check string) "row" "a,\"b,c\",d"
    (Csv.row_to_string [ "a"; "b,c"; "d" ])

let test_csv_write_roundtrip () =
  let path = Filename.temp_file "cup_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csv.write ~path ~header:[ "k"; "v" ] [ [ "a"; "1" ]; [ "b"; "2" ] ];
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      Alcotest.(check (list string)) "content"
        [ "k,v"; "a,1"; "b,2" ]
        (List.rev !lines))

let () =
  Alcotest.run "cup_report"
    [
      ( "table",
        [
          Alcotest.test_case "renders" `Quick test_table_renders_rows;
          Alcotest.test_case "arity" `Quick test_table_arity_checked;
          Alcotest.test_case "alignment" `Quick
            test_table_numeric_right_aligned;
          Alcotest.test_case "separator" `Quick test_table_separator;
          Alcotest.test_case "cells" `Quick test_cell_formatters;
        ] );
      ( "plot",
        [
          Alcotest.test_case "renders" `Quick test_plot_renders;
          Alcotest.test_case "empty" `Quick test_plot_empty;
          Alcotest.test_case "log scale" `Quick test_plot_log_scale;
          Alcotest.test_case "flat series" `Quick test_plot_flat_series;
        ] );
      ( "csv",
        [
          Alcotest.test_case "escaping" `Quick test_csv_escaping;
          Alcotest.test_case "row" `Quick test_csv_row;
          Alcotest.test_case "write" `Quick test_csv_write_roundtrip;
        ] );
    ]
