(* Tests for Cup_prng: determinism, ranges, and distribution moments. *)

module Splitmix = Cup_prng.Splitmix
module Rng = Cup_prng.Rng
module Dist = Cup_prng.Dist

let check_float = Alcotest.(check (float 1e-9))

(* {1 Splitmix} *)

let test_splitmix_deterministic () =
  let a = Splitmix.create 42L and b = Splitmix.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64)
      "same seed, same stream" (Splitmix.next_int64 a) (Splitmix.next_int64 b)
  done

let test_splitmix_seed_sensitivity () =
  let a = Splitmix.create 1L and b = Splitmix.create 2L in
  Alcotest.(check bool)
    "different seeds diverge" true
    (Splitmix.next_int64 a <> Splitmix.next_int64 b)

let test_splitmix_copy_independent () =
  let a = Splitmix.create 7L in
  ignore (Splitmix.next_int64 a);
  let b = Splitmix.copy a in
  let xa = Splitmix.next_int64 a in
  let xb = Splitmix.next_int64 b in
  Alcotest.(check int64) "copy resumes at same point" xa xb;
  ignore (Splitmix.next_int64 a);
  (* b is now one draw behind; advancing b must reproduce a's draw *)
  Alcotest.(check bool) "copies advance independently" true
    (Splitmix.next_int64 b <> Splitmix.next_int64 b)

let test_splitmix_float_range () =
  let g = Splitmix.create 9L in
  for _ = 1 to 10_000 do
    let f = Splitmix.next_float g in
    if f < 0. || f >= 1. then Alcotest.failf "float out of range: %f" f
  done

let test_splitmix_int_rejects_bad_bound () =
  let g = Splitmix.create 3L in
  Alcotest.check_raises "zero bound" (Invalid_argument
    "Splitmix.next_int: bound must be positive") (fun () ->
      ignore (Splitmix.next_int g 0))

let test_splitmix_split_diverges () =
  let a = Splitmix.create 11L in
  let b = Splitmix.split a in
  let same = ref 0 in
  for _ = 1 to 100 do
    if Splitmix.next_int64 a = Splitmix.next_int64 b then incr same
  done;
  Alcotest.(check int) "split streams do not collide" 0 !same

let test_mix_is_stateless_hash () =
  Alcotest.(check int64) "mix deterministic" (Splitmix.mix 123L)
    (Splitmix.mix 123L);
  Alcotest.(check bool) "mix spreads" true
    (Splitmix.mix 1L <> Splitmix.mix 2L)

(* {1 Rng} *)

let test_rng_substream_deterministic () =
  let a = Rng.substream (Rng.create ~seed:5) "queries" in
  let b = Rng.substream (Rng.create ~seed:5) "queries" in
  for _ = 1 to 50 do
    Alcotest.(check int64) "same name, same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_substream_names_diverge () =
  let root = Rng.create ~seed:5 in
  let a = Rng.substream root "queries" and b = Rng.substream root "replicas" in
  Alcotest.(check bool) "names decorrelate" true (Rng.int64 a <> Rng.int64 b)

let test_rng_float_range_bounds () =
  let rng = Rng.create ~seed:1 in
  for _ = 1 to 1000 do
    let x = Rng.float_range rng 2. 5. in
    if x < 2. || x >= 5. then Alcotest.failf "float_range out of bounds: %f" x
  done;
  Alcotest.check_raises "lo >= hi rejected"
    (Invalid_argument "Rng.float_range: lo must be < hi") (fun () ->
      ignore (Rng.float_range rng 5. 5.))

let test_rng_choice_and_empty () =
  let rng = Rng.create ~seed:2 in
  let arr = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    let x = Rng.choice rng arr in
    Alcotest.(check bool) "choice in array" true (Array.mem x arr)
  done;
  Alcotest.check_raises "empty array"
    (Invalid_argument "Rng.choice: empty array") (fun () ->
      ignore (Rng.choice rng [||]))

let test_rng_sample_without_replacement () =
  let rng = Rng.create ~seed:3 in
  let s = Rng.sample_without_replacement rng 10 50 in
  Alcotest.(check int) "length" 10 (Array.length s);
  let sorted = Array.copy s in
  Array.sort compare sorted;
  for i = 1 to Array.length sorted - 1 do
    if sorted.(i) = sorted.(i - 1) then Alcotest.fail "duplicate sample"
  done;
  Array.iter
    (fun x ->
      if x < 0 || x >= 50 then Alcotest.failf "sample out of range: %d" x)
    s;
  let all = Rng.sample_without_replacement rng 50 50 in
  Alcotest.(check int) "k = n works" 50 (Array.length all);
  Alcotest.check_raises "k > n rejected"
    (Invalid_argument "Rng.sample_without_replacement") (fun () ->
      ignore (Rng.sample_without_replacement rng 51 50))

(* {1 Distributions} *)

let test_exponential_mean () =
  let rng = Rng.create ~seed:4 in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Dist.exponential rng ~rate:2.
  done;
  let mean = !sum /. float_of_int n in
  if Float.abs (mean -. 0.5) > 0.02 then
    Alcotest.failf "exponential mean off: %f (expected ~0.5)" mean

let test_exponential_positive () =
  let rng = Rng.create ~seed:41 in
  for _ = 1 to 1000 do
    if Dist.exponential rng ~rate:1000. <= 0. then
      Alcotest.fail "exponential must be > 0"
  done

let test_poisson_moments () =
  let rng = Rng.create ~seed:6 in
  let n = 20_000 and mean = 4.2 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Dist.poisson rng ~mean
  done;
  let m = float_of_int !sum /. float_of_int n in
  if Float.abs (m -. mean) > 0.1 then
    Alcotest.failf "poisson mean off: %f (expected ~%f)" m mean

let test_poisson_large_mean_normal_approx () =
  let rng = Rng.create ~seed:7 in
  let mean = 1000. in
  let x = Dist.poisson rng ~mean in
  (* 10 sigma corridor *)
  if Float.abs (float_of_int x -. mean) > 10. *. sqrt mean then
    Alcotest.failf "large-mean poisson implausible: %d" x

let test_poisson_zero () =
  let rng = Rng.create ~seed:8 in
  Alcotest.(check int) "mean 0 -> 0" 0 (Dist.poisson rng ~mean:0.)

let test_bernoulli_edges () =
  let rng = Rng.create ~seed:9 in
  Alcotest.(check bool) "p=1 true" true (Dist.bernoulli rng ~p:1.);
  Alcotest.(check bool) "p=0 false" false (Dist.bernoulli rng ~p:0.);
  let n = 10_000 and hits = ref 0 in
  for _ = 1 to n do
    if Dist.bernoulli rng ~p:0.3 then incr hits
  done;
  let f = float_of_int !hits /. float_of_int n in
  if Float.abs (f -. 0.3) > 0.02 then Alcotest.failf "bernoulli rate off: %f" f

let test_zipf_pmf_normalized () =
  let z = Dist.zipf ~n:100 ~s:1.1 in
  let total = ref 0. in
  for k = 0 to 99 do
    total := !total +. Dist.zipf_pmf z k
  done;
  check_float "pmf sums to 1" 1. !total

let test_zipf_monotone () =
  let z = Dist.zipf ~n:50 ~s:0.8 in
  for k = 1 to 49 do
    if Dist.zipf_pmf z k > Dist.zipf_pmf z (k - 1) then
      Alcotest.fail "zipf pmf must be nonincreasing"
  done

let test_zipf_skew () =
  let rng = Rng.create ~seed:10 in
  let z = Dist.zipf ~n:1000 ~s:1.0 in
  let top = ref 0 and n = 20_000 in
  for _ = 1 to n do
    if Dist.zipf_sample z rng = 0 then incr top
  done;
  (* rank 0 carries ~1/H(1000) ~ 13.4% of the mass *)
  let f = float_of_int !top /. float_of_int n in
  if f < 0.10 || f > 0.17 then Alcotest.failf "zipf skew off: %f" f

let test_zipf_degenerate_uniform () =
  let rng = Rng.create ~seed:11 in
  let z = Dist.zipf ~n:4 ~s:0. in
  check_float "s=0 is uniform" 0.25 (Dist.zipf_pmf z 3);
  let counts = Array.make 4 0 in
  for _ = 1 to 8000 do
    let k = Dist.zipf_sample z rng in
    counts.(k) <- counts.(k) + 1
  done;
  Array.iter
    (fun c ->
      if abs (c - 2000) > 300 then Alcotest.failf "uniform sample off: %d" c)
    counts

let test_categorical () =
  let rng = Rng.create ~seed:12 in
  let c = Dist.categorical ~weights:[| 0.; 1.; 3. |] in
  let counts = Array.make 3 0 in
  for _ = 1 to 10_000 do
    let k = Dist.categorical_sample c rng in
    counts.(k) <- counts.(k) + 1
  done;
  Alcotest.(check int) "zero weight never sampled" 0 counts.(0);
  if abs (counts.(2) - (3 * counts.(1))) > 1000 then
    Alcotest.failf "categorical proportions off: %d vs %d" counts.(1)
      counts.(2);
  Alcotest.check_raises "all-zero rejected"
    (Invalid_argument "Dist.categorical: all weights zero") (fun () ->
      ignore (Dist.categorical ~weights:[| 0.; 0. |]));
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Dist.categorical: negative weight") (fun () ->
      ignore (Dist.categorical ~weights:[| 1.; -1. |]))

(* {1 Properties} *)

let prop_next_int_in_bounds =
  QCheck.Test.make ~count:1000 ~name:"next_int stays in [0, bound)"
    QCheck.(pair (int_bound 1_000_000) small_int)
    (fun (bound, seed) ->
      let bound = bound + 1 in
      let g = Splitmix.create (Int64.of_int seed) in
      let x = Splitmix.next_int g bound in
      0 <= x && x < bound)

let prop_shuffle_is_permutation =
  QCheck.Test.make ~count:300 ~name:"shuffle preserves the multiset"
    QCheck.(pair (list small_int) small_int)
    (fun (l, seed) ->
      let rng = Rng.create ~seed in
      let arr = Array.of_list l in
      Rng.shuffle rng arr;
      List.sort compare (Array.to_list arr) = List.sort compare l)

let prop_zipf_sample_in_range =
  QCheck.Test.make ~count:500 ~name:"zipf sample in [0, n)"
    QCheck.(triple (int_range 1 200) (float_range 0. 3.) small_int)
    (fun (n, s, seed) ->
      let rng = Rng.create ~seed in
      let z = Dist.zipf ~n ~s in
      let k = Dist.zipf_sample z rng in
      0 <= k && k < n)

let () =
  Alcotest.run "cup_prng"
    [
      ( "splitmix",
        [
          Alcotest.test_case "deterministic" `Quick test_splitmix_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick
            test_splitmix_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_splitmix_copy_independent;
          Alcotest.test_case "float range" `Quick test_splitmix_float_range;
          Alcotest.test_case "bad bound" `Quick
            test_splitmix_int_rejects_bad_bound;
          Alcotest.test_case "split diverges" `Quick
            test_splitmix_split_diverges;
          Alcotest.test_case "mix hash" `Quick test_mix_is_stateless_hash;
        ] );
      ( "rng",
        [
          Alcotest.test_case "substream deterministic" `Quick
            test_rng_substream_deterministic;
          Alcotest.test_case "substream names" `Quick
            test_rng_substream_names_diverge;
          Alcotest.test_case "float_range" `Quick test_rng_float_range_bounds;
          Alcotest.test_case "choice" `Quick test_rng_choice_and_empty;
          Alcotest.test_case "sample w/o replacement" `Quick
            test_rng_sample_without_replacement;
        ] );
      ( "dist",
        [
          Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
          Alcotest.test_case "exponential positive" `Quick
            test_exponential_positive;
          Alcotest.test_case "poisson moments" `Quick test_poisson_moments;
          Alcotest.test_case "poisson large mean" `Quick
            test_poisson_large_mean_normal_approx;
          Alcotest.test_case "poisson zero" `Quick test_poisson_zero;
          Alcotest.test_case "bernoulli" `Quick test_bernoulli_edges;
          Alcotest.test_case "zipf normalized" `Quick test_zipf_pmf_normalized;
          Alcotest.test_case "zipf monotone" `Quick test_zipf_monotone;
          Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
          Alcotest.test_case "zipf s=0 uniform" `Quick
            test_zipf_degenerate_uniform;
          Alcotest.test_case "categorical" `Quick test_categorical;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_next_int_in_bounds;
            prop_shuffle_is_permutation;
            prop_zipf_sample_in_range;
          ] );
    ]
