test/test_sim.ml: Alcotest Array Cup_dess Cup_metrics Cup_overlay Cup_proto Cup_sim Float List Printf QCheck QCheck_alcotest
