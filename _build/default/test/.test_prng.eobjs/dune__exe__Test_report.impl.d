test/test_report.ml: Alcotest Cup_report Filename Fun List String Sys
