test/test_workload.ml: Alcotest Array Cup_dess Cup_prng Cup_workload Hashtbl List Stdlib
