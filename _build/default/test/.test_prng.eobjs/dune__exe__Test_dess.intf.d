test/test_dess.mli:
