test/test_prng.ml: Alcotest Array Cup_prng Float Int64 List QCheck QCheck_alcotest
