test/test_dess.ml: Alcotest Cup_dess Float List QCheck QCheck_alcotest
