test/test_overlay.ml: Alcotest Array Cup_overlay Cup_prng Hashtbl Int64 List Printf QCheck QCheck_alcotest
