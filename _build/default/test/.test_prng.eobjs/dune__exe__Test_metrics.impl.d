test/test_metrics.ml: Alcotest Cup_metrics Float Format Gen List Printf QCheck QCheck_alcotest String
