test/test_proto.ml: Alcotest Cup_dess Cup_overlay Cup_proto Format List Option QCheck QCheck_alcotest
