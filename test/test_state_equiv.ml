(* State-representation equivalence: the same scenario driven through
   the legacy map-backed node state ([Scenario.flat_node_state =
   false]) and the flat struct-of-arrays tables must produce identical
   counters, node stats, result fields and trace bytes — under both
   schedulers.  This is the contract that makes the flat backend a pure
   memory optimisation. *)

module Scenario = Cup_sim.Scenario
module Runner = Cup_sim.Runner
module Counters = Cup_metrics.Counters
module Policy = Cup_proto.Policy
module Net = Cup_overlay.Net

let base =
  {
    Scenario.default with
    nodes = 48;
    total_keys_override = Some 2;
    query_rate = 0.5;
    query_start = 300.;
    query_duration = 900.;
    drain = 300.;
  }

(* The full observable surface of a run: printed counters, aggregated
   node stats, the scalar result fields, and the trace serialized to
   its JSONL bytes. *)
let observe cfg =
  let live = Runner.Live.create cfg in
  let buf = Buffer.create 4096 in
  Runner.Live.set_tracer live
    (Some
       (fun e ->
         Buffer.add_string buf (Cup_obs.Event_json.to_string e);
         Buffer.add_char buf '\n'));
  let r = Runner.Live.finish live in
  ( Format.asprintf "%a" Counters.pp r.counters,
    r.node_stats,
    ( r.queries_posted,
      r.replica_events,
      r.engine_events,
      r.tracked_updates,
      r.justified_updates ),
    Buffer.contents buf )

let check_equiv name cfg =
  let counters_m, stats_m, scalars_m, trace_m =
    observe { cfg with Scenario.flat_node_state = false }
  in
  let counters_f, stats_f, scalars_f, trace_f =
    observe { cfg with Scenario.flat_node_state = true }
  in
  Alcotest.(check string) (name ^ ": counters") counters_m counters_f;
  Alcotest.(check bool) (name ^ ": node stats") true (stats_m = stats_f);
  Alcotest.(check (list int))
    (name ^ ": result fields")
    (let a, b, c, d, e = scalars_m in
     [ a; b; c; d; e ])
    (let a, b, c, d, e = scalars_f in
     [ a; b; c; d; e ]);
  Alcotest.(check string) (name ^ ": trace bytes") trace_m trace_f

(* {1 The required matrix: 3 seeds x heap/calendar} *)

let seeds = [ 1101; 2202; 3303 ]

let test_seed_scheduler_matrix () =
  List.iter
    (fun seed ->
      List.iter
        (fun sched ->
          let name =
            Printf.sprintf "seed %d %s" seed
              (match sched with `Heap -> "heap" | `Calendar -> "calendar")
          in
          check_equiv name
            (Scenario.with_policy
               { base with seed; scheduler = Some sched }
               Policy.second_chance))
        [ `Heap; `Calendar ])
    seeds

(* {1 Feature coverage: the paths that touch node state differently} *)

(* Churn exercises remap/drop/retain/handover/receive; loss exercises
   the repair introspection; token-bucket exercises queued updates;
   batching exercises refresh_batch; Zipf + several keys exercises the
   per-key tables. *)
let test_faults_and_churn () =
  check_equiv "crash-and-loss"
    (Scenario.with_policy
       {
         base with
         seed = 4404;
         overlay = Net.Chord;
         crashes =
           Some { Scenario.crash_rate = 0.02; recover_after = 20.; warmup = 30. };
         loss = Some { Scenario.drop = 0.15; jitter = 1.0 };
       }
       Policy.second_chance)

let test_token_bucket_batching () =
  check_equiv "token-bucket-batching"
    (Scenario.with_policy
       {
         base with
         seed = 5505;
         capacity_mode = Scenario.Token_bucket 50.;
         refresh_batch_window = 5.;
         replicas_per_key = 3;
         death_prob = 0.2;
         faults =
           Some
             (Scenario.Once_down { fraction = 0.25; reduced = 0.25; warmup = 60. });
       }
       (Policy.Linear 0.25))

let test_zipf_multikey () =
  check_equiv "pastry-zipf"
    (Scenario.with_policy
       {
         base with
         seed = 6606;
         overlay = Net.Pastry;
         key_dist = `Zipf 0.9;
         total_keys_override = Some 4;
         refresh_sample = 0.5;
       }
       (Policy.Logarithmic 0.5))

(* {1 Random scenarios} *)

let scenario_gen =
  QCheck.Gen.(
    let* seed = int_range 1 1_000_000 in
    let* nodes = int_range 16 64 in
    let* keys = int_range 1 4 in
    let* overlay =
      oneofl [ Net.Can `Random; Net.Can `Grid; Net.Chord; Net.Pastry ]
    in
    let* policy =
      oneofl
        [
          Policy.second_chance;
          Policy.Linear 0.25;
          Policy.Logarithmic 0.5;
          Policy.Standard_caching;
        ]
    in
    let* replicas = int_range 1 3 in
    let* death_prob = oneofl [ 0.; 0.2 ] in
    let* crashes =
      oneofl
        [
          None;
          Some { Scenario.crash_rate = 0.02; recover_after = 20.; warmup = 30. };
        ]
    in
    let* loss =
      oneofl [ None; Some { Scenario.drop = 0.1; jitter = 0.5 } ]
    in
    return
      (Scenario.with_policy
         {
           base with
           seed;
           nodes;
           total_keys_override = Some keys;
           overlay;
           replicas_per_key = replicas;
           death_prob;
           crashes;
           loss;
           query_duration = 600.;
           drain = 200.;
         }
         policy))

let prop_random_equivalence =
  QCheck.Test.make ~count:10 ~name:"map and flat backends are byte-equivalent"
    (QCheck.make scenario_gen) (fun cfg ->
      let counters_m, stats_m, scalars_m, trace_m =
        observe { cfg with Scenario.flat_node_state = false }
      in
      let counters_f, stats_f, scalars_f, trace_f =
        observe { cfg with Scenario.flat_node_state = true }
      in
      counters_m = counters_f && stats_m = stats_f && scalars_m = scalars_f
      && trace_m = trace_f)

let () =
  Alcotest.run "cup_state_equiv"
    [
      ( "equivalence",
        [
          Alcotest.test_case "3 seeds x heap/calendar" `Quick
            test_seed_scheduler_matrix;
          Alcotest.test_case "crash and loss churn" `Quick test_faults_and_churn;
          Alcotest.test_case "token bucket + batching" `Quick
            test_token_bucket_batching;
          Alcotest.test_case "zipf multi-key" `Quick test_zipf_multikey;
        ] );
      ( "random",
        [ QCheck_alcotest.to_alcotest prop_random_equivalence ] );
    ]
