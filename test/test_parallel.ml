(* Cup_parallel.Pool: the domain work pool behind the experiment
   fan-out, and the determinism contract it promises — a parallel
   sweep is byte-identical to a sequential one. *)

module Pool = Cup_parallel.Pool
module Scenario = Cup_sim.Scenario
module Runner = Cup_sim.Runner
module Trace = Cup_sim.Trace
module Counters = Cup_metrics.Counters
module Policy = Cup_proto.Policy
module Csv = Cup_report.Csv

(* {1 Pool unit tests} *)

let test_map_preserves_order () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let items = List.init 100 Fun.id in
      Alcotest.(check (list int))
        "same as List.map"
        (List.map (fun i -> (i * 37) mod 101) items)
        (Pool.map pool (fun i -> (i * 37) mod 101) items);
      Alcotest.(check (list string))
        "empty input" []
        (Pool.map pool string_of_int []))

let test_exception_propagation () =
  Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.check_raises "lowest-indexed exception wins"
        (Failure "boom 17")
        (fun () ->
          ignore
            (Pool.map pool
               (fun i ->
                 if i >= 17 then failwith (Printf.sprintf "boom %d" i) else i)
               (List.init 64 Fun.id))))

let test_jobs1_fallback () =
  Pool.with_pool ~jobs:1 (fun pool ->
      let here = Domain.self () in
      let domains = Pool.map pool (fun _ -> Domain.self ()) (List.init 8 Fun.id) in
      Alcotest.(check bool)
        "jobs=1 runs every task in the calling domain" true
        (List.for_all (fun d -> d = here) domains);
      Alcotest.(check (list int))
        "results still in order"
        [ 0; 2; 4; 6 ]
        (Pool.map pool (fun i -> 2 * i) [ 0; 1; 2; 3 ]))

let test_nested_map_rejected () =
  Pool.with_pool ~jobs:2 (fun pool ->
      Alcotest.check_raises "nested map raises"
        (Invalid_argument "Pool.map: nested map inside a pool task")
        (fun () ->
          ignore
            (Pool.map pool
               (fun i -> Pool.map pool (fun j -> i + j) [ 1; 2 ])
               [ 10; 20 ])))

let test_create_validation () =
  Alcotest.check_raises "jobs must be >= 1"
    (Invalid_argument "Pool.create: jobs must be >= 1") (fun () ->
      ignore (Pool.create ~jobs:0));
  let pool = Pool.create ~jobs:2 in
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  Alcotest.check_raises "map after shutdown"
    (Invalid_argument "Pool.map: pool is shut down") (fun () ->
      ignore (Pool.map pool Fun.id [ 1 ]))

(* {1 Determinism under parallelism}

   Run the same small push-level sweep with jobs=1 and jobs=4; every
   per-run observable — counters, the CSV bytes the bench harness
   would write, and the full protocol trace ring — must be identical. *)

let sweep_base =
  {
    Scenario.default with
    nodes = 48;
    total_keys_override = Some 1;
    query_rate = 0.5;
    query_start = 300.;
    query_duration = 600.;
    drain = 300.;
    seed = 2024;
  }

(* One run at one push level, capturing counters, CSV row bytes, and
   the trace-ring contents. *)
let observed_run level =
  let cfg = Scenario.with_policy sweep_base (Policy.Push_level level) in
  let live = Runner.Live.create cfg in
  let ring = Trace.create ~capacity:256 () in
  Runner.Live.set_tracer live (Some (Trace.record ring));
  let r = Runner.Live.finish live in
  let counters = Format.asprintf "%a" Counters.pp r.counters in
  let csv_row =
    Csv.row_to_string
      [
        string_of_int level;
        string_of_int (Counters.total_cost r.counters);
        string_of_int (Counters.miss_cost r.counters);
        string_of_int (Counters.misses r.counters);
      ]
  in
  let trace =
    String.concat "\n"
      (List.map
         (fun e -> Format.asprintf "%a" Trace.pp_event e)
         (Trace.events ring))
  in
  (counters, csv_row, trace)

let levels = [ 0; 1; 2; 4 ]

let test_parallel_sweep_identical () =
  let sequential =
    Pool.with_pool ~jobs:1 (fun pool -> Pool.map pool observed_run levels)
  in
  let parallel =
    Pool.with_pool ~jobs:4 (fun pool -> Pool.map pool observed_run levels)
  in
  List.iteri
    (fun i ((seq_c, seq_csv, seq_tr), (par_c, par_csv, par_tr)) ->
      let at what = Printf.sprintf "level %d: %s" (List.nth levels i) what in
      Alcotest.(check string) (at "counters") seq_c par_c;
      Alcotest.(check string) (at "csv bytes") seq_csv par_csv;
      Alcotest.(check string) (at "trace ring") seq_tr par_tr)
    (List.combine sequential parallel)

(* Fault injection must stay byte-deterministic under parallel
   fan-out: crash victims and loss draws come from dedicated PRNG
   substreams consumed in engine-event order, never from shared
   state. *)
let fault_base =
  {
    sweep_base with
    Scenario.crashes =
      Some { Scenario.crash_rate = 0.02; recover_after = 20.; warmup = 30. };
    loss = Some { Scenario.drop = 0.2; jitter = 0.5 };
  }

let observed_fault_run seed =
  let cfg =
    Scenario.with_policy { fault_base with Scenario.seed } Policy.second_chance
  in
  let live = Runner.Live.create cfg in
  let ring = Trace.create ~capacity:512 () in
  Runner.Live.set_tracer live (Some (Trace.record ring));
  let r = Runner.Live.finish live in
  ( Format.asprintf "%a" Counters.pp r.counters,
    r.engine_events,
    String.concat "\n"
      (List.map
         (fun e -> Format.asprintf "%a" Trace.pp_event e)
         (Trace.events ring)) )

let test_parallel_fault_runs_identical () =
  let seeds = [ 1; 42; 1001 ] in
  let sequential =
    Pool.with_pool ~jobs:1 (fun pool -> Pool.map pool observed_fault_run seeds)
  in
  let parallel =
    Pool.with_pool ~jobs:4 (fun pool -> Pool.map pool observed_fault_run seeds)
  in
  Alcotest.(check bool)
    "crash/loss runs identical across jobs=1 and jobs=4" true
    (sequential = parallel)

let test_experiment_pool_identical () =
  (* The public entry point: Experiments with ?pool versus without. *)
  let module E = Cup_sim.Experiments in
  let seq = E.replicate sweep_base ~runs:3 in
  let par =
    Pool.with_pool ~jobs:4 (fun pool -> E.replicate ~pool sweep_base ~runs:3)
  in
  Alcotest.(check bool) "replicate moments identical" true (seq = par)

let () =
  Alcotest.run "cup_parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "order preservation" `Quick
            test_map_preserves_order;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagation;
          Alcotest.test_case "jobs=1 fallback" `Quick test_jobs1_fallback;
          Alcotest.test_case "nested map rejected" `Quick
            test_nested_map_rejected;
          Alcotest.test_case "create/shutdown validation" `Quick
            test_create_validation;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "jobs=1 vs jobs=4 sweep" `Quick
            test_parallel_sweep_identical;
          Alcotest.test_case "jobs=1 vs jobs=4 under crash/loss" `Quick
            test_parallel_fault_runs_identical;
          Alcotest.test_case "experiments ?pool identical" `Quick
            test_experiment_pool_identical;
        ] );
    ]
