(* Fuzzer regression corpus.

   Each entry pins one fuzz seed whose generated scenario exercises a
   fault shape (or combination) that either once broke an invariant or
   covers a corner the sweep would only revisit by luck — the
   swarm-tested equivalents of "the bug harvest".  Every seed must
   pass the full oracle stack; a failure here is a protocol or
   accounting regression, and [cup fuzz --seed N] reproduces it
   standalone.

   Keep entries cheap: the corpus runs in every `dune runtest`. *)

module Fuzz = Cup_sim.Fuzz
module Fuzz_oracle = Cup_obs.Fuzz_oracle

let corpus =
  [
    (* interaction of all five fault axes, symmetric partition *)
    ("all-axes-symmetric", 46);
    (* all five axes with the asymmetric (one-way) partition shape *)
    ("all-axes-asymmetric", 58);
    (* asymmetric partition + crash + loss + reorder on the grid CAN *)
    ("asym-partition-grid", 6);
    (* flash crowd (Zipf, ~53 q/s) through a symmetric cut with
       reordering on Chord *)
    ("flash-crowd-partitioned-chord", 2);
    (* pastry with crash + symmetric cut + reorder + duplication *)
    ("pastry-crash-reorder-dup", 13);
    (* flat struct-of-arrays backend under loss + cut + reorder +
       duplication and a flash crowd *)
    ("flat-state-flash-all-channel-faults", 61);
    (* minimum population: 4 nodes crashing while duplicating *)
    ("four-nodes-crash-dup", 101);
    (* flat backend with crash + loss + reorder + duplication *)
    ("flat-state-crash-loss-reorder-dup", 33);
    (* The first real bug harvest (2000-seed sweep, 14 failures, all
       V3 backlog): crash-rewired CAN interest graphs formed cycles,
       and all-out / uncapped policies re-forwarded no-news refreshes
       around them forever — one refresh wave amplified into an update
       storm (425 deliveries to a single (node, key) in ~2 simulated
       seconds on seed 36).  Fixed by the no-news forwarding guard in
       [Node.apply_update] / [Node_store.apply_update]; these four
       seeds pin the storm shapes that failed. *)
    ("update-storm-all-out-can-flash", 36);
    ("update-storm-all-out-can-multikey", 267);
    ("update-storm-all-out-grid", 580);
    ("update-storm-linear-can-flat", 1827);
  ]

let run_seed name seed () =
  let cfg = Fuzz.scenario_of_seed seed in
  match Fuzz_oracle.execute cfg with
  | Fuzz.Pass _ -> ()
  | Fuzz.Fail f ->
      Alcotest.failf "%s (seed %d): [%s %s] t=%.6g: %s" name seed f.code
        f.invariant f.at f.detail

let () =
  Alcotest.run "cup_regress_seeds"
    [
      ( "corpus",
        List.map
          (fun (name, seed) ->
            Alcotest.test_case
              (Printf.sprintf "%s (seed %d)" name seed)
              `Slow (run_seed name seed))
          corpus );
    ]
