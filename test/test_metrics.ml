(* Tests for Cup_metrics: Welford statistics and the hop-cost
   counters of the Section 3.1 cost model. *)

module Welford = Cup_metrics.Welford
module Counters = Cup_metrics.Counters

let close = Alcotest.(check (float 1e-9))

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  scan 0

(* {1 Welford} *)

let test_welford_empty () =
  let w = Welford.create () in
  Alcotest.(check int) "count" 0 (Welford.count w);
  close "mean" 0. (Welford.mean w);
  close "variance" 0. (Welford.variance w);
  Alcotest.(check bool) "min is nan" true (Float.is_nan (Welford.min w))

let test_welford_single () =
  let w = Welford.create () in
  Welford.add w 5.;
  close "mean" 5. (Welford.mean w);
  close "variance" 0. (Welford.variance w);
  close "min" 5. (Welford.min w);
  close "max" 5. (Welford.max w)

let direct_stats xs =
  let n = float_of_int (List.length xs) in
  let mean = List.fold_left ( +. ) 0. xs /. n in
  let var =
    List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs /. n
  in
  (mean, var)

let test_welford_matches_direct () =
  let xs = [ 1.5; 2.5; 3.5; 10.; -4.; 0.; 7.25 ] in
  let w = Welford.create () in
  List.iter (Welford.add w) xs;
  let mean, var = direct_stats xs in
  Alcotest.(check (float 1e-9)) "mean" mean (Welford.mean w);
  Alcotest.(check (float 1e-9)) "variance" var (Welford.variance w);
  close "total" (List.fold_left ( +. ) 0. xs) (Welford.total w);
  close "min" (-4.) (Welford.min w);
  close "max" 10. (Welford.max w)

let prop_welford_mean_variance =
  QCheck.Test.make ~count:300 ~name:"welford matches direct computation"
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range (-100.) 100.))
    (fun xs ->
      let w = Welford.create () in
      List.iter (Welford.add w) xs;
      let mean, var = direct_stats xs in
      Float.abs (mean -. Welford.mean w) < 1e-6
      && Float.abs (var -. Welford.variance w) < 1e-5)

let prop_welford_merge_equals_sequential =
  QCheck.Test.make ~count:300 ~name:"merge(a,b) = add all of a then b"
    QCheck.(pair (list (float_range 0. 50.)) (list (float_range 0. 50.)))
    (fun (xs, ys) ->
      let a = Welford.create () and b = Welford.create () in
      List.iter (Welford.add a) xs;
      List.iter (Welford.add b) ys;
      let merged = Welford.merge a b in
      let seq = Welford.create () in
      List.iter (Welford.add seq) (xs @ ys);
      Welford.count merged = Welford.count seq
      && Float.abs (Welford.mean merged -. Welford.mean seq) < 1e-6
      && Float.abs (Welford.variance merged -. Welford.variance seq) < 1e-4)

(* {1 Histogram} *)

module Histogram = Cup_metrics.Histogram

let test_histogram_empty () =
  let h = Histogram.create () in
  Alcotest.(check int) "count" 0 (Histogram.count h);
  close "quantile of empty" 0. (Histogram.quantile h 0.5)

let test_histogram_quantiles_bracket () =
  let h = Histogram.create () in
  for v = 1 to 1000 do
    Histogram.add h (float_of_int v)
  done;
  let p50 = Histogram.quantile h 0.5 in
  let p99 = Histogram.quantile h 0.99 in
  (* log-scale bins: upper-bound estimates within ~12% *)
  Alcotest.(check bool) (Printf.sprintf "p50=%.1f near 500" p50) true
    (p50 >= 500. && p50 <= 600.);
  Alcotest.(check bool) (Printf.sprintf "p99=%.1f near 990" p99) true
    (p99 >= 990. && p99 <= 1150.);
  close "p100 is the max" 1000. (Histogram.quantile h 1.)

let test_histogram_mean_exact () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 1.; 2.; 3.; 4. ];
  close "mean tracked exactly" 2.5 (Histogram.mean h)

let test_histogram_under_overflow () =
  let h = Histogram.create ~min_value:1. ~max_value:100. () in
  Histogram.add h 0.001;
  Histogram.add h 1e9;
  Alcotest.(check int) "both counted" 2 (Histogram.count h);
  close "overflow quantile reports the max" 1e9 (Histogram.quantile h 1.)

let test_histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  List.iter (Histogram.add a) [ 1.; 2. ];
  List.iter (Histogram.add b) [ 100.; 200. ];
  let m = Histogram.merge a b in
  Alcotest.(check int) "count" 4 (Histogram.count m);
  close "total" 303. (Histogram.total m);
  Alcotest.(check bool) "median between the groups" true
    (Histogram.quantile m 0.5 < 100.)

let test_histogram_quantile_validation () =
  let h = Histogram.create () in
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Histogram.quantile: q must be in [0,1]") (fun () ->
      ignore (Histogram.quantile h 1.5))

let prop_histogram_quantile_monotone =
  QCheck.Test.make ~count:200 ~name:"quantiles are monotone in q"
    QCheck.(list_of_size Gen.(int_range 1 100) (float_range 0.5 10000.))
    (fun xs ->
      let h = Histogram.create () in
      List.iter (Histogram.add h) xs;
      let qs = [ 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1. ] in
      let vs = List.map (Histogram.quantile h) qs in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b && mono rest
        | _ -> true
      in
      mono vs)

let arb_samples =
  QCheck.(list_of_size Gen.(int_range 0 60) (float_range 0.001 50000.))

let hist_of xs =
  let h = Histogram.create () in
  List.iter (Histogram.add h) xs;
  h

let hist_equal a b =
  (* exact on counts and bin occupancy; total within float rounding *)
  Histogram.count a = Histogram.count b
  && Histogram.buckets a = Histogram.buckets b
  && abs_float (Histogram.total a -. Histogram.total b)
     <= 1e-9 *. (1. +. abs_float (Histogram.total a))

let prop_histogram_merge_associative =
  QCheck.Test.make ~count:200 ~name:"merge is associative"
    QCheck.(triple arb_samples arb_samples arb_samples)
    (fun (xs, ys, zs) ->
      let a = hist_of xs and b = hist_of ys and c = hist_of zs in
      hist_equal
        (Histogram.merge (Histogram.merge a b) c)
        (Histogram.merge a (Histogram.merge b c)))

let prop_histogram_merge_commutes_on_counts =
  QCheck.Test.make ~count:200
    ~name:"merge commutes exactly on bin counts"
    QCheck.(pair arb_samples arb_samples)
    (fun (xs, ys) ->
      let a = hist_of xs and b = hist_of ys in
      hist_equal (Histogram.merge a b) (Histogram.merge b a))

let prop_histogram_fixed_order_fold_reproducible =
  (* the Cup_parallel contract: folding per-seed histograms in seed
     order gives the same bytes however the work was scheduled *)
  QCheck.Test.make ~count:100 ~name:"seed-order fold is reproducible"
    QCheck.(list_of_size Gen.(int_range 1 8) arb_samples)
    (fun groups ->
      let fold () =
        List.fold_left
          (fun acc xs -> Histogram.merge acc (hist_of xs))
          (Histogram.create ()) groups
      in
      hist_equal (fold ()) (fold ()))

let test_histogram_config_and_buckets () =
  let h = Histogram.create ~min_value:1. ~max_value:1000. ~bins_per_decade:5 () in
  let mn, mx, bpd = Histogram.config h in
  close "min" 1. mn;
  close "max" 1000. mx;
  Alcotest.(check int) "bins per decade" 5 bpd;
  Alcotest.(check (list (pair (float 1e-9) int))) "empty" []
    (Histogram.buckets h);
  Histogram.add h 2.;
  Histogram.add h 2.1;
  Histogram.add h 500.;
  Histogram.add h 1e9 (* overflow *);
  let bs = Histogram.buckets h in
  Alcotest.(check int) "three occupied bins" 3 (List.length bs);
  Alcotest.(check int) "counts sum to n" (Histogram.count h)
    (List.fold_left (fun acc (_, c) -> acc + c) 0 bs);
  let bounds = List.map fst bs in
  Alcotest.(check bool) "bounds ascending" true
    (List.sort compare bounds = bounds);
  Alcotest.(check bool) "overflow bound is +inf" true
    (List.exists (fun (b, _) -> b = infinity) bs)

(* {1 Registry} *)

module Registry = Cup_metrics.Registry

let test_registry_find_or_create () =
  let r = Registry.create () in
  let c1 = Registry.counter r "cup_hops_total" ~labels:[ ("class", "query") ] in
  let c2 = Registry.counter r "cup_hops_total" ~labels:[ ("class", "query") ] in
  Registry.inc c1;
  Registry.inc ~by:2 c2;
  Alcotest.(check int) "same handle" 3 (Registry.counter_value c1);
  let g = Registry.gauge r "cup_temp" in
  Registry.set g 1.5;
  close "gauge" 1.5 (Registry.gauge_value (Registry.gauge r "cup_temp"));
  ignore (Registry.histogram r "cup_lat");
  Alcotest.(check int) "three series" 3 (Registry.series_count r);
  Alcotest.check_raises "kind clash"
    (Invalid_argument
       "Registry: cup_temp already registered as a gauge, requested as \
        counter")
    (fun () -> ignore (Registry.counter r "cup_temp"))

let test_registry_merge () =
  let mk hits lat =
    let r = Registry.create () in
    Registry.inc ~by:hits (Registry.counter r "hits_total");
    let g = Registry.gauge r "peak" in
    Registry.set g (float_of_int hits);
    let h = Registry.histogram r "lat" in
    List.iter (Registry.observe h) lat;
    r
  in
  let a = mk 3 [ 1.; 2. ] and b = mk 5 [ 10. ] in
  let m = Registry.merge a b in
  Alcotest.(check int) "counters sum" 8
    (Registry.counter_value (Registry.counter m "hits_total"));
  close "gauges keep max" 5. (Registry.gauge_value (Registry.gauge m "peak"));
  Alcotest.(check int) "histogram counts merge" 3
    (Histogram.count (Registry.histogram m "lat"));
  (* inputs untouched *)
  Alcotest.(check int) "left input unmutated" 3
    (Registry.counter_value (Registry.counter a "hits_total"));
  Alcotest.(check int) "right input unmutated" 1
    (Histogram.count (Registry.histogram b "lat"))

let test_registry_prometheus_and_csv () =
  let r = Registry.create () in
  Registry.inc ~by:7
    (Registry.counter r "cup_hops_total" ~help:"Protocol hops"
       ~labels:[ ("class", "query") ]);
  Registry.inc ~by:2
    (Registry.counter r "cup_hops_total" ~labels:[ ("class", "refresh") ]);
  let h =
    Registry.histogram r ~min_value:0.001 ~max_value:10. "cup_lat_seconds"
  in
  List.iter (Registry.observe h) [ 0.01; 0.02; 5. ];
  let text = Registry.to_prometheus r in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("exposition has " ^ needle) true
        (contains ~needle text))
    [
      "# HELP cup_hops_total Protocol hops";
      "# TYPE cup_hops_total counter";
      "cup_hops_total{class=\"query\"} 7";
      "cup_hops_total{class=\"refresh\"} 2";
      "# TYPE cup_lat_seconds histogram";
      "le=\"+Inf\"";
      "cup_lat_seconds_count 3";
    ];
  (* deterministic: same content, same bytes *)
  Alcotest.(check string) "exposition reproducible" text
    (Registry.to_prometheus r);
  let rows = Registry.csv_rows r in
  Alcotest.(check int) "one csv row per series" (Registry.series_count r)
    (List.length rows);
  List.iter
    (fun row ->
      Alcotest.(check int) "row width" (List.length Registry.csv_header)
        (List.length row))
    rows

(* {1 Counters} *)

let test_counters_cost_buckets () =
  let c = Counters.create () in
  Counters.record_query_hop c;
  Counters.record_query_hop c;
  Counters.record_first_time_hop c ~answering:true;
  Counters.record_first_time_hop c ~answering:false;
  Counters.record_update_hop c `Refresh;
  Counters.record_update_hop c `Delete;
  Counters.record_update_hop c `Append;
  Counters.record_clear_bit_hop c;
  Alcotest.(check int) "miss cost = query + answering-ft" 3
    (Counters.miss_cost c);
  Alcotest.(check int) "overhead = proactive-ft + updates + clear-bits" 5
    (Counters.overhead_cost c);
  Alcotest.(check int) "total" 8 (Counters.total_cost c)

let test_counters_miss_latency () =
  let c = Counters.create () in
  Counters.record_miss c ~hops:(0.5 /. 0.05);
  Counters.record_miss c ~hops:(0.3 /. 0.05);
  Alcotest.(check int) "misses" 2 (Counters.misses c);
  Alcotest.(check (float 1e-6)) "latency in hops" 8.
    (Counters.avg_miss_latency_hops c);
  Alcotest.(check bool) "p100 covers the worst miss" true
    (Counters.miss_latency_percentile c 1. >= 10.);
  Counters.record_hit c;
  Alcotest.(check int) "hits" 1 (Counters.hits c);
  Alcotest.(check int) "local queries" 3 (Counters.local_queries c)

let test_counters_zero_hop_delay () =
  (* Under a zero hop delay callers pass hops = 0 (see the runner's
     precomputed conversion factor). *)
  let c = Counters.create () in
  Counters.record_miss c ~hops:0.;
  Alcotest.(check (float 1e-9)) "degenerate hop delay yields 0" 0.
    (Counters.avg_miss_latency_hops c)

let test_counters_merge () =
  let a = Counters.create () and b = Counters.create () in
  Counters.record_query_hop a;
  Counters.record_update_hop a `Refresh;
  Counters.record_miss a ~hops:(0.2 /. 0.1);
  Counters.record_query_hop b;
  Counters.record_clear_bit_hop b;
  Counters.record_hit b;
  Counters.record_dropped_update b;
  let m = Counters.merge a b in
  Alcotest.(check int) "query hops" 2 (Counters.query_hops m);
  Alcotest.(check int) "refresh hops" 1 (Counters.refresh_hops m);
  Alcotest.(check int) "clear-bit hops" 1 (Counters.clear_bit_hops m);
  Alcotest.(check int) "hits" 1 (Counters.hits m);
  Alcotest.(check int) "misses" 1 (Counters.misses m);
  Alcotest.(check int) "dropped" 1 (Counters.dropped_updates m);
  Alcotest.(check (float 1e-9)) "latency kept" 2.
    (Counters.avg_miss_latency_hops m)

let test_counters_pp_smoke () =
  let c = Counters.create () in
  Counters.record_query_hop c;
  let s = Format.asprintf "%a" Counters.pp c in
  Alcotest.(check bool) "pp mentions miss cost" true
    (contains ~needle:"miss cost" s)

(* {1 Attribution} *)

module Attribution = Cup_metrics.Attribution
module Sketch = Attribution.Sketch
module Rate = Attribution.Rate
module Metric = Attribution.Metric
module Rng = Cup_prng.Rng

let test_sketch_exact_below_capacity () =
  let s = Sketch.create ~capacity:8 in
  List.iter
    (fun (id, m, w) ->
      Alcotest.(check int) "no eviction" (-1) (Sketch.add s ~id ~metric:m ~w))
    [
      (1, Metric.queries, 3); (2, Metric.misses, 1); (1, Metric.miss_hops, 4);
    ];
  Alcotest.(check int) "entries" 2 (Sketch.entries s);
  Alcotest.(check int) "evictions" 0 (Sketch.evictions s);
  Alcotest.(check int) "total exact" 3 (Sketch.total s ~metric:Metric.queries);
  match Sketch.top s ~k:10 with
  | [ a; b ] ->
      Alcotest.(check int) "heaviest id" 1 a.Sketch.id;
      Alcotest.(check int) "estimate" 7 a.estimate;
      Alcotest.(check int) "exact regime: err 0" 0 a.err;
      Alcotest.(check int) "per-metric count" 3 a.counts.(Metric.queries);
      Alcotest.(check int) "second" 2 b.Sketch.id
  | l -> Alcotest.failf "expected 2 entries, got %d" (List.length l)

let test_sketch_eviction_deterministic () =
  let m = Metric.queries in
  let s = Sketch.create ~capacity:2 in
  ignore (Sketch.add s ~id:1 ~metric:m ~w:5);
  ignore (Sketch.add s ~id:2 ~metric:m ~w:3);
  Alcotest.(check int) "evicts the min-weight entry" 2
    (Sketch.add s ~id:3 ~metric:m ~w:1);
  Alcotest.(check int) "evictions" 1 (Sketch.evictions s);
  Alcotest.(check int) "global total stays exact" 9 (Sketch.total s ~metric:m);
  match Sketch.top s ~k:2 with
  | [ a; b ] ->
      Alcotest.(check int) "survivor" 1 a.Sketch.id;
      Alcotest.(check int) "newcomer" 3 b.Sketch.id;
      Alcotest.(check int) "estimate = inherited + own" 4 b.Sketch.estimate;
      Alcotest.(check int) "err = inherited weight" 3 b.Sketch.err
  | _ -> Alcotest.fail "two entries expected"

(* Random (id, weight) streams over a catalog a few times larger than
   the sketch capacity, so both the exact and the eviction regime get
   exercised. *)
let arb_stream =
  QCheck.(
    list_of_size Gen.(int_range 0 400) (pair (int_range 0 40) (int_range 1 5)))

let sketch_cap = 8

let sketch_of ops =
  let s = Sketch.create ~capacity:sketch_cap in
  List.iter
    (fun (id, w) ->
      ignore (Sketch.add s ~id ~metric:((id + w) mod Metric.count) ~w))
    ops;
  s

let prop_sketch_error_bound =
  QCheck.Test.make ~count:300 ~name:"space-saving error bounds hold"
    arb_stream (fun ops ->
      let m = Metric.queries in
      let s = Sketch.create ~capacity:sketch_cap in
      let true_w = Hashtbl.create 64 in
      List.iter
        (fun (id, w) ->
          ignore (Sketch.add s ~id ~metric:m ~w);
          Hashtbl.replace true_w id
            (w + Option.value ~default:0 (Hashtbl.find_opt true_w id)))
        ops;
      let total = List.fold_left (fun acc (_, w) -> acc + w) 0 ops in
      let tops = Sketch.top s ~k:sketch_cap in
      Sketch.total s ~metric:m = total
      && List.for_all
           (fun (e : Sketch.entry) ->
             let tw = Option.value ~default:0 (Hashtbl.find_opt true_w e.id) in
             e.estimate >= tw && e.estimate - e.err <= tw)
           tops
      (* the space-saving guarantee: anything heavier than total/cap
         is still tracked *)
      && Hashtbl.fold
           (fun id tw acc ->
             acc
             && (tw * sketch_cap <= total
                || List.exists (fun (e : Sketch.entry) -> e.id = id) tops))
           true_w true)

let sketch_snapshot s =
  let tops = Sketch.top s ~k:(Sketch.entries s) in
  ( List.sort compare
      (List.map
         (fun (e : Sketch.entry) ->
           (e.id, e.estimate, e.err, Array.to_list e.counts))
         tops),
    List.init Metric.count (fun m -> Sketch.total s ~metric:m),
    Sketch.evictions s )

let prop_sketch_merge_associative =
  QCheck.Test.make ~count:200 ~name:"sketch merge is associative"
    QCheck.(triple arb_stream arb_stream arb_stream)
    (fun (xs, ys, zs) ->
      let a = sketch_of xs and b = sketch_of ys and c = sketch_of zs in
      sketch_snapshot (Sketch.merge (Sketch.merge a b) c)
      = sketch_snapshot (Sketch.merge a (Sketch.merge b c)))

let prop_sketch_merge_commutative =
  QCheck.Test.make ~count:200 ~name:"sketch merge is commutative"
    QCheck.(pair arb_stream arb_stream)
    (fun (xs, ys) ->
      let a = sketch_of xs and b = sketch_of ys in
      sketch_snapshot (Sketch.merge a b) = sketch_snapshot (Sketch.merge b a))

let prop_sketch_replay_deterministic =
  QCheck.Test.make ~count:200 ~name:"same stream, same sketch"
    arb_stream (fun ops ->
      sketch_snapshot (sketch_of ops) = sketch_snapshot (sketch_of ops))

let test_rate_windowed_and_ewma () =
  let r = Rate.create ~width:1.0 ~slots:8 in
  (* 4 events/s for 10 s; the 8-slot ring retains windows 2..9 *)
  for i = 0 to 39 do
    Rate.observe r ~now:(0.25 *. float_of_int i)
  done;
  Alcotest.(check int) "observations in retained span" 32
    (Rate.observations r);
  Alcotest.(check (float 1e-9)) "windowed" 4. (Rate.windowed r);
  Alcotest.(check (float 1e-9)) "ewma of a steady rate is the rate" 4.
    (Rate.ewma r)

let arb_times =
  QCheck.(list_of_size Gen.(int_range 0 200) (float_range 0. 40.))

let prop_rate_merge_exact =
  QCheck.Test.make ~count:300
    ~name:"rate merge = single interleaved stream"
    QCheck.(pair arb_times arb_times)
    (fun (xs, ys) ->
      let feed l =
        let r = Rate.create ~width:1.0 ~slots:16 in
        List.iter (fun now -> Rate.observe r ~now) (List.sort compare l);
        r
      in
      let m = Rate.merge (feed xs) (feed ys) in
      let single = feed (xs @ ys) in
      Rate.observations m = Rate.observations single
      && Rate.windowed m = Rate.windowed single
      && Rate.ewma m = Rate.ewma single)

(* The estimators exist to feed the Section 3.1 break-even formula:
   drive one with a Poisson arrival stream of known rate and check the
   closed-form justified-update probability computed from the estimate
   against the one computed from the true rate. *)
let test_rate_vs_analysis_closed_form () =
  let lambda = 3.0 and window = 2.0 in
  let g = Rng.create ~seed:42 in
  (* 32 windows x 4 s retained = 128 s of stream: ~384 expected events,
     so the windowed estimate sits within a few percent of lambda *)
  let r = Rate.create ~width:4.0 ~slots:32 in
  let t = ref 0. in
  while !t < 200. do
    Rate.observe r ~now:!t;
    t := !t +. (-.log (Float.max 1e-12 (1. -. Rng.float g)) /. lambda)
  done;
  let est = Rate.windowed r in
  Alcotest.(check bool)
    (Printf.sprintf "windowed %.3f within 20%% of true rate %.1f" est lambda)
    true
    (Float.abs (est -. lambda) <= 0.2 *. lambda);
  let ew = Rate.ewma r in
  Alcotest.(check bool)
    (Printf.sprintf "ewma %.3f within 40%% of true rate %.1f" ew lambda)
    true
    (Float.abs (ew -. lambda) <= 0.4 *. lambda);
  let p_est =
    Cup_sim.Analysis.justified_probability ~subtree_rate:est ~window
  in
  let p_true =
    Cup_sim.Analysis.justified_probability ~subtree_rate:lambda ~window
  in
  Alcotest.(check bool)
    (Printf.sprintf "P(justified) from estimate: %.4f vs %.4f" p_est p_true)
    true
    (Float.abs (p_est -. p_true) <= 0.02)

let test_attribution_records_and_merge () =
  let config = { Attribution.default_config with capacity = 16 } in
  let a = Attribution.create ~config () in
  Attribution.record_query a ~key:1 ~node:10 ~now:0.1;
  Attribution.record_miss a ~key:1 ~node:10 ~now:0.1;
  Attribution.record_query_hop a ~key:1 ~node:10;
  Attribution.record_query_hop a ~key:1 ~node:11;
  Attribution.record_update_hop a ~key:1 ~node:12 ~level:2 ~overhead:false
    ~now:0.2;
  Attribution.record_update_hop a ~key:1 ~node:12 ~level:2 ~overhead:true
    ~now:0.3;
  Attribution.record_clear_bit_hop a ~key:1 ~node:12 ~now:0.4;
  Attribution.record_delivery a ~key:1 ~node:12;
  Attribution.record_justified a ~key:1 ~node:12;
  let b = Attribution.create ~config () in
  Attribution.record_query b ~key:2 ~node:10 ~now:0.5;
  Attribution.record_hit b ~key:2 ~node:10;
  let m = Attribution.merge a b in
  let tot metric = Attribution.total m ~by:Attribution.Key ~metric in
  Alcotest.(check int) "queries" 2 (tot Metric.queries);
  Alcotest.(check int) "hits" 1 (tot Metric.hits);
  Alcotest.(check int) "miss hops = query hops + answering update hop" 3
    (tot Metric.miss_hops);
  Alcotest.(check int) "overhead hops = proactive update + clear-bit" 2
    (tot Metric.overhead_hops);
  Alcotest.(check int) "level axis sees only update hops" 1
    (Attribution.total m ~by:Attribution.Level ~metric:Metric.overhead_hops);
  (match Attribution.top m ~by:Attribution.Key ~k:2 with
  | [ hot; cold ] ->
      Alcotest.(check int) "hot key" 1 hot.Sketch.id;
      Alcotest.(check int) "hot weight" 9 hot.Sketch.estimate;
      Alcotest.(check int) "cold key" 2 cold.Sketch.id
  | l -> Alcotest.failf "expected 2 keys, got %d" (List.length l));
  match (Attribution.rates m ~key:1, Attribution.rates m ~key:2) with
  | Some (rq, rm, ro), Some (rq2, _, _) ->
      Alcotest.(check int) "key 1 query obs" 1 (Rate.observations rq);
      Alcotest.(check int) "key 1 miss obs" 1 (Rate.observations rm);
      Alcotest.(check int) "key 1 overhead obs" 2 (Rate.observations ro);
      Alcotest.(check int) "key 2 rates survive merge" 1
        (Rate.observations rq2)
  | _ -> Alcotest.fail "merged rates missing a tracked key"

let test_attribution_footprint_bounded () =
  let config = { Attribution.default_config with capacity = 64 } in
  let feed n =
    let a = Attribution.create ~config () in
    for k = 0 to n - 1 do
      Attribution.record_query a ~key:k ~node:(k mod 50)
        ~now:(0.01 *. float_of_int k)
    done;
    a
  in
  let small = feed 1_000 and large = feed 50_000 in
  Alcotest.(check int) "footprint independent of catalog size"
    (Attribution.footprint_words small)
    (Attribution.footprint_words large);
  Alcotest.(check int) "key sketch pinned at capacity" 64
    (Sketch.entries (Attribution.sketch large Attribution.Key))

let test_attribution_axis_names () =
  List.iter
    (fun ax ->
      Alcotest.(check bool) "axis_of_string inverts axis_name" true
        (Attribution.axis_of_string (Attribution.axis_name ax) = Some ax))
    [ Attribution.Key; Attribution.Node; Attribution.Level ];
  Alcotest.(check bool) "unknown axis rejected" true
    (Attribution.axis_of_string "tree" = None)

let () =
  Alcotest.run "cup_metrics"
    [
      ( "welford",
        [
          Alcotest.test_case "empty" `Quick test_welford_empty;
          Alcotest.test_case "single" `Quick test_welford_single;
          Alcotest.test_case "matches direct" `Quick
            test_welford_matches_direct;
          QCheck_alcotest.to_alcotest prop_welford_mean_variance;
          QCheck_alcotest.to_alcotest prop_welford_merge_equals_sequential;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "empty" `Quick test_histogram_empty;
          Alcotest.test_case "quantiles bracket" `Quick
            test_histogram_quantiles_bracket;
          Alcotest.test_case "mean exact" `Quick test_histogram_mean_exact;
          Alcotest.test_case "under/overflow" `Quick
            test_histogram_under_overflow;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
          Alcotest.test_case "validation" `Quick
            test_histogram_quantile_validation;
          Alcotest.test_case "config and buckets" `Quick
            test_histogram_config_and_buckets;
          QCheck_alcotest.to_alcotest prop_histogram_quantile_monotone;
          QCheck_alcotest.to_alcotest prop_histogram_merge_associative;
          QCheck_alcotest.to_alcotest prop_histogram_merge_commutes_on_counts;
          QCheck_alcotest.to_alcotest
            prop_histogram_fixed_order_fold_reproducible;
        ] );
      ( "registry",
        [
          Alcotest.test_case "find or create" `Quick
            test_registry_find_or_create;
          Alcotest.test_case "merge" `Quick test_registry_merge;
          Alcotest.test_case "prometheus and csv" `Quick
            test_registry_prometheus_and_csv;
        ] );
      ( "counters",
        [
          Alcotest.test_case "cost buckets" `Quick test_counters_cost_buckets;
          Alcotest.test_case "miss latency" `Quick test_counters_miss_latency;
          Alcotest.test_case "zero hop delay" `Quick
            test_counters_zero_hop_delay;
          Alcotest.test_case "merge" `Quick test_counters_merge;
          Alcotest.test_case "pp" `Quick test_counters_pp_smoke;
        ] );
      ( "attribution",
        [
          Alcotest.test_case "sketch exact below capacity" `Quick
            test_sketch_exact_below_capacity;
          Alcotest.test_case "sketch eviction deterministic" `Quick
            test_sketch_eviction_deterministic;
          QCheck_alcotest.to_alcotest prop_sketch_error_bound;
          QCheck_alcotest.to_alcotest prop_sketch_merge_associative;
          QCheck_alcotest.to_alcotest prop_sketch_merge_commutative;
          QCheck_alcotest.to_alcotest prop_sketch_replay_deterministic;
          Alcotest.test_case "rate windowed and ewma" `Quick
            test_rate_windowed_and_ewma;
          QCheck_alcotest.to_alcotest prop_rate_merge_exact;
          Alcotest.test_case "rate vs closed-form break-even input" `Quick
            test_rate_vs_analysis_closed_form;
          Alcotest.test_case "records and merge" `Quick
            test_attribution_records_and_merge;
          Alcotest.test_case "footprint O(K)" `Quick
            test_attribution_footprint_bounded;
          Alcotest.test_case "axis names" `Quick test_attribution_axis_names;
        ] );
    ]
