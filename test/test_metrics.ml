(* Tests for Cup_metrics: Welford statistics and the hop-cost
   counters of the Section 3.1 cost model. *)

module Welford = Cup_metrics.Welford
module Counters = Cup_metrics.Counters

let close = Alcotest.(check (float 1e-9))

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  scan 0

(* {1 Welford} *)

let test_welford_empty () =
  let w = Welford.create () in
  Alcotest.(check int) "count" 0 (Welford.count w);
  close "mean" 0. (Welford.mean w);
  close "variance" 0. (Welford.variance w);
  Alcotest.(check bool) "min is nan" true (Float.is_nan (Welford.min w))

let test_welford_single () =
  let w = Welford.create () in
  Welford.add w 5.;
  close "mean" 5. (Welford.mean w);
  close "variance" 0. (Welford.variance w);
  close "min" 5. (Welford.min w);
  close "max" 5. (Welford.max w)

let direct_stats xs =
  let n = float_of_int (List.length xs) in
  let mean = List.fold_left ( +. ) 0. xs /. n in
  let var =
    List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs /. n
  in
  (mean, var)

let test_welford_matches_direct () =
  let xs = [ 1.5; 2.5; 3.5; 10.; -4.; 0.; 7.25 ] in
  let w = Welford.create () in
  List.iter (Welford.add w) xs;
  let mean, var = direct_stats xs in
  Alcotest.(check (float 1e-9)) "mean" mean (Welford.mean w);
  Alcotest.(check (float 1e-9)) "variance" var (Welford.variance w);
  close "total" (List.fold_left ( +. ) 0. xs) (Welford.total w);
  close "min" (-4.) (Welford.min w);
  close "max" 10. (Welford.max w)

let prop_welford_mean_variance =
  QCheck.Test.make ~count:300 ~name:"welford matches direct computation"
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range (-100.) 100.))
    (fun xs ->
      let w = Welford.create () in
      List.iter (Welford.add w) xs;
      let mean, var = direct_stats xs in
      Float.abs (mean -. Welford.mean w) < 1e-6
      && Float.abs (var -. Welford.variance w) < 1e-5)

let prop_welford_merge_equals_sequential =
  QCheck.Test.make ~count:300 ~name:"merge(a,b) = add all of a then b"
    QCheck.(pair (list (float_range 0. 50.)) (list (float_range 0. 50.)))
    (fun (xs, ys) ->
      let a = Welford.create () and b = Welford.create () in
      List.iter (Welford.add a) xs;
      List.iter (Welford.add b) ys;
      let merged = Welford.merge a b in
      let seq = Welford.create () in
      List.iter (Welford.add seq) (xs @ ys);
      Welford.count merged = Welford.count seq
      && Float.abs (Welford.mean merged -. Welford.mean seq) < 1e-6
      && Float.abs (Welford.variance merged -. Welford.variance seq) < 1e-4)

(* {1 Histogram} *)

module Histogram = Cup_metrics.Histogram

let test_histogram_empty () =
  let h = Histogram.create () in
  Alcotest.(check int) "count" 0 (Histogram.count h);
  close "quantile of empty" 0. (Histogram.quantile h 0.5)

let test_histogram_quantiles_bracket () =
  let h = Histogram.create () in
  for v = 1 to 1000 do
    Histogram.add h (float_of_int v)
  done;
  let p50 = Histogram.quantile h 0.5 in
  let p99 = Histogram.quantile h 0.99 in
  (* log-scale bins: upper-bound estimates within ~12% *)
  Alcotest.(check bool) (Printf.sprintf "p50=%.1f near 500" p50) true
    (p50 >= 500. && p50 <= 600.);
  Alcotest.(check bool) (Printf.sprintf "p99=%.1f near 990" p99) true
    (p99 >= 990. && p99 <= 1150.);
  close "p100 is the max" 1000. (Histogram.quantile h 1.)

let test_histogram_mean_exact () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 1.; 2.; 3.; 4. ];
  close "mean tracked exactly" 2.5 (Histogram.mean h)

let test_histogram_under_overflow () =
  let h = Histogram.create ~min_value:1. ~max_value:100. () in
  Histogram.add h 0.001;
  Histogram.add h 1e9;
  Alcotest.(check int) "both counted" 2 (Histogram.count h);
  close "overflow quantile reports the max" 1e9 (Histogram.quantile h 1.)

let test_histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  List.iter (Histogram.add a) [ 1.; 2. ];
  List.iter (Histogram.add b) [ 100.; 200. ];
  let m = Histogram.merge a b in
  Alcotest.(check int) "count" 4 (Histogram.count m);
  close "total" 303. (Histogram.total m);
  Alcotest.(check bool) "median between the groups" true
    (Histogram.quantile m 0.5 < 100.)

let test_histogram_quantile_validation () =
  let h = Histogram.create () in
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Histogram.quantile: q must be in [0,1]") (fun () ->
      ignore (Histogram.quantile h 1.5))

let prop_histogram_quantile_monotone =
  QCheck.Test.make ~count:200 ~name:"quantiles are monotone in q"
    QCheck.(list_of_size Gen.(int_range 1 100) (float_range 0.5 10000.))
    (fun xs ->
      let h = Histogram.create () in
      List.iter (Histogram.add h) xs;
      let qs = [ 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1. ] in
      let vs = List.map (Histogram.quantile h) qs in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b && mono rest
        | _ -> true
      in
      mono vs)

let arb_samples =
  QCheck.(list_of_size Gen.(int_range 0 60) (float_range 0.001 50000.))

let hist_of xs =
  let h = Histogram.create () in
  List.iter (Histogram.add h) xs;
  h

let hist_equal a b =
  (* exact on counts and bin occupancy; total within float rounding *)
  Histogram.count a = Histogram.count b
  && Histogram.buckets a = Histogram.buckets b
  && abs_float (Histogram.total a -. Histogram.total b)
     <= 1e-9 *. (1. +. abs_float (Histogram.total a))

let prop_histogram_merge_associative =
  QCheck.Test.make ~count:200 ~name:"merge is associative"
    QCheck.(triple arb_samples arb_samples arb_samples)
    (fun (xs, ys, zs) ->
      let a = hist_of xs and b = hist_of ys and c = hist_of zs in
      hist_equal
        (Histogram.merge (Histogram.merge a b) c)
        (Histogram.merge a (Histogram.merge b c)))

let prop_histogram_merge_commutes_on_counts =
  QCheck.Test.make ~count:200
    ~name:"merge commutes exactly on bin counts"
    QCheck.(pair arb_samples arb_samples)
    (fun (xs, ys) ->
      let a = hist_of xs and b = hist_of ys in
      hist_equal (Histogram.merge a b) (Histogram.merge b a))

let prop_histogram_fixed_order_fold_reproducible =
  (* the Cup_parallel contract: folding per-seed histograms in seed
     order gives the same bytes however the work was scheduled *)
  QCheck.Test.make ~count:100 ~name:"seed-order fold is reproducible"
    QCheck.(list_of_size Gen.(int_range 1 8) arb_samples)
    (fun groups ->
      let fold () =
        List.fold_left
          (fun acc xs -> Histogram.merge acc (hist_of xs))
          (Histogram.create ()) groups
      in
      hist_equal (fold ()) (fold ()))

let test_histogram_config_and_buckets () =
  let h = Histogram.create ~min_value:1. ~max_value:1000. ~bins_per_decade:5 () in
  let mn, mx, bpd = Histogram.config h in
  close "min" 1. mn;
  close "max" 1000. mx;
  Alcotest.(check int) "bins per decade" 5 bpd;
  Alcotest.(check (list (pair (float 1e-9) int))) "empty" []
    (Histogram.buckets h);
  Histogram.add h 2.;
  Histogram.add h 2.1;
  Histogram.add h 500.;
  Histogram.add h 1e9 (* overflow *);
  let bs = Histogram.buckets h in
  Alcotest.(check int) "three occupied bins" 3 (List.length bs);
  Alcotest.(check int) "counts sum to n" (Histogram.count h)
    (List.fold_left (fun acc (_, c) -> acc + c) 0 bs);
  let bounds = List.map fst bs in
  Alcotest.(check bool) "bounds ascending" true
    (List.sort compare bounds = bounds);
  Alcotest.(check bool) "overflow bound is +inf" true
    (List.exists (fun (b, _) -> b = infinity) bs)

(* {1 Registry} *)

module Registry = Cup_metrics.Registry

let test_registry_find_or_create () =
  let r = Registry.create () in
  let c1 = Registry.counter r "cup_hops_total" ~labels:[ ("class", "query") ] in
  let c2 = Registry.counter r "cup_hops_total" ~labels:[ ("class", "query") ] in
  Registry.inc c1;
  Registry.inc ~by:2 c2;
  Alcotest.(check int) "same handle" 3 (Registry.counter_value c1);
  let g = Registry.gauge r "cup_temp" in
  Registry.set g 1.5;
  close "gauge" 1.5 (Registry.gauge_value (Registry.gauge r "cup_temp"));
  ignore (Registry.histogram r "cup_lat");
  Alcotest.(check int) "three series" 3 (Registry.series_count r);
  Alcotest.check_raises "kind clash"
    (Invalid_argument
       "Registry: cup_temp already registered as a gauge, requested as \
        counter")
    (fun () -> ignore (Registry.counter r "cup_temp"))

let test_registry_merge () =
  let mk hits lat =
    let r = Registry.create () in
    Registry.inc ~by:hits (Registry.counter r "hits_total");
    let g = Registry.gauge r "peak" in
    Registry.set g (float_of_int hits);
    let h = Registry.histogram r "lat" in
    List.iter (Registry.observe h) lat;
    r
  in
  let a = mk 3 [ 1.; 2. ] and b = mk 5 [ 10. ] in
  let m = Registry.merge a b in
  Alcotest.(check int) "counters sum" 8
    (Registry.counter_value (Registry.counter m "hits_total"));
  close "gauges keep max" 5. (Registry.gauge_value (Registry.gauge m "peak"));
  Alcotest.(check int) "histogram counts merge" 3
    (Histogram.count (Registry.histogram m "lat"));
  (* inputs untouched *)
  Alcotest.(check int) "left input unmutated" 3
    (Registry.counter_value (Registry.counter a "hits_total"));
  Alcotest.(check int) "right input unmutated" 1
    (Histogram.count (Registry.histogram b "lat"))

let test_registry_prometheus_and_csv () =
  let r = Registry.create () in
  Registry.inc ~by:7
    (Registry.counter r "cup_hops_total" ~help:"Protocol hops"
       ~labels:[ ("class", "query") ]);
  Registry.inc ~by:2
    (Registry.counter r "cup_hops_total" ~labels:[ ("class", "refresh") ]);
  let h =
    Registry.histogram r ~min_value:0.001 ~max_value:10. "cup_lat_seconds"
  in
  List.iter (Registry.observe h) [ 0.01; 0.02; 5. ];
  let text = Registry.to_prometheus r in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("exposition has " ^ needle) true
        (contains ~needle text))
    [
      "# HELP cup_hops_total Protocol hops";
      "# TYPE cup_hops_total counter";
      "cup_hops_total{class=\"query\"} 7";
      "cup_hops_total{class=\"refresh\"} 2";
      "# TYPE cup_lat_seconds histogram";
      "le=\"+Inf\"";
      "cup_lat_seconds_count 3";
    ];
  (* deterministic: same content, same bytes *)
  Alcotest.(check string) "exposition reproducible" text
    (Registry.to_prometheus r);
  let rows = Registry.csv_rows r in
  Alcotest.(check int) "one csv row per series" (Registry.series_count r)
    (List.length rows);
  List.iter
    (fun row ->
      Alcotest.(check int) "row width" (List.length Registry.csv_header)
        (List.length row))
    rows

(* {1 Counters} *)

let test_counters_cost_buckets () =
  let c = Counters.create () in
  Counters.record_query_hop c;
  Counters.record_query_hop c;
  Counters.record_first_time_hop c ~answering:true;
  Counters.record_first_time_hop c ~answering:false;
  Counters.record_update_hop c `Refresh;
  Counters.record_update_hop c `Delete;
  Counters.record_update_hop c `Append;
  Counters.record_clear_bit_hop c;
  Alcotest.(check int) "miss cost = query + answering-ft" 3
    (Counters.miss_cost c);
  Alcotest.(check int) "overhead = proactive-ft + updates + clear-bits" 5
    (Counters.overhead_cost c);
  Alcotest.(check int) "total" 8 (Counters.total_cost c)

let test_counters_miss_latency () =
  let c = Counters.create () in
  Counters.record_miss c ~hops:(0.5 /. 0.05);
  Counters.record_miss c ~hops:(0.3 /. 0.05);
  Alcotest.(check int) "misses" 2 (Counters.misses c);
  Alcotest.(check (float 1e-6)) "latency in hops" 8.
    (Counters.avg_miss_latency_hops c);
  Alcotest.(check bool) "p100 covers the worst miss" true
    (Counters.miss_latency_percentile c 1. >= 10.);
  Counters.record_hit c;
  Alcotest.(check int) "hits" 1 (Counters.hits c);
  Alcotest.(check int) "local queries" 3 (Counters.local_queries c)

let test_counters_zero_hop_delay () =
  (* Under a zero hop delay callers pass hops = 0 (see the runner's
     precomputed conversion factor). *)
  let c = Counters.create () in
  Counters.record_miss c ~hops:0.;
  Alcotest.(check (float 1e-9)) "degenerate hop delay yields 0" 0.
    (Counters.avg_miss_latency_hops c)

let test_counters_merge () =
  let a = Counters.create () and b = Counters.create () in
  Counters.record_query_hop a;
  Counters.record_update_hop a `Refresh;
  Counters.record_miss a ~hops:(0.2 /. 0.1);
  Counters.record_query_hop b;
  Counters.record_clear_bit_hop b;
  Counters.record_hit b;
  Counters.record_dropped_update b;
  let m = Counters.merge a b in
  Alcotest.(check int) "query hops" 2 (Counters.query_hops m);
  Alcotest.(check int) "refresh hops" 1 (Counters.refresh_hops m);
  Alcotest.(check int) "clear-bit hops" 1 (Counters.clear_bit_hops m);
  Alcotest.(check int) "hits" 1 (Counters.hits m);
  Alcotest.(check int) "misses" 1 (Counters.misses m);
  Alcotest.(check int) "dropped" 1 (Counters.dropped_updates m);
  Alcotest.(check (float 1e-9)) "latency kept" 2.
    (Counters.avg_miss_latency_hops m)

let test_counters_pp_smoke () =
  let c = Counters.create () in
  Counters.record_query_hop c;
  let s = Format.asprintf "%a" Counters.pp c in
  Alcotest.(check bool) "pp mentions miss cost" true
    (contains ~needle:"miss cost" s)

let () =
  Alcotest.run "cup_metrics"
    [
      ( "welford",
        [
          Alcotest.test_case "empty" `Quick test_welford_empty;
          Alcotest.test_case "single" `Quick test_welford_single;
          Alcotest.test_case "matches direct" `Quick
            test_welford_matches_direct;
          QCheck_alcotest.to_alcotest prop_welford_mean_variance;
          QCheck_alcotest.to_alcotest prop_welford_merge_equals_sequential;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "empty" `Quick test_histogram_empty;
          Alcotest.test_case "quantiles bracket" `Quick
            test_histogram_quantiles_bracket;
          Alcotest.test_case "mean exact" `Quick test_histogram_mean_exact;
          Alcotest.test_case "under/overflow" `Quick
            test_histogram_under_overflow;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
          Alcotest.test_case "validation" `Quick
            test_histogram_quantile_validation;
          Alcotest.test_case "config and buckets" `Quick
            test_histogram_config_and_buckets;
          QCheck_alcotest.to_alcotest prop_histogram_quantile_monotone;
          QCheck_alcotest.to_alcotest prop_histogram_merge_associative;
          QCheck_alcotest.to_alcotest prop_histogram_merge_commutes_on_counts;
          QCheck_alcotest.to_alcotest
            prop_histogram_fixed_order_fold_reproducible;
        ] );
      ( "registry",
        [
          Alcotest.test_case "find or create" `Quick
            test_registry_find_or_create;
          Alcotest.test_case "merge" `Quick test_registry_merge;
          Alcotest.test_case "prometheus and csv" `Quick
            test_registry_prometheus_and_csv;
        ] );
      ( "counters",
        [
          Alcotest.test_case "cost buckets" `Quick test_counters_cost_buckets;
          Alcotest.test_case "miss latency" `Quick test_counters_miss_latency;
          Alcotest.test_case "zero hop delay" `Quick
            test_counters_zero_hop_delay;
          Alcotest.test_case "merge" `Quick test_counters_merge;
          Alcotest.test_case "pp" `Quick test_counters_pp_smoke;
        ] );
    ]
