(* Integration tests: whole simulations through Cup_sim.Runner.

   These exercise the protocol, overlay, workloads and accounting
   together on small networks and assert the system-level invariants
   the paper's evaluation relies on. *)

module Scenario = Cup_sim.Scenario
module Runner = Cup_sim.Runner
module E = Cup_sim.Experiments
module Counters = Cup_metrics.Counters
module Policy = Cup_proto.Policy
module T = Cup_overlay.Net

(* A small, fast base scenario: 48 nodes, one key, short run. *)
let base =
  {
    Scenario.default with
    nodes = 48;
    total_keys_override = Some 1;
    query_rate = 0.5;
    query_start = 300.;
    query_duration = 900.;
    drain = 300.;
    seed = 1001;
  }

let run policy = Runner.run (Scenario.with_policy base policy)

(* {1 Determinism} *)

let test_same_seed_same_costs () =
  let a = run Policy.second_chance and b = run Policy.second_chance in
  Alcotest.(check int) "total cost" (Counters.total_cost a.counters)
    (Counters.total_cost b.counters);
  Alcotest.(check int) "misses" (Counters.misses a.counters)
    (Counters.misses b.counters);
  Alcotest.(check int) "engine events" a.engine_events b.engine_events

let test_different_seed_differs () =
  let a = run Policy.second_chance in
  let b =
    Runner.run (Scenario.with_policy { base with seed = 2002 } Policy.second_chance)
  in
  Alcotest.(check bool) "different workloads" true
    (a.queries_posted <> b.queries_posted
    || Counters.total_cost a.counters <> Counters.total_cost b.counters)

(* The heap and calendar schedulers must be observationally
   interchangeable: same counters (down to the printed digits), same
   result fields, same trace event stream — for every workload shape.
   This is the contract that lets Engine pick whichever is faster. *)

let run_traced cfg =
  let live = Runner.Live.create cfg in
  let events = ref [] in
  Runner.Live.set_tracer live (Some (fun e -> events := e :: !events));
  let r = Runner.Live.finish live in
  (r, List.rev !events)

let observation ((r : Runner.result), trace) =
  ( Format.asprintf "%a" Counters.pp r.counters,
    r.node_stats,
    ( r.queries_posted,
      r.replica_events,
      r.engine_events,
      r.tracked_updates,
      r.justified_updates ),
    trace )

let equivalence_scenarios =
  [
    ("can-bernoulli", Scenario.with_policy base Policy.second_chance);
    ( "chord-token-bucket",
      Scenario.with_policy
        {
          base with
          overlay = T.Chord;
          capacity_mode = Scenario.Token_bucket 50.;
          refresh_batch_window = 5.;
          faults =
            Some
              (Scenario.Once_down
                 { fraction = 0.25; reduced = 0.25; warmup = 60. });
        }
        (Policy.Linear 0.25) );
    ( "pastry-zipf",
      Scenario.with_policy
        {
          base with
          overlay = T.Pastry;
          key_dist = `Zipf 0.9;
          total_keys_override = Some 4;
          refresh_sample = 0.5;
        }
        (Policy.Logarithmic 0.5) );
    (* Fault injection must obey the same byte-determinism contract:
       crash victims and loss draws come from dedicated substreams
       consumed in engine-event order. *)
    ( "crash-only",
      Scenario.with_policy
        {
          base with
          crashes =
            Some
              { Scenario.crash_rate = 0.02; recover_after = 30.; warmup = 30. };
        }
        Policy.second_chance );
    ( "loss-only",
      Scenario.with_policy
        { base with loss = Some { Scenario.drop = 0.2; jitter = 0.5 } }
        Policy.second_chance );
    ( "crash-and-loss",
      Scenario.with_policy
        {
          base with
          overlay = T.Chord;
          crashes =
            Some
              { Scenario.crash_rate = 0.02; recover_after = 20.; warmup = 30. };
          loss = Some { Scenario.drop = 0.15; jitter = 1.0 };
        }
        (Policy.Linear 0.25) );
  ]

let test_scheduler_equivalence () =
  List.iter
    (fun (name, cfg) ->
      List.iter
        (fun seed ->
          let cfg = { cfg with Scenario.seed } in
          let heap =
            observation (run_traced { cfg with scheduler = Some `Heap })
          in
          let calendar =
            observation (run_traced { cfg with scheduler = Some `Calendar })
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s seed %d: heap = calendar" name seed)
            true
            (heap = calendar))
        [ 1; 42; 1001 ])
    equivalence_scenarios

(* Same guarantee for the overlay's next-hop cache: it only memoizes a
   pure function of the membership, so answers cannot change. *)
let test_route_cache_equivalence () =
  List.iter
    (fun (name, cfg) ->
      let cached = observation (run_traced { cfg with route_cache = true }) in
      let cold = observation (run_traced { cfg with route_cache = false }) in
      Alcotest.(check bool)
        (name ^ ": cached = uncached")
        true (cached = cold))
    equivalence_scenarios

(* {1 Conservation laws} *)

let test_every_query_answered () =
  List.iter
    (fun policy ->
      let r = run policy in
      Alcotest.(check int)
        (Policy.to_string policy ^ ": hits + misses = queries posted")
        r.queries_posted
        (Counters.local_queries r.counters))
    [ Policy.Standard_caching; Policy.second_chance; Policy.All_out ]

let test_forwarded_equals_delivered_plus_dropped () =
  (* In Bernoulli capacity mode every emitted update is either
     delivered (one hop recorded) or dropped at the gate. *)
  let cfg =
    Scenario.with_policy
      { base with faults = Some (Scenario.Once_down { fraction = 0.3; reduced = 0.25; warmup = 100. }) }
      Policy.second_chance
  in
  let r = Runner.run cfg in
  let c = r.counters in
  let delivered =
    Counters.first_time_answer_hops c
    + Counters.first_time_proactive_hops c
    + Counters.refresh_hops c + Counters.delete_hops c
    + Counters.append_hops c
  in
  Alcotest.(check int) "emissions = deliveries + drops"
    r.node_stats.updates_forwarded
    (delivered + Counters.dropped_updates c)

let test_clear_bit_stats_match_hops () =
  let r = run Policy.second_chance in
  Alcotest.(check int) "clear-bits sent = clear-bit hops"
    r.node_stats.clear_bits_sent
    (Counters.clear_bit_hops r.counters)

(* {1 Baseline invariants} *)

let test_standard_caching_zero_overhead () =
  let r = run Policy.Standard_caching in
  Alcotest.(check int) "total = miss cost" (Counters.miss_cost r.counters)
    (Counters.total_cost r.counters);
  Alcotest.(check int) "no overhead" 0 (Counters.overhead_cost r.counters)

let test_push_level_zero_squelches () =
  let r = run (Policy.Push_level 0) in
  Alcotest.(check int) "no update propagation at level 0" 0
    (Counters.refresh_hops r.counters
    + Counters.delete_hops r.counters
    + Counters.append_hops r.counters
    + Counters.first_time_proactive_hops r.counters);
  Alcotest.(check int) "no clear-bits either" 0
    (Counters.clear_bit_hops r.counters)

let test_zero_capacity_falls_back_to_standard () =
  (* Section 3.7: with every node at zero outgoing capacity the
     network degrades to expiration-based caching — zero propagation
     overhead. *)
  let cfg =
    Scenario.with_policy
      {
        base with
        faults = Some (Scenario.Once_down { fraction = 1.0; reduced = 0.; warmup = 0. });
      }
      Policy.second_chance
  in
  let r = Runner.run cfg in
  Alcotest.(check int) "no propagation overhead" 0
    (Counters.overhead_cost r.counters);
  Alcotest.(check bool) "updates were suppressed" true
    (Counters.dropped_updates r.counters > 0);
  let std = run Policy.Standard_caching in
  (* identical workload, so the miss profile differs only by CUP's
     query coalescing *)
  let delta =
    abs (Counters.misses r.counters - Counters.misses std.counters)
  in
  Alcotest.(check bool) "miss count close to standard caching" true
    (delta * 20 <= Counters.misses std.counters)

(* {1 CUP benefits (fixed seed, deterministic)} *)

let test_cup_reduces_misses_and_latency () =
  let std = run Policy.Standard_caching in
  let cup = run Policy.second_chance in
  Alcotest.(check bool) "fewer misses" true
    (Counters.misses cup.counters < Counters.misses std.counters);
  Alcotest.(check bool) "lower miss cost" true
    (Counters.miss_cost cup.counters < Counters.miss_cost std.counters);
  (* The latency benefit needs a network deep enough for the
     subscribed region to shorten miss paths. *)
  let dense = { base with nodes = 128; query_rate = 2. } in
  let std = Runner.run (Scenario.with_policy dense Policy.Standard_caching) in
  let cup = Runner.run (Scenario.with_policy dense Policy.second_chance) in
  Alcotest.(check bool) "lower miss latency (dense run)" true
    (Counters.avg_miss_latency_hops cup.counters
    < Counters.avg_miss_latency_hops std.counters)

let test_more_propagation_fewer_misses () =
  let all_out = run Policy.All_out in
  let sc = run Policy.second_chance in
  let std = run Policy.Standard_caching in
  Alcotest.(check bool) "all-out <= second-chance misses" true
    (Counters.misses all_out.counters <= Counters.misses sc.counters);
  Alcotest.(check bool) "second-chance < standard misses" true
    (Counters.misses sc.counters < Counters.misses std.counters)

let test_coalescing_only_in_cup () =
  let burst =
    { base with query_rate = 50.; query_duration = 60.; drain = 100. }
  in
  let cup = Runner.run (Scenario.with_policy burst Policy.second_chance) in
  let std = Runner.run (Scenario.with_policy burst Policy.Standard_caching) in
  Alcotest.(check bool) "cup coalesces bursts" true
    (cup.node_stats.queries_coalesced > 0);
  Alcotest.(check int) "standard never coalesces" 0
    std.node_stats.queries_coalesced

(* {1 Token-bucket capacity mode} *)

let test_token_bucket_completes_and_bounds () =
  (* Five replicas on a 60 s lifetime generate far more update demand
     than a 0.05 update/s channel can carry: queued updates expire in
     the Section 2.8 queues instead of being delivered. *)
  let starved_base =
    { base with replicas_per_key = 5; replica_lifetime = 60. }
  in
  let cfg =
    Scenario.with_policy
      { starved_base with capacity_mode = Scenario.Token_bucket 0.05 }
      Policy.second_chance
  in
  let r = Runner.run cfg in
  Alcotest.(check int) "every query answered" r.queries_posted
    (Counters.local_queries r.counters);
  Alcotest.(check bool) "some update flow" true
    (Counters.overhead_cost r.counters > 0);
  let free = Runner.run (Scenario.with_policy starved_base Policy.second_chance) in
  Alcotest.(check bool) "starved channel delivers far fewer refreshes" true
    (Counters.refresh_hops r.counters * 2 < Counters.refresh_hops free.counters)

(* {1 Section 3.6 techniques and Section 3.1 justification} *)

let test_refresh_batching_reduces_overhead () =
  let many = { base with replicas_per_key = 10 } in
  let plain = Runner.run (Scenario.with_policy many Policy.second_chance) in
  let batched =
    Runner.run
      (Scenario.with_policy { many with refresh_batch_window = 60. }
         Policy.second_chance)
  in
  Alcotest.(check bool) "batching cuts refresh hops" true
    (Counters.refresh_hops batched.counters
    < Counters.refresh_hops plain.counters / 2);
  Alcotest.(check bool) "miss cost stays comparable" true
    (Counters.miss_cost batched.counters
    <= (3 * Counters.miss_cost plain.counters / 2) + 50)

let test_refresh_sampling_drops_half () =
  let many = { base with replicas_per_key = 10 } in
  let sampled =
    Runner.run
      (Scenario.with_policy { many with refresh_sample = 0.5 }
         Policy.second_chance)
  in
  Alcotest.(check bool) "suppressions are recorded as drops" true
    (Counters.dropped_updates sampled.counters > 0);
  (* the emission/delivery/drop conservation law must survive *)
  let delivered =
    Counters.first_time_answer_hops sampled.counters
    + Counters.first_time_proactive_hops sampled.counters
    + Counters.refresh_hops sampled.counters
    + Counters.delete_hops sampled.counters
    + Counters.append_hops sampled.counters
  in
  Alcotest.(check int) "conservation with sampling"
    sampled.node_stats.updates_forwarded
    (delivered + Counters.dropped_updates sampled.counters)

let test_piggybacked_clear_bits_uncharged () =
  let cfg =
    Scenario.with_policy { base with piggyback_clear_bits = true }
      Policy.second_chance
  in
  let r = Runner.run cfg in
  Alcotest.(check bool) "clear-bits were sent" true
    (r.node_stats.clear_bits_sent > 0);
  Alcotest.(check int) "but not charged" 0
    (Counters.clear_bit_hops r.counters)

let test_justification_accounting () =
  let std = run Policy.Standard_caching in
  Alcotest.(check int) "standard caching tracks nothing" 0
    std.tracked_updates;
  let cup = run Policy.second_chance in
  Alcotest.(check bool) "cup tracks its propagation" true
    (cup.tracked_updates > 0);
  Alcotest.(check bool) "justified <= tracked" true
    (cup.justified_updates <= cup.tracked_updates);
  (* a denser workload justifies a larger fraction *)
  let dense =
    Runner.run
      (Scenario.with_policy { base with query_rate = 10. }
         Policy.second_chance)
  in
  let pct (r : Runner.result) =
    float_of_int r.justified_updates
    /. float_of_int (max 1 r.tracked_updates)
  in
  Alcotest.(check bool) "justified fraction grows with query rate" true
    (pct dense > pct cup)

(* {1 Live interface and churn} *)

let test_live_manual_query () =
  let live = Runner.Live.create base in
  let key = Runner.Live.key_of_index live 0 in
  Runner.Live.run_until live 300.;
  let querier =
    List.find
      (fun id ->
        not
          (Cup_overlay.Node_id.equal id (Runner.Live.authority_of live key)))
      (T.node_ids (Runner.Live.network live))
  in
  Runner.Live.post_query live ~node:querier ~key;
  Runner.Live.run_until live 310.;
  let node = Runner.Live.node live querier in
  Alcotest.(check int) "querier cached the answer" 1
    (List.length
       (Cup_proto.Node.fresh_entries node ~now:(Cup_dess.Time.of_seconds 310.)
          key));
  ignore (Runner.Live.finish live)

let test_live_churn_preserves_consistency () =
  (* the same churn sequence must keep every overlay's authority table
     in sync with routing ownership — including Pastry, where one join
     can take keys from both ring sides *)
  List.iter
    (fun overlay ->
      let live =
        Runner.Live.create
          { base with nodes = 24; query_rate = 1.; overlay;
            total_keys_override = Some 6 }
      in
      Runner.Live.run_until live 400.;
      let added = Runner.Live.node_join live in
      Runner.Live.run_until live 450.;
      ignore (Runner.Live.node_join live);
      Runner.Live.run_until live 500.;
      (* remove a node that is not the newest one *)
      let victim =
        List.find
          (fun id -> not (Cup_overlay.Node_id.equal id added))
          (T.node_ids (Runner.Live.network live))
      in
      Runner.Live.node_leave live victim;
      (match T.check_invariants (Runner.Live.network live) with
      | Ok () -> ()
      | Error m -> Alcotest.fail m);
      for i = 0 to 5 do
        let key = Runner.Live.key_of_index live i in
        Alcotest.(check bool) "authority table tracks ownership" true
          (Cup_overlay.Node_id.equal
             (Runner.Live.authority_of live key)
             (T.owner_of_key (Runner.Live.network live) key))
      done;
      let r = Runner.Live.finish live in
      Alcotest.(check bool) "run completed with queries served" true
        (Counters.local_queries r.counters > 0))
    [ Cup_overlay.Net.Can `Random; Cup_overlay.Net.Chord;
      Cup_overlay.Net.Pastry ]

let test_authority_departure_hands_over_directory () =
  let live = Runner.Live.create { base with nodes = 16 } in
  Runner.Live.run_until live 400.;
  let key = Runner.Live.key_of_index live 0 in
  let auth = Runner.Live.authority_of live key in
  let dir_before =
    Cup_proto.Node.local_directory (Runner.Live.node live auth) key
  in
  Alcotest.(check bool) "authority has directory entries" true
    (dir_before <> []);
  Runner.Live.node_leave live auth;
  let new_auth = Runner.Live.authority_of live key in
  Alcotest.(check bool) "authority moved" false
    (Cup_overlay.Node_id.equal auth new_auth);
  let dir_after =
    Cup_proto.Node.local_directory (Runner.Live.node live new_auth) key
  in
  Alcotest.(check int) "directory handed over" (List.length dir_before)
    (List.length dir_after);
  ignore (Runner.Live.finish live)

(* {1 Overlay generality} *)

let test_cup_over_chord () =
  let chord_base = { base with overlay = Cup_overlay.Net.Chord } in
  let std = Runner.run (Scenario.with_policy chord_base Policy.Standard_caching) in
  let cup = Runner.run (Scenario.with_policy chord_base Policy.second_chance) in
  Alcotest.(check int) "all queries answered over chord" std.queries_posted
    (Counters.local_queries std.counters);
  Alcotest.(check int) "standard stays overhead-free on chord" 0
    (Counters.overhead_cost std.counters);
  Alcotest.(check bool) "cup beats standard on chord misses" true
    (Counters.misses cup.counters < Counters.misses std.counters)

let test_authority_crash_loses_then_recovers_directory () =
  let live = Runner.Live.create { base with nodes = 16 } in
  Runner.Live.run_until live 400.;
  let key = Runner.Live.key_of_index live 0 in
  let auth = Runner.Live.authority_of live key in
  Alcotest.(check bool) "directory populated" true
    (Cup_proto.Node.local_directory (Runner.Live.node live auth) key <> []);
  Runner.Live.node_leave ~graceful:false live auth;
  let new_auth = Runner.Live.authority_of live key in
  Alcotest.(check int) "crash loses the directory" 0
    (List.length
       (Cup_proto.Node.local_directory (Runner.Live.node live new_auth) key));
  (* the replica's next keep-alive (at its expiry, within one
     lifetime) rebuilds the index at the new authority *)
  Runner.Live.run_until live (400. +. base.replica_lifetime +. 1.);
  Alcotest.(check bool) "keep-alives rebuild the directory" true
    (Cup_proto.Node.local_directory (Runner.Live.node live new_auth) key <> []);
  ignore (Runner.Live.finish live)

(* {1 Fault injection} *)

(* The acceptance scenario: crashes mid-propagation plus heavy
   message loss.  The run must complete without raising — the routing
   layer reports typed [Unreachable] outcomes instead of [failwith] —
   and the fault counters must show the machinery actually fired. *)
let fault_cfg =
  Scenario.with_policy
    {
      base with
      crashes =
        Some { Scenario.crash_rate = 0.05; recover_after = 15.; warmup = 10. };
      loss = Some { Scenario.drop = 0.3; jitter = 0.5 };
    }
    Policy.second_chance

let test_fault_injection_acceptance () =
  let r = Runner.run fault_cfg in
  Alcotest.(check bool) "queries answered or typed-unreachable" true
    (r.queries_posted > 0);
  Alcotest.(check bool) "messages were lost" true
    (Counters.lost_messages r.counters > 0);
  Alcotest.(check bool) "transport retried" true
    (Counters.retries r.counters > 0);
  Alcotest.(check bool) "repairs completed" true
    (Counters.repairs r.counters > 0);
  Alcotest.(check bool) "unreachable outcomes recorded" true
    (Counters.unreachable r.counters > 0)

let test_fault_counters_in_pp () =
  let r = Runner.run fault_cfg in
  let printed = Format.asprintf "%a" Counters.pp r.counters in
  Alcotest.(check bool) "faults line printed under injection" true
    (let rec contains i =
       i + 7 <= String.length printed
       && (String.sub printed i 7 = "faults:" || contains (i + 1))
     in
     contains 0);
  (* fault-free runs keep the historical counter shape *)
  let clean = Runner.run (Scenario.with_policy base Policy.second_chance) in
  let printed = Format.asprintf "%a" Counters.pp clean.counters in
  Alcotest.(check bool) "no faults line without injection" true
    (let rec contains i =
       i + 7 <= String.length printed
       && (String.sub printed i 7 = "faults:" || contains (i + 1))
     in
     not (contains 0))

(* Justification-deadline table boundedness: interior tree nodes
   receive refresh updates every cycle but stop seeing queries once
   subscriptions coalesce upstream.  Expired deadlines are swept when
   the next update arrives, so quadrupling the run length must not
   quadruple the retained backlog. *)
let test_justification_backlog_bounded () =
  let backlog_at duration =
    let cfg =
      Scenario.with_policy
        { base with query_duration = duration; drain = 0. }
        Policy.All_out
    in
    let live = Runner.Live.create cfg in
    Runner.Live.run_until live (base.query_start +. duration);
    Runner.Live.justification_backlog live
  in
  let short = backlog_at 600. and long = backlog_at 2400. in
  Alcotest.(check bool)
    (Printf.sprintf "backlog bounded (600s: %d, 2400s: %d)" short long)
    true
    (long < (2 * short) + 64)

(* {1 Replication} *)

let test_replicate_statistics () =
  let cfg = Scenario.with_policy base Policy.second_chance in
  let r = E.replicate cfg ~runs:3 in
  Alcotest.(check int) "runs" 3 r.E.runs;
  Alcotest.(check bool) "means positive" true
    (r.E.total_mean > 0. && r.E.miss_mean > 0.);
  Alcotest.(check bool) "stddev finite" true
    (Float.is_finite r.E.total_stddev);
  (* replicate with a single run reproduces Runner.run exactly *)
  let single = E.replicate cfg ~runs:1 in
  let direct = Runner.run cfg in
  Alcotest.(check (float 1e-9)) "single run matches"
    (float_of_int (Counters.total_cost direct.counters))
    single.E.total_mean;
  Alcotest.check_raises "zero runs rejected"
    (Invalid_argument "Experiments.replicate: runs must be >= 1") (fun () ->
      ignore (E.replicate cfg ~runs:0))

(* {1 Trace} *)

module Trace = Cup_sim.Trace

let test_trace_ring_bounds () =
  let tr = Trace.create ~capacity:3 () in
  for i = 0 to 4 do
    Trace.record tr
      (Trace.Query_posted
         {
           at = Cup_dess.Time.of_seconds (float_of_int i);
           node = Cup_overlay.Node_id.of_int i;
           key = Cup_overlay.Key.of_int 0;
           trace_id = 0;
           span_id = 0;
           parent_id = 0;
         })
  done;
  Alcotest.(check int) "keeps capacity" 3 (Trace.length tr);
  Alcotest.(check int) "counts drops" 2 (Trace.dropped tr);
  (match Trace.events tr with
  | Trace.Query_posted { node; _ } :: _ ->
      Alcotest.(check int) "oldest retained is #2" 2
        (Cup_overlay.Node_id.to_int node)
  | _ -> Alcotest.fail "unexpected events");
  Trace.clear tr;
  Alcotest.(check int) "clear empties" 0 (Trace.length tr)

let test_trace_wraparound_order_and_filter () =
  (* wrap a small ring several times over; the survivors must be the
     newest [capacity] events, oldest first, and filter_key must
     respect that order on the wrapped ring *)
  let capacity = 4 in
  let total = 11 in
  let tr = Trace.create ~capacity () in
  for i = 0 to total - 1 do
    Trace.record tr
      (Trace.Query_posted
         {
           at = Cup_dess.Time.of_seconds (float_of_int i);
           node = Cup_overlay.Node_id.of_int i;
           key = Cup_overlay.Key.of_int (i mod 2);
           trace_id = 0;
           span_id = 0;
           parent_id = 0;
         })
  done;
  Alcotest.(check int) "dropped = total - capacity" (total - capacity)
    (Trace.dropped tr);
  let nodes =
    List.map
      (function
        | Trace.Query_posted { node; _ } -> Cup_overlay.Node_id.to_int node
        | _ -> Alcotest.fail "unexpected event")
      (Trace.events tr)
  in
  Alcotest.(check (list int)) "newest four, oldest first" [ 7; 8; 9; 10 ]
    nodes;
  let odd_nodes =
    List.map
      (function
        | Trace.Query_posted { node; _ } -> Cup_overlay.Node_id.to_int node
        | _ -> Alcotest.fail "unexpected event")
      (Trace.filter_key tr (Cup_overlay.Key.of_int 1))
  in
  Alcotest.(check (list int)) "filter_key on wrapped ring" [ 7; 9 ] odd_nodes

let test_trace_captures_protocol_cycle () =
  let live = Runner.Live.create { base with query_rate = 0.001 } in
  let tr = Trace.create () in
  Runner.Live.set_tracer live (Some (Trace.record tr));
  let key = Runner.Live.key_of_index live 0 in
  Runner.Live.run_until live 350.;
  Trace.clear tr;
  let querier =
    List.find
      (fun id ->
        not (Cup_overlay.Node_id.equal id (Runner.Live.authority_of live key)))
      (T.node_ids (Runner.Live.network live))
  in
  Runner.Live.post_query live ~node:querier ~key;
  Runner.Live.run_until live 352.;
  let events = Trace.filter_key tr key in
  let has f = List.exists f events in
  Alcotest.(check bool) "query posted" true
    (has (function Trace.Query_posted _ -> true | _ -> false));
  Alcotest.(check bool) "answer flowed" true
    (has (function
      | Trace.Update_delivered { answering = true; _ } -> true
      | _ -> false));
  Alcotest.(check bool) "local client answered" true
    (has (function Trace.Local_answer { hit = false; _ } -> true | _ -> false));
  (* events are time-ordered *)
  let times = List.map Trace.event_time events in
  Alcotest.(check bool) "ordered" true
    (List.sort compare times = times);
  (* detach works: nothing new after *)
  Runner.Live.set_tracer live None;
  Trace.clear tr;
  Runner.Live.post_query live ~node:querier ~key;
  Runner.Live.run_until live 353.;
  Alcotest.(check int) "detached" 0 (Trace.length tr);
  ignore (Runner.Live.finish live)

(* {1 End-to-end property: random scenarios keep the system laws} *)

let scenario_gen =
  QCheck.Gen.(
    let* nodes = int_range 4 48 in
    let* keys = int_range 1 4 in
    let* replicas = int_range 1 3 in
    let* rate10 = int_range 1 20 in
    let* policy_ix = int_range 0 5 in
    let* overlay_ix = int_range 0 2 in
    let* seed = int_range 0 10_000 in
    (* Swarm-style fault axes: each is independently present with
       probability 1/2, so combinations (where the bugs live — see the
       update-storm seeds in regress_seeds.ml) get real coverage. *)
    let axis gen =
      let* on = bool in
      if on then map Option.some gen else return None
    in
    let* crashes =
      axis
        (let* r100 = int_range 1 15 in
         let* recover = int_range 0 40 in
         return
           {
             Scenario.crash_rate = float_of_int r100 /. 100.;
             recover_after = float_of_int recover;
             warmup = 0.;
           })
    in
    let* loss =
      axis
        (let* d100 = int_range 5 30 in
         let* j10 = int_range 0 10 in
         return
           {
             Scenario.drop = float_of_int d100 /. 100.;
             jitter = float_of_int j10 /. 10.;
           })
    in
    let* partition =
      axis
        (let* f100 = int_range 10 50 in
         let* start = int_range 0 200 in
         let* dur = int_range 10 200 in
         let* symmetric = bool in
         return
           {
             Scenario.fraction = float_of_int f100 /. 100.;
             p_start = float_of_int start;
             p_duration = float_of_int dur;
             symmetric;
           })
    in
    let* reorder =
      axis
        (let* p100 = int_range 10 60 in
         let* spread = int_range 1 8 in
         return
           {
             Scenario.r_probability = float_of_int p100 /. 100.;
             r_spread = float_of_int spread;
           })
    in
    let* duplication =
      axis
        (let* p100 = int_range 5 30 in
         return { Scenario.d_probability = float_of_int p100 /. 100. })
    in
    let policy =
      List.nth
        [ Policy.Standard_caching; Policy.All_out; Policy.Push_level 3;
          Policy.Linear 0.1; Policy.second_chance; Policy.Log_based 3 ]
        policy_ix
    in
    let overlay =
      List.nth
        [ Cup_overlay.Net.Can `Random; Cup_overlay.Net.Chord;
          Cup_overlay.Net.Pastry ]
        overlay_ix
    in
    return
      (Scenario.with_policy
         {
           Scenario.default with
           nodes;
           total_keys_override = Some keys;
           replicas_per_key = replicas;
           query_rate = float_of_int rate10 /. 10.;
           query_start = 100.;
           query_duration = 400.;
           drain = 100.;
           replica_lifetime = 60.;
           seed;
           overlay;
           crashes;
           loss;
           partition;
           reorder;
           duplication;
         }
         policy))

let prop_random_scenarios_obey_laws =
  QCheck.Test.make ~count:25 ~name:"random scenarios obey the system laws"
    (QCheck.make scenario_gen)
    (fun cfg ->
      let r = Runner.run cfg in
      let c = r.counters in
      let faulty = Scenario.fault_injection cfg in
      (* Laws that hold under any fault injection: *)
      (* cost buckets are consistent *)
      Counters.total_cost c = Counters.miss_cost c + Counters.overhead_cost c
      (* transport conservation: everything sent is delivered or lost *)
      && Counters.sent c = Counters.delivered c + Counters.transport_lost c
      (* justification never exceeds what was tracked *)
      && r.justified_updates <= r.tracked_updates
      (* determinism: an identical rerun reproduces the costs *)
      && Counters.total_cost (Runner.run cfg).counters = Counters.total_cost c
      (* Laws that assume a fault-free network: *)
      && (faulty
         || (* every local query is answered exactly once *)
         Counters.local_queries c = r.queries_posted
         (* emitted updates are delivered or dropped, never lost *)
         && r.node_stats.updates_forwarded
            = Counters.first_time_answer_hops c
              + Counters.first_time_proactive_hops c
              + Counters.refresh_hops c + Counters.delete_hops c
              + Counters.append_hops c + Counters.dropped_updates c
         (* clear-bit accounting matches the node stats *)
         && r.node_stats.clear_bits_sent = Counters.clear_bit_hops c))

(* {1 Analysis (Section 3.1 closed forms)} *)

module Analysis = Cup_sim.Analysis

let test_analysis_justified_probability () =
  (* the paper's example: rate 1 q/s, window 6 s -> 99 percent *)
  let p = Analysis.justified_probability ~subtree_rate:1. ~window:6. in
  Alcotest.(check bool) (Printf.sprintf "paper example: %.4f" p) true
    (p > 0.99 && p < 1.);
  Alcotest.(check (float 1e-9)) "zero window" 0.
    (Analysis.justified_probability ~subtree_rate:5. ~window:0.);
  Alcotest.(check bool) "monotone in rate" true
    (Analysis.justified_probability ~subtree_rate:2. ~window:1.
    > Analysis.justified_probability ~subtree_rate:1. ~window:1.)

let test_analysis_miss_cost () =
  Alcotest.(check (float 1e-9)) "2D hops" 18.
    (Analysis.miss_cost_per_query ~distance:9);
  Alcotest.(check (float 1e-9)) "authority is free" 0.
    (Analysis.miss_cost_per_query ~distance:0)

let test_analysis_break_even () =
  Alcotest.(check (float 1e-9)) "half the updates justified" 0.5
    Analysis.break_even_justified_fraction

let test_analysis_optimal_push_level () =
  let rates = Array.make 1024 (1. /. 1024.) in
  let shallow =
    Analysis.optimal_push_level ~rates ~window:30. ~tree_fanout:2.
  in
  let deep =
    Analysis.optimal_push_level ~rates ~window:3000. ~tree_fanout:2.
  in
  Alcotest.(check bool)
    (Printf.sprintf "longer windows push deeper (%d vs %d)" shallow deep)
    true (deep > shallow);
  Alcotest.(check bool) "levels are nonnegative" true (shallow >= 0)

let test_analysis_model_tracks_simulation () =
  (* one mid-curve point: measured within ~20 points of the model *)
  match
    List.find_opt
      (fun (r : E.model_row) -> r.m_rate = 0.02)
      (E.model_check E.Scaled)
  with
  | None -> Alcotest.fail "missing model point"
  | Some r ->
      Alcotest.(check bool)
        (Printf.sprintf "measured %.1f vs model %.1f"
           r.measured_justified_pct r.predicted_justified_pct)
        true
        (Float.abs (r.measured_justified_pct -. r.predicted_justified_pct)
        < 20.)

(* {1 Scenario validation} *)

let test_invalid_scenarios_rejected () =
  let expect_invalid cfg =
    match Scenario.validate cfg with
    | Ok () -> Alcotest.fail "expected a validation error"
    | Error _ -> ()
  in
  expect_invalid { base with nodes = 0 };
  expect_invalid { base with query_rate = 0. };
  expect_invalid { base with replica_lifetime = 0. };
  expect_invalid { base with death_prob = 2. };
  expect_invalid { base with total_keys_override = Some 0 };
  expect_invalid
    { base with capacity_mode = Scenario.Token_bucket 0. };
  expect_invalid { base with refresh_batch_window = -1. };
  expect_invalid { base with refresh_sample = 1.5 };
  expect_invalid
    {
      base with
      faults = Some (Scenario.Once_down { fraction = 2.; reduced = 0.5; warmup = 0. });
    }

let test_runner_rejects_invalid () =
  Alcotest.check_raises "runner validates"
    (Invalid_argument "Runner: invalid scenario: nodes must be >= 1")
    (fun () -> ignore (Runner.run { base with nodes = 0 }))

(* {1 Experiment plumbing (tiny instances)} *)

let test_push_level_sweep_structure () =
  let s = E.push_level_sweep ~levels:[ 0; 2; 8 ] E.Scaled ~rate:0.25 in
  Alcotest.(check int) "three points" 3 (List.length s.points);
  Alcotest.(check bool) "optimal is one of the levels" true
    (List.exists (fun (p : E.push_level_point) -> p.level = s.optimal_level) s.points);
  let at l =
    (List.find (fun (p : E.push_level_point) -> p.level = l) s.points).miss_cost
  in
  Alcotest.(check bool) "miss cost decreases with push level" true
    (at 8 <= at 2 && at 2 <= at 0)

let () =
  Alcotest.run "cup_sim"
    [
      ( "determinism",
        [
          Alcotest.test_case "same seed" `Quick test_same_seed_same_costs;
          Alcotest.test_case "different seed" `Quick
            test_different_seed_differs;
          Alcotest.test_case "heap vs calendar scheduler" `Quick
            test_scheduler_equivalence;
          Alcotest.test_case "route cache on vs off" `Quick
            test_route_cache_equivalence;
        ] );
      ( "conservation",
        [
          Alcotest.test_case "every query answered" `Quick
            test_every_query_answered;
          Alcotest.test_case "forwarded = delivered + dropped" `Quick
            test_forwarded_equals_delivered_plus_dropped;
          Alcotest.test_case "clear-bit stats" `Quick
            test_clear_bit_stats_match_hops;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "standard zero overhead" `Quick
            test_standard_caching_zero_overhead;
          Alcotest.test_case "push level 0 squelches" `Quick
            test_push_level_zero_squelches;
          Alcotest.test_case "zero capacity fallback" `Quick
            test_zero_capacity_falls_back_to_standard;
        ] );
      ( "cup benefits",
        [
          Alcotest.test_case "fewer misses, lower latency" `Quick
            test_cup_reduces_misses_and_latency;
          Alcotest.test_case "propagation monotonicity" `Quick
            test_more_propagation_fewer_misses;
          Alcotest.test_case "coalescing" `Quick test_coalescing_only_in_cup;
        ] );
      ( "token bucket",
        [
          Alcotest.test_case "completes and limits" `Quick
            test_token_bucket_completes_and_bounds;
        ] );
      ( "techniques",
        [
          Alcotest.test_case "refresh batching" `Quick
            test_refresh_batching_reduces_overhead;
          Alcotest.test_case "refresh sampling" `Quick
            test_refresh_sampling_drops_half;
          Alcotest.test_case "piggybacked clear-bits" `Quick
            test_piggybacked_clear_bits_uncharged;
          Alcotest.test_case "justification" `Quick
            test_justification_accounting;
        ] );
      ( "live + churn",
        [
          Alcotest.test_case "manual query" `Quick test_live_manual_query;
          Alcotest.test_case "churn consistency" `Quick
            test_live_churn_preserves_consistency;
          Alcotest.test_case "authority departure" `Quick
            test_authority_departure_hands_over_directory;
        ] );
      ( "overlay generality",
        [
          Alcotest.test_case "cup over chord" `Quick test_cup_over_chord;
          Alcotest.test_case "authority crash recovery" `Quick
            test_authority_crash_loses_then_recovers_directory;
        ] );
      ( "fault injection",
        [
          Alcotest.test_case "crash+loss acceptance" `Quick
            test_fault_injection_acceptance;
          Alcotest.test_case "fault counters in pp" `Quick
            test_fault_counters_in_pp;
          Alcotest.test_case "justification backlog bounded" `Quick
            test_justification_backlog_bounded;
        ] );
      ( "replication",
        [ Alcotest.test_case "statistics" `Quick test_replicate_statistics ] );
      ( "trace",
        [
          Alcotest.test_case "ring bounds" `Quick test_trace_ring_bounds;
          Alcotest.test_case "wraparound order + filter" `Quick
            test_trace_wraparound_order_and_filter;
          Alcotest.test_case "captures a cycle" `Quick
            test_trace_captures_protocol_cycle;
        ] );
      ( "system laws",
        [ QCheck_alcotest.to_alcotest prop_random_scenarios_obey_laws ] );
      ( "analysis",
        [
          Alcotest.test_case "justified probability" `Quick
            test_analysis_justified_probability;
          Alcotest.test_case "miss cost" `Quick test_analysis_miss_cost;
          Alcotest.test_case "break even" `Quick test_analysis_break_even;
          Alcotest.test_case "optimal push level" `Quick
            test_analysis_optimal_push_level;
          Alcotest.test_case "model tracks simulation" `Slow
            test_analysis_model_tracks_simulation;
        ] );
      ( "validation",
        [
          Alcotest.test_case "scenarios" `Quick test_invalid_scenarios_rejected;
          Alcotest.test_case "runner" `Quick test_runner_rejects_invalid;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "push level sweep" `Slow
            test_push_level_sweep_structure;
        ] );
    ]
