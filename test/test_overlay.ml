(* Tests for Cup_overlay: torus geometry, zones, keys, and the CAN
   topology (join/leave/routing). *)

module Point = Cup_overlay.Point
module Zone = Cup_overlay.Zone
module Key = Cup_overlay.Key
module Node_id = Cup_overlay.Node_id
module T = Cup_overlay.Topology
module Route = Cup_overlay.Route
module Rng = Cup_prng.Rng

(* Hop list of a route that must succeed. *)
let hops r = Route.hops_exn r

(* {1 Point} *)

let test_point_wraps () =
  let p = Point.make ~x:1.25 ~y:(-0.25) in
  Alcotest.(check (float 1e-9)) "x wrapped" 0.25 p.Point.x;
  Alcotest.(check (float 1e-9)) "y wrapped" 0.75 p.Point.y

let test_axis_distance () =
  Alcotest.(check (float 1e-9)) "plain" 0.2 (Point.axis_distance 0.1 0.3);
  Alcotest.(check (float 1e-9)) "around the seam" 0.2
    (Point.axis_distance 0.9 0.1);
  Alcotest.(check (float 1e-9)) "max is 1/2" 0.5 (Point.axis_distance 0. 0.5)

let test_point_distance_symmetric () =
  let p = Point.make ~x:0.1 ~y:0.9 and q = Point.make ~x:0.8 ~y:0.2 in
  Alcotest.(check (float 1e-9)) "symmetry" (Point.distance p q)
    (Point.distance q p);
  Alcotest.(check (float 1e-9)) "self distance" 0. (Point.distance p p)

(* {1 Zone} *)

let test_zone_make_validates () =
  Alcotest.check_raises "inverted bounds"
    (Invalid_argument "Zone.make: bounds must satisfy 0 <= lo < hi <= 1")
    (fun () -> ignore (Zone.make ~x_lo:0.5 ~x_hi:0.2 ~y_lo:0. ~y_hi:1.))

let test_zone_contains_half_open () =
  let z = Zone.make ~x_lo:0. ~x_hi:0.5 ~y_lo:0. ~y_hi:0.5 in
  Alcotest.(check bool) "inside" true (Zone.contains z (Point.make ~x:0.25 ~y:0.25));
  Alcotest.(check bool) "low edge included" true
    (Zone.contains z (Point.make ~x:0. ~y:0.));
  Alcotest.(check bool) "high edge excluded" false
    (Zone.contains z (Point.make ~x:0.5 ~y:0.25))

let test_zone_split_halves_longer_dim () =
  let z = Zone.make ~x_lo:0. ~x_hi:1. ~y_lo:0. ~y_hi:0.5 in
  let low, high = Zone.split z in
  Alcotest.(check (float 1e-9)) "volumes halve" (Zone.volume z /. 2.)
    (Zone.volume low);
  Alcotest.(check (float 1e-9)) "low x_hi" 0.5 low.Zone.x_hi;
  Alcotest.(check (float 1e-9)) "high x_lo" 0.5 high.Zone.x_lo;
  (* square splits along x *)
  let sq = Zone.make ~x_lo:0. ~x_hi:0.5 ~y_lo:0. ~y_hi:0.5 in
  let l, _ = Zone.split sq in
  Alcotest.(check (float 1e-9)) "square splits x first" 0.25 l.Zone.x_hi

let test_zone_adjacent_basic () =
  let a = Zone.make ~x_lo:0. ~x_hi:0.5 ~y_lo:0. ~y_hi:0.5 in
  let b = Zone.make ~x_lo:0.5 ~x_hi:1. ~y_lo:0. ~y_hi:0.5 in
  let c = Zone.make ~x_lo:0.5 ~x_hi:1. ~y_lo:0.5 ~y_hi:1. in
  Alcotest.(check bool) "side by side" true (Zone.adjacent a b);
  Alcotest.(check bool) "diagonal is not adjacent" false (Zone.adjacent a c);
  Alcotest.(check bool) "symmetric" (Zone.adjacent b a) (Zone.adjacent a b)

let test_zone_adjacent_across_seam () =
  let left = Zone.make ~x_lo:0. ~x_hi:0.25 ~y_lo:0. ~y_hi:1. in
  let right = Zone.make ~x_lo:0.75 ~x_hi:1. ~y_lo:0. ~y_hi:1. in
  Alcotest.(check bool) "wraps around the torus seam" true
    (Zone.adjacent left right)

let test_zone_distance_to_point () =
  let z = Zone.make ~x_lo:0.25 ~x_hi:0.5 ~y_lo:0.25 ~y_hi:0.5 in
  Alcotest.(check (float 1e-9)) "inside is zero" 0.
    (Zone.distance_to_point z (Point.make ~x:0.3 ~y:0.3));
  Alcotest.(check (float 1e-9)) "axis-aligned outside" 0.1
    (Zone.distance_to_point z (Point.make ~x:0.6 ~y:0.3));
  (* wrap-around shortcut: point at x=0.9 is 0.15 from x_lo=0.25 going
     left across the seam... actually 0.35 left vs 0.4 right; distance
     to the interval is min(dist to 0.25, dist to 0.5) = min(0.35, 0.4). *)
  Alcotest.(check (float 1e-9)) "wraparound distance" 0.35
    (Zone.distance_to_point z (Point.make ~x:0.9 ~y:0.3))

(* {1 Key} *)

let test_key_point_deterministic () =
  let k = Key.of_int 12345 in
  Alcotest.(check bool) "same key same point" true
    (Point.equal (Key.to_point k) (Key.to_point k));
  Alcotest.(check bool) "different keys differ" false
    (Point.equal (Key.to_point (Key.of_int 1)) (Key.to_point (Key.of_int 2)))

let test_key_points_spread () =
  (* Hash quality: 1000 keys should land in most of a 4x4 bucket grid. *)
  let buckets = Hashtbl.create 16 in
  for k = 0 to 999 do
    let p = Key.to_point (Key.of_int k) in
    let bx = int_of_float (p.Point.x *. 4.) and by = int_of_float (p.Point.y *. 4.) in
    Hashtbl.replace buckets (bx, by) ()
  done;
  Alcotest.(check int) "all 16 buckets hit" 16 (Hashtbl.length buckets)

let test_key_negative_rejected () =
  Alcotest.check_raises "negative key"
    (Invalid_argument "Key.of_int: negative key") (fun () ->
      ignore (Key.of_int (-1)))

(* {1 Topology} *)

let check_invariants t label =
  match T.check_invariants t with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: %s" label msg

let test_topo_single_node () =
  let t = T.create ~n:1 ~placement:`Grid () in
  Alcotest.(check int) "size" 1 (T.size t);
  let id = List.hd (T.node_ids t) in
  Alcotest.(check (list int)) "no neighbors" []
    (List.map Node_id.to_int (T.neighbors t id));
  Alcotest.(check bool) "owns everything" true
    (T.next_hop t id (Point.make ~x:0.9 ~y:0.1) = Route.Owner)

let test_topo_grid_build () =
  List.iter
    (fun n ->
      let t = T.create ~n ~placement:`Grid () in
      Alcotest.(check int) "size" n (T.size t);
      check_invariants t (Printf.sprintf "grid %d" n))
    [ 2; 4; 16; 64; 100 ]

let test_topo_random_build () =
  let rng = Rng.create ~seed:17 in
  List.iter
    (fun n ->
      let t = T.create ~rng ~n ~placement:`Random () in
      Alcotest.(check int) "size" n (T.size t);
      check_invariants t (Printf.sprintf "random %d" n))
    [ 2; 3; 7; 33; 128 ]

let test_topo_random_needs_rng () =
  Alcotest.check_raises "no rng"
    (Invalid_argument "Topology.create: `Random needs ~rng") (fun () ->
      ignore (T.create ~n:4 ~placement:`Random ()))

let test_topo_route_reaches_owner () =
  let rng = Rng.create ~seed:18 in
  let t = T.create ~rng ~n:64 ~placement:`Random () in
  let ids = Array.of_list (T.node_ids t) in
  for k = 0 to 99 do
    let key = Key.of_int k in
    let from = ids.(k mod Array.length ids) in
    let owner = T.owner_of_key t key in
    match List.rev (hops (T.route t ~from (Key.to_point key))) with
    | [] ->
        Alcotest.(check bool) "already owner" true (Node_id.equal from owner)
    | last :: _ ->
        Alcotest.(check bool) "route ends at owner" true
          (Node_id.equal last owner)
  done

let test_topo_next_hop_is_neighbor () =
  let rng = Rng.create ~seed:19 in
  let t = T.create ~rng ~n:32 ~placement:`Random () in
  List.iter
    (fun id ->
      let p = Key.to_point (Key.of_int 5) in
      match T.next_hop t id p with
      | Route.Owner | Route.Stuck _ -> ()
      | Route.Forward hop ->
          Alcotest.(check bool) "hop is a neighbor" true
            (List.exists (Node_id.equal hop) (T.neighbors t id)))
    (T.node_ids t)

let test_topo_join_returns_change () =
  let rng = Rng.create ~seed:20 in
  let t = T.create ~rng ~n:8 ~placement:`Random () in
  let change = T.join_random t ~rng in
  Alcotest.(check int) "size grew" 9 (T.size t);
  Alcotest.(check bool) "subject alive" true (T.is_alive t change.T.subject);
  (match change.T.peer with
  | Some peer ->
      Alcotest.(check bool) "peer is a neighbor of subject" true
        (List.exists (Node_id.equal peer) (T.neighbors t change.T.subject))
  | None -> Alcotest.fail "join must report the split node");
  check_invariants t "after join"

let test_topo_leave_hands_over () =
  let rng = Rng.create ~seed:21 in
  let t = T.create ~rng ~n:8 ~placement:`Random () in
  let victim = List.hd (T.node_ids t) in
  let volume_before =
    List.fold_left (fun acc z -> acc +. Zone.volume z) 0. (T.zones_of t victim)
  in
  let change = T.leave t victim in
  Alcotest.(check int) "size shrank" 7 (T.size t);
  Alcotest.(check bool) "victim dead" false (T.is_alive t victim);
  (match change.T.peer with
  | Some taker ->
      let taker_volume =
        List.fold_left (fun acc z -> acc +. Zone.volume z) 0.
          (T.zones_of t taker)
      in
      Alcotest.(check bool) "taker absorbed the volume" true
        (taker_volume >= volume_before)
  | None -> Alcotest.fail "leave must report the taker");
  check_invariants t "after leave"

let test_topo_leave_last_rejected () =
  let t = T.create ~n:1 ~placement:`Grid () in
  let id = List.hd (T.node_ids t) in
  Alcotest.check_raises "cannot remove last"
    (Invalid_argument "Topology.leave: cannot remove last node") (fun () ->
      ignore (T.leave t id))

let test_topo_leave_dead_rejected () =
  let rng = Rng.create ~seed:22 in
  let t = T.create ~rng ~n:4 ~placement:`Random () in
  let victim = List.hd (T.node_ids t) in
  ignore (T.leave t victim);
  Alcotest.check_raises "dead node"
    (Invalid_argument "Topology.leave: unknown or dead node") (fun () ->
      ignore (T.leave t victim))

let prop_churn_preserves_invariants =
  QCheck.Test.make ~count:25 ~name:"random churn keeps the topology valid"
    QCheck.(pair small_int (list bool))
    (fun (seed, moves) ->
      let rng = Rng.create ~seed in
      let t = T.create ~rng ~n:12 ~placement:`Random () in
      List.iter
        (fun join ->
          if join || T.size t <= 2 then ignore (T.join_random t ~rng)
          else begin
            let ids = Array.of_list (T.node_ids t) in
            ignore (T.leave t ids.(Rng.int rng (Array.length ids)))
          end)
        moves;
      T.check_invariants t = Ok ())

let prop_route_terminates =
  QCheck.Test.make ~count:50 ~name:"greedy routing reaches the key owner"
    QCheck.(pair small_int (int_bound 10_000))
    (fun (seed, key) ->
      let rng = Rng.create ~seed in
      let t = T.create ~rng ~n:48 ~placement:`Random () in
      let key = Key.of_int key in
      let owner = T.owner_of_key t key in
      List.for_all
        (fun from ->
          match List.rev (hops (T.route t ~from (Key.to_point key))) with
          | [] -> Node_id.equal from owner
          | last :: _ -> Node_id.equal last owner)
        (T.node_ids t))

(* {1 Chord} *)

module Chord = Cup_overlay.Chord
module Net = Cup_overlay.Net

let chord_invariants c label =
  match Chord.check_invariants c with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: %s" label msg

let test_chord_single_node () =
  let c = Chord.create ~n:1 () in
  Alcotest.(check int) "size" 1 (Chord.size c);
  let id = List.hd (Chord.node_ids c) in
  Alcotest.(check bool) "owns everything" true
    (Chord.next_hop c id (Key.of_int 42) = Route.Owner);
  Alcotest.(check bool) "self successor" true
    (Node_id.equal (Chord.successor c id) id)

let test_chord_even_and_random_build () =
  List.iter
    (fun n ->
      let even = Chord.create ~n () in
      Alcotest.(check int) "even size" n (Chord.size even);
      chord_invariants even (Printf.sprintf "even %d" n))
    [ 2; 3; 8; 33 ];
  let rng = Rng.create ~seed:23 in
  List.iter
    (fun n ->
      let c = Chord.create ~rng ~n () in
      Alcotest.(check int) "random size" n (Chord.size c);
      chord_invariants c (Printf.sprintf "random %d" n))
    [ 2; 7; 64 ]

let test_chord_ring_order () =
  let rng = Rng.create ~seed:24 in
  let c = Chord.create ~rng ~n:16 () in
  (* walking successors visits every node exactly once *)
  let start = List.hd (Chord.node_ids c) in
  let rec walk current seen =
    let next = Chord.successor c current in
    if Node_id.equal next start then List.rev (current :: seen)
    else walk next (current :: seen)
  in
  let tour = walk start [] in
  Alcotest.(check int) "tour covers the ring" 16 (List.length tour);
  (* successor and predecessor are inverse *)
  List.iter
    (fun id ->
      Alcotest.(check bool) "pred (succ x) = x" true
        (Node_id.equal (Chord.predecessor c (Chord.successor c id)) id))
    (Chord.node_ids c)

let test_chord_route_reaches_owner () =
  let rng = Rng.create ~seed:25 in
  let c = Chord.create ~rng ~n:64 () in
  let ids = Array.of_list (Chord.node_ids c) in
  for k = 0 to 199 do
    let key = Key.of_int k in
    let from = ids.(k mod Array.length ids) in
    let owner = Chord.owner_of_key c key in
    match List.rev (hops (Chord.route c ~from key)) with
    | [] -> Alcotest.(check bool) "already owner" true (Node_id.equal from owner)
    | last :: _ ->
        Alcotest.(check bool) "route ends at owner" true
          (Node_id.equal last owner)
  done

let test_chord_path_length_logarithmic () =
  let rng = Rng.create ~seed:26 in
  let c = Chord.create ~rng ~n:256 () in
  let ids = Array.of_list (Chord.node_ids c) in
  let total = ref 0 in
  for k = 0 to 99 do
    let from = ids.(Rng.int rng (Array.length ids)) in
    total := !total + List.length (hops (Chord.route c ~from (Key.of_int k)))
  done;
  let avg = float_of_int !total /. 100. in
  (* expected ~ (log2 n)/2 = 4; generous upper bound well below the
     linear-scan regime *)
  Alcotest.(check bool) (Printf.sprintf "avg path %.1f is logarithmic" avg)
    true
    (avg < 12.)

let test_chord_neighbors_symmetric () =
  let rng = Rng.create ~seed:27 in
  let c = Chord.create ~rng ~n:32 () in
  List.iter
    (fun id ->
      List.iter
        (fun nb ->
          Alcotest.(check bool) "neighbor relation symmetric" true
            (List.exists (Node_id.equal id) (Chord.neighbors c nb)))
        (Chord.neighbors c id))
    (Chord.node_ids c)

let test_chord_join_leave () =
  let rng = Rng.create ~seed:28 in
  let c = Chord.create ~rng ~n:8 () in
  let change = Chord.join_random c ~rng in
  Alcotest.(check int) "grew" 9 (Chord.size c);
  Alcotest.(check bool) "peer reported" true (change.Chord.peer <> None);
  chord_invariants c "after join";
  let victim = List.hd (Chord.node_ids c) in
  let change = Chord.leave c victim in
  Alcotest.(check int) "shrank" 8 (Chord.size c);
  Alcotest.(check bool) "taker reported" true (change.Chord.peer <> None);
  Alcotest.(check bool) "victim dead" false (Chord.is_alive c victim);
  chord_invariants c "after leave";
  let only = Chord.create ~n:1 () in
  Alcotest.check_raises "last node protected"
    (Invalid_argument "Chord.leave: cannot remove last node") (fun () ->
      ignore (Chord.leave only (List.hd (Chord.node_ids only))))

let prop_chord_churn_invariants =
  QCheck.Test.make ~count:20 ~name:"chord churn keeps the ring valid"
    QCheck.(pair small_int (list bool))
    (fun (seed, moves) ->
      let rng = Rng.create ~seed in
      let c = Chord.create ~rng ~n:10 () in
      List.iter
        (fun join ->
          if join || Chord.size c <= 2 then ignore (Chord.join_random c ~rng)
          else begin
            let ids = Array.of_list (Chord.node_ids c) in
            ignore (Chord.leave c ids.(Rng.int rng (Array.length ids)))
          end)
        moves;
      Chord.check_invariants c = Ok ())

(* {1 Pastry} *)

module Pastry = Cup_overlay.Pastry

let pastry_invariants p label =
  match Pastry.check_invariants p with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: %s" label msg

let test_pastry_builds () =
  List.iter
    (fun n ->
      let p = Pastry.create ~n () in
      Alcotest.(check int) "even size" n (Pastry.size p);
      pastry_invariants p (Printf.sprintf "even %d" n))
    [ 1; 2; 3; 9; 32 ];
  let rng = Rng.create ~seed:31 in
  List.iter
    (fun n ->
      let p = Pastry.create ~rng ~n () in
      pastry_invariants p (Printf.sprintf "random %d" n))
    [ 2; 17; 64 ]

let test_pastry_route_reaches_owner () =
  let rng = Rng.create ~seed:32 in
  let p = Pastry.create ~rng ~n:64 () in
  let ids = Array.of_list (Pastry.node_ids p) in
  for k = 0 to 199 do
    let key = Key.of_int k in
    let from = ids.(k mod Array.length ids) in
    let owner = Pastry.owner_of_key p key in
    match List.rev (hops (Pastry.route p ~from key)) with
    | [] -> Alcotest.(check bool) "already owner" true (Node_id.equal from owner)
    | last :: _ ->
        Alcotest.(check bool) "route ends at owner" true
          (Node_id.equal last owner)
  done

let test_pastry_paths_short () =
  let rng = Rng.create ~seed:33 in
  let p = Pastry.create ~rng ~n:256 () in
  let ids = Array.of_list (Pastry.node_ids p) in
  let total = ref 0 in
  for k = 0 to 99 do
    let from = ids.(Rng.int rng (Array.length ids)) in
    total := !total + List.length (hops (Pastry.route p ~from (Key.of_int k)))
  done;
  let avg = float_of_int !total /. 100. in
  (* prefix routing resolves ~a hex digit per hop: log16(256) = 2 *)
  Alcotest.(check bool) (Printf.sprintf "avg path %.2f ~ log16 n" avg) true
    (avg < 4.)

let test_pastry_owner_is_numerically_closest () =
  let rng = Rng.create ~seed:34 in
  let p = Pastry.create ~rng ~n:32 () in
  let key = Key.of_int 77 in
  let owner = Pastry.owner_of_key p key in
  let target = Cup_prng.Splitmix.mix 77L in
  let dist id =
    let a = Pastry.ident p id in
    let d1 = Int64.sub a target and d2 = Int64.sub target a in
    if Int64.unsigned_compare d1 d2 <= 0 then d1 else d2
  in
  List.iter
    (fun id ->
      Alcotest.(check bool) "owner minimizes ring distance" true
        (Int64.unsigned_compare (dist owner) (dist id) <= 0))
    (Pastry.node_ids p)

let test_pastry_join_leave () =
  let rng = Rng.create ~seed:35 in
  let p = Pastry.create ~rng ~n:8 () in
  ignore (Pastry.join_random p ~rng);
  Alcotest.(check int) "grew" 9 (Pastry.size p);
  pastry_invariants p "after join";
  let victim = List.hd (Pastry.node_ids p) in
  let change = Pastry.leave p victim in
  Alcotest.(check bool) "taker reported" true (change.Pastry.peer <> None);
  pastry_invariants p "after leave"

let prop_pastry_churn_invariants =
  QCheck.Test.make ~count:15 ~name:"pastry churn keeps tables valid"
    QCheck.(pair small_int (list bool))
    (fun (seed, moves) ->
      let rng = Rng.create ~seed in
      let p = Pastry.create ~rng ~n:10 () in
      List.iter
        (fun join ->
          if join || Pastry.size p <= 2 then ignore (Pastry.join_random p ~rng)
          else begin
            let ids = Array.of_list (Pastry.node_ids p) in
            ignore (Pastry.leave p ids.(Rng.int rng (Array.length ids)))
          end)
        moves;
      Pastry.check_invariants p = Ok ())

(* {1 Net dispatch} *)

let test_net_dispatch () =
  let rng = Rng.create ~seed:29 in
  List.iter
    (fun kind ->
      let net = Net.create ~rng ~kind ~n:32 () in
      Alcotest.(check int) "size" 32 (Net.size net);
      (match Net.check_invariants net with
      | Ok () -> ()
      | Error m -> Alcotest.fail m);
      let key = Key.of_int 3 in
      let owner = Net.owner_of_key net key in
      Alcotest.(check bool) "owner owns" true
        (Net.next_hop net owner key = Route.Owner);
      List.iter
        (fun from ->
          match List.rev (hops (Net.route net ~from key)) with
          | [] -> Alcotest.(check bool) "self" true (Node_id.equal from owner)
          | last :: _ ->
              Alcotest.(check bool) "ends at owner" true
                (Node_id.equal last owner))
        (Net.node_ids net))
    [ Net.Can `Random; Net.Chord; Net.Pastry ]

let test_net_inspectors () =
  let rng = Rng.create ~seed:30 in
  let can = Net.create ~rng ~kind:(Net.Can `Grid) ~n:4 () in
  Alcotest.(check bool) "can is can" true (Net.as_can can <> None);
  Alcotest.(check bool) "can is not chord" true (Net.as_chord can = None);
  let ch = Net.create ~rng ~kind:Net.Chord ~n:4 () in
  Alcotest.(check bool) "chord is chord" true (Net.as_chord ch <> None);
  let pa = Net.create ~rng ~kind:Net.Pastry ~n:4 () in
  Alcotest.(check bool) "pastry is pastry" true (Net.as_pastry pa <> None);
  Alcotest.(check bool) "pastry is not can" true (Net.as_can pa = None)

(* {1 Typed routing failures (fault tolerance)} *)

(* Regression: a node leaving mid-route used to [failwith] out of the
   caller.  Both asking the dead node for its next hop and routing
   from it must now return a typed outcome, while live nodes reroute
   around the hole. *)
let test_mid_route_leave_is_typed () =
  let rng = Rng.create ~seed:91 in
  let t = T.create ~rng ~n:32 ~placement:`Random () in
  let key = Key.of_int 7 in
  let p = Key.to_point key in
  let from =
    List.find (fun id -> T.next_hop t id p <> Route.Owner) (T.node_ids t)
  in
  match T.next_hop t from p with
  | Route.Owner | Route.Stuck _ -> Alcotest.fail "expected a forwarding hop"
  | Route.Forward hop ->
      ignore (T.leave t hop);
      (match T.next_hop t hop p with
      | Route.Stuck Route.Dead_node -> ()
      | _ -> Alcotest.fail "dead hop should be Stuck Dead_node");
      (match T.route t ~from:hop p with
      | Route.Unreachable { reason = Route.Dead_node; partial = []; _ } -> ()
      | _ -> Alcotest.fail "route from the dead hop should be Unreachable");
      (match T.route t ~from p with
      | Route.Delivered _ -> ()
      | Route.Unreachable _ ->
          Alcotest.fail "live node should reroute around the hole")

let test_net_route_from_dead_node_typed () =
  let rng = Rng.create ~seed:92 in
  List.iter
    (fun kind ->
      let net = Net.create ~rng ~kind ~n:16 () in
      let victim = List.hd (Net.node_ids net) in
      ignore (Net.leave net victim);
      let key = Key.of_int 5 in
      (match Net.next_hop net victim key with
      | Route.Stuck Route.Dead_node -> ()
      | _ -> Alcotest.fail "expected Stuck Dead_node");
      (match Net.route net ~from:victim key with
      | Route.Unreachable { reason = Route.Dead_node; _ } -> ()
      | _ -> Alcotest.fail "expected Unreachable");
      (* live nodes still deliver *)
      List.iter
        (fun from ->
          match Net.route net ~from key with
          | Route.Delivered _ -> ()
          | Route.Unreachable _ -> Alcotest.fail "live route must deliver")
        (Net.node_ids net))
    [ Net.Can `Random; Net.Chord; Net.Pastry ]

(* A crash-then-recover cycle must bump the membership generation
   twice, so a cached next hop recorded before the crash can never be
   served after it (the cache is keyed to the generation). *)
let test_generation_bumps_across_crash_recover () =
  let rng = Rng.create ~seed:93 in
  List.iter
    (fun kind ->
      let net = Net.create ~rng ~route_cache:true ~kind ~n:16 () in
      let key = Key.of_int 11 in
      (* warm the cache *)
      List.iter (fun from -> ignore (Net.route net ~from key)) (Net.node_ids net);
      let g0 = Net.generation net in
      let victim = List.hd (Net.node_ids net) in
      ignore (Net.leave net victim);
      let g1 = Net.generation net in
      Alcotest.(check bool) "crash bumps generation" true (g1 > g0);
      ignore (Net.join_random net ~rng);
      let g2 = Net.generation net in
      Alcotest.(check bool) "recovery bumps generation again" true (g2 > g1);
      (* cached answers after the churn agree with an uncached overlay:
         no stale next hop survives the generation move *)
      List.iter
        (fun from ->
          match Net.route net ~from key with
          | Route.Delivered { hops; count } ->
              Alcotest.(check int) "carried count" (List.length hops) count;
              List.iter
                (fun h ->
                  Alcotest.(check bool) "hop is alive" true
                    (Net.is_alive net h))
                hops
          | Route.Unreachable _ -> Alcotest.fail "route must deliver")
        (Net.node_ids net))
    [ Net.Can `Random; Net.Chord; Net.Pastry ]

let () =
  Alcotest.run "cup_overlay"
    [
      ( "point",
        [
          Alcotest.test_case "wraps" `Quick test_point_wraps;
          Alcotest.test_case "axis distance" `Quick test_axis_distance;
          Alcotest.test_case "distance symmetric" `Quick
            test_point_distance_symmetric;
        ] );
      ( "zone",
        [
          Alcotest.test_case "make validates" `Quick test_zone_make_validates;
          Alcotest.test_case "contains half-open" `Quick
            test_zone_contains_half_open;
          Alcotest.test_case "split" `Quick test_zone_split_halves_longer_dim;
          Alcotest.test_case "adjacency" `Quick test_zone_adjacent_basic;
          Alcotest.test_case "adjacency across seam" `Quick
            test_zone_adjacent_across_seam;
          Alcotest.test_case "distance to point" `Quick
            test_zone_distance_to_point;
        ] );
      ( "key",
        [
          Alcotest.test_case "deterministic" `Quick
            test_key_point_deterministic;
          Alcotest.test_case "spread" `Quick test_key_points_spread;
          Alcotest.test_case "negative rejected" `Quick
            test_key_negative_rejected;
        ] );
      ( "topology",
        [
          Alcotest.test_case "single node" `Quick test_topo_single_node;
          Alcotest.test_case "grid build" `Quick test_topo_grid_build;
          Alcotest.test_case "random build" `Quick test_topo_random_build;
          Alcotest.test_case "random needs rng" `Quick
            test_topo_random_needs_rng;
          Alcotest.test_case "route reaches owner" `Quick
            test_topo_route_reaches_owner;
          Alcotest.test_case "next hop is neighbor" `Quick
            test_topo_next_hop_is_neighbor;
          Alcotest.test_case "join" `Quick test_topo_join_returns_change;
          Alcotest.test_case "leave" `Quick test_topo_leave_hands_over;
          Alcotest.test_case "leave last rejected" `Quick
            test_topo_leave_last_rejected;
          Alcotest.test_case "leave dead rejected" `Quick
            test_topo_leave_dead_rejected;
        ] );
      ( "topology properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_churn_preserves_invariants; prop_route_terminates ] );
      ( "chord",
        [
          Alcotest.test_case "single node" `Quick test_chord_single_node;
          Alcotest.test_case "builds" `Quick test_chord_even_and_random_build;
          Alcotest.test_case "ring order" `Quick test_chord_ring_order;
          Alcotest.test_case "route reaches owner" `Quick
            test_chord_route_reaches_owner;
          Alcotest.test_case "logarithmic paths" `Quick
            test_chord_path_length_logarithmic;
          Alcotest.test_case "neighbors symmetric" `Quick
            test_chord_neighbors_symmetric;
          Alcotest.test_case "join/leave" `Quick test_chord_join_leave;
          QCheck_alcotest.to_alcotest prop_chord_churn_invariants;
        ] );
      ( "pastry",
        [
          Alcotest.test_case "builds" `Quick test_pastry_builds;
          Alcotest.test_case "route reaches owner" `Quick
            test_pastry_route_reaches_owner;
          Alcotest.test_case "short paths" `Quick test_pastry_paths_short;
          Alcotest.test_case "owner closest" `Quick
            test_pastry_owner_is_numerically_closest;
          Alcotest.test_case "join/leave" `Quick test_pastry_join_leave;
          QCheck_alcotest.to_alcotest prop_pastry_churn_invariants;
        ] );
      ( "net",
        [
          Alcotest.test_case "dispatch" `Quick test_net_dispatch;
          Alcotest.test_case "inspectors" `Quick test_net_inspectors;
        ] );
      ( "typed routing failures",
        [
          Alcotest.test_case "mid-route leave is typed" `Quick
            test_mid_route_leave_is_typed;
          Alcotest.test_case "route from dead node" `Quick
            test_net_route_from_dead_node_typed;
          Alcotest.test_case "generation bumps across crash/recover" `Quick
            test_generation_bumps_across_crash_recover;
        ] );
    ]
