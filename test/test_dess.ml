(* Tests for Cup_dess: the event heap and the simulation engine. *)

module Heap = Cup_dess.Event_heap
module Engine = Cup_dess.Engine
module Time = Cup_dess.Time

(* {1 Time} *)

let test_time_arithmetic () =
  let t = Time.of_seconds 10. in
  Alcotest.(check (float 1e-9)) "add" 12.5 (Time.to_seconds (Time.add t 2.5));
  Alcotest.(check (float 1e-9)) "diff" 2.5 (Time.diff (Time.add t 2.5) t);
  Alcotest.(check bool) "compare" true Time.(t < Time.add t 1.);
  Alcotest.(check bool) "infinity not finite" false
    (Time.is_finite Time.infinity)

(* {1 Event heap} *)

let drain heap =
  let rec go acc =
    match Heap.pop heap with
    | None -> List.rev acc
    | Some (t, v) -> go ((t, v) :: acc)
  in
  go []

let test_heap_orders_by_time () =
  let h = Heap.create () in
  List.iter
    (fun (t, v) -> ignore (Heap.push h ~time:(Time.of_seconds t) v))
    [ (5., "e"); (1., "a"); (3., "c"); (2., "b"); (4., "d") ];
  Alcotest.(check (list string))
    "sorted pop order"
    [ "a"; "b"; "c"; "d"; "e" ]
    (List.map snd (drain h))

let test_heap_fifo_on_ties () =
  let h = Heap.create () in
  let t = Time.of_seconds 1. in
  List.iter (fun v -> ignore (Heap.push h ~time:t v)) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check (list int))
    "equal timestamps pop in insertion order" [ 1; 2; 3; 4; 5 ]
    (List.map snd (drain h))

let test_heap_cancel () =
  let h = Heap.create () in
  let _a = Heap.push h ~time:(Time.of_seconds 1.) "a" in
  let b = Heap.push h ~time:(Time.of_seconds 2.) "b" in
  let _c = Heap.push h ~time:(Time.of_seconds 3.) "c" in
  Alcotest.(check bool) "cancel succeeds" true (Heap.cancel h b);
  Alcotest.(check bool) "second cancel fails" false (Heap.cancel h b);
  Alcotest.(check int) "live count" 2 (Heap.length h);
  Alcotest.(check (list string)) "b skipped" [ "a"; "c" ]
    (List.map snd (drain h))

let test_heap_cancel_root () =
  let h = Heap.create () in
  let a = Heap.push h ~time:(Time.of_seconds 1.) "a" in
  ignore (Heap.push h ~time:(Time.of_seconds 2.) "b");
  ignore (Heap.cancel h a);
  Alcotest.(check (option (float 1e-9))) "peek skips cancelled root"
    (Some 2.) (Heap.peek_time h)

let test_heap_empty () =
  let h : int Heap.t = Heap.create () in
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check (option (pair (float 1e-9) int))) "pop empty" None
    (Heap.pop h);
  Alcotest.(check (option (float 1e-9))) "peek empty" None (Heap.peek_time h)

let test_heap_interleaved_push_pop () =
  let h = Heap.create () in
  ignore (Heap.push h ~time:(Time.of_seconds 10.) 10);
  ignore (Heap.push h ~time:(Time.of_seconds 5.) 5);
  (match Heap.pop h with
  | Some (_, 5) -> ()
  | _ -> Alcotest.fail "expected 5 first");
  ignore (Heap.push h ~time:(Time.of_seconds 1.) 1);
  (match Heap.pop h with
  | Some (_, 1) -> ()
  | _ -> Alcotest.fail "expected 1 next");
  match Heap.pop h with
  | Some (_, 10) -> ()
  | _ -> Alcotest.fail "expected 10 last"

let prop_heap_sorts =
  QCheck.Test.make ~count:300 ~name:"heap pops nondecreasing times"
    QCheck.(list (float_range 0. 1000.))
    (fun times ->
      let h = Heap.create () in
      List.iter
        (fun t -> ignore (Heap.push h ~time:(Time.of_seconds t) t))
        times;
      let popped = List.map fst (drain h) in
      List.length popped = List.length times
      && popped = List.sort Float.compare popped)

let prop_heap_cancel_half =
  QCheck.Test.make ~count:200 ~name:"cancelled events never pop"
    QCheck.(list (float_range 0. 100.))
    (fun times ->
      let h = Heap.create () in
      let handles =
        List.mapi
          (fun i t -> (i, Heap.push h ~time:(Time.of_seconds t) i))
          times
      in
      let cancelled =
        List.filter_map
          (fun (i, handle) ->
            if i mod 2 = 0 then begin
              ignore (Heap.cancel h handle);
              Some i
            end
            else None)
          handles
      in
      let popped = List.map snd (drain h) in
      List.for_all (fun i -> not (List.mem i popped)) cancelled
      && List.length popped = List.length times - List.length cancelled)

(* {1 Engine} *)

let test_engine_runs_in_order () =
  let e = Engine.create () in
  let log = ref [] in
  let record tag _ = log := tag :: !log in
  ignore (Engine.schedule e ~at:(Time.of_seconds 3.) (record "c"));
  ignore (Engine.schedule e ~at:(Time.of_seconds 1.) (record "a"));
  ignore (Engine.schedule e ~at:(Time.of_seconds 2.) (record "b"));
  Engine.run e;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock at last event" 3.
    (Time.to_seconds (Engine.now e))

let test_engine_rejects_past () =
  let e = Engine.create () in
  ignore
    (Engine.schedule e ~at:(Time.of_seconds 5.) (fun e ->
         Alcotest.check_raises "past schedule"
           (Invalid_argument "Engine.schedule: cannot schedule in the past")
           (fun () -> ignore (Engine.schedule e ~at:(Time.of_seconds 1.) (fun _ -> ())))));
  Engine.run e

let test_engine_rejects_negative_delay () =
  let e = Engine.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule_after: negative delay") (fun () ->
      ignore (Engine.schedule_after e ~delay:(-1.) (fun _ -> ())))

let test_engine_until () =
  let e = Engine.create () in
  let ran = ref [] in
  List.iter
    (fun t ->
      ignore
        (Engine.schedule e ~at:(Time.of_seconds t) (fun _ ->
             ran := t :: !ran)))
    [ 1.; 2.; 3.; 4. ];
  Engine.run ~until:(Time.of_seconds 2.5) e;
  Alcotest.(check (list (float 1e-9))) "only events <= until" [ 1.; 2. ]
    (List.rev !ran);
  Alcotest.(check (float 1e-9)) "clock advanced to until" 2.5
    (Time.to_seconds (Engine.now e));
  Alcotest.(check int) "rest still pending" 2 (Engine.pending e);
  Engine.run e;
  Alcotest.(check int) "drained" 0 (Engine.pending e)

let test_engine_stop () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore
      (Engine.schedule e ~at:(Time.of_seconds (float_of_int i)) (fun e ->
           incr count;
           if !count = 3 then Engine.stop e))
  done;
  Engine.run e;
  Alcotest.(check int) "stopped after 3" 3 !count;
  (* run again resumes *)
  Engine.run e;
  Alcotest.(check int) "resumed" 10 !count

let test_engine_max_events () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore
      (Engine.schedule e ~at:(Time.of_seconds (float_of_int i)) (fun _ ->
           incr count))
  done;
  Engine.run ~max_events:4 e;
  Alcotest.(check int) "budget respected" 4 !count

let test_engine_cancel_pending () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule e ~at:(Time.of_seconds 1.) (fun _ -> fired := true) in
  Alcotest.(check bool) "cancel" true (Engine.cancel e h);
  Engine.run e;
  Alcotest.(check bool) "did not fire" false !fired

let test_engine_schedule_now_from_callback () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule e ~at:(Time.of_seconds 1.) (fun e ->
         log := "outer" :: !log;
         ignore
           (Engine.schedule e ~at:(Engine.now e) (fun _ ->
                log := "inner" :: !log))));
  ignore
    (Engine.schedule e ~at:(Time.of_seconds 1.) (fun _ ->
         log := "peer" :: !log));
  Engine.run e;
  (* The same-time event scheduled from the callback runs after the
     already-queued peer (insertion order). *)
  Alcotest.(check (list string)) "deterministic same-time order"
    [ "outer"; "peer"; "inner" ] (List.rev !log)

let test_engine_events_executed () =
  let e = Engine.create () in
  for i = 1 to 5 do
    ignore (Engine.schedule e ~at:(Time.of_seconds (float_of_int i)) (fun _ -> ()))
  done;
  Engine.run e;
  Alcotest.(check int) "executed count" 5 (Engine.events_executed e)

(* {1 Profiling probes} *)

let test_profile_none_when_disabled () =
  let e = Engine.create () in
  for i = 1 to 5 do
    ignore
      (Engine.schedule ~label:"tick" e
         ~at:(Time.of_seconds (float_of_int i))
         (fun _ -> ()))
  done;
  Engine.run e;
  Alcotest.(check bool) "not enabled" false (Engine.profiling_enabled e);
  Alcotest.(check bool) "no profile" true (Engine.profile e = None)

let test_profile_counts_by_label () =
  let e = Engine.create () in
  Engine.enable_profiling e;
  Alcotest.(check bool) "enabled" true (Engine.profiling_enabled e);
  for i = 1 to 6 do
    ignore
      (Engine.schedule ~label:"tick" e
         ~at:(Time.of_seconds (float_of_int i))
         (fun _ -> ()))
  done;
  for i = 1 to 2 do
    ignore
      (Engine.schedule ~label:"tock" e
         ~at:(Time.of_seconds (10. +. float_of_int i))
         (fun _ -> ()))
  done;
  ignore (Engine.schedule e ~at:(Time.of_seconds 20.) (fun _ -> ()));
  Engine.run e;
  match Engine.profile e with
  | None -> Alcotest.fail "profile expected"
  | Some p ->
      Alcotest.(check int) "high water = peak pending" 9 p.heap_high_water;
      let calls label =
        match List.assoc_opt label p.by_label with
        | Some (s : Engine.label_stats) -> s.calls
        | None -> 0
      in
      Alcotest.(check int) "tick calls" 6 (calls "tick");
      Alcotest.(check int) "tock calls" 2 (calls "tock");
      Alcotest.(check int) "unlabeled bucket" 1 (calls "(unlabeled)");
      Alcotest.(check bool) "host time non-negative" true
        (List.for_all
           (fun (_, (s : Engine.label_stats)) -> s.host_seconds >= 0.)
           p.by_label)

let test_profile_disable_stops_collecting () =
  let e = Engine.create () in
  Engine.enable_profiling e;
  ignore
    (Engine.schedule ~label:"before" e ~at:(Time.of_seconds 1.) (fun _ -> ()));
  Engine.run e;
  Engine.disable_profiling e;
  Alcotest.(check bool) "disabled" false (Engine.profiling_enabled e);
  ignore
    (Engine.schedule ~label:"after" e ~at:(Time.of_seconds 2.) (fun _ -> ()));
  Engine.run e;
  match Engine.profile e with
  | None -> Alcotest.fail "snapshot survives disabling"
  | Some p ->
      Alcotest.(check bool) "before recorded" true
        (List.mem_assoc "before" p.by_label);
      Alcotest.(check bool) "after not recorded" false
        (List.mem_assoc "after" p.by_label)

let test_profile_does_not_change_execution () =
  (* the same schedule runs identically with probes on: order,
     clock, executed count *)
  let trace enable =
    let e = Engine.create () in
    if enable then Engine.enable_profiling e;
    let log = ref [] in
    List.iter
      (fun (t, tag) ->
        ignore
          (Engine.schedule ~label:tag e ~at:(Time.of_seconds t) (fun e ->
               log := (tag, Time.to_seconds (Engine.now e)) :: !log)))
      [ (3., "c"); (1., "a"); (2., "b"); (1., "a2") ];
    Engine.run e;
    (List.rev !log, Engine.events_executed e)
  in
  Alcotest.(check bool) "identical trajectory" true (trace false = trace true)

let () =
  Alcotest.run "cup_dess"
    [
      ("time", [ Alcotest.test_case "arithmetic" `Quick test_time_arithmetic ]);
      ( "event_heap",
        [
          Alcotest.test_case "orders by time" `Quick test_heap_orders_by_time;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_on_ties;
          Alcotest.test_case "cancel" `Quick test_heap_cancel;
          Alcotest.test_case "cancel root" `Quick test_heap_cancel_root;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "interleaved" `Quick
            test_heap_interleaved_push_pop;
        ] );
      ( "heap properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_heap_sorts; prop_heap_cancel_half ] );
      ( "engine",
        [
          Alcotest.test_case "runs in order" `Quick test_engine_runs_in_order;
          Alcotest.test_case "rejects past" `Quick test_engine_rejects_past;
          Alcotest.test_case "rejects negative delay" `Quick
            test_engine_rejects_negative_delay;
          Alcotest.test_case "until" `Quick test_engine_until;
          Alcotest.test_case "stop/resume" `Quick test_engine_stop;
          Alcotest.test_case "max events" `Quick test_engine_max_events;
          Alcotest.test_case "cancel" `Quick test_engine_cancel_pending;
          Alcotest.test_case "same-time from callback" `Quick
            test_engine_schedule_now_from_callback;
          Alcotest.test_case "executed count" `Quick
            test_engine_events_executed;
        ] );
      ( "profiling",
        [
          Alcotest.test_case "off by default" `Quick
            test_profile_none_when_disabled;
          Alcotest.test_case "counts by label" `Quick
            test_profile_counts_by_label;
          Alcotest.test_case "disable stops collecting" `Quick
            test_profile_disable_stops_collecting;
          Alcotest.test_case "no behavioural change" `Quick
            test_profile_does_not_change_execution;
        ] );
    ]
