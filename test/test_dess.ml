(* Tests for Cup_dess: the event queues (binary heap and calendar
   queue, exercised through one shared suite) and the simulation
   engine. *)

module Heap = Cup_dess.Event_heap
module Engine = Cup_dess.Engine
module Time = Cup_dess.Time

(* Both queue implementations promise the same contract; every queue
   test below runs against each through this signature. *)
module type SCHED = sig
  type 'a t

  val create : unit -> 'a t
  val length : 'a t -> int
  val is_empty : 'a t -> bool
  val push : 'a t -> time:Time.t -> 'a -> Cup_dess.Sched_cell.handle
  val cancel : 'a t -> Cup_dess.Sched_cell.handle -> bool
  val pop : 'a t -> (Time.t * 'a) option
  val peek_time : 'a t -> Time.t option
end

let sched_impls : (string * (module SCHED)) list =
  [
    ("heap", (module Cup_dess.Event_heap));
    ("calendar", (module Cup_dess.Calendar_queue));
  ]

(* {1 Time} *)

let test_time_arithmetic () =
  let t = Time.of_seconds 10. in
  Alcotest.(check (float 1e-9)) "add" 12.5 (Time.to_seconds (Time.add t 2.5));
  Alcotest.(check (float 1e-9)) "diff" 2.5 (Time.diff (Time.add t 2.5) t);
  Alcotest.(check bool) "compare" true Time.(t < Time.add t 1.);
  Alcotest.(check bool) "infinity not finite" false
    (Time.is_finite Time.infinity)

(* {1 Event queues (heap and calendar, same contract)} *)

module Queue_suite (S : SCHED) = struct
  let drain q =
    let rec go acc =
      match S.pop q with
      | None -> List.rev acc
      | Some (t, v) -> go ((t, v) :: acc)
    in
    go []

  let test_orders_by_time () =
    let h = S.create () in
    List.iter
      (fun (t, v) -> ignore (S.push h ~time:(Time.of_seconds t) v))
      [ (5., "e"); (1., "a"); (3., "c"); (2., "b"); (4., "d") ];
    Alcotest.(check (list string))
      "sorted pop order"
      [ "a"; "b"; "c"; "d"; "e" ]
      (List.map snd (drain h))

  let test_fifo_on_ties () =
    let h = S.create () in
    let t = Time.of_seconds 1. in
    List.iter (fun v -> ignore (S.push h ~time:t v)) [ 1; 2; 3; 4; 5 ];
    Alcotest.(check (list int))
      "equal timestamps pop in insertion order" [ 1; 2; 3; 4; 5 ]
      (List.map snd (drain h))

  let test_cancel () =
    let h = S.create () in
    let _a = S.push h ~time:(Time.of_seconds 1.) "a" in
    let b = S.push h ~time:(Time.of_seconds 2.) "b" in
    let _c = S.push h ~time:(Time.of_seconds 3.) "c" in
    Alcotest.(check bool) "cancel succeeds" true (S.cancel h b);
    Alcotest.(check bool) "second cancel fails" false (S.cancel h b);
    Alcotest.(check int) "live count" 2 (S.length h);
    Alcotest.(check (list string)) "b skipped" [ "a"; "c" ]
      (List.map snd (drain h))

  let test_cancel_root () =
    let h = S.create () in
    let a = S.push h ~time:(Time.of_seconds 1.) "a" in
    ignore (S.push h ~time:(Time.of_seconds 2.) "b");
    ignore (S.cancel h a);
    Alcotest.(check (option (float 1e-9))) "peek skips cancelled root"
      (Some 2.) (S.peek_time h);
    (* peeking discarded the tombstone; cancelling it again still
       reports failure rather than double-counting *)
    Alcotest.(check bool) "cancel after peek discarded it" false
      (S.cancel h a);
    Alcotest.(check int) "one live event left" 1 (S.length h)

  let test_empty () =
    let h : int S.t = S.create () in
    Alcotest.(check bool) "is_empty" true (S.is_empty h);
    Alcotest.(check (option (pair (float 1e-9) int))) "pop empty" None
      (S.pop h);
    Alcotest.(check (option (float 1e-9))) "peek empty" None (S.peek_time h)

  let test_interleaved_push_pop () =
    let h = S.create () in
    ignore (S.push h ~time:(Time.of_seconds 10.) 10);
    ignore (S.push h ~time:(Time.of_seconds 5.) 5);
    (match S.pop h with
    | Some (_, 5) -> ()
    | _ -> Alcotest.fail "expected 5 first");
    ignore (S.push h ~time:(Time.of_seconds 1.) 1);
    (match S.pop h with
    | Some (_, 1) -> ()
    | _ -> Alcotest.fail "expected 1 next");
    match S.pop h with
    | Some (_, 10) -> ()
    | _ -> Alcotest.fail "expected 10 last"

  let test_length_interleaved_cancel_pop () =
    let h = S.create () in
    let handles =
      List.map
        (fun i -> S.push h ~time:(Time.of_seconds (float_of_int i)) i)
        [ 1; 2; 3; 4; 5 ]
    in
    Alcotest.(check int) "all live" 5 (S.length h);
    ignore (S.cancel h (List.nth handles 1));
    Alcotest.(check int) "one cancelled" 4 (S.length h);
    (match S.pop h with
    | Some (_, 1) -> ()
    | _ -> Alcotest.fail "expected 1 first");
    Alcotest.(check int) "after pop" 3 (S.length h);
    ignore (S.cancel h (List.nth handles 2));
    Alcotest.(check int) "second cancel" 2 (S.length h);
    (* cancelling the already-popped head fails and leaves the count *)
    Alcotest.(check bool) "cancel popped event fails" false
      (S.cancel h (List.nth handles 0));
    Alcotest.(check int) "count unchanged" 2 (S.length h);
    Alcotest.(check (list int)) "survivors pop in order" [ 4; 5 ]
      (List.map snd (drain h));
    Alcotest.(check int) "drained" 0 (S.length h)

  let test_all_cancelled_reports_empty () =
    let h = S.create () in
    let handles =
      List.map
        (fun i -> S.push h ~time:(Time.of_seconds (float_of_int i)) i)
        [ 3; 1; 2 ]
    in
    List.iter (fun handle -> ignore (S.cancel h handle)) handles;
    Alcotest.(check int) "length 0" 0 (S.length h);
    Alcotest.(check bool) "is_empty" true (S.is_empty h);
    Alcotest.(check (option (float 1e-9))) "peek none" None (S.peek_time h);
    Alcotest.(check (option (pair (float 1e-9) int))) "pop none" None
      (S.pop h)

  let cases =
    [
      Alcotest.test_case "orders by time" `Quick test_orders_by_time;
      Alcotest.test_case "fifo ties" `Quick test_fifo_on_ties;
      Alcotest.test_case "cancel" `Quick test_cancel;
      Alcotest.test_case "cancel root" `Quick test_cancel_root;
      Alcotest.test_case "empty" `Quick test_empty;
      Alcotest.test_case "interleaved" `Quick test_interleaved_push_pop;
      Alcotest.test_case "length under cancel/pop" `Quick
        test_length_interleaved_cancel_pop;
      Alcotest.test_case "all cancelled is empty" `Quick
        test_all_cancelled_reports_empty;
    ]

  let prop_sorts name =
    QCheck.Test.make ~count:300
      ~name:(name ^ " pops nondecreasing times")
      QCheck.(list (float_range 0. 1000.))
      (fun times ->
        let h = S.create () in
        List.iter
          (fun t -> ignore (S.push h ~time:(Time.of_seconds t) t))
          times;
        let popped = List.map fst (drain h) in
        List.length popped = List.length times
        && popped = List.sort Float.compare popped)

  let prop_cancel_half name =
    QCheck.Test.make ~count:200
      ~name:("cancelled events never pop (" ^ name ^ ")")
      QCheck.(list (float_range 0. 100.))
      (fun times ->
        let h = S.create () in
        let handles =
          List.mapi
            (fun i t -> (i, S.push h ~time:(Time.of_seconds t) i))
            times
        in
        let cancelled =
          List.filter_map
            (fun (i, handle) ->
              if i mod 2 = 0 then begin
                ignore (S.cancel h handle);
                Some i
              end
              else None)
            handles
        in
        let popped = List.map snd (drain h) in
        List.for_all (fun i -> not (List.mem i popped)) cancelled
        && List.length popped = List.length times - List.length cancelled)
end

let queue_suite name (module S : SCHED) =
  let module T = Queue_suite (S) in
  (name, T.cases)

let queue_props =
  List.concat_map
    (fun (name, (module S : SCHED)) ->
      let module T = Queue_suite (S) in
      [ T.prop_sorts name; T.prop_cancel_half name ])
    sched_impls

(* The determinism contract behind Engine's ?scheduler knob: an
   arbitrary interleaving of pushes, pops and cancels observes the
   identical stream of (time, value) from both implementations. *)
let prop_heap_calendar_equivalent =
  QCheck.Test.make ~count:400 ~name:"heap and calendar pop identical streams"
    QCheck.(list (pair (float_range 0. 1000.) (int_range 0 9)))
    (fun script ->
      let module C = Cup_dess.Calendar_queue in
      let h = Heap.create () and c = C.create () in
      let handles = ref [] (* (heap handle, calendar handle), stack *) in
      let pushed = ref 0 in
      let ok = ref true in
      let observe b = if not b then ok := false in
      List.iter
        (fun (time, action) ->
          if action <= 5 then begin
            let v = !pushed in
            incr pushed;
            let time = Time.of_seconds time in
            handles := (Heap.push h ~time v, C.push c ~time v) :: !handles
          end
          else if action <= 7 then begin
            observe (Heap.peek_time h = C.peek_time c);
            observe (Heap.pop h = C.pop c)
          end
          else begin
            match !handles with
            | [] -> ()
            | all ->
                let idx = action * 31 mod List.length all in
                let hh, ch = List.nth all idx in
                observe (Heap.cancel h hh = C.cancel c ch)
          end;
          observe (Heap.length h = C.length c))
        script;
      let rec drain_both () =
        let ph = Heap.pop h and pc = C.pop c in
        observe (ph = pc);
        if ph <> None then drain_both ()
      in
      drain_both ();
      !ok)

(* {1 Engine} *)

let test_engine_runs_in_order () =
  let e = Engine.create () in
  let log = ref [] in
  let record tag _ = log := tag :: !log in
  ignore (Engine.schedule e ~at:(Time.of_seconds 3.) (record "c"));
  ignore (Engine.schedule e ~at:(Time.of_seconds 1.) (record "a"));
  ignore (Engine.schedule e ~at:(Time.of_seconds 2.) (record "b"));
  Engine.run e;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock at last event" 3.
    (Time.to_seconds (Engine.now e))

let test_engine_rejects_past () =
  let e = Engine.create () in
  ignore
    (Engine.schedule e ~at:(Time.of_seconds 5.) (fun e ->
         Alcotest.check_raises "past schedule"
           (Invalid_argument "Engine.schedule: cannot schedule in the past")
           (fun () -> ignore (Engine.schedule e ~at:(Time.of_seconds 1.) (fun _ -> ())))));
  Engine.run e

let test_engine_rejects_negative_delay () =
  let e = Engine.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule_after: negative delay") (fun () ->
      ignore (Engine.schedule_after e ~delay:(-1.) (fun _ -> ())))

let test_engine_until () =
  let e = Engine.create () in
  let ran = ref [] in
  List.iter
    (fun t ->
      ignore
        (Engine.schedule e ~at:(Time.of_seconds t) (fun _ ->
             ran := t :: !ran)))
    [ 1.; 2.; 3.; 4. ];
  Engine.run ~until:(Time.of_seconds 2.5) e;
  Alcotest.(check (list (float 1e-9))) "only events <= until" [ 1.; 2. ]
    (List.rev !ran);
  Alcotest.(check (float 1e-9)) "clock advanced to until" 2.5
    (Time.to_seconds (Engine.now e));
  Alcotest.(check int) "rest still pending" 2 (Engine.pending e);
  Engine.run e;
  Alcotest.(check int) "drained" 0 (Engine.pending e)

let test_engine_stop () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore
      (Engine.schedule e ~at:(Time.of_seconds (float_of_int i)) (fun e ->
           incr count;
           if !count = 3 then Engine.stop e))
  done;
  Engine.run e;
  Alcotest.(check int) "stopped after 3" 3 !count;
  (* run again resumes *)
  Engine.run e;
  Alcotest.(check int) "resumed" 10 !count

let test_engine_max_events () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore
      (Engine.schedule e ~at:(Time.of_seconds (float_of_int i)) (fun _ ->
           incr count))
  done;
  Engine.run ~max_events:4 e;
  Alcotest.(check int) "budget respected" 4 !count

let test_engine_cancel_pending () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule e ~at:(Time.of_seconds 1.) (fun _ -> fired := true) in
  Alcotest.(check bool) "cancel" true (Engine.cancel e h);
  Engine.run e;
  Alcotest.(check bool) "did not fire" false !fired

let test_engine_schedule_now_from_callback () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule e ~at:(Time.of_seconds 1.) (fun e ->
         log := "outer" :: !log;
         ignore
           (Engine.schedule e ~at:(Engine.now e) (fun _ ->
                log := "inner" :: !log))));
  ignore
    (Engine.schedule e ~at:(Time.of_seconds 1.) (fun _ ->
         log := "peer" :: !log));
  Engine.run e;
  (* The same-time event scheduled from the callback runs after the
     already-queued peer (insertion order). *)
  Alcotest.(check (list string)) "deterministic same-time order"
    [ "outer"; "peer"; "inner" ] (List.rev !log)

let test_engine_events_executed () =
  let e = Engine.create () in
  for i = 1 to 5 do
    ignore (Engine.schedule e ~at:(Time.of_seconds (float_of_int i)) (fun _ -> ()))
  done;
  Engine.run e;
  Alcotest.(check int) "executed count" 5 (Engine.events_executed e)

(* {1 Profiling probes} *)

let test_profile_none_when_disabled () =
  let e = Engine.create () in
  for i = 1 to 5 do
    ignore
      (Engine.schedule ~label:"tick" e
         ~at:(Time.of_seconds (float_of_int i))
         (fun _ -> ()))
  done;
  Engine.run e;
  Alcotest.(check bool) "not enabled" false (Engine.profiling_enabled e);
  Alcotest.(check bool) "no profile" true (Engine.profile e = None)

let test_profile_counts_by_label () =
  let e = Engine.create () in
  Engine.enable_profiling e;
  Alcotest.(check bool) "enabled" true (Engine.profiling_enabled e);
  for i = 1 to 6 do
    ignore
      (Engine.schedule ~label:"tick" e
         ~at:(Time.of_seconds (float_of_int i))
         (fun _ -> ()))
  done;
  for i = 1 to 2 do
    ignore
      (Engine.schedule ~label:"tock" e
         ~at:(Time.of_seconds (10. +. float_of_int i))
         (fun _ -> ()))
  done;
  ignore (Engine.schedule e ~at:(Time.of_seconds 20.) (fun _ -> ()));
  Engine.run e;
  match Engine.profile e with
  | None -> Alcotest.fail "profile expected"
  | Some p ->
      Alcotest.(check int) "high water = peak pending" 9 p.heap_high_water;
      let calls label =
        match List.assoc_opt label p.by_label with
        | Some (s : Engine.label_stats) -> s.calls
        | None -> 0
      in
      Alcotest.(check int) "tick calls" 6 (calls "tick");
      Alcotest.(check int) "tock calls" 2 (calls "tock");
      Alcotest.(check int) "unlabeled bucket" 1 (calls "(unlabeled)");
      Alcotest.(check bool) "host time non-negative" true
        (List.for_all
           (fun (_, (s : Engine.label_stats)) -> s.host_seconds >= 0.)
           p.by_label)

let test_profile_disable_stops_collecting () =
  let e = Engine.create () in
  Engine.enable_profiling e;
  ignore
    (Engine.schedule ~label:"before" e ~at:(Time.of_seconds 1.) (fun _ -> ()));
  Engine.run e;
  Engine.disable_profiling e;
  Alcotest.(check bool) "disabled" false (Engine.profiling_enabled e);
  ignore
    (Engine.schedule ~label:"after" e ~at:(Time.of_seconds 2.) (fun _ -> ()));
  Engine.run e;
  match Engine.profile e with
  | None -> Alcotest.fail "snapshot survives disabling"
  | Some p ->
      Alcotest.(check bool) "before recorded" true
        (List.mem_assoc "before" p.by_label);
      Alcotest.(check bool) "after not recorded" false
        (List.mem_assoc "after" p.by_label)

let test_profile_does_not_change_execution () =
  (* the same schedule runs identically with probes on: order,
     clock, executed count *)
  let trace enable =
    let e = Engine.create () in
    if enable then Engine.enable_profiling e;
    let log = ref [] in
    List.iter
      (fun (t, tag) ->
        ignore
          (Engine.schedule ~label:tag e ~at:(Time.of_seconds t) (fun e ->
               log := (tag, Time.to_seconds (Engine.now e)) :: !log)))
      [ (3., "c"); (1., "a"); (2., "b"); (1., "a2") ];
    Engine.run e;
    (List.rev !log, Engine.events_executed e)
  in
  Alcotest.(check bool) "identical trajectory" true (trace false = trace true)

let () =
  Alcotest.run "cup_dess"
    ([
       ("time", [ Alcotest.test_case "arithmetic" `Quick test_time_arithmetic ]);
     ]
    @ List.map
        (fun (name, impl) -> queue_suite ("queue:" ^ name) impl)
        sched_impls
    @ [
      ( "queue properties",
        List.map QCheck_alcotest.to_alcotest
          (queue_props @ [ prop_heap_calendar_equivalent ]) );
      ( "engine",
        [
          Alcotest.test_case "runs in order" `Quick test_engine_runs_in_order;
          Alcotest.test_case "rejects past" `Quick test_engine_rejects_past;
          Alcotest.test_case "rejects negative delay" `Quick
            test_engine_rejects_negative_delay;
          Alcotest.test_case "until" `Quick test_engine_until;
          Alcotest.test_case "stop/resume" `Quick test_engine_stop;
          Alcotest.test_case "max events" `Quick test_engine_max_events;
          Alcotest.test_case "cancel" `Quick test_engine_cancel_pending;
          Alcotest.test_case "same-time from callback" `Quick
            test_engine_schedule_now_from_callback;
          Alcotest.test_case "executed count" `Quick
            test_engine_events_executed;
        ] );
      ( "profiling",
        [
          Alcotest.test_case "off by default" `Quick
            test_profile_none_when_disabled;
          Alcotest.test_case "counts by label" `Quick
            test_profile_counts_by_label;
          Alcotest.test_case "disable stops collecting" `Quick
            test_profile_disable_stops_collecting;
          Alcotest.test_case "no behavioural change" `Quick
            test_profile_does_not_change_execution;
        ] );
    ])
