(* Tests for the deterministic swarm-testing fuzzer: generator
   validity and purity, job-count-independent verdicts, standalone
   seed replay, and — the harness's own acceptance test — that a
   deliberately planted invariant bug is caught and shrunk to a small
   repro. *)

module Fuzz = Cup_sim.Fuzz
module Scenario = Cup_sim.Scenario
module Runner = Cup_sim.Runner
module Trace = Cup_sim.Trace
module Audit = Cup_obs.Audit
module Fuzz_oracle = Cup_obs.Fuzz_oracle
module Time = Cup_dess.Time
module Pool = Cup_parallel.Pool

(* {1 Generator} *)

let test_generator_validity () =
  for seed = 0 to 299 do
    let cfg = Fuzz.scenario_of_seed seed in
    match Scenario.validate cfg with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "seed %d generates invalid scenario: %s" seed msg
  done

let test_generator_purity () =
  List.iter
    (fun seed ->
      let a = Fuzz.scenario_of_seed seed and b = Fuzz.scenario_of_seed seed in
      if a <> b then Alcotest.failf "seed %d not pure" seed)
    [ 0; 1; 17; 1000; 123_456 ]

(* Swarm coverage: over a few hundred seeds, every fault axis must
   appear both present and absent, and some scenario must combine
   three or more axes — the combinations are where the bugs live. *)
let test_generator_covers_axes () =
  let crash = ref 0 and loss = ref 0 and part = ref 0 in
  let reord = ref 0 and dup = ref 0 and multi = ref 0 in
  let n = 300 in
  for seed = 0 to n - 1 do
    let cfg = Fuzz.scenario_of_seed seed in
    let axes =
      List.length
        (List.filter Fun.id
           [
             cfg.crashes <> None;
             cfg.loss <> None;
             cfg.partition <> None;
             cfg.reorder <> None;
             cfg.duplication <> None;
           ])
    in
    if cfg.crashes <> None then incr crash;
    if cfg.loss <> None then incr loss;
    if cfg.partition <> None then incr part;
    if cfg.reorder <> None then incr reord;
    if cfg.duplication <> None then incr dup;
    if axes >= 3 then incr multi
  done;
  let check name c =
    if !c = 0 || !c = n then
      Alcotest.failf "axis %s never varies (%d/%d)" name !c n
  in
  check "crashes" crash;
  check "loss" loss;
  check "partition" part;
  check "reorder" reord;
  check "duplication" dup;
  if !multi = 0 then Alcotest.fail "no scenario combines 3+ fault axes"

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_repro_command_shape () =
  let cfg = Fuzz.scenario_of_seed 42 in
  let cmd = Fuzz.repro_command cfg in
  List.iter
    (fun needle ->
      if not (contains ~needle cmd) then
        Alcotest.failf "repro %S lacks %S" cmd needle)
    [ "cup run"; "--seed 42"; "--nodes"; "--audit" ]

(* {1 Determinism} *)

(* The acceptance bar for the sweep driver: pooled and sequential
   sweeps produce equal summaries — same verdicts, same event counts,
   same (empty) failure lists — because Pool.map merges in input
   order and the oracle is a pure function of the scenario.  The
   [timings] field is host wall-clock, explicitly outside the
   deterministic verdict, so it is compared by shape (seed order,
   non-negative) rather than value. *)
let check_timings label (s : Fuzz.summary) ~seed_start ~seeds =
  Alcotest.(check (list int))
    (label ^ ": timing seeds in order")
    (List.init seeds (fun i -> seed_start + i))
    (List.map fst s.timings);
  List.iter
    (fun (seed, ms) ->
      if ms < 0. then Alcotest.failf "%s: seed %d timed %.3f ms" label seed ms)
    s.timings

let test_jobs_determinism () =
  let seeds = 6 and seed_start = 100 in
  let sequential =
    Fuzz.run_seeds ~exec:Fuzz_oracle.execute ~seed_start ~seeds ()
  in
  let pooled =
    Pool.with_pool ~jobs:2 (fun pool ->
        Fuzz.run_seeds ~exec:Fuzz_oracle.execute ~pool ~seed_start ~seeds ())
  in
  let deterministic (s : Fuzz.summary) = { s with Fuzz.timings = [] } in
  if deterministic sequential <> deterministic pooled then
    Alcotest.fail "pooled summary differs from sequential";
  check_timings "sequential" sequential ~seed_start ~seeds;
  check_timings "pooled" pooled ~seed_start ~seeds

let test_standalone_replay () =
  let summary =
    Fuzz.run_seeds ~exec:Fuzz_oracle.execute ~seed_start:7 ~seeds:3 ()
  in
  Alcotest.(check int) "all pass" 3 summary.passed;
  (* replaying one seed standalone must reproduce its sweep verdict *)
  let replay = Fuzz_oracle.execute (Fuzz.scenario_of_seed 8) in
  match replay with
  | Fuzz.Pass _ -> ()
  | Fuzz.Fail f ->
      Alcotest.failf "standalone replay of seed 8 failed: [%s] %s" f.code
        f.detail

(* {1 Planted-bug detection and shrinking}

   The fuzzer is only trustworthy if it catches bugs we know are
   there.  This executor runs the real simulation but corrupts every
   5th delivered update's payload in the auditor's view — inflating
   each entry's expiry far into the future, the signature of a broken
   refresh clock or a missing freshness validation.  Every later
   honest delivery to that node then regresses the inflated
   high-water mark, which the audit must flag as a V2 violation, and
   the shrinker must cut the repro to a small node count while it
   keeps failing.  (Regressing expiries *downward* instead would not
   work here: replicas refresh exactly at expiry with origin-stamped
   entries, so the standing high-water at any arrival instant is
   roughly the arrival time itself and a stale-but-unexpired value
   below it does not exist.) *)

let corrupting_exec (cfg : Scenario.t) : Fuzz.verdict =
  match Scenario.validate cfg with
  | Error msg ->
      Fail { code = "GEN"; invariant = "scenario"; at = 0.; detail = msg }
  | Ok () -> (
      let live = Runner.Live.create cfg in
      let auditor = Audit.create ~counters:(Runner.Live.counters live) () in
      let count = ref 0 in
      Runner.Live.set_tracer live
        (Some
           (fun event ->
             let event =
               match event with
               | Trace.Update_delivered
                   {
                     at;
                     from_;
                     to_;
                     key;
                     kind;
                     level;
                     answering;
                     entries;
                     trace_id;
                     span_id;
                     parent_id;
                   } ->
                   incr count;
                   if !count mod 5 = 0 then
                     Trace.Update_delivered
                       {
                         at;
                         from_;
                         to_;
                         key;
                         kind;
                         level;
                         answering;
                         entries =
                           (* unexpired (so the expired-entry
                              exemption does not apply) and far above
                              any honest lifetime *)
                           List.map (fun (r, e) -> (r, e +. 1000.)) entries;
                         trace_id;
                         span_id;
                         parent_id;
                       }
                   else event
               | e -> e
             in
             Audit.observe auditor event));
      match
        let (_ : Runner.result) = Runner.Live.finish live in
        Audit.finish auditor
      with
      | () -> Fuzz.Pass { events = Audit.events_checked auditor }
      | exception Audit.Violation v ->
          Fail
            {
              code = v.code;
              invariant = v.invariant;
              at = v.at;
              detail = v.detail;
            })

(* Refresh-heavy, fault-free scenario: plenty of repeat deliveries to
   the same (node, key, replica), so the corruption is guaranteed to
   land on a non-first delivery. *)
let planted_cfg =
  {
    Scenario.default with
    seed = 5;
    nodes = 64;
    total_keys_override = Some 1;
    replica_lifetime = 60.;
    query_rate = 1.;
    query_duration = 300.;
  }

let test_planted_bug_caught () =
  match corrupting_exec planted_cfg with
  | Fail { code = "V2"; _ } -> ()
  | Fail f -> Alcotest.failf "wrong violation: [%s %s] %s" f.code f.invariant f.detail
  | Pass _ -> Alcotest.fail "planted freshness bug escaped the audit"

let test_planted_bug_shrinks () =
  match Fuzz.shrink ~exec:corrupting_exec planted_cfg with
  | None -> Alcotest.fail "shrink lost the failure"
  | Some (shrunk, fail) ->
      Alcotest.(check string) "still a freshness violation" "V2" fail.code;
      if shrunk.Scenario.nodes > 32 then
        Alcotest.failf "shrunk repro still has %d nodes" shrunk.Scenario.nodes;
      if shrunk.Scenario.query_duration >= planted_cfg.Scenario.query_duration
      then Alcotest.fail "shrink never shortened the schedule";
      (* the shrunk scenario must remain a valid, renderable repro *)
      (match Scenario.validate shrunk with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "shrunk scenario invalid: %s" msg);
      match corrupting_exec shrunk with
      | Fail _ -> ()
      | Pass _ -> Alcotest.fail "shrunk repro does not reproduce"

let () =
  Alcotest.run "cup_fuzz"
    [
      ( "generator",
        [
          Alcotest.test_case "300 seeds validate" `Quick
            test_generator_validity;
          Alcotest.test_case "purity" `Quick test_generator_purity;
          Alcotest.test_case "axis coverage" `Quick test_generator_covers_axes;
          Alcotest.test_case "repro command shape" `Quick
            test_repro_command_shape;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "jobs-independent verdicts" `Slow
            test_jobs_determinism;
          Alcotest.test_case "standalone replay" `Slow test_standalone_replay;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "planted bug caught" `Slow test_planted_bug_caught;
          Alcotest.test_case "planted bug shrinks" `Slow
            test_planted_bug_shrinks;
        ] );
    ]
